#!/usr/bin/env python3
"""persist-smoke: SIGKILL a durable run-stream mid-round-2, resume it.

The end-to-end durability proof with a *real* process death (not a
simulated one): start a 3-round MODP2048 stream with ``--state-dir``,
poll its write-ahead log until round 2 (index 1) commits a mixing
layer, ``kill -9`` the process, then ``repro resume`` and require the
final ``StreamReport.ok``.

Run via ``make persist-smoke`` (needs PYTHONPATH=src, like every other
target).
"""

import signal
import struct
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.store.segments import LogDir
from repro.store.wal import RecordType

KILL_ROUND = 1  # 0-indexed: "round 2" of the 3-round stream
POLL_S = 0.25
TIMEOUT_S = 900

STREAM_ARGS = [
    sys.executable, "-m", "repro.cli", "run-stream",
    "--rounds", "3", "--users", "2", "--groups", "2", "--group-size", "2",
    "--mode", "anytrust", "--h", "1", "--iterations", "2",
    "--group", "modp2048", "--fault-schedule", "", "--seed", "atom-persist",
]


def committed_rounds(state_dir: Path) -> set:
    """Round ids with at least one committed mixing layer on disk."""
    if not LogDir.present(state_dir):
        return set()
    try:
        scan = LogDir.scan_dir(state_dir)
    except Exception:
        return set()
    rounds = set()
    for rec in scan.records:
        if rec.type == RecordType.LAYER_COMMIT and len(rec.payload) >= 4:
            rounds.add(struct.unpack_from(">I", rec.payload)[0])
    return rounds


def main() -> int:
    state_dir = Path(tempfile.mkdtemp(prefix="atom-persist-smoke-"))
    args = STREAM_ARGS + ["--state-dir", str(state_dir)]
    print(f"[persist-smoke] starting: {' '.join(args[1:])}")
    proc = subprocess.Popen(args)

    deadline = time.monotonic() + TIMEOUT_S
    try:
        while True:
            if proc.poll() is not None:
                print(
                    f"[persist-smoke] FAIL: stream exited "
                    f"(rc={proc.returncode}) before round {KILL_ROUND + 1} "
                    f"committed a layer — nothing to kill"
                )
                return 1
            if KILL_ROUND in committed_rounds(state_dir):
                break
            if time.monotonic() > deadline:
                print("[persist-smoke] FAIL: timed out waiting for commit")
                return 1
            time.sleep(POLL_S)
        print(
            f"[persist-smoke] round {KILL_ROUND + 1} committed a mixing "
            f"layer; sending SIGKILL to pid {proc.pid}"
        )
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    print("[persist-smoke] resuming from", state_dir)
    resume = subprocess.run(
        [sys.executable, "-m", "repro.cli", "resume",
         "--state-dir", str(state_dir)],
        capture_output=True, text=True, timeout=TIMEOUT_S,
    )
    sys.stdout.write(resume.stdout)
    sys.stderr.write(resume.stderr)
    if resume.returncode != 0:
        print(f"[persist-smoke] FAIL: resume exited {resume.returncode}")
        return 1
    if "3 rounds" not in resume.stdout or "ABORT" in resume.stdout:
        print("[persist-smoke] FAIL: resumed report is not a clean 3 rounds")
        return 1
    print("[persist-smoke] PASS: killed mid-round-2, resumed, StreamReport.ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
