"""Measure peak RSS and throughput of one seeded round at scale.

Runs a complete seeded round (intake -> padding -> mixing -> exit)
through the configured data plane and prints one JSON object on
stdout, so the streaming-RSS benchmark (benchmarks/test_streaming_rss.py)
can run it as a subprocess and read an isolated ``ru_maxrss`` — peak
RSS of a shared pytest process would be polluted by every test that
ran before it.

Usage:
    PYTHONPATH=src python scripts/stream_rss.py \
        --messages 2000 --group TOY --data-plane batch --spill-threshold 256
"""

import argparse
import json
import resource
import sys
import time


def peak_rss_mib() -> float:
    # Linux reports ru_maxrss in KiB (macOS in bytes; this repo's CI
    # and container are Linux).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--messages", type=int, default=2000)
    ap.add_argument("--group", type=str.upper, default="TOY")
    ap.add_argument("--data-plane", default="batch")
    ap.add_argument("--spill-threshold", type=int, default=0)
    ap.add_argument("--iterations", type=int, default=2)
    ap.add_argument("--num-groups", type=int, default=2)
    ap.add_argument("--message-size", type=int, default=8)
    args = ap.parse_args()

    from repro.core import AtomDeployment, Client, DeploymentConfig
    from repro.crypto.groups import DeterministicRng

    config = DeploymentConfig(
        num_servers=2 * args.num_groups,
        num_groups=args.num_groups,
        group_size=2,
        variant="basic",
        iterations=args.iterations,
        message_size=args.message_size,
        crypto_group=args.group,
        data_plane=args.data_plane,
        spill_threshold=args.spill_threshold,
    )

    rss_start = peak_rss_mib()
    with AtomDeployment(config) as dep:
        rng = DeterministicRng(b"rss-setup")
        rnd = dep.start_round(0, rng=rng)
        client = Client(dep.group, rng)

        t0 = time.perf_counter()
        for i in range(args.messages):
            dep.submit_plain(rnd, b"%08d" % i, i % args.num_groups, client)
        dummies = dep.pad_round(rnd, rng)
        t1 = time.perf_counter()
        rss_after_intake = peak_rss_mib()

        result = dep.run_round(rnd, DeterministicRng(b"rss-mix"))
        t2 = time.perf_counter()

    intake_s = t1 - t0
    mix_s = t2 - t1
    total_s = t2 - t0
    report = {
        "messages": args.messages,
        "dummies": dummies,
        "crypto_group": args.group,
        "data_plane": args.data_plane,
        "spill_threshold": args.spill_threshold,
        "iterations": args.iterations,
        "ok": result.ok,
        "delivered": len(result.messages),
        "intake_s": round(intake_s, 3),
        "mix_s": round(mix_s, 3),
        "total_s": round(total_s, 3),
        "msgs_per_s": round(args.messages / total_s, 1) if total_s else None,
        "rss_baseline_mib": round(rss_start, 1),
        "rss_after_intake_mib": round(rss_after_intake, 1),
        "peak_rss_mib": round(peak_rss_mib(), 1),
    }
    json.dump(report, sys.stdout)
    print()
    return 0 if result.ok and len(result.messages) == args.messages else 1


if __name__ == "__main__":
    sys.exit(main())
