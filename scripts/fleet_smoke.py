#!/usr/bin/env python3
"""fleet-smoke: a stream across real server OS processes must survive a
rolling restart mid-stream, byte-identically.

The end-to-end multi-process proof: run a seeded 3-round stream twice —
once zero-copy in-process, once sharded over two ``repro serve``
processes spawned from a :class:`~repro.fleet.plan.DeploymentPlan` —
and roll the whole fleet (drain -> SIGTERM -> respawn -> WAL recovery
-> rejoin, one process at a time) between rounds 0 and 1 of the fleet
run.  The final ``StreamReport.ok`` must hold and every round's payload
must be byte-identical to the in-process baseline: process placement,
restarts and WAL replay are invisible to the protocol.

Run via ``make fleet-smoke`` (needs PYTHONPATH=src, like every other
target).
"""

import socket
import sys
import tempfile
import time
from pathlib import Path

from repro.core import DeploymentConfig
from repro.core.pipeline import StreamConfig, StreamEngine
from repro.fleet.controller import FleetController
from repro.fleet.plan import DeploymentPlan


def _config():
    return DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=4,
        h=2,
        mode="manytrust",
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
    )


def _free_ports(n):
    socks = [socket.create_server(("127.0.0.1", 0)) for _ in range(n)]
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


def _run_stream(config, on_round_settled=None):
    engine = StreamEngine(
        config,
        stream=StreamConfig(rounds=3, users_per_round=4, seed=b"fleet-smoke"),
    )
    if on_round_settled is not None:
        engine.on_round_settled = on_round_settled
    with engine:
        return engine.run()


def main() -> int:
    print("[fleet-smoke] baseline: in-process stream, 3 rounds")
    baseline = _run_stream(_config())

    tmp = Path(tempfile.mkdtemp(prefix="fleet-smoke-"))
    plan = DeploymentPlan.build(
        _config(), 2, ports=_free_ports(2), state_root=str(tmp / "state")
    ).save(tmp / "plan.json")
    controller = FleetController(plan, runtime_dir=str(tmp / "run"))

    rolls = []

    def roll_after_round_0(r):
        if r == 0:
            print("[fleet-smoke] rolling the fleet mid-stream ...")
            t = time.monotonic()
            controller.roll()
            rolls.append(time.monotonic() - t)
            print(f"[fleet-smoke] roll complete in {rolls[-1]:.1f}s")

    print(f"[fleet-smoke] fleet: 2 serve processes, plan {plan.path}")
    start = time.monotonic()
    controller.up()
    try:
        report = _run_stream(plan.engine_config(), roll_after_round_0)
    finally:
        controller.down()
    elapsed = time.monotonic() - start

    for r in report.rounds:
        print(
            f"[fleet-smoke] round {r.round_id}: ok={r.ok} "
            f"messages={len(r.messages)}"
        )
    if not report.ok:
        print("[fleet-smoke] FAIL: StreamReport.ok is False")
        return 1
    if not rolls:
        print("[fleet-smoke] FAIL: the rolling restart never ran")
        return 1
    fleet_payload = [(r.round_id, r.messages) for r in report.rounds]
    base_payload = [(r.round_id, r.messages) for r in baseline.rounds]
    if fleet_payload != base_payload:
        print(
            "[fleet-smoke] FAIL: fleet payload differs from the "
            "in-process baseline"
        )
        for (rid, fleet_msgs), (_, base_msgs) in zip(
            fleet_payload, base_payload
        ):
            marker = "==" if fleet_msgs == base_msgs else "!="
            print(f"[fleet-smoke]   round {rid}: fleet {marker} baseline")
        return 1
    print(
        f"[fleet-smoke] PASS: 3 rounds byte-identical to in-process "
        f"across a full rolling restart, {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
