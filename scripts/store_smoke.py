#!/usr/bin/env python3
"""store-smoke: the sharded log store end to end, under real process
death.

A long seeded stream is sharded over two ``repro serve`` processes with
deliberately tiny WAL segments, so every moving part of the log store
fires for real:

- the coordinator's journal **rotates** (segment threshold crossed many
  times over) and **auto-compacts** (retention bound holds for the
  whole run, with the manifest-accounted disk footprint staying under a
  fixed ceiling instead of growing with the stream),
- one serve process is **SIGKILLed** mid-stream and rebuilt via
  **checkpoint shipping** (``FleetController.replace``): its journal is
  distilled to the live suffix, archived, and the respawned process
  restores from a single shipped segment,
- the final ``StreamReport.ok`` must hold and every round's payload
  must be byte-identical to the in-process baseline.

Run via ``make store-smoke`` (needs PYTHONPATH=src, like every other
target).
"""

import json
import socket
import sys
import tempfile
import time
from pathlib import Path

from repro.core import DeploymentConfig
from repro.core.pipeline import StreamConfig, StreamEngine
from repro.fleet.controller import FleetController
from repro.fleet.plan import DeploymentPlan
from repro.store.segments import LogDir

ROUNDS = 6
SEGMENT_RECORDS = 8
RETAIN = 2
#: hard ceiling on the coordinator journal (manifest-accounted): the
#: records are small (TOY group, 8-byte messages), so a comfortable
#: absolute bound proves O(state) without tuning per-byte thresholds
DISK_CEILING = 256 * 1024


def _config(state_dir=None):
    return DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=4,
        h=2,
        mode="manytrust",
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
        state_dir=str(state_dir) if state_dir else None,
        wal_segment_records=SEGMENT_RECORDS,
        wal_retain_segments=RETAIN,
    )


def _free_ports(n):
    socks = [socket.create_server(("127.0.0.1", 0)) for _ in range(n)]
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


def _run_stream(config, on_round_settled=None):
    engine = StreamEngine(
        config,
        stream=StreamConfig(
            rounds=ROUNDS, users_per_round=4, seed=b"store-smoke"
        ),
    )
    if on_round_settled is not None:
        engine.on_round_settled = on_round_settled
    with engine:
        return engine.run()


def main() -> int:
    print(f"[store-smoke] baseline: in-process stream, {ROUNDS} rounds")
    baseline = _run_stream(_config())

    tmp = Path(tempfile.mkdtemp(prefix="store-smoke-"))
    coord_dir = tmp / "coordinator"
    plan = DeploymentPlan.build(
        _config(coord_dir), 2, ports=_free_ports(2),
        state_root=str(tmp / "state"),
    ).save(tmp / "plan.json")
    controller = FleetController(plan, runtime_dir=str(tmp / "run"))

    segment_counts = []
    disk_sizes = []
    max_seq = [0]
    shipped = []

    def watch_and_replace(r):
        manifest = json.loads((coord_dir / "wal.manifest").read_text())
        segment_counts.append(len(manifest["segments"]))
        disk_sizes.append(LogDir.scan_dir(coord_dir).disk_bytes)
        max_seq[0] = max(max_seq[0], manifest["next_seq"])
        if r == 1:
            print("[store-smoke] SIGKILL p1; checkpoint-shipped replace ...")
            t = time.monotonic()
            controller.kill("p1")
            shipped.append(controller.replace("p1"))
            spec = plan.process("p1")
            from repro.fleet.server import FLEET_WAL, fleet_log_root

            root = fleet_log_root(spec.state_dir)
            scan = LogDir.scan_dir(root, FLEET_WAL)
            assert scan.segments_read == ["wal-000001.seg"], (
                "replacement journal must hold only the shipped segment"
            )
            assert root.with_name("fleet-log-replaced").exists(), (
                "the dead O(history) layout must be archived"
            )
            print(
                f"[store-smoke] replaced p1 in {time.monotonic() - t:.1f}s "
                f"({shipped[0]} live records shipped)"
            )

    print(f"[store-smoke] fleet: 2 serve processes, plan {plan.path}")
    start = time.monotonic()
    controller.up()
    try:
        report = _run_stream(plan.engine_config(), watch_and_replace)
    finally:
        controller.down()
    elapsed = time.monotonic() - start

    for r in report.rounds:
        print(
            f"[store-smoke] round {r.round_id}: ok={r.ok} "
            f"messages={len(r.messages)}"
        )
    print(
        f"[store-smoke] coordinator journal: segments per settle "
        f"{segment_counts}, bytes per settle {disk_sizes}, "
        f"highest segment seq {max_seq[0]}"
    )

    if not report.ok:
        print("[store-smoke] FAIL: StreamReport.ok is False")
        return 1
    if not shipped or shipped[0] <= 0:
        print("[store-smoke] FAIL: the checkpoint-shipped replace never ran")
        return 1
    # Rotation: segment sequence numbers far beyond the manifest length
    # prove segments were created and retired throughout the run.
    if max_seq[0] <= RETAIN + 2:
        print(
            f"[store-smoke] FAIL: highest segment seq {max_seq[0]} — "
            f"the log never rotated"
        )
        return 1
    # Compaction/retention: the manifest stays short at every round
    # boundary (base + retained sealed + active), never O(stream).
    if max(segment_counts) > RETAIN + 2:
        print(
            f"[store-smoke] FAIL: manifest grew to {max(segment_counts)} "
            f"segments (retention bound is {RETAIN + 2})"
        )
        return 1
    if max(disk_sizes) > DISK_CEILING:
        print(
            f"[store-smoke] FAIL: journal hit {max(disk_sizes):,} bytes "
            f"(ceiling {DISK_CEILING:,}) — disk is not bounded"
        )
        return 1
    fleet_payload = [(r.round_id, r.messages) for r in report.rounds]
    base_payload = [(r.round_id, r.messages) for r in baseline.rounds]
    if fleet_payload != base_payload:
        print(
            "[store-smoke] FAIL: payload differs from the in-process "
            "baseline"
        )
        return 1
    print(
        f"[store-smoke] PASS: {ROUNDS} rounds byte-identical across "
        f"rotation + compaction + SIGKILL + checkpoint-shipped replace, "
        f"journal <= {max(disk_sizes):,} bytes, {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
