#!/usr/bin/env python3
"""chaos-smoke: a TCP stream must survive a hostile network, in-process.

The end-to-end resilience proof: run a seeded 3-round stream over the
real TCP transport under a chaos plan that drops 2% of RPCs, delays
10% by 20 ms, duplicates 1% — and, undeclared to the engine, black-holes
one server's endpoint at the start of round 2.  The heartbeat detector
must notice the dark endpoint (no FaultSchedule entry tells it), §4.5
buddy recovery must heal it, and the final ``StreamReport.ok`` must
hold with every round delivering its messages.

Run via ``make chaos-smoke`` (needs PYTHONPATH=src, like every other
target).
"""

import sys
import time

from repro.core import DeploymentConfig
from repro.core.pipeline import StreamConfig, StreamEngine

CHAOS_PLAN = "*:drop:2%;*:delay:20:10%;*:dup:1%;r1/c>1/ping:kill:1"


def main() -> int:
    config = DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=4,
        h=2,
        mode="manytrust",
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
        transport="tcp",
        net_faults=CHAOS_PLAN,
        heartbeat=True,
        heartbeat_grace_s=0.01,
        heartbeat_timeout_s=0.25,
    )
    print(f"[chaos-smoke] tcp stream, 3 rounds, plan: {CHAOS_PLAN}")
    engine = StreamEngine(
        config,
        stream=StreamConfig(rounds=3, users_per_round=4, seed=b"chaos-smoke"),
    )
    start = time.monotonic()
    report = engine.run()
    elapsed = time.monotonic() - start

    for r in report.rounds:
        print(
            f"[chaos-smoke] round {r.round_id}: ok={r.ok} "
            f"messages={len(r.messages)} recovered={r.recovered_gids}"
        )
    if not report.ok:
        print("[chaos-smoke] FAIL: StreamReport.ok is False")
        return 1
    if report.total_recoveries < 1:
        print(
            "[chaos-smoke] FAIL: the round-2 kill was never detected — "
            "expected at least one buddy recovery"
        )
        return 1
    print(
        f"[chaos-smoke] PASS: {len(report.rounds)} rounds ok under chaos, "
        f"{report.total_recoveries} heartbeat-triggered recovery, "
        f"{elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
