"""Tests for the microblogging and dialing applications."""

import pytest

from repro.apps.dialing import (
    DialingService,
    DialRequest,
    laplace_noise_count,
    open_dial,
    seal_dial,
)
from repro.apps.microblog import BulletinBoard, MicroblogService
from repro.core import DeploymentConfig
from repro.crypto.elgamal import ElGamalKeyPair
from repro.crypto.groups import DeterministicRng, get_group


def tiny_config(**overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="trap",
        iterations=2,
        message_size=16,
        crypto_group="TOY",
    )
    base.update(overrides)
    return DeploymentConfig(**base)


class TestBulletinBoard:
    def test_publish_read(self):
        board = BulletinBoard()
        board.publish(0, [b"a", b"b"])
        board.publish(1, [b"c"])
        assert board.read(0) == [b"a", b"b"]
        assert board.read(2) == []
        assert sorted(board.all_posts()) == [b"a", b"b", b"c"]


class TestMicroblog:
    def test_round_publishes_all_posts(self):
        service = MicroblogService(config=tiny_config())
        posts = [f"post {i}".encode() for i in range(4)]
        result = service.run_round(0, posts)
        assert result.ok
        assert sorted(service.board.read(0)) == sorted(posts)

    def test_oversized_post_rejected(self):
        service = MicroblogService(config=tiny_config())
        with pytest.raises(ValueError):
            service.run_round(0, [b"x" * 50] * 4)

    def test_plain_variant(self):
        service = MicroblogService(config=tiny_config(variant="basic"))
        posts = [f"p{i}".encode() for i in range(4)]
        result = service.run_round(0, posts)
        assert sorted(service.board.read(0)) == sorted(posts)

    def test_aborted_round_publishes_nothing(self):
        from repro.core.server import Behavior

        service = MicroblogService(config=tiny_config())
        rnd_dep = service.deployment
        # force an always-detected disruption: duplicate a ciphertext
        posts = [f"post {i}".encode() for i in range(4)]
        rnd = rnd_dep.start_round(0)
        rnd.contexts[0].servers[0].behavior = Behavior.DUPLICATE_ONE
        for i, post in enumerate(posts):
            rnd_dep.submit_trap(rnd, post, i % 2)
        result = rnd_dep.run_round(rnd)
        if result.aborted:
            service.board.publish(0, result.messages) if result.ok else None
            assert service.board.read(0) == []


class TestDialSealing:
    def test_seal_open_roundtrip(self):
        group = get_group("TOY")
        bob = ElGamalKeyPair.generate(group)
        sealed = seal_dial(group, b"alice-public-key-bytes", bob)
        assert open_dial(group, bob, sealed) == b"alice-public-key-bytes"

    def test_wrong_recipient_cannot_open(self):
        group = get_group("TOY")
        bob = ElGamalKeyPair.generate(group)
        eve = ElGamalKeyPair.generate(group)
        sealed = seal_dial(group, b"alice", bob)
        with pytest.raises(Exception):
            open_dial(group, eve, sealed)

    def test_request_wire_roundtrip(self):
        request = DialRequest(recipient_id=42, sealed=b"sealed-bytes")
        assert DialRequest.from_bytes(request.to_bytes()) == request

    def test_short_wire_rejected(self):
        with pytest.raises(ValueError):
            DialRequest.from_bytes(b"abc")


class TestLaplaceNoise:
    def test_nonnegative(self):
        rng = DeterministicRng(b"noise")
        for _ in range(100):
            assert laplace_noise_count(5.0, 2.0, rng) >= 0

    def test_mean_near_mu(self):
        rng = DeterministicRng(b"mean")
        samples = [laplace_noise_count(50.0, 3.0, rng) for _ in range(300)]
        assert 45 < sum(samples) / len(samples) < 55

    def test_deterministic(self):
        a = laplace_noise_count(10.0, 2.0, DeterministicRng(b"s"))
        b = laplace_noise_count(10.0, 2.0, DeterministicRng(b"s"))
        assert a == b


class TestDialing:
    def _service(self, **overrides):
        # message_size must cover 8B recipient id + the sealed box
        # (group element + AEAD nonce/tag) — 96 bytes is ample for TOY.
        return DialingService(
            config=tiny_config(message_size=96, **overrides), num_mailboxes=4
        )

    def test_dial_end_to_end(self):
        service = self._service()
        group = service.group
        bob = ElGamalKeyPair.generate(group)
        alice_pub = b"alice-pk"
        requests = [
            service.make_request(alice_pub, recipient_id=1, recipient_key=bob)
        ]
        # pad round with unrelated calls
        carol = ElGamalKeyPair.generate(group)
        for i in range(3):
            requests.append(
                service.make_request(b"dave-pk%d" % i, 2, carol)
            )
        result = service.run_round(0, requests)
        assert result.ok
        received = service.receive(0, 1, bob)
        assert received == [alice_pub]

    def test_mailbox_separation(self):
        service = self._service()
        group = service.group
        bob = ElGamalKeyPair.generate(group)
        carol = ElGamalKeyPair.generate(group)
        requests = [
            service.make_request(b"to-bob", 1, bob),
            service.make_request(b"to-carol", 2, carol),
            service.make_request(b"to-bob-2", 1, bob),
            service.make_request(b"to-carol-2", 2, carol),
        ]
        result = service.run_round(0, requests)
        assert result.ok
        assert sorted(service.receive(0, 1, bob)) == [b"to-bob", b"to-bob-2"]
        assert sorted(service.receive(0, 2, carol)) == [b"to-carol", b"to-carol-2"]

    def test_recipient_cannot_open_others_calls(self):
        service = self._service()
        group = service.group
        bob = ElGamalKeyPair.generate(group)
        eve = ElGamalKeyPair.generate(group)
        requests = [service.make_request(b"secret", 1, bob) for _ in range(4)]
        result = service.run_round(0, requests)
        assert result.ok
        assert service.receive(0, 1, eve) == []

    def test_dummy_traffic_hides_call_volume(self):
        service = DialingService(
            config=tiny_config(message_size=96),
            num_mailboxes=2,
            dummy_mu=2.0,
            dummy_scale=1.0,
        )
        group = service.group
        bob = ElGamalKeyPair.generate(group)
        requests = [service.make_request(b"hi-bob", 0, bob)]
        result = service.run_round(0, requests)
        assert result.ok
        # Bob's mailbox download contains dummies beyond the real call...
        downloaded = service.download(0, 0)
        assert len(downloaded) >= 1
        # ...but only the real call opens.
        assert service.receive(0, 0, bob) == [b"hi-bob"]

    def test_missing_round_raises(self):
        service = self._service()
        with pytest.raises(KeyError):
            service.download(5, 0)
