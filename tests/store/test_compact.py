"""Compaction acceptance: a compacted state dir resumes to the same
bytes as the uncompacted one, on both transports — and crashing at any
failpoint inside rotation or compaction still recovers byte-identically.

The liveness rules (``repro.store.compact``) claim a record superseded
by a durable round boundary can never influence recovery; these tests
hold that claim to the transport-parity standard: seeded streams,
canonical per-round payloads, no loosened comparisons.
"""

import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DeploymentConfig, StreamConfig, StreamEngine
from repro.store import segments as sg
from repro.store.compact import (
    CompactionStats,
    Compactor,
    compact_state_dir,
    deployment_liveness,
    fleet_liveness,
)
from repro.store.recovery import RecoveryManager
from repro.store.segments import LogDir
from repro.store.wal import RecordType, WalRecord

ROUNDS = 3
USERS = 4
MSG = 8


class SimulatedCrash(Exception):
    pass


def _config(state_dir, transport="inproc", **overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="trap",
        iterations=3,
        message_size=MSG,
        crypto_group="TOY",
        nizk_rounds=4,
        transport=transport,
        state_dir=str(state_dir) if state_dir is not None else None,
        # Tiny segments: a 3-round stream rotates many times, so the
        # compactor has a real sealed prefix to chew on.
        wal_segment_records=6,
        wal_retain_segments=0,  # keep auto-compaction out of the way
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def _engine(config, rounds=ROUNDS):
    return StreamEngine(
        config,
        stream=StreamConfig(
            rounds=rounds, users_per_round=USERS, seed=b"compact-test"
        ),
    )


def _default_message(r, i):
    return f"r{r}u{i}".encode()[:MSG]


def _crash_run(state_dir, transport="inproc", crash_round=2, **overrides):
    """Run a stream that dies while ``crash_round``'s intake interleaves
    into the previous round's mixing; leaves a resumable state dir."""

    def crashing_fn(r, i):
        if (r, i) == (crash_round, 0):
            raise SimulatedCrash
        return _default_message(r, i)

    engine = _engine(_config(state_dir, transport, **overrides))
    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=crashing_fn)


def _round_bytes(report):
    return [(r.round_id, r.ok, r.messages) for r in report.rounds]


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
def test_compacted_resume_is_byte_identical(tmp_path, transport):
    """The tentpole acceptance: crash a stream, compact a copy of the
    state dir offline, resume both — byte-identical reports, and the
    compacted dir really did shed records and segments."""
    plain = tmp_path / "plain"
    _crash_run(plain, transport)
    compacted = tmp_path / "compacted"
    shutil.copytree(plain, compacted)
    stats = compact_state_dir(compacted)
    assert stats.ran and stats.dropped > 0
    assert stats.bytes_after < stats.bytes_before

    baseline = RecoveryManager(plain).resume_stream()
    resumed = RecoveryManager(compacted).resume_stream()
    assert baseline.ok and resumed.ok
    assert _round_bytes(resumed) == _round_bytes(baseline)
    for r in range(ROUNDS):
        for i in range(USERS):
            assert _default_message(r, i) in resumed.rounds[r].messages


def test_auto_compaction_bounds_the_live_layout(tmp_path):
    """retain_segments=2 keeps the manifest short for the whole run
    while the stream stays ok; retention accounting never counts
    scratch files."""
    (tmp_path / "r0-g0-9.spill").write_bytes(b"leftover scratch")
    config = _config(tmp_path, wal_retain_segments=2)
    with _engine(config) as engine:
        report = engine.run(message_fn=lambda r, i: _default_message(r, i))
    assert report.ok
    manifest = json.loads((tmp_path / "wal.manifest").read_text())
    # base + at most retain sealed + active
    assert len(manifest["segments"]) <= 4
    assert (tmp_path / "r0-g0-9.spill").exists()
    scan = LogDir.scan_dir(tmp_path)
    assert scan.clean_shutdown
    assert scan.disk_bytes == sum(
        (tmp_path / n).stat().st_size for n in manifest["segments"]
    )


def test_compacting_a_clean_dir_then_rerunning_is_fine(tmp_path):
    config = _config(tmp_path)
    with _engine(config) as engine:
        assert engine.run(message_fn=lambda r, i: _default_message(r, i)).ok
    stats = compact_state_dir(tmp_path)
    assert stats.ran
    scan = LogDir.scan_dir(tmp_path)
    assert scan.clean_shutdown
    assert not RecoveryManager(tmp_path).needs_recovery()


def _round_payloads(round_bytes):
    """Order-free per-round view: a resumed stream redraws the
    interrupted round's mix permutation (same standard as the fleet
    SIGKILL test), so storms compare delivered payload sets."""
    return [(rid, ok, sorted(msgs)) for rid, ok, msgs in round_bytes]


class TestCrashInsideMaintenance:
    """Failpoint storms: die at a named point inside rotation or
    compaction (online, mid-stream, on the n-th hit) and require the
    resumed stream to deliver every round's exact payload set."""

    @pytest.fixture(autouse=True)
    def _clear_failpoint(self):
        yield
        sg.FAILPOINT = None

    @staticmethod
    def _baseline():
        with tempfile.TemporaryDirectory() as tmp:
            report = _engine(_config(Path(tmp))).run(
                message_fn=lambda r, i: _default_message(r, i)
            )
        return _round_bytes(report)

    @given(
        point=st.sampled_from(
            [
                "rotate:sealed",
                "rotate:created",
                "rotate:swapped",
                "compact:written",
                "compact:swapped",
                "compact:cleaned",
            ]
        ),
        occurrence=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=12, deadline=None)
    def test_kill_point_storm_resumes_byte_identical(self, point, occurrence):
        baseline = self._baseline()
        with tempfile.TemporaryDirectory() as tmp:
            # retain=1 drives *online* compaction constantly, so the
            # compact:* points fire mid-stream, between live appends.
            config = _config(Path(tmp), wal_retain_segments=1)
            hits = [0]

            def hook(name):
                if name == point:
                    hits[0] += 1
                    if hits[0] == occurrence + 1:
                        raise SimulatedCrash(name)

            sg.FAILPOINT = hook
            report = None
            try:
                # Engine construction opens the log dir, so even the
                # first segment's creation is in the blast radius.
                report = _engine(config).run(
                    message_fn=lambda r, i: _default_message(r, i)
                )
            except SimulatedCrash:
                pass
            finally:
                sg.FAILPOINT = None
            if report is None:
                if LogDir.present(tmp) and LogDir.scan_dir(tmp).records:
                    manager = RecoveryManager(tmp)
                    assert manager.needs_recovery()
                    report = manager.resume_stream()
                else:
                    # Died before the stream journaled anything; a
                    # fresh run over the leftovers must just work.
                    report = _engine(config).run(
                        message_fn=lambda r, i: _default_message(r, i)
                    )
            assert report.ok
            assert _round_payloads(_round_bytes(report)) == _round_payloads(
                baseline
            )

    @pytest.mark.parametrize(
        "point", ["compact:written", "compact:swapped", "compact:cleaned"]
    )
    def test_offline_compaction_crash_leaves_resumable_dir(
        self, tmp_path, point
    ):
        """``repro store compact`` dying mid-swap must never cost a
        record: resume after the crash equals resume of the pristine
        copy."""
        plain = tmp_path / "plain"
        _crash_run(plain)
        victim = tmp_path / "victim"
        shutil.copytree(plain, victim)

        def hook(name):
            if name == point:
                raise SimulatedCrash(name)

        sg.FAILPOINT = hook
        with pytest.raises(SimulatedCrash):
            compact_state_dir(victim)
        sg.FAILPOINT = None

        baseline = RecoveryManager(plain).resume_stream()
        resumed = RecoveryManager(victim).resume_stream()
        assert resumed.ok
        assert _round_bytes(resumed) == _round_bytes(baseline)


class TestLivenessRules:
    def test_deployment_mask_keeps_identity_and_open_rounds(self):
        recs = [
            WalRecord(RecordType.META, b'{"x": 1}'),
            WalRecord(RecordType.STREAM_BEGIN, b'{"rounds": 2}'),
            WalRecord(
                RecordType.ROUND_SETUP, b'{"round": 0, "fresh": true}'
            ),
            WalRecord(RecordType.ROUND_DONE, b'{"round_id": 0}'),
            WalRecord(
                RecordType.ROUND_SETUP, b'{"round": 1, "fresh": false}'
            ),
            WalRecord(RecordType.RESUME, b'{"round": 1}'),
            WalRecord(199, b"unknown type"),
        ]
        assert deployment_liveness(recs) == [
            True,  # META
            True,  # STREAM_BEGIN
            True,  # fresh setup mark
            True,  # boundary
            True,  # round 1 not settled
            False,  # RESUME is a pure marker
            True,  # unknown types survive
        ]

    def test_fleet_mask_drops_closed_rounds_entirely(self):
        from repro.store.compact import REC_CLOSE, REC_OPEN

        recs = [
            WalRecord(REC_OPEN, b'{"round_id": 0}'),
            WalRecord(REC_OPEN, b'{"round_id": 1}'),
            WalRecord(REC_CLOSE, b'{"round_id": 0}'),
        ]
        assert fleet_liveness(recs) == [False, True, False]

    def test_compactor_never_touches_single_segment_logs(self, tmp_path):
        log = LogDir(tmp_path, segment_records=0)
        log.append(RecordType.META, b'{"x": 1}')
        stats = Compactor().compact(log)
        log.close()
        assert stats == CompactionStats(
            bytes_before=stats.bytes_before, bytes_after=stats.bytes_before
        )
        assert not stats.ran
