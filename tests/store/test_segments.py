"""LogDir unit coverage: rotation thresholds, manifest atomicity,
legacy migration, orphan collection, and backup rotation.

These tests drive the segmented layout directly (no deployment on
top): every manifest-visible state the appender can leave behind must
scan back to exactly the records that were appended, and nothing the
manifest does not name may influence a scan.
"""

import json

import pytest

from repro.store import segments as sg
from repro.store.segments import (
    MANIFEST_NAME,
    LogDir,
    LogDirError,
    segment_name,
)
from repro.store.wal import RecordType, WriteAheadLog


def _fill(log, n, start=0, rtype=RecordType.ENVELOPE):
    for i in range(start, start + n):
        log.append(rtype, b"payload-%04d" % i)


def _payloads(scan):
    return [r.payload for r in scan.records]


def _manifest(root):
    return json.loads((root / MANIFEST_NAME).read_text())


class TestRotation:
    def test_record_threshold_rotates_and_scan_concatenates(self, tmp_path):
        log = LogDir(tmp_path, segment_records=5)
        _fill(log, 12)
        log.close()
        names = _manifest(tmp_path)["segments"]
        assert len(names) == 3  # 5 + 5 + 2
        scan = LogDir.scan_dir(tmp_path)
        assert _payloads(scan) == [b"payload-%04d" % i for i in range(12)]
        assert scan.segments_read == names
        assert [c for _, c in scan.counts] == [5, 5, 2]

    def test_byte_threshold_rotates(self, tmp_path):
        log = LogDir(tmp_path, segment_bytes=200)
        _fill(log, 30)
        log.close()
        assert len(_manifest(tmp_path)["segments"]) > 1
        assert _payloads(LogDir.scan_dir(tmp_path)) == [
            b"payload-%04d" % i for i in range(30)
        ]

    def test_rotate_is_noop_on_empty_active_segment(self, tmp_path):
        log = LogDir(tmp_path, segment_records=3)
        assert not log.rotate()
        _fill(log, 3)  # threshold crossed -> fresh empty active
        seq_before = log.next_seq
        assert not log.rotate()
        assert log.next_seq == seq_before
        log.close()

    def test_sealed_segments_are_never_written_again(self, tmp_path):
        log = LogDir(tmp_path, segment_records=2)
        _fill(log, 2)
        sealed = tmp_path / log.sealed_names()[0]
        before = sealed.read_bytes()
        _fill(log, 5, start=2)
        log.close()
        assert sealed.read_bytes() == before

    def test_reopen_continues_appending_into_active(self, tmp_path):
        log = LogDir(tmp_path, segment_records=4)
        _fill(log, 6)
        log.close()
        log = LogDir(tmp_path, segment_records=4, fresh=False)
        _fill(log, 2, start=6)  # 2 already in active; hits the threshold
        log.close()
        scan = LogDir.scan_dir(tmp_path)
        assert _payloads(scan) == [b"payload-%04d" % i for i in range(8)]
        assert [c for _, c in scan.counts] == [4, 4, 0]

    def test_fresh_open_wipes_prior_layout(self, tmp_path):
        log = LogDir(tmp_path, segment_records=2)
        _fill(log, 5)
        log.close()
        log = LogDir(tmp_path, segment_records=2, fresh=True)
        _fill(log, 1, start=100)
        log.close()
        assert _payloads(LogDir.scan_dir(tmp_path)) == [b"payload-0100"]


class TestManifestDiscipline:
    def test_scan_ignores_files_the_manifest_does_not_name(self, tmp_path):
        log = LogDir(tmp_path, segment_records=3)
        _fill(log, 4)
        log.close()
        # Orphan segment from a hypothetical interrupted rotation, plus
        # spill scratch and a backup dir: all invisible to the scan.
        WriteAheadLog(tmp_path / "wal-000099.seg", fresh=True).close()
        (tmp_path / "r0-g0-1.spill").write_bytes(b"scratch, not a wal")
        scan = LogDir.scan_dir(tmp_path)
        assert _payloads(scan) == [b"payload-%04d" % i for i in range(4)]
        assert "wal-000099.seg" not in scan.segments_read
        sized = scan.disk_bytes
        assert sized == sum(
            (tmp_path / n).stat().st_size for n in scan.segments_read
        )

    def test_open_for_append_collects_orphans_but_not_scratch(self, tmp_path):
        log = LogDir(tmp_path, segment_records=3)
        _fill(log, 4)
        log.close()
        orphan = tmp_path / "wal-000099.seg"
        WriteAheadLog(orphan, fresh=True).close()
        spill = tmp_path / "r0-g0-1.spill"
        spill.write_bytes(b"scratch, not a wal")
        (tmp_path / (MANIFEST_NAME + ".tmp")).write_text("{stale")
        log = LogDir(tmp_path, segment_records=3, fresh=False)
        log.close()
        assert not orphan.exists()
        assert spill.exists()
        assert not (tmp_path / (MANIFEST_NAME + ".tmp")).exists()

    def test_torn_tail_tolerated_only_in_active_segment(self, tmp_path):
        log = LogDir(tmp_path, segment_records=3)
        _fill(log, 7)
        log.close()
        names = _manifest(tmp_path)["segments"]
        # Tear the active tail: scan survives, records intact.
        active = tmp_path / names[-1]
        active.write_bytes(active.read_bytes()[:-3])
        scan = LogDir.scan_dir(tmp_path)
        assert scan.truncated
        assert _payloads(scan) == [b"payload-%04d" % i for i in range(6)]
        # Tear a *sealed* segment: the scan conservatively ends there.
        sealed = tmp_path / names[0]
        sealed.write_bytes(sealed.read_bytes()[:-3])
        scan = LogDir.scan_dir(tmp_path)
        assert scan.truncated and names[0] in scan.reason
        assert len(scan.records) == 2  # first segment's surviving prefix

    def test_missing_manifest_segment_is_an_error_for_append(self, tmp_path):
        log = LogDir(tmp_path, segment_records=2)
        _fill(log, 3)
        log.close()
        (tmp_path / _manifest(tmp_path)["segments"][-1]).unlink()
        with pytest.raises(LogDirError, match="missing segment"):
            LogDir(tmp_path, fresh=False)

    def test_bad_manifest_version_rejected(self, tmp_path):
        LogDir(tmp_path).close()
        obj = _manifest(tmp_path)
        obj["version"] = 99
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(obj))
        with pytest.raises(LogDirError, match="version 99"):
            LogDir.scan_dir(tmp_path)


class TestLegacyMigration:
    def test_single_file_log_migrates_in_place_on_append(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "atom.wal", fresh=True)
        for i in range(5):
            wal.append(RecordType.ENVELOPE, b"legacy-%d" % i)
        wal.close()
        log = LogDir(tmp_path, segment_records=100, fresh=False)
        log.append(RecordType.ENVELOPE, b"post-migration")
        log.close()
        assert not (tmp_path / "atom.wal").exists()
        assert _manifest(tmp_path)["segments"] == [segment_name(1)]
        assert _payloads(LogDir.scan_dir(tmp_path)) == [
            b"legacy-%d" % i for i in range(5)
        ] + [b"post-migration"]

    def test_migration_truncates_a_torn_legacy_tail(self, tmp_path):
        path = tmp_path / "atom.wal"
        wal = WriteAheadLog(path, fresh=True)
        for i in range(3):
            wal.append(RecordType.ENVELOPE, b"legacy-%d" % i)
        wal.close()
        path.write_bytes(path.read_bytes()[:-2])
        log = LogDir(tmp_path, fresh=False)
        log.append(RecordType.ENVELOPE, b"after")
        log.close()
        scan = LogDir.scan_dir(tmp_path)
        assert not scan.truncated
        assert _payloads(scan) == [b"legacy-0", b"legacy-1", b"after"]

    def test_scan_dir_reads_unmigrated_legacy_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "atom.wal", fresh=True)
        wal.append(RecordType.ENVELOPE, b"old-world")
        wal.close()
        scan = LogDir.scan_dir(tmp_path)
        assert _payloads(scan) == [b"old-world"]
        assert scan.segments_read == ["atom.wal"]
        assert LogDir.present(tmp_path)


class TestRotateAside:
    def test_resumable_layout_moves_to_backup_dir(self, tmp_path):
        log = LogDir(tmp_path, segment_records=2)
        _fill(log, 5)
        log.close()  # no CLEAN record -> resumable
        live = {p.name for p in tmp_path.glob("wal-*")}
        backup = LogDir.rotate_aside(tmp_path)
        assert backup == tmp_path / "wal-bak"
        assert {p.name for p in backup.iterdir()} == live | {MANIFEST_NAME}
        assert not LogDir.present(tmp_path)
        # Second backup never clobbers the first.
        log = LogDir(tmp_path, segment_records=2)
        _fill(log, 1)
        log.close()
        assert LogDir.rotate_aside(tmp_path) == tmp_path / "wal-bak1"

    def test_clean_layout_is_not_worth_keeping(self, tmp_path):
        log = LogDir(tmp_path)
        log.append(RecordType.CLEAN, b"{}")
        log.close()
        assert LogDir.rotate_aside(tmp_path) is None
        assert LogDir.present(tmp_path)


class TestFailpointCrashes:
    """Die at every named point inside a rotation; reopening must
    recover every appended record and leave a collectable layout."""

    @pytest.fixture(autouse=True)
    def _clear_failpoint(self):
        yield
        sg.FAILPOINT = None

    class Boom(Exception):
        pass

    def _arm(self, point):
        def hook(name):
            if name == point:
                raise self.Boom(name)

        sg.FAILPOINT = hook

    @pytest.mark.parametrize(
        "point", ["rotate:sealed", "rotate:created", "rotate:swapped"]
    )
    def test_crash_inside_rotation_loses_nothing(self, tmp_path, point):
        log = LogDir(tmp_path, segment_records=3)
        _fill(log, 2)
        self._arm(point)
        with pytest.raises(self.Boom):
            _fill(log, 1, start=2)  # third append crosses the threshold
        sg.FAILPOINT = None
        # The "process" is gone; a reader and a fresh appender both see
        # all three records, whatever side of the swap the crash hit.
        assert _payloads(LogDir.scan_dir(tmp_path)) == [
            b"payload-%04d" % i for i in range(3)
        ]
        log2 = LogDir(tmp_path, segment_records=3, fresh=False)
        _fill(log2, 1, start=3)
        log2.close()
        assert _payloads(LogDir.scan_dir(tmp_path)) == [
            b"payload-%04d" % i for i in range(4)
        ]
        # No orphans survive the reopen.
        named = set(_manifest(tmp_path)["segments"])
        assert {p.name for p in tmp_path.glob("wal-*.seg")} == named
