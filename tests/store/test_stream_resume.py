"""Stream crash-restart: kill a pipelined multi-round stream at
awkward points (mid-intake of a later round, right after a layer
commit, between rounds) and resume it to a fully-ok ``StreamReport``
with every honest message of every round delivered.

The stream engine checkpoints at round boundaries and the coordinator
at layer commits, so a resumed stream keeps the settled rounds'
journaled stats and re-enters the interrupted round at its last
committed layer (intake replayed from the log).
"""

import pytest

from repro.core import DeploymentConfig, StreamConfig, StreamEngine
from repro.store.recovery import RecoveryError, RecoveryManager
from repro.store.store import DurableStore

ROUNDS = 3
USERS = 4
MSG = 8


class SimulatedCrash(Exception):
    """Stands in for the process dying (SIGKILL) mid-run."""


def _config(tmp_path):
    return DeploymentConfig(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="trap",
        iterations=3,
        message_size=MSG,
        crypto_group="TOY",
        nizk_rounds=4,
        state_dir=str(tmp_path),
    )


def _engine(tmp_path, rounds=ROUNDS):
    return StreamEngine(
        _config(tmp_path),
        stream=StreamConfig(
            rounds=rounds, users_per_round=USERS, seed=b"resume-test"
        ),
    )


def _default_message(r, i):
    return f"r{r}u{i}".encode()[:MSG]


def _assert_all_delivered(report, rounds=ROUNDS):
    assert report.ok
    assert len(report.rounds) == rounds
    for r in range(rounds):
        for i in range(USERS):
            assert _default_message(r, i) in report.rounds[r].messages, (
                f"round {r} lost message of user {i}"
            )


@pytest.mark.parametrize("crash_round", [1, 2])
def test_crash_during_pipelined_intake_and_resume(tmp_path, crash_round):
    """The crash fires while round ``crash_round``'s intake is being
    interleaved into the previous round's mixing — the messiest point:
    two rounds are in flight at once."""

    def crashing_fn(r, i):
        if (r, i) == (crash_round, 0):
            raise SimulatedCrash
        return _default_message(r, i)

    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=crashing_fn)

    manager = RecoveryManager(tmp_path)
    assert manager.is_stream and manager.needs_recovery()
    report = manager.resume_stream()
    _assert_all_delivered(report)


def test_crash_after_layer_commit_and_resume(tmp_path, monkeypatch):
    """Die immediately after round 1's second layer commit hits the
    log; the resumed round must re-enter mixing at layer 2."""
    original = DurableStore.layer_commit

    def bomb(self, round_id, layer, rng, audits, holdings):
        original(self, round_id, layer, rng, audits, holdings)
        if round_id == 1 and layer == 2:
            raise SimulatedCrash

    monkeypatch.setattr(DurableStore, "layer_commit", bomb)
    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run()
    monkeypatch.setattr(DurableStore, "layer_commit", original)

    report = RecoveryManager(tmp_path).resume_stream()
    _assert_all_delivered(report)
    # Round 0 settled pre-crash: its journaled stats came back verbatim.
    assert report.rounds[0].ok and len(report.rounds[0].messages) == USERS


def test_crash_between_rounds_and_resume(tmp_path, monkeypatch):
    """Die right after round 0 settles (its ROUND_DONE is the last
    record): resume re-enters at round 1, whose intake was already
    drained during round 0's mix window."""
    original = DurableStore.round_settled

    def bomb(self, stats, rng):
        original(self, stats, rng)
        if stats.round_id == 0:
            raise SimulatedCrash

    monkeypatch.setattr(DurableStore, "round_settled", bomb)
    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run()
    monkeypatch.setattr(DurableStore, "round_settled", original)

    report = RecoveryManager(tmp_path).resume_stream()
    _assert_all_delivered(report)


def test_crash_during_round_zero_intake_redoes_the_round(tmp_path):
    """Before any mixing there is nothing to checkpoint: resume redoes
    round 0 wholesale (fresh setup record supersedes the stale one)."""

    def crashing_fn(r, i):
        if (r, i) == (0, 2):
            raise SimulatedCrash
        return _default_message(r, i)

    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=crashing_fn)

    report = RecoveryManager(tmp_path).resume_stream()
    _assert_all_delivered(report)


def test_double_crash_double_resume(tmp_path, monkeypatch):
    """Recovery is re-crashable: the resumed run dies too, and the
    second resume still completes (latest setup/checkpoint records
    win over the superseded first-attempt ones)."""

    def crash1(r, i):
        if (r, i) == (1, 0):
            raise SimulatedCrash
        return _default_message(r, i)

    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=crash1)

    original = DurableStore.layer_commit

    def bomb(self, round_id, layer, rng, audits, holdings):
        original(self, round_id, layer, rng, audits, holdings)
        if round_id == 2 and layer == 1:
            raise SimulatedCrash

    monkeypatch.setattr(DurableStore, "layer_commit", bomb)
    with pytest.raises(SimulatedCrash):
        RecoveryManager(tmp_path).resume_stream()
    monkeypatch.setattr(DurableStore, "layer_commit", original)

    report = RecoveryManager(tmp_path).resume_stream()
    _assert_all_delivered(report)


def test_clean_stream_exit_never_replays(tmp_path):
    """Satellite: the context manager owns the state-dir lifecycle —
    a clean with-block exit writes the shutdown marker, so the next
    start finds nothing to replay."""
    with _engine(tmp_path, rounds=2) as engine:
        report = engine.run()
    assert report.ok

    manager = RecoveryManager(tmp_path)
    assert manager.clean_shutdown
    assert not manager.needs_recovery()
    with pytest.raises(RecoveryError, match="clean shutdown"):
        manager.resume_stream()


def test_completed_stream_without_marker_finalizes(tmp_path):
    """All rounds settled but no clean marker (killed in the window
    between the last fsynced ROUND_DONE and teardown): resume rebuilds
    the finished report from the journaled stats and writes the
    missing marker instead of refusing."""
    engine = _engine(tmp_path, rounds=2)
    report = engine.run()
    assert report.ok  # no with-block: no clean marker written

    finalized = RecoveryManager(tmp_path).resume_stream()
    _assert_all_delivered(finalized, rounds=2)
    # The marker landed: the next start sees a clean dir.
    assert RecoveryManager(tmp_path).clean_shutdown


def test_resume_keeps_legitimately_duplicate_honest_messages(tmp_path):
    """Two users sending the identical (message, gid) pair are two
    distinct submissions; the rebuilt honest registry (feeding §4.6
    abort retries) must keep both, not value-dedup them."""

    def duplicating_fn(r, i):
        if (r, i) == (2, 0):
            raise SimulatedCrash
        return b"same-msg"[:MSG] if r == 1 else _default_message(r, i)

    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=duplicating_fn)

    manager = RecoveryManager(tmp_path)
    assert manager._honest[1] == [(b"same-msg"[:MSG], i % 2) for i in range(USERS)]
    report = manager.resume_stream(message_fn=lambda r, i: (
        b"same-msg"[:MSG] if r == 1 else _default_message(r, i)
    ))
    assert report.ok
    assert report.rounds[1].messages.count(b"same-msg"[:MSG]) == USERS


def test_rerunning_a_crashed_state_dir_rotates_the_log(tmp_path):
    """Re-invoking run-stream with a crashed run's --state-dir (the
    natural retry instead of `resume`) must not destroy the resumable
    log: segments + manifest move aside into wal-bak/."""
    from repro.store.segments import LogDir

    def _layout_bytes(root):
        return {
            p.name: p.read_bytes()
            for p in root.iterdir()
            if p.is_file() and (p.name.endswith(".seg") or p.name == "wal.manifest")
        }

    def crashing_fn(r, i):
        if (r, i) == (1, 0):
            raise SimulatedCrash
        return _default_message(r, i)

    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=crashing_fn)
    crashed = _layout_bytes(tmp_path)
    assert crashed  # the crashed run left a resumable segmented log

    with _engine(tmp_path, rounds=2) as engine2:
        report = engine2.run()
    assert report.ok
    assert _layout_bytes(tmp_path / "wal-bak") == crashed
    # ... and a clean run's dir is simply truncated on reuse (no backup churn).
    with _engine(tmp_path, rounds=2) as engine3:
        assert engine3.run().ok
    assert _layout_bytes(tmp_path / "wal-bak") == crashed

    # A second crash + rerun must not clobber the first backup.
    engine4 = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine4.run(message_fn=crashing_fn)
    second_crash = _layout_bytes(tmp_path)
    with _engine(tmp_path, rounds=2) as engine5:
        assert engine5.run().ok
    assert _layout_bytes(tmp_path / "wal-bak") == crashed
    assert _layout_bytes(tmp_path / "wal-bak1") == second_crash
    # backups are invisible to the live layout's reader
    assert set(LogDir.scan_dir(tmp_path).segments_read) == set(
        n for n in _layout_bytes(tmp_path) if n.endswith(".seg")
    )


def test_resumed_report_preserves_settled_round_stats(tmp_path):
    """Settled rounds come back with their journaled outcome fields
    (ok, messages, attempts) — timings included, from the log."""

    def crashing_fn(r, i):
        if (r, i) == (2, 0):
            raise SimulatedCrash
        return _default_message(r, i)

    engine = _engine(tmp_path)
    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=crashing_fn)

    report = RecoveryManager(tmp_path).resume_stream()
    first = report.rounds[0]
    assert first.ok and first.attempts == 1
    assert sorted(first.messages) == sorted(
        _default_message(0, i) for i in range(USERS)
    )
    assert first.intake_s > 0 and first.mix_wall_s > 0
