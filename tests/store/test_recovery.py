"""Crash-restart matrix: kill after *every* layer commit, resume, and
require the resumed ``RoundResult`` byte-identical to the uninterrupted
run — on both transports.

Reuses the cross-transport parity harness (seeded setup, client,
padding, canonical result bytes): recovery is held to the same standard
the transports are — it must not influence the crypto at all.
"""

import pytest

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.crypto.groups import DeterministicRng, get_group
from repro.store.recovery import RecoveryError, RecoveryManager
from tests.net.test_transport_parity import _canonical

ITERATIONS = 3


def _config(tmp_path=None, transport="inproc", variant="trap", **overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant=variant,
        iterations=ITERATIONS,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
        transport=transport,
        state_dir=str(tmp_path) if tmp_path is not None else None,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def _drive_round(config, stop_after_layers=None):
    """The parity harness's seeded round; ``stop_after_layers`` commits
    that many layers and then abandons the process state (no context
    manager, no clean marker — the closest an in-process test gets to a
    kill -9, with the log's torn-tail tolerance covered separately)."""
    dep = AtomDeployment(config)
    rng = DeterministicRng(b"parity-setup")
    rnd = dep.start_round(0, rng=rng)
    client = Client(dep.group, rng)
    for i in range(4):
        message = b"store-%d" % i
        if config.variant == "trap":
            dep.submit_trap(rnd, message, i % 2, client)
        else:
            dep.submit_plain(rnd, message, i % 2, client)
    dep.pad_round(rnd, rng)
    mix_rng = DeterministicRng(b"parity-round")
    if stop_after_layers is None:
        result = dep.run_round(rnd, mix_rng)
        dep.close()
        return result
    run = dep.begin_mixing(rnd, mix_rng)
    for _ in range(stop_after_layers):
        run.run_layer()
    dep.close()  # flush the log; the "crash" is the missing clean marker
    return None


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
@pytest.mark.parametrize("stop_after", list(range(1, ITERATIONS + 1)))
def test_resume_is_byte_identical_after_every_layer_commit(
    tmp_path, transport, stop_after
):
    """stop_after == ITERATIONS crashes between the last commit and the
    exit protocol — recovery must replay that too."""
    group = get_group("TOY")
    baseline = _drive_round(_config(transport=transport))
    _drive_round(
        _config(tmp_path, transport=transport), stop_after_layers=stop_after
    )

    manager = RecoveryManager(tmp_path)
    assert manager.needs_recovery() and not manager.is_stream
    resumed = manager.complete_round()

    assert resumed.ok
    assert _canonical(group, resumed) == _canonical(group, baseline)


@pytest.mark.parametrize("stop_after", [1, ITERATIONS])
def test_resume_spilled_round_is_byte_identical(tmp_path, stop_after):
    """Spill-restore equivalence: a round whose intake spilled to disk
    crashes mid-mix and resumes byte-identical to an unspilled,
    uncrashed baseline.  Spill segments are scratch — recovery replays
    intake from the deployment WAL's ENVELOPE records, so losing every
    .spill file with the 'process' is the expected case, not an edge."""
    group = get_group("TOY")
    baseline = _drive_round(_config())
    _drive_round(
        _config(tmp_path, spill_threshold=3), stop_after_layers=stop_after
    )
    # A real kill -9 leaves torn spill segments behind; plant one and
    # require recovery to ignore it (it must only read the round WAL).
    spill_dir = tmp_path / "spill"
    spill_dir.mkdir(exist_ok=True)
    (spill_dir / "r0-g0-99.spill").write_bytes(b"torn garbage, not a WAL")

    manager = RecoveryManager(tmp_path)
    assert manager.needs_recovery()
    resumed = manager.complete_round()
    assert resumed.ok
    assert _canonical(group, resumed) == _canonical(group, baseline)


def test_resume_ignores_scratch_and_orphan_segments(tmp_path):
    """The spilled-round garbage contract, extended to segmented
    layouts: torn ``.spill`` scratch (in the spill dir *and* strewn at
    the top level) plus an orphan ``wal-*.seg`` from a rotation that
    died before its manifest swap must not influence resume — readers
    follow the manifest, never the directory glob — and stay out of
    the retention accounting."""
    from repro.store.segments import LogDir
    from repro.store.wal import WriteAheadLog

    group = get_group("TOY")
    baseline = _drive_round(_config())
    _drive_round(
        _config(tmp_path, spill_threshold=3, wal_segment_records=4),
        stop_after_layers=2,
    )
    spill_dir = tmp_path / "spill"
    spill_dir.mkdir(exist_ok=True)
    (spill_dir / "r0-g0-99.spill").write_bytes(b"torn garbage, not a WAL")
    (tmp_path / "r0-g0-1.spill").write_bytes(b"more torn garbage")
    orphan = tmp_path / "wal-000099.seg"
    wal = WriteAheadLog(orphan, fresh=True)
    wal.append(1, b'{"alien": "records"}')
    wal.close()

    scan = LogDir.scan_dir(tmp_path)
    assert len(scan.segments_read) > 1  # the rotation threshold fired
    assert "wal-000099.seg" not in scan.segments_read
    assert scan.disk_bytes == sum(
        (tmp_path / name).stat().st_size for name in scan.segments_read
    )

    manager = RecoveryManager(tmp_path)
    assert manager.needs_recovery()
    assert manager.segments_read == scan.segments_read
    resumed = manager.complete_round()
    assert resumed.ok
    assert _canonical(group, resumed) == _canonical(group, baseline)
    # The scratch files survive untouched; resume only consumed the
    # manifest's segments.
    assert (spill_dir / "r0-g0-99.spill").exists()
    assert (tmp_path / "r0-g0-1.spill").exists()


@pytest.mark.parametrize("variant", ["basic", "nizk"])
def test_resume_other_variants(tmp_path, variant):
    group = get_group("TOY")
    baseline = _drive_round(_config(variant=variant))
    _drive_round(_config(tmp_path, variant=variant), stop_after_layers=2)
    resumed = RecoveryManager(tmp_path).complete_round()
    assert _canonical(group, resumed) == _canonical(group, baseline)


def test_resume_preserves_trap_and_audit_outcomes(tmp_path):
    """The resumed round's trap bookkeeping equals the uninterrupted
    run's — same traps checked, same per-layer audits (already inside
    the canonical bytes, asserted explicitly here for the §4.4 story)."""
    baseline = _drive_round(_config())
    _drive_round(_config(tmp_path), stop_after_layers=1)
    resumed = RecoveryManager(tmp_path).complete_round()
    assert resumed.num_traps_checked == baseline.num_traps_checked > 0
    assert len(resumed.audits) == len(baseline.audits)
    assert [a.tamperings for a in resumed.audits] == [
        a.tamperings for a in baseline.audits
    ]
    assert resumed.bytes_sent_total == baseline.bytes_sent_total


def test_recovery_resumes_blame_registry(tmp_path):
    """Replayed intake rebuilds ``rnd.trap_submissions`` in original
    user-id order, so §4.6 blame still works after a restart."""
    config = _config(tmp_path)
    dep = AtomDeployment(config)
    rng = DeterministicRng(b"parity-setup")
    rnd = dep.start_round(0, rng=rng)
    client = Client(dep.group, rng)
    for i in range(4):
        dep.submit_trap(rnd, b"blame-%d" % i, i % 2, client)
    dep.pad_round(rnd, rng)
    original = {
        uid: (gid, sub.trap_commitment)
        for uid, (gid, sub) in rnd.trap_submissions.items()
    }
    run = dep.begin_mixing(rnd, DeterministicRng(b"parity-round"))
    run.run_layer()
    dep.close()

    dep2, rnd2, _ = RecoveryManager(tmp_path).resume_round()
    rebuilt = {
        uid: (gid, sub.trap_commitment)
        for uid, (gid, sub) in rnd2.trap_submissions.items()
    }
    assert rebuilt == original
    dep2.store.close()
    dep2.close()


def test_clean_shutdown_never_replays(tmp_path):
    """A with-block exit leaves the shutdown marker; resume refuses."""
    config = _config(tmp_path)
    with AtomDeployment(config) as dep:
        rng = DeterministicRng(b"parity-setup")
        rnd = dep.start_round(0, rng=rng)
        client = Client(dep.group, rng)
        for i in range(4):
            dep.submit_trap(rnd, b"clean-%d" % i, i % 2, client)
        dep.pad_round(rnd, rng)
        result = dep.run_round(rnd, DeterministicRng(b"parity-round"))
    assert result.ok

    manager = RecoveryManager(tmp_path)
    assert manager.clean_shutdown and not manager.needs_recovery()
    with pytest.raises(RecoveryError, match="clean shutdown"):
        manager.complete_round()


def test_unseeded_round_is_rejected_with_clear_error(tmp_path):
    """Without a DeterministicRng the group keys cannot be replayed;
    recovery must say so instead of producing garbage."""
    config = _config(tmp_path)
    dep = AtomDeployment(config)
    rnd = dep.start_round(0)  # system randomness
    client = Client(dep.group)
    for i in range(4):
        dep.submit_trap(rnd, b"x%d" % i, i % 2, client)
    dep.pad_round(rnd)
    run = dep.begin_mixing(rnd)
    run.run_layer()
    dep.close()

    with pytest.raises(RecoveryError, match="DeterministicRng"):
        RecoveryManager(tmp_path).resume_round()


def test_finished_round_finalizes_instead_of_resuming(tmp_path):
    """Completed round, crash before the clean marker: resume_round
    refuses (nothing to replay), finalize_round reports the outcome
    and writes the missing marker."""
    _drive_round(_config(tmp_path))  # runs to completion (no crash)
    manager = RecoveryManager(tmp_path)
    with pytest.raises(RecoveryError, match="exit protocol"):
        manager.resume_round()
    assert manager.finalize_round() == (0, True)
    assert RecoveryManager(tmp_path).clean_shutdown


def test_missing_state_dir_raises(tmp_path):
    with pytest.raises(RecoveryError, match="no write-ahead log"):
        RecoveryManager(tmp_path / "nope")


def test_checkpoint_cadence_re_mixes_missing_layers(tmp_path):
    """checkpoint_every=2 snapshots only even layers; a crash after an
    odd commit resumes from the last snapshot and re-mixes the gap —
    still byte-identical, just O(gap) extra work."""
    group = get_group("TOY")
    baseline = _drive_round(_config())
    _drive_round(
        _config(tmp_path, checkpoint_every=2), stop_after_layers=3
    )
    manager = RecoveryManager(tmp_path)
    resumed = manager.complete_round()
    assert _canonical(group, resumed) == _canonical(group, baseline)
