"""Checkpoint-shipping acceptance: a bundle built from a crashed state
dir installs into an empty dir that resumes byte-identically to the
original — after reading exactly one segment (``segments_read`` is the
O(state)-restore proof: there is no pre-safe-point history on disk to
read).
"""

import shutil

import pytest

from repro.core import DeploymentConfig, StreamConfig, StreamEngine
from repro.store.recovery import RecoveryManager
from repro.store.segments import LogDir
from repro.store.ship import Bundle, BundleError, CheckpointShipper
from repro.store.wal import RecordType, WalRecord

ROUNDS = 3
USERS = 4
MSG = 8


class SimulatedCrash(Exception):
    pass


def _crash_run(state_dir, crash_round=2):
    config = DeploymentConfig(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="trap",
        iterations=3,
        message_size=MSG,
        crypto_group="TOY",
        nizk_rounds=4,
        state_dir=str(state_dir),
        wal_segment_records=6,
        wal_retain_segments=0,
    )
    engine = StreamEngine(
        config,
        stream=StreamConfig(
            rounds=ROUNDS, users_per_round=USERS, seed=b"ship-test"
        ),
    )

    def crashing_fn(r, i):
        if (r, i) == (crash_round, 0):
            raise SimulatedCrash
        return f"r{r}u{i}".encode()[:MSG]

    with pytest.raises(SimulatedCrash):
        engine.run(message_fn=crashing_fn)


def _round_bytes(report):
    return [(r.round_id, r.ok, r.messages) for r in report.rounds]


class TestBundleCodec:
    def _bundle(self):
        return Bundle(
            kind="deployment",
            records=[
                WalRecord(RecordType.META, b'{"x": 1}'),
                WalRecord(RecordType.ENVELOPE, b"\x00" * 40),
                WalRecord(199, b"unknown types ship too"),
            ],
            source="/some/dir",
            disk_bytes=1234,
        )

    def test_roundtrip(self):
        bundle = self._bundle()
        back = Bundle.from_bytes(bundle.to_bytes())
        assert back.kind == bundle.kind
        assert back.source == bundle.source
        assert back.disk_bytes == bundle.disk_bytes
        assert [(r.type, r.payload) for r in back.records] == [
            (r.type, r.payload) for r in bundle.records
        ]

    def test_bad_magic_rejected(self):
        with pytest.raises(BundleError, match="magic"):
            Bundle.from_bytes(b"NOPE" + self._bundle().to_bytes()[4:])

    def test_bad_version_rejected(self):
        raw = bytearray(self._bundle().to_bytes())
        raw[4] = 99
        with pytest.raises(BundleError, match="version 99"):
            Bundle.from_bytes(bytes(raw))

    def test_torn_image_rejected(self):
        raw = self._bundle().to_bytes()
        with pytest.raises(BundleError):
            Bundle.from_bytes(raw[:-5])

    def test_flipped_image_byte_rejected(self):
        raw = bytearray(self._bundle().to_bytes())
        raw[-1] ^= 0xFF  # corrupt the last record's CRC
        with pytest.raises(BundleError):
            Bundle.from_bytes(bytes(raw))


class TestShipAndRestore:
    def test_installed_dir_resumes_identically_reading_one_segment(
        self, tmp_path
    ):
        """The O(history) -> O(state) acceptance, end to end."""
        source = tmp_path / "source"
        _crash_run(source)
        multi = len(LogDir.scan_dir(source).segments_read)
        assert multi > 1  # the crashed dir really is a long history

        shipper = CheckpointShipper()
        bundle = shipper.build(source)
        assert 0 < len(bundle.records) < len(LogDir.scan_dir(source).records)

        target = tmp_path / "target"
        installed = shipper.install(target, bundle.to_bytes())
        assert installed.kind == "deployment"

        baseline = RecoveryManager(source).resume_stream()
        manager = RecoveryManager(target)
        # The instrumented proof: the restore read the single shipped
        # segment — there is no pre-safe-point history left to read.
        assert manager.segments_read == ["wal-000001.seg"]
        resumed = manager.resume_stream()
        assert resumed.ok
        assert _round_bytes(resumed) == _round_bytes(baseline)

    def test_build_does_not_modify_the_source(self, tmp_path):
        source = tmp_path / "source"
        _crash_run(source)
        before = {
            p.name: p.read_bytes() for p in source.iterdir() if p.is_file()
        }
        CheckpointShipper().build(source)
        after = {
            p.name: p.read_bytes() for p in source.iterdir() if p.is_file()
        }
        assert after == before

    def test_install_refuses_an_occupied_dir(self, tmp_path):
        source = tmp_path / "source"
        _crash_run(source)
        shipper = CheckpointShipper()
        raw = shipper.build_bytes(source)
        occupied = tmp_path / "occupied"
        shutil.copytree(source, occupied)
        with pytest.raises(BundleError, match="refusing to overwrite"):
            shipper.install(occupied, raw)

    def test_kind_mismatch_refuses(self, tmp_path):
        source = tmp_path / "source"
        _crash_run(source)
        raw = CheckpointShipper().build_bytes(source)
        from repro.fleet.server import fleet_shipper

        with pytest.raises(BundleError, match="kind"):
            fleet_shipper().install(tmp_path / "target", raw)

    def test_build_requires_a_log(self, tmp_path):
        with pytest.raises(BundleError, match="no log"):
            CheckpointShipper().build(tmp_path)
