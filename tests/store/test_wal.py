"""WAL framing: round-trips, reopen, and tail-corruption tolerance.

Hypothesis drives arbitrary record sequences (including real envelope
bytes) through append -> reopen -> scan, and then damages the tail —
truncation at every possible offset, single bit flips — asserting the
damaged record is detected and dropped while every earlier record
still replays.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.groups import get_group
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope, wrap
from repro.store.wal import (
    MAGIC,
    RecordType,
    WalError,
    WriteAheadLog,
)

record_st = st.tuples(
    st.integers(min_value=1, max_value=200),
    st.binary(min_size=0, max_size=120),
)


def _write(path, records, fsync_every=8, fresh=True):
    wal = WriteAheadLog(path, fsync_every=fsync_every, fresh=fresh)
    for rtype, payload in records:
        wal.append(rtype, payload)
    wal.close()


@given(records=st.lists(record_st, max_size=20))
@settings(max_examples=50, deadline=None)
def test_arbitrary_records_survive_reopen(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("wal") / "atom.wal"
    _write(path, records)
    scan = WriteAheadLog.read(path)
    assert not scan.truncated
    assert [(r.type, r.payload) for r in scan.records] == records


@given(
    first=st.lists(record_st, max_size=10),
    second=st.lists(record_st, max_size=10),
)
@settings(max_examples=25, deadline=None)
def test_append_mode_preserves_existing_records(tmp_path_factory, first, second):
    path = tmp_path_factory.mktemp("wal") / "atom.wal"
    _write(path, first)
    _write(path, second, fresh=False)
    scan = WriteAheadLog.read(path)
    assert not scan.truncated
    assert [(r.type, r.payload) for r in scan.records] == first + second


def _envelopes(group):
    return [
        wrap(ev.SubmitErr("nope"), 0, 1, -1),
        wrap(ev.Fault(code="stalled", gid=1, alive=1, needed=2), 0, 1, -1),
        wrap(ev.CommitLayer(layer=3), 7, -1, 0),
        wrap(ev.KeyRequest(expected_groups=2), 2, -1, -2),
    ]


def test_envelope_records_round_trip(tmp_path):
    """Real wire envelopes — the WAL's primary payload — survive a
    close/reopen cycle byte for byte and decode back."""
    group = get_group("TOY")
    path = tmp_path / "atom.wal"
    originals = _envelopes(group)
    _write(path, [(RecordType.ENVELOPE, e.to_bytes(group)) for e in originals])
    scan = WriteAheadLog.read(path)
    assert not scan.truncated
    decoded = [Envelope.from_bytes(r.payload, group) for r in scan.records]
    assert [(d.kind, d.round_id, d.payload) for d in decoded] == [
        (o.kind, o.round_id, o.payload) for o in originals
    ]


@given(
    records=st.lists(record_st, min_size=2, max_size=8),
    cut=st.integers(min_value=1, max_value=1_000_000),
)
@settings(max_examples=50, deadline=None)
def test_torn_tail_detected_and_dropped(tmp_path_factory, records, cut):
    """Truncating anywhere inside the final record loses exactly that
    record; every earlier one still replays."""
    path = tmp_path_factory.mktemp("wal") / "atom.wal"
    _write(path, records[:-1])
    intact = path.stat().st_size
    _write(path, records[-1:], fresh=False)
    full = path.stat().st_size
    # Cut strictly inside the final frame (cutting exactly at the
    # record boundary is a clean shorter log, not a torn one).
    cut_at = intact + 1 + cut % (full - intact - 1)
    path.write_bytes(path.read_bytes()[:cut_at])

    scan = WriteAheadLog.read(path)
    assert scan.truncated
    assert [(r.type, r.payload) for r in scan.records] == records[:-1]


@given(
    records=st.lists(record_st, min_size=2, max_size=8),
    bit=st.integers(min_value=0, max_value=1_000_000),
)
@settings(max_examples=50, deadline=None)
def test_bit_flip_in_tail_record_detected(tmp_path_factory, records, bit):
    path = tmp_path_factory.mktemp("wal") / "atom.wal"
    _write(path, records[:-1])
    intact = path.stat().st_size
    _write(path, records[-1:], fresh=False)
    raw = bytearray(path.read_bytes())
    span = len(raw) - intact
    pos = intact + (bit // 8) % span
    raw[pos] ^= 1 << (bit % 8)
    path.write_bytes(bytes(raw))

    scan = WriteAheadLog.read(path)
    # Either the CRC catches it, or the flipped length field makes the
    # frame overrun the file — both must drop the tail record.
    assert scan.truncated
    assert [(r.type, r.payload) for r in scan.records] == records[:-1]


def test_mid_file_corruption_drops_the_rest(tmp_path):
    """A damaged record mid-log conservatively ends the scan there:
    replay must never skip a hole, because later records can depend on
    earlier ones."""
    path = tmp_path / "atom.wal"
    records = [(1, b"a" * 10), (2, b"b" * 10), (3, b"c" * 10)]
    _write(path, records[:1])
    first_end = path.stat().st_size
    _write(path, records[1:], fresh=False)
    raw = bytearray(path.read_bytes())
    raw[first_end + 7] ^= 0x40  # inside the second record
    path.write_bytes(bytes(raw))

    scan = WriteAheadLog.read(path)
    assert scan.truncated and "crc" in scan.reason
    assert [(r.type, r.payload) for r in scan.records] == records[:1]


@given(
    records=st.lists(record_st, min_size=2, max_size=6),
    after=st.lists(record_st, min_size=1, max_size=4),
    cut=st.integers(min_value=1, max_value=1_000_000),
)
@settings(max_examples=25, deadline=None)
def test_reopen_after_torn_tail_truncates_then_appends(
    tmp_path_factory, records, after, cut
):
    """Appending to a torn log must first truncate the damage back to
    the intact prefix — otherwise every post-resume record lands
    behind unreadable garbage and is lost to the next scan."""
    path = tmp_path_factory.mktemp("wal") / "atom.wal"
    _write(path, records[:-1])
    intact = path.stat().st_size
    _write(path, records[-1:], fresh=False)
    full = path.stat().st_size
    cut_at = intact + 1 + cut % (full - intact - 1)
    path.write_bytes(path.read_bytes()[:cut_at])

    _write(path, after, fresh=False)
    scan = WriteAheadLog.read(path)
    assert not scan.truncated
    assert [(r.type, r.payload) for r in scan.records] == records[:-1] + after


def test_not_a_wal_raises(tmp_path):
    path = tmp_path / "atom.wal"
    path.write_bytes(b"definitely not a log")
    with pytest.raises(WalError):
        WriteAheadLog.read(path)
    path.write_bytes(MAGIC + bytes([99]))  # future version
    with pytest.raises(WalError):
        WriteAheadLog.read(path)


@pytest.mark.parametrize("fsync_every", [0, 1, 3])
def test_fsync_batching_knob(tmp_path, fsync_every):
    """Every batching setting yields the same on-disk records (the
    knob trades sync frequency, never content)."""
    path = tmp_path / "atom.wal"
    records = [(i, bytes([i]) * i) for i in range(1, 8)]
    _write(path, records, fsync_every=fsync_every)
    scan = WriteAheadLog.read(path)
    assert not scan.truncated
    assert [(r.type, r.payload) for r in scan.records] == records


def test_clean_shutdown_marker(tmp_path):
    path = tmp_path / "atom.wal"
    _write(path, [(RecordType.META, b"{}"), (RecordType.CLEAN, b"")])
    assert WriteAheadLog.read(path).clean_shutdown
    _write(path, [(RecordType.ROUND_SETUP, b"{}")], fresh=False)
    assert not WriteAheadLog.read(path).clean_shutdown
