"""SpillableHoldings: bounded-memory intake container semantics."""

import gc

import pytest

from repro.core.batch import CiphertextBatch
from repro.crypto.elgamal import AtomElGamal
from repro.crypto.groups import DeterministicRng, get_group
from repro.crypto.vector import encrypt_vector
from repro.store.spill import SpillableHoldings
from repro.store.wal import RecordType, WriteAheadLog


@pytest.fixture()
def group():
    return get_group("TOY")


def _vectors(group, n, seed=b"spill"):
    scheme = AtomElGamal(group)
    rng = DeterministicRng(seed)
    key = scheme.keygen(rng).public
    return [
        encrypt_vector(scheme, key, b"payload-%02d" % i, rng)[0]
        for i in range(n)
    ]


class TestSpilling:
    def test_no_spill_below_threshold(self, group, tmp_path):
        holdings = SpillableHoldings(group, 10, tmp_path)
        for vec in _vectors(group, 9):
            holdings.append(vec)
        assert len(holdings) == 9
        assert holdings.spilled == 0
        assert holdings.path is None  # no file was ever created

    def test_spills_every_threshold(self, group, tmp_path):
        holdings = SpillableHoldings(group, 4, tmp_path)
        for vec in _vectors(group, 11):
            holdings.append(vec)
        assert len(holdings) == 11
        assert holdings.spilled == 8
        assert holdings.segments == 2
        assert holdings.path.exists()

    def test_iteration_preserves_append_order(self, group, tmp_path):
        vectors = _vectors(group, 10)
        holdings = SpillableHoldings(group, 3, tmp_path)
        for vec in vectors:
            holdings.append(vec)
        assert list(holdings) == vectors
        assert holdings == vectors  # __eq__ vs list

    def test_as_batch_equals_memory_batch(self, group, tmp_path):
        vectors = _vectors(group, 7)
        holdings = SpillableHoldings(group, 2, tmp_path)
        holdings.extend(vectors)
        assert holdings.as_batch() == CiphertextBatch.from_vectors(group, vectors)

    def test_extend_from_batch_splices(self, group, tmp_path):
        vectors = _vectors(group, 9)
        batch = CiphertextBatch.from_vectors(group, vectors)
        holdings = SpillableHoldings(group, 4, tmp_path)
        holdings.extend(batch)
        assert holdings.spilled == 8
        assert holdings == batch

    def test_extend_from_spillable(self, group, tmp_path):
        vectors = _vectors(group, 6)
        src = SpillableHoldings(group, 2, tmp_path, tag="src")
        src.extend(vectors)
        dst = SpillableHoldings(group, 3, tmp_path, tag="dst")
        dst.extend(src)
        assert dst == vectors

    def test_segments_survive_a_reread(self, group, tmp_path):
        """The scratch log is a real WAL: segments read back intact and
        typed SPILL_SEGMENT."""
        holdings = SpillableHoldings(group, 2, tmp_path)
        holdings.extend(_vectors(group, 6))
        records = list(WriteAheadLog.iter_records(holdings.path))
        assert [r.type for r in records] == [RecordType.SPILL_SEGMENT] * 3
        total = sum(
            len(CiphertextBatch.from_bytes(group, r.payload)) for r in records
        )
        assert total == 6


class TestLifecycle:
    def test_release_unlinks_scratch_file(self, group, tmp_path):
        holdings = SpillableHoldings(group, 2, tmp_path)
        holdings.extend(_vectors(group, 5))
        path = holdings.path
        assert path.exists()
        holdings.release()
        assert not path.exists()
        assert len(holdings) == 0
        holdings.release()  # idempotent

    def test_gc_unlinks_scratch_file(self, group, tmp_path):
        holdings = SpillableHoldings(group, 2, tmp_path)
        holdings.extend(_vectors(group, 5))
        path = holdings.path
        del holdings
        gc.collect()
        assert not path.exists()

    def test_recreated_containers_get_fresh_files(self, group, tmp_path):
        """Per-layer container recreation must never reuse a path — a
        late finalizer would otherwise unlink the successor's live
        file."""
        first = SpillableHoldings(group, 2, tmp_path, tag="g0")
        first.extend(_vectors(group, 4))
        second = SpillableHoldings(group, 2, tmp_path, tag="g0")
        second.extend(_vectors(group, 4, seed=b"other"))
        assert first.path != second.path
        first.release()
        assert second.path.exists()
        assert len(second) == 4
