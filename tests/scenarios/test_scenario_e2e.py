"""End-to-end scenario runs: the seeded black-friday-tamper-churn
acceptance scenario (byte-identical reruns, healed delivery on
inproc + tcp), runner delivery through the real apps, the sim
reconciliation, and the CLI surface."""

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    ConservationError,
    ScenarioRunner,
    ScenarioSpec,
    load_scenario,
)
from repro.sim import reconcile_with_traffic

SEED = "atom-rpc"


@pytest.fixture(scope="module")
def black_friday():
    runner = ScenarioRunner(load_scenario("black-friday-tamper-churn"), seed=SEED)
    return runner, runner.run()


class TestBlackFridayAcceptance:
    def test_completes_ok(self, black_friday):
        _, metrics = black_friday
        assert metrics.ok

    def test_conservation_reconciles(self, black_friday):
        _, metrics = black_friday
        metrics.check_conservation()  # raises on imbalance
        assert metrics.total_arrivals == (
            metrics.total_delivered
            + metrics.total_dropped
            + metrics.total_trapped
        )

    def test_tamper_caught_and_healed(self, black_friday):
        _, metrics = black_friday
        assert metrics.total_trap_catches >= 1
        # healed delivery: the caught round retried after blame-rekey
        # and every arrival still came out
        assert metrics.total_delivered == metrics.total_arrivals
        caught = [r for r in metrics.rounds if r.trap_catches]
        assert all(r.retries >= 1 and r.ok for r in caught)

    def test_churned_users_reabsorbed(self, black_friday):
        _, metrics = black_friday
        assert metrics.total_churned > 0
        assert metrics.total_rejoined > 0

    def test_rerun_is_byte_identical(self, black_friday):
        _, metrics = black_friday
        again = ScenarioRunner(
            load_scenario("black-friday-tamper-churn"), seed=SEED
        ).run()
        assert again.digest == metrics.digest
        assert [r.deterministic_fields() for r in again.rounds] == [
            r.deterministic_fields() for r in metrics.rounds
        ]

    def test_tcp_is_byte_identical(self, black_friday):
        _, metrics = black_friday
        over_tcp = ScenarioRunner(
            load_scenario("black-friday-tamper-churn"), seed=SEED,
            transport="tcp",
        ).run()
        assert over_tcp.ok
        assert over_tcp.digest == metrics.digest

    def test_different_seed_different_workload(self, black_friday):
        _, metrics = black_friday
        other = ScenarioRunner(
            load_scenario("black-friday-tamper-churn"), seed="other-seed"
        ).run(check=True)
        assert other.digest != metrics.digest

    def test_reconciles_with_traffic_model(self, black_friday):
        runner, metrics = black_friday
        recon = reconcile_with_traffic(metrics, runner.spec.traffic)
        assert recon["matched"]
        assert recon["delivery_rate"] == 1.0
        assert len(recon["rounds"]) == len(metrics.rounds)

    def test_dialing_delivered_through_mailboxes(self, black_friday):
        runner, metrics = black_friday
        dialed = sum(r.dialing for r in metrics.rounds)
        assert dialed > 0
        opened = [
            token
            for r in range(runner.spec.rounds)
            for user in range(runner.traffic.users)
            for token in runner.receive(r, user)
        ]
        # every delivered call opens to its sender token "u<i>@r<j>"
        assert len(opened) == dialed
        assert all(tok.startswith(b"u") and b"@r" in tok for tok in opened)

    def test_microblog_delivered_to_board(self, black_friday):
        runner, metrics = black_friday
        posted = sum(len(runner.board.read(r.round_id)) for r in metrics.rounds)
        assert posted == sum(r.microblog for r in metrics.rounds)

    def test_report_is_machine_readable(self, black_friday):
        _, metrics = black_friday
        blob = json.loads(metrics.to_json())
        assert blob["ok"] is True
        assert blob["digest"] == metrics.digest
        assert blob["totals"]["arrivals"] == metrics.total_arrivals
        assert {"riposte_minutes", "vuvuzela_minutes", "alpenhorn_minutes"} \
            <= set(blob["baselines"])


class TestRunnerBehaviour:
    def test_steady_scenario_board_and_totals(self):
        runner = ScenarioRunner(load_scenario("steady"))
        metrics = runner.run()
        assert metrics.ok
        assert metrics.total_delivered == metrics.total_arrivals
        assert len(runner.board.all_posts()) == metrics.total_delivered

    def test_spec_object_not_mutated_across_runs(self):
        spec = load_scenario("diurnal")
        a = ScenarioRunner(spec, seed="s1").run()
        b = ScenarioRunner(spec, seed="s1").run()
        assert a.digest == b.digest

    def test_conservation_error_surfaces(self):
        runner = ScenarioRunner(load_scenario("steady"))
        metrics = runner.run(check=False)
        metrics.rounds[0].delivered -= 1  # corrupt the ledger
        with pytest.raises(ConservationError):
            metrics.check_conservation()

    def test_message_size_guard(self):
        spec = ScenarioSpec.parse(
            {
                "name": "tight",
                "rounds": 1,
                "traffic": {
                    "model": "constant", "users": 4, "rate": 2.0,
                    "dialing_share": 1.0,
                },
                "deployment": {
                    "groups": 2, "group_size": 2, "message_size": 24,
                },
            }
        )
        runner = ScenarioRunner(spec)
        with pytest.raises(Exception, match="message_size"):
            runner.run()


class TestScenarioCli:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "black-friday-tamper-churn" in out
        assert "steady" in out

    def test_describe_round_trips(self, capsys):
        assert main(["scenario", "describe", "steady"]) == 0
        out = capsys.readouterr().out
        spec = ScenarioSpec.parse(out)
        assert spec.name == "steady"

    def test_run_with_json_report(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        code = main(
            ["scenario", "run", "steady", "--seed", SEED,
             "--json", str(report)]
        )
        assert code == 0
        blob = json.loads(report.read_text())
        assert blob["ok"] is True
        assert blob["scenario"] == "steady"
        assert "digest" in capsys.readouterr().out

    def test_run_requires_scenario(self, capsys):
        assert main(["scenario", "run"]) == 2

    def test_unknown_scenario(self, capsys):
        assert main(["scenario", "run", "black-tuesday"]) == 2
        assert "no bundled scenario" in capsys.readouterr().err

    def test_run_from_file_with_overrides(self, capsys, tmp_path):
        spec = load_scenario("steady")
        path = tmp_path / "custom.json"
        path.write_text(spec.to_json())
        assert main(["scenario", "run", str(path), "--transport", "tcp"]) == 0
        assert "(tcp, seed atom-rpc)" in capsys.readouterr().out
