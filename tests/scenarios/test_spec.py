"""ScenarioSpec grammar: parse/describe round-trip, strict validation,
deployment building, and the bundled scenario files."""

import json

import pytest

from repro.scenarios import (
    ScenarioError,
    ScenarioSpec,
    list_bundled,
    load_scenario,
)


def sample_dict(**overrides):
    base = {
        "name": "sample",
        "rounds": 3,
        "traffic": {"model": "constant", "users": 6, "rate": 2.0},
        "faults": "r1:tamper-group:0:0:replace_one",
        "deployment": {"groups": 2, "group_size": 2, "message_size": 24},
    }
    base.update(overrides)
    return base


class TestRoundTrip:
    def test_parse_describe_identity(self):
        spec = ScenarioSpec.parse(sample_dict())
        canonical = spec.describe()
        assert ScenarioSpec.parse(canonical).describe() == canonical

    def test_json_string_accepted(self):
        spec = ScenarioSpec.parse(json.dumps(sample_dict()))
        assert spec.name == "sample"
        assert spec.traffic.kind == "constant"

    def test_to_json_reload(self, tmp_path):
        spec = ScenarioSpec.parse(sample_dict())
        path = tmp_path / "s.json"
        path.write_text(spec.to_json())
        assert ScenarioSpec.load(path).describe() == spec.describe()

    def test_fault_schedule_canonicalized(self):
        spec = ScenarioSpec.parse(sample_dict())
        assert spec.describe()["faults"] == "r1:tamper-group:0:0:replace_one"
        assert len(spec.fault_schedule().events) == 1


class TestValidation:
    def test_unknown_top_key(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            ScenarioSpec.parse(sample_dict(trafic={}))

    def test_unknown_deployment_key(self):
        with pytest.raises(ScenarioError, match="unknown deployment keys"):
            ScenarioSpec.parse(sample_dict(deployment={"serfers": 4}))

    def test_unknown_dialing_key(self):
        with pytest.raises(ScenarioError, match="unknown dialing keys"):
            ScenarioSpec.parse(sample_dict(dialing={"boxes": 4}))

    def test_missing_traffic(self):
        spec = sample_dict()
        del spec["traffic"]
        with pytest.raises(ScenarioError, match="'traffic' section"):
            ScenarioSpec.parse(spec)

    def test_traffic_error_surfaces(self):
        with pytest.raises(ScenarioError, match="unknown traffic model"):
            ScenarioSpec.parse(sample_dict(traffic={"model": "nope"}))

    def test_bad_fault_schedule(self):
        with pytest.raises(ScenarioError, match="bad fault schedule"):
            ScenarioSpec.parse(sample_dict(faults="r1:explode:0"))

    def test_bad_net_faults(self):
        with pytest.raises(ScenarioError, match="bad net-fault plan"):
            ScenarioSpec.parse(sample_dict(net_faults="*:teleport:1%"))

    def test_bad_rounds(self):
        with pytest.raises(ScenarioError, match="rounds"):
            ScenarioSpec.parse(sample_dict(rounds=0))

    def test_not_json(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            ScenarioSpec.parse("{nope")

    def test_not_a_dict(self):
        with pytest.raises(ScenarioError, match="must be a dict"):
            ScenarioSpec.parse("[1, 2]")


class TestDeploymentConfig:
    def test_defaults_and_formula(self):
        config = ScenarioSpec.parse(sample_dict()).deployment_config()
        assert config.num_groups == 2
        assert config.group_size == 2
        # the CLI's sizing formula: max(groups*size, 2*size)
        assert config.num_servers == 4
        assert config.variant == "trap"

    def test_overrides_win(self):
        spec = ScenarioSpec.parse(sample_dict())
        config = spec.deployment_config(transport="tcp", group="TOY")
        assert config.transport == "tcp"
        assert config.crypto_group == "TOY"
        # None overrides are ignored (unset CLI flags)
        config = spec.deployment_config(transport=None)
        assert config.transport == "inproc"

    def test_unknown_override_rejected(self):
        spec = ScenarioSpec.parse(sample_dict())
        with pytest.raises(ScenarioError, match="unknown deployment override"):
            spec.deployment_config(users=5)

    def test_seed_derived_from_scenario_seed(self):
        spec = ScenarioSpec.parse(sample_dict(seed="alpha"))
        assert spec.deployment_config().seed == b"alpha/deploy"

    def test_net_faults_forwarded(self):
        spec = ScenarioSpec.parse(sample_dict(net_faults="*:drop:2%"))
        assert spec.deployment_config().net_faults == "*:drop:2%"


class TestBundled:
    def test_bundled_names(self):
        names = list_bundled()
        assert "steady" in names
        assert "diurnal" in names
        assert "black-friday-tamper-churn" in names

    def test_all_bundled_parse_and_roundtrip(self):
        for name in list_bundled():
            spec = load_scenario(name)
            assert spec.name == name
            canonical = spec.describe()
            assert ScenarioSpec.parse(canonical).describe() == canonical
            spec.deployment_config()  # must build

    def test_black_friday_composition(self):
        spec = load_scenario("black-friday-tamper-churn")
        assert spec.traffic.kind == "bursty"
        assert spec.traffic.churn > 0
        assert spec.traffic.dialing_share > 0
        assert any(
            ev.action == "tamper-group" for ev in spec.fault_schedule().events
        )

    def test_unknown_bundled_name(self):
        with pytest.raises(ScenarioError, match="no bundled scenario"):
            load_scenario("black-tuesday")

    def test_path_argument(self, tmp_path):
        spec = load_scenario("steady")
        path = tmp_path / "copy.json"
        path.write_text(spec.to_json())
        assert load_scenario(path).describe() == spec.describe()
