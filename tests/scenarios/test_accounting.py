"""Batch-aware per-message accounting (ROADMAP item 2's leftover).

``RoundStats.submitted`` must count *senders*, not ciphertexts — the
trap variant holds two ciphertexts per sender and the batch plane
stores them as one contiguous buffer — and ``dummies`` must report the
cover padding actually delivered.  Both must agree across data planes
and survive the checkpoint codec (including logs from before the
fields existed).
"""

import json

import pytest

from repro.core import DeploymentConfig, FaultSchedule, StreamConfig, StreamEngine
from repro.crypto.groups import DeterministicRng
from repro.store.checkpoint import decode_round_stats, encode_round_stats


def tiny_config(**overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="trap",
        iterations=2,
        message_size=16,
        crypto_group="TOY",
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def run_stream(faults="", users=3, rounds=3, **config_overrides):
    engine = StreamEngine(
        tiny_config(**config_overrides),
        FaultSchedule.parse(faults),
        StreamConfig(rounds=rounds, users_per_round=users, seed=b"acct"),
    )
    with engine:
        return engine.run()


class TestSubmittedAndDummies:
    def test_counts_senders_not_ciphertexts(self):
        # 3 users x 2 trap ciphertexts over 2 groups: holdings lengths
        # alone would say 4-vs-2; submitted must say 3.
        report = run_stream(users=3)
        assert report.ok
        for stats in report.rounds:
            assert stats.submitted == 3
            # uneven split (2 users on g0, 1 on g1) forces cover padding
            assert stats.dummies > 0

    def test_planes_agree(self):
        batch = run_stream(users=3, data_plane="batch")
        objects = run_stream(users=3, data_plane="object")
        for a, b in zip(batch.rounds, objects.rounds):
            assert (a.submitted, a.dummies) == (b.submitted, b.dummies)
            assert sorted(a.messages) == sorted(b.messages)

    def test_even_split_needs_no_dummies(self):
        report = run_stream(users=4)
        for stats in report.rounds:
            assert stats.submitted == 4
            assert stats.dummies == 0

    def test_retry_replaces_dummy_count(self):
        # A caught tamper retries the round: submitted stays the honest
        # sender count, dummies reflect the delivered attempt.
        report = run_stream(
            faults="r1:tamper-group:0:0:replace_one", users=3, rounds=3
        )
        caught = [s for s in report.rounds if s.attempts > 1]
        for stats in caught:
            assert stats.submitted == 3
            assert stats.dummies > 0
        for stats in report.rounds:
            assert stats.ok
            assert len(stats.messages) == 3


class TestCheckpointCodec:
    def _stats(self):
        report = run_stream(users=3, rounds=1)
        return report.rounds[0]

    def test_roundtrip_preserves_accounting(self):
        stats = self._stats()
        rng = DeterministicRng(b"codec")
        rng.randbytes(8)
        decoded, counter = decode_round_stats(encode_round_stats(stats, rng))
        assert decoded.submitted == stats.submitted
        assert decoded.dummies == stats.dummies
        assert counter == rng.counter

    def test_legacy_payload_defaults_to_zero(self):
        # Logs written before the scenario engine lack the fields.
        stats = self._stats()
        obj = json.loads(encode_round_stats(stats, None))
        del obj["submitted"], obj["dummies"]
        decoded, _ = decode_round_stats(json.dumps(obj).encode())
        assert decoded.submitted == 0
        assert decoded.dummies == 0
        assert decoded.messages == stats.messages
