"""Property-based suite for the traffic models (hypothesis).

The three invariants the scenario engine's guarantees rest on:
seed determinism (same spec + seed -> identical batches), user-count
conservation (active and departed sets always partition the
population), and spec round-trip (``parse_traffic(describe())`` is the
identity on the canonical form).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios.traffic import (
    TRAFFIC_MODELS,
    BurstyTraffic,
    ConstantTraffic,
    DiurnalTraffic,
    TrafficError,
    parse_traffic,
)

settings_fast = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

common = dict(
    users=st.integers(min_value=1, max_value=24),
    churn=st.floats(min_value=0.0, max_value=0.5),
    rejoin=st.integers(min_value=1, max_value=4),
    dialing_share=st.floats(min_value=0.0, max_value=1.0),
)


@st.composite
def traffic_models(draw):
    kind = draw(st.sampled_from(sorted(TRAFFIC_MODELS)))
    kwargs = {key: draw(strat) for key, strat in common.items()}
    if kind == "constant":
        return ConstantTraffic(rate=draw(st.floats(0, 16)), **kwargs)
    if kind == "diurnal":
        base = draw(st.floats(0, 6))
        return DiurnalTraffic(
            base=base,
            peak=base + draw(st.floats(0, 10)),
            period=draw(st.integers(1, 10)),
            **kwargs,
        )
    return BurstyTraffic(
        base=draw(st.floats(0, 8)),
        spike=draw(st.floats(0, 20)),
        spike_rounds=tuple(
            draw(st.lists(st.integers(0, 9), min_size=1, max_size=3))
        ),
        **kwargs,
    )


seeds = st.binary(min_size=1, max_size=16)


class TestDeterminism:
    @given(traffic_models(), seeds)
    @settings_fast
    def test_same_seed_same_batches(self, model, seed):
        spec = model.describe()
        a = parse_traffic(spec).bind(seed)
        b = parse_traffic(spec).bind(seed)
        for r in range(8):
            assert a.batch(r) == b.batch(r)

    @given(traffic_models(), seeds)
    @settings_fast
    def test_batches_cached_identically(self, model, seed):
        model.bind(seed)
        first = [model.batch(r) for r in range(6)]
        # Re-querying (as a blame-rekey replan does) returns the very
        # same objects, in any order.
        for r in reversed(range(6)):
            assert model.batch(r) is first[r]

    @given(traffic_models(), seeds)
    @settings_fast
    def test_rebind_resets_state(self, model, seed):
        model.bind(seed)
        first = [model.batch(r) for r in range(5)]
        model.bind(seed)
        assert [model.batch(r) for r in range(5)] == first


class TestConservation:
    @given(traffic_models(), seeds)
    @settings_fast
    def test_population_partition(self, model, seed):
        """Active + departed always partition range(users)."""
        model.bind(seed)
        population = set(range(model.users))
        for r in range(10):
            model.batch(r)
            active, away = set(model._active), set(model._away)
            assert active | away == population
            assert not active & away
            assert active  # never empties

    @given(traffic_models(), seeds)
    @settings_fast
    def test_arrivals_are_distinct_active_users(self, model, seed):
        model.bind(seed)
        for r in range(8):
            batch = model.batch(r)
            senders = [a.user for a in batch.arrivals]
            assert len(senders) == len(set(senders))
            assert batch.offered <= batch.active
            assert all(0 <= u < model.users for u in senders)

    @given(traffic_models(), seeds)
    @settings_fast
    def test_rejoin_after_exactly_rejoin_rounds(self, model, seed):
        model.bind(seed)
        departures = {}
        for r in range(10):
            batch = model.batch(r)
            for u in batch.rejoined:
                assert r - departures.pop(u) == model.rejoin
            for u in batch.departed:
                departures[u] = r


class TestSpecRoundTrip:
    @given(traffic_models())
    @settings_fast
    def test_describe_parse_identity(self, model):
        spec = model.describe()
        assert parse_traffic(spec).describe() == spec

    def test_unknown_model_rejected(self):
        with pytest.raises(TrafficError, match="unknown traffic model"):
            parse_traffic({"model": "flashmob"})

    def test_unknown_key_rejected(self):
        with pytest.raises(TrafficError, match="unknown .* keys"):
            parse_traffic({"model": "constant", "rate": 4, "spike": 9})

    def test_bad_params_rejected(self):
        with pytest.raises(TrafficError):
            ConstantTraffic(rate=-1)
        with pytest.raises(TrafficError):
            DiurnalTraffic(base=5, peak=2)
        with pytest.raises(TrafficError):
            ConstantTraffic(users=0)
        with pytest.raises(TrafficError):
            ConstantTraffic(churn=1.0)


class TestApps:
    @given(seeds)
    @settings_fast
    def test_dialing_share_extremes(self, seed):
        pure_blog = ConstantTraffic(rate=4, users=8, dialing_share=0.0).bind(seed)
        pure_dial = ConstantTraffic(rate=4, users=8, dialing_share=1.0).bind(seed)
        for r in range(5):
            assert all(a.app == "microblog" for a in pure_blog.batch(r).arrivals)
            assert all(a.app == "dialing" for a in pure_dial.batch(r).arrivals)

    def test_rate_clamped_to_population(self):
        model = ConstantTraffic(rate=100, users=5).bind(b"s")
        for r in range(4):
            assert model.batch(r).offered == 5

    def test_expected_rate_matches_curves(self):
        assert ConstantTraffic(rate=3).expected_rate(7) == 3.0
        diurnal = DiurnalTraffic(base=2, peak=8, period=8)
        assert diurnal.expected_rate(0) == pytest.approx(2.0)
        assert diurnal.expected_rate(4) == pytest.approx(8.0)
        bursty = BurstyTraffic(base=1, spike=9, spike_rounds=(2,))
        assert bursty.expected_rate(2) == 9.0
        assert bursty.expected_rate(3) == 1.0
