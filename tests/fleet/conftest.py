"""Shared fleet-test plumbing: free loopback ports and a controller
context manager that always tears the processes down."""

import contextlib
import socket

import pytest


def free_ports(n: int):
    """Reserve-and-release n distinct loopback ports.  The release is
    racy in principle, but the ports are handed straight to the serve
    processes, and each test run draws a fresh set."""
    socks = [socket.create_server(("127.0.0.1", 0)) for _ in range(n)]
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


@pytest.fixture()
def running_fleet():
    """Yields a ``start(controller)`` helper that guarantees down()."""

    @contextlib.contextmanager
    def start(controller):
        try:
            controller.up()
            yield controller
        finally:
            controller.down()

    return start
