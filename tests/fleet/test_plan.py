"""DeploymentPlan: validation, JSON round-trips, derived configs."""

import dataclasses

import pytest

from repro.core import DeploymentConfig
from repro.fleet.plan import (
    DeploymentPlan,
    HealthCheck,
    PlanError,
    ProcessSpec,
)


def _config(**overrides):
    base = dict(
        num_servers=8,
        num_groups=4,
        group_size=2,
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def _plan(processes, **config_overrides):
    return DeploymentPlan(config=_config(**config_overrides),
                          processes=processes)


class TestValidation:
    def test_no_processes(self):
        with pytest.raises(PlanError, match="at least one process"):
            _plan([])

    def test_duplicate_names(self):
        with pytest.raises(PlanError, match="duplicate process names"):
            _plan([
                ProcessSpec("p0", 9500, (0,)),
                ProcessSpec("p0", 9501, (1,)),
            ])

    def test_empty_name(self):
        with pytest.raises(PlanError, match="non-empty"):
            _plan([ProcessSpec("", 9500, (0,))])

    def test_duplicate_ports(self):
        with pytest.raises(PlanError, match="duplicate \\(host, port\\)"):
            _plan([
                ProcessSpec("p0", 9500, (0,)),
                ProcessSpec("p1", 9500, (1,)),
            ])

    def test_same_port_different_hosts_ok(self):
        plan = _plan([
            ProcessSpec("p0", 9500, (0,), host="127.0.0.1"),
            ProcessSpec("p1", 9500, (1,), host="127.0.0.2"),
        ])
        assert plan.placement == {0: "p0", 1: "p1"}

    def test_process_without_groups(self):
        with pytest.raises(PlanError, match="hosts no groups"):
            _plan([ProcessSpec("p0", 9500, ())])

    def test_gid_out_of_range(self):
        with pytest.raises(PlanError, match="outside 0..3"):
            _plan([ProcessSpec("p0", 9500, (0, 4))])

    def test_overlapping_gids(self):
        with pytest.raises(PlanError, match="gid 1 assigned to both"):
            _plan([
                ProcessSpec("p0", 9500, (0, 1)),
                ProcessSpec("p1", 9501, (1, 2)),
            ])

    def test_unassigned_gids_stay_in_coordinator(self):
        # Partial plans are legal: unassigned groups are hosted by the
        # coordinator process itself.
        plan = _plan([ProcessSpec("p0", 9500, (0, 2))])
        assert plan.placement == {0: "p0", 2: "p0"}

    def test_unknown_process_name(self):
        plan = _plan([ProcessSpec("p0", 9500, (0,))])
        assert plan.process("p0").port == 9500
        with pytest.raises(PlanError, match="no process 'p9'"):
            plan.process("p9")


class TestJson:
    def test_round_trip(self, tmp_path):
        plan = DeploymentPlan.build(
            _config(), 2, base_port=9700,
            state_root=str(tmp_path / "state"),
            health=HealthCheck(interval_s=0.5, timeout_s=3.0),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = DeploymentPlan.load(path)
        assert loaded.config == plan.config
        assert loaded.processes == plan.processes
        assert loaded.health == plan.health
        assert loaded.path == str(path)

    def test_bytes_config_fields_survive(self, tmp_path):
        # Any bytes-typed DeploymentConfig field must survive the JSON
        # encoding (hex-wrapped), not get mangled to a string.
        plan = DeploymentPlan.build(_config(), 1)
        text = plan.to_json()
        loaded = DeploymentPlan.from_json(text)
        assert loaded.config == plan.config

    def test_unknown_config_field_rejected(self):
        plan = DeploymentPlan.build(_config(), 1)
        text = plan.to_json().replace(
            '"num_servers"', '"num_serverz"', 1
        )
        with pytest.raises(PlanError, match="unknown config field"):
            DeploymentPlan.from_json(text)

    def test_garbage_rejected(self):
        with pytest.raises(PlanError, match="not valid JSON"):
            DeploymentPlan.from_json("{nope")


class TestBuild:
    def test_round_robin_split(self):
        plan = DeploymentPlan.build(_config(), 2, base_port=9600)
        assert [p.gids for p in plan.processes] == [(0, 2), (1, 3)]
        assert [p.port for p in plan.processes] == [9600, 9601]

    def test_explicit_ports_and_state_root(self, tmp_path):
        plan = DeploymentPlan.build(
            _config(), 4, ports=[7001, 7002, 7003, 7004],
            state_root=str(tmp_path),
        )
        assert [p.port for p in plan.processes] == [7001, 7002, 7003, 7004]
        assert plan.processes[2].state_dir == str(tmp_path / "p2")

    def test_too_many_processes(self):
        with pytest.raises(PlanError, match="need 1..4 processes"):
            DeploymentPlan.build(_config(), 5)


class TestDerivedConfigs:
    def test_engine_config_requires_saved_plan(self, tmp_path):
        plan = DeploymentPlan.build(_config(), 2)
        with pytest.raises(PlanError, match="saved before"):
            plan.engine_config()
        plan.save(tmp_path / "plan.json")
        engine = plan.engine_config()
        assert engine.transport == "fleet"
        assert engine.fleet_plan == str(tmp_path / "plan.json")

    def test_serve_config_strips_coordinator_wiring(self, tmp_path):
        config = _config(
            parallelism=4, heartbeat=True,
            net_faults="*:drop:2%", state_dir=str(tmp_path),
        )
        serve = DeploymentPlan.build(config, 2).serve_config()
        assert serve.transport == "inproc"
        assert serve.fleet_plan is None
        assert serve.state_dir is None
        assert serve.net_faults is None
        assert serve.parallelism == 1
        assert serve.heartbeat is False
        # ... but every protocol parameter is untouched.
        for name in ("num_servers", "num_groups", "group_size", "variant",
                     "iterations", "message_size", "crypto_group"):
            assert getattr(serve, name) == getattr(config, name)

    def test_fleet_transport_needs_plan_path(self):
        with pytest.raises(ValueError, match="needs fleet_plan"):
            dataclasses.replace(_config(), transport="fleet")
