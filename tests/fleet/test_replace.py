"""Checkpoint-shipped node replacement: SIGKILL a serve process
mid-stream, rebuild it from a bundle (snapshot + minimal log suffix),
and require the stream byte-identical to the failure-free run.

Unlike the heartbeat+buddy path (``test_fleet_round``), ``replace`` is
an *operator* action: the controller distills the dead process's
journal into an O(state) bundle, archives the O(history) layout, and
ships the bundle to the respawned process — which provably cannot
replay old history, because the only segment in its log dir is the
shipped one.
"""

import pytest

from repro.fleet.controller import FleetController
from repro.fleet.plan import DeploymentPlan, ProcessSpec
from repro.store.segments import LogDir

from tests.fleet.conftest import free_ports
from tests.fleet.test_fleet_round import (
    _fleet_plan,
    _run_stream,
    _stream_config,
)
from tests.net.test_transport_parity import (
    _canonical,
    _config,
    _run_seeded_round,
)


class TestReplace:
    @pytest.mark.slow
    def test_sigkill_then_replace_is_byte_identical(
        self, tmp_path, running_fleet
    ):
        """The tentpole acceptance: kill p1 after round 0 settles,
        replace it via checkpoint shipping before the engine notices,
        and finish the stream byte-identical to the baseline — with
        zero buddy recoveries (a replace is an operational move, not a
        failure)."""
        baseline = _run_stream(_stream_config())
        plan = _fleet_plan(_stream_config(), 2, tmp_path)
        controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))
        shipped = []

        def kill_and_replace(r):
            if r != 0:
                return
            pid_before = {
                p.name: p.pid for p in controller.status().processes
            }["p1"]
            controller.kill("p1")
            shipped.append(controller.replace("p1"))
            spec = plan.process("p1")
            from repro.fleet.server import FLEET_WAL, fleet_log_root

            log_root = fleet_log_root(spec.state_dir)
            # The dead layout was archived, and the fresh journal holds
            # exactly one segment: the shipped bundle.  A restore that
            # reads this dir *cannot* replay pre-safe-point history.
            assert log_root.with_name("fleet-log-replaced").exists()
            scan = LogDir.scan_dir(log_root, FLEET_WAL)
            assert scan.segments_read == ["wal-000001.seg"]
            pid_after = {
                p.name: p.pid for p in controller.status().processes
            }["p1"]
            assert pid_after != pid_before

        with running_fleet(controller):
            report = _run_stream(plan.engine_config(), kill_and_replace)
        assert report.ok
        assert report.total_recoveries == 0
        # Round 1's intake was already journaled (pipelined) when p1
        # died, so the bundle really shipped live state.
        assert shipped and shipped[0] > 0
        assert [
            (r.round_id, r.ok, r.messages) for r in report.rounds
        ] == [
            (r.round_id, r.ok, r.messages) for r in baseline.rounds
        ]

    def test_replace_volatile_process_is_plain_respawn(
        self, tmp_path, running_fleet
    ):
        """No state dir -> nothing to ship: replace respawns and
        returns 0; the process still serves a byte-identical round."""
        from repro.crypto.groups import get_group

        group = get_group("TOY")
        config = _config("inproc", "TOY", "trap")
        _, inproc = _run_seeded_round(config)
        plan = DeploymentPlan(
            config=config,
            processes=[ProcessSpec("p0", free_ports(1)[0], (0,))],
        ).save(tmp_path / "plan.json")
        controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))
        with running_fleet(controller):
            controller.kill("p0")
            assert controller.replace("p0") == 0
            _, fleet = _run_seeded_round(plan.engine_config())
        assert fleet.ok
        assert _canonical(group, inproc) == _canonical(group, fleet)
