"""Multi-process fleet acceptance: byte parity with in-process rounds,
rolling restarts mid-stream, and SIGKILL healed by buddy recovery.

The fleet moves the same envelopes over real OS process boundaries; it
must not influence the crypto.  Under identical DeterministicRng seeds
a round sharded over ``repro serve`` processes must produce a
byte-identical RoundResult to the zero-copy in-process round (same
convention as ``tests/net/test_transport_parity.py``: pinned seeds, no
loosened comparisons), and a pipelined stream must deliver identical
per-round payloads across a rolling restart of *every* server group.
"""

import pytest

from repro.core import DeploymentConfig
from repro.core.pipeline import StreamConfig, StreamEngine
from repro.crypto.groups import get_group
from repro.fleet.controller import FleetController
from repro.fleet.plan import DeploymentPlan

from tests.fleet.conftest import free_ports
from tests.net.test_transport_parity import (
    _canonical,
    _config,
    _run_seeded_round,
)


def _fleet_plan(config, num_processes, tmp_path):
    plan = DeploymentPlan.build(
        config,
        num_processes,
        ports=free_ports(num_processes),
        state_root=str(tmp_path / "state"),
    )
    return plan.save(tmp_path / "plan.json")


class TestRoundParity:
    @pytest.mark.parametrize("variant", ["basic", "nizk", "trap"])
    def test_round_byte_identical_across_two_processes(
        self, variant, tmp_path, running_fleet
    ):
        group = get_group("TOY")
        messages, inproc = _run_seeded_round(_config("inproc", "TOY", variant))
        plan = _fleet_plan(_config("inproc", "TOY", variant), 2, tmp_path)
        controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))
        with running_fleet(controller):
            _, fleet = _run_seeded_round(plan.engine_config())
        assert inproc.ok and fleet.ok
        assert sorted(fleet.messages) == sorted(messages)
        assert _canonical(group, inproc) == _canonical(group, fleet)

    def test_partial_plan_keeps_unassigned_groups_local(
        self, tmp_path, running_fleet
    ):
        """One process hosting only gid 0; gid 1 stays in-coordinator.
        Still byte-identical — placement is invisible to the protocol."""
        from repro.fleet.plan import ProcessSpec

        group = get_group("TOY")
        config = _config("inproc", "TOY", "trap")
        _, inproc = _run_seeded_round(config)
        plan = DeploymentPlan(
            config=config,
            processes=[ProcessSpec("p0", free_ports(1)[0], (0,))],
        ).save(tmp_path / "plan.json")
        controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))
        with running_fleet(controller):
            _, fleet = _run_seeded_round(plan.engine_config())
        assert fleet.ok
        assert _canonical(group, inproc) == _canonical(group, fleet)


def _stream_config(**overrides):
    base = dict(
        num_servers=8,
        num_groups=2,
        group_size=4,
        h=2,
        mode="manytrust",
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def _run_stream(config, on_round_settled=None, rounds=3):
    engine = StreamEngine(
        config,
        stream=StreamConfig(
            rounds=rounds, users_per_round=4, seed=b"fleet-stream"
        ),
    )
    if on_round_settled is not None:
        engine.on_round_settled = on_round_settled
    with engine:
        return engine.run()


class TestStreamOperations:
    @pytest.mark.slow
    def test_rolling_restart_mid_stream_is_byte_identical(
        self, tmp_path, running_fleet
    ):
        """The tentpole acceptance: roll every server group between
        rounds 0 and 1 (drain -> SIGTERM -> respawn -> WAL recovery ->
        rejoin) while the stream keeps progressing; every round's
        payload is byte-identical to the in-process stream."""
        baseline = _run_stream(_stream_config())
        plan = _fleet_plan(_stream_config(), 2, tmp_path)
        controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))
        rolled = []

        def roll_once(r):
            if r == 0:
                pids_before = {
                    p.name: p.pid for p in controller.status().processes
                }
                controller.roll()
                pids_after = {
                    p.name: p.pid for p in controller.status().processes
                }
                rolled.append((pids_before, pids_after))

        with running_fleet(controller):
            report = _run_stream(plan.engine_config(), roll_once)
        assert report.ok
        # Every process really was replaced mid-stream.
        pids_before, pids_after = rolled[0]
        assert set(pids_before) == {"p0", "p1"}
        assert all(
            pids_after[name] != pids_before[name] for name in pids_before
        )
        assert report.total_recoveries == 0  # a roll is not a failure
        assert [
            (r.round_id, r.ok, r.messages) for r in report.rounds
        ] == [
            (r.round_id, r.ok, r.messages) for r in baseline.rounds
        ]

    @pytest.mark.slow
    def test_sigkill_mid_stream_detected_and_healed(
        self, tmp_path, running_fleet
    ):
        """SIGKILL one serve process after round 0 settles — nothing
        tells the engine.  The heartbeat detector declares its groups
        stalled, buddy recovery (§4.5) restores them inside the
        coordinator, and the stream completes with the same per-round
        payload as the failure-free run."""
        heartbeat = dict(
            heartbeat=True, heartbeat_grace_s=0.01, heartbeat_timeout_s=0.25
        )
        baseline = _run_stream(_stream_config(**heartbeat))
        plan = _fleet_plan(_stream_config(**heartbeat), 2, tmp_path)
        controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))

        def kill_p1(r):
            if r == 0:
                controller.kill("p1")

        with running_fleet(controller):
            report = _run_stream(plan.engine_config(), kill_p1)
        assert report.ok
        assert report.total_recoveries == 1
        assert report.rounds[1].recovered_gids == [1]
        # Recovery redraws group sub-seeds, so compare the per-round
        # delivered payload (order-free), not raw ordering.
        assert [
            (r.round_id, r.ok, sorted(r.messages)) for r in report.rounds
        ] == [
            (r.round_id, r.ok, sorted(r.messages)) for r in baseline.rounds
        ]
