"""Fleet failure modes must fail loudly, with the process named and
its log quoted — never hang or leave orphan children behind."""

import socket
import sys

import pytest

from repro.core import DeploymentConfig
from repro.fleet.controller import FleetController, FleetError
from repro.fleet.plan import DeploymentPlan, HealthCheck

from tests.fleet.conftest import free_ports


def _config():
    return DeploymentConfig(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
    )


def _plan(tmp_path, health=None, num=2):
    plan = DeploymentPlan.build(
        _config(), num, ports=free_ports(num), health=health
    )
    return plan.save(tmp_path / "plan.json")


class _ScriptedController(FleetController):
    """Controller whose children run an arbitrary one-liner instead of
    `repro serve` — the spawn/readiness machinery under test is real."""

    def __init__(self, plan, runtime_dir, script):
        super().__init__(plan, runtime_dir=runtime_dir)
        self.script = script

    def _command(self, spec):
        return [sys.executable, "-c", self.script.format(port=spec.port)]


def test_unsaved_plan_rejected(tmp_path):
    plan = DeploymentPlan.build(_config(), 2, ports=free_ports(2))
    with pytest.raises(FleetError, match="saved to disk"):
        FleetController(plan, runtime_dir=str(tmp_path))


def test_child_exiting_during_spawn_fails_loudly(tmp_path):
    plan = _plan(tmp_path, HealthCheck(interval_s=0.05, timeout_s=5.0))
    controller = _ScriptedController(
        plan, str(tmp_path / "run"),
        "import sys; print('fleet child giving up'); sys.exit(3)",
    )
    with pytest.raises(FleetError, match=r"'p0' exited with code 3") as err:
        controller.up()
    # The child's own words made it into the error.
    assert "fleet child giving up" in str(err.value)


def test_port_already_in_use_fails_loudly(tmp_path):
    plan = _plan(tmp_path, HealthCheck(interval_s=0.05, timeout_s=5.0))
    squatter = socket.create_server(
        ("127.0.0.1", plan.processes[0].port)
    )
    controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))
    try:
        # The serve process exits with its bind-failure code, which the
        # readiness gate turns into a named FleetError.
        with pytest.raises(FleetError, match=r"'p0' exited with code 3"):
            controller.up()
    finally:
        squatter.close()
        controller.down()


def test_never_ready_child_times_out(tmp_path):
    # Binds the port but never speaks the protocol: probes time out
    # (not connect-refused), and the deadline must still trip.
    plan = _plan(
        tmp_path,
        HealthCheck(interval_s=0.05, timeout_s=0.6, probe_timeout_s=0.1),
    )
    controller = _ScriptedController(
        plan, str(tmp_path / "run"),
        "import socket, time; s = socket.create_server(('127.0.0.1', {port})); "
        "time.sleep(60)",
    )
    with pytest.raises(FleetError, match=r"'p0' never became ready"):
        controller.up()
    # up() tears the half-started fleet down on failure: no orphans.
    for name, child in list(controller._children.items()):
        assert child.poll() is not None, f"{name} left running"


def test_failed_up_leaves_no_children(tmp_path):
    plan = _plan(tmp_path, HealthCheck(interval_s=0.05, timeout_s=5.0))
    controller = _ScriptedController(
        plan, str(tmp_path / "run"), "import sys; sys.exit(7)"
    )
    with pytest.raises(FleetError):
        controller.up()
    assert not controller._state_path.exists()
    for child in controller._children.values():
        assert child.poll() is not None


def test_kill_without_pid_is_an_error(tmp_path):
    plan = _plan(tmp_path)
    controller = FleetController(plan, runtime_dir=str(tmp_path / "run"))
    with pytest.raises(FleetError, match="no running pid"):
        controller.kill("p0")
