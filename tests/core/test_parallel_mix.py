"""Parallel group mixing (DeploymentConfig.parallelism, paper Fig. 7).

One layer's groups are independent, so their shuffle + proof work can
fan out across worker processes.  These tests pin the contract: the
parallel path delivers the same protocol outcomes as the serial path,
is reproducible under a deterministic RNG, falls back to serial for
groups carrying in-process adversarial instrumentation, and propagates
worker-side aborts.
"""

import pytest

from repro.core import AtomDeployment, DeploymentConfig
from repro.core.group import GroupStalled, ProtocolAbort
from repro.core.server import Behavior
from repro.crypto.groups import DeterministicRng


def _basic_config(parallelism: int, **overrides) -> DeploymentConfig:
    defaults = dict(
        num_servers=8,
        num_groups=2,
        group_size=2,
        variant="basic",
        iterations=2,
        message_size=8,
        crypto_group="TOY",
        adversarial_fraction=0.0,
        parallelism=parallelism,
    )
    defaults.update(overrides)
    return DeploymentConfig(**defaults)


def _run(config: DeploymentConfig, seed: bytes = b"parallel-test"):
    with AtomDeployment(config) as dep:
        rnd = dep.start_round(0, rng=DeterministicRng(seed + b"-setup"))
        messages = [b"msg-%d" % i for i in range(4)]
        for i, msg in enumerate(messages):
            dep.submit_plain(rnd, msg, entry_gid=i % 2)
        result = dep.run_round(rnd, rng=DeterministicRng(seed + b"-round"))
    return messages, result


def test_parallel_round_delivers_all_messages():
    messages, result = _run(_basic_config(parallelism=2))
    assert result.ok
    assert sorted(result.messages) == sorted(messages)


def test_parallel_round_is_reproducible():
    _, first = _run(_basic_config(parallelism=2))
    _, second = _run(_basic_config(parallelism=2))
    assert first.messages == second.messages
    assert first.bytes_sent_total == second.bytes_sent_total


def test_parallel_matches_serial_outcome():
    messages, serial = _run(_basic_config(parallelism=1))
    _, parallel = _run(_basic_config(parallelism=2))
    assert serial.ok and parallel.ok
    # The permutations differ (derived per-group seeds), but the same
    # message multiset comes out and the same bytes move per audit sum.
    assert sorted(parallel.messages) == sorted(messages)
    assert len(parallel.audits) == len(serial.audits)


def test_parallel_nizk_round_verifies():
    config = _basic_config(parallelism=2, variant="nizk", nizk_rounds=4)
    messages, result = _run(config)
    assert result.ok
    assert sorted(result.messages) == sorted(messages)
    assert all(a.shuffles_proved > 0 for a in result.audits)


def test_malicious_group_is_not_parallel_safe():
    dep = AtomDeployment(_basic_config(parallelism=2))
    rnd = dep.start_round(0, rng=DeterministicRng(b"safe-check"))
    assert all(ctx.parallel_safe() for ctx in rnd.contexts)
    rnd.contexts[0].servers[0].behavior = Behavior.BAD_SHUFFLE
    assert not rnd.contexts[0].parallel_safe()
    assert rnd.contexts[1].parallel_safe()


def test_honest_trap_groups_are_parallel_safe():
    # The trap deployment's forge hook is a picklable callable object,
    # so honest trap groups must still take the parallel path.
    config = _basic_config(parallelism=2, variant="trap")
    dep = AtomDeployment(config)
    rnd = dep.start_round(0, rng=DeterministicRng(b"trap-par"))
    assert all(ctx.forge_payload_fn is not None for ctx in rnd.contexts)
    assert all(ctx.parallel_safe() for ctx in rnd.contexts)
    for i in range(4):
        dep.submit_trap(rnd, b"trap-%d" % i, entry_gid=i % 2)
    result = dep.run_round(rnd)
    assert result.ok
    assert sorted(result.messages) == sorted(b"trap-%d" % i for i in range(4))


def test_closure_forge_hook_forces_serial():
    dep = AtomDeployment(_basic_config(parallelism=2))
    rnd = dep.start_round(0, rng=DeterministicRng(b"closure"))
    rnd.contexts[0].forge_payload_fn = lambda: b"x"
    assert not rnd.contexts[0].parallel_safe()


def test_worker_stall_propagates_as_abort():
    dep = AtomDeployment(_basic_config(parallelism=2))
    rnd = dep.start_round(0, rng=DeterministicRng(b"stall"))
    for i in range(4):
        dep.submit_plain(rnd, b"msg-%d" % i, entry_gid=i % 2)
    rnd.contexts[0].servers[0].fail()
    result = dep.run_round(rnd, rng=DeterministicRng(b"stall-round"))
    assert result.aborted
    assert "alive" in result.abort_reason


def test_abort_exceptions_pickle_roundtrip():
    import pickle

    abort = ProtocolAbort(3, 7, "shuffle")
    clone = pickle.loads(pickle.dumps(abort))
    assert (clone.gid, clone.culprit, clone.stage) == (3, 7, "shuffle")
    stalled = pickle.loads(pickle.dumps(GroupStalled(1, 2, 3)))
    assert (stalled.gid, stalled.alive, stalled.needed) == (1, 2, 3)


def test_parallelism_knob_validation():
    with pytest.raises(ValueError):
        DeploymentConfig(parallelism=0)
