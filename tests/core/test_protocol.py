"""Integration tests: full Atom rounds across all variants."""

import pytest

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.core.client import TrapSubmission
from repro.core.server import AtomServer, Behavior
from repro.crypto.commit import commit
from repro.crypto.groups import DeterministicRng


def small_config(**overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="basic",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def run_with_messages(dep, rnd, msgs, variant, rng=None):
    """Submit and mix; a DeterministicRng pins client trap-coin flips
    and mixing shuffles, making catch-probability outcomes reproducible."""
    client = Client(dep.group, rng) if rng is not None else None
    for i, m in enumerate(msgs):
        if variant == "trap":
            dep.submit_trap(rnd, m, entry_gid=i % dep.config.num_groups, client=client)
        else:
            dep.submit_plain(rnd, m, entry_gid=i % dep.config.num_groups, client=client)
    return dep.run_round(rnd, rng)


class TestCorrectness:
    """§2.2 Correctness: honest outputs contain all honest inputs."""

    @pytest.mark.parametrize("variant", ["basic", "nizk", "trap"])
    def test_all_variants_route_all_messages(self, variant):
        dep = AtomDeployment(small_config(variant=variant))
        rnd = dep.start_round(0)
        msgs = [f"msg{i}".encode() for i in range(4)]
        result = run_with_messages(dep, rnd, msgs, variant)
        assert result.ok
        assert sorted(result.messages) == sorted(msgs)

    def test_larger_load(self):
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0)
        msgs = [f"m{i:03d}".encode() for i in range(16)]
        result = run_with_messages(dep, rnd, msgs, "basic")
        assert sorted(result.messages) == sorted(msgs)

    def test_four_groups_square(self):
        dep = AtomDeployment(small_config(num_servers=10, num_groups=4))
        rnd = dep.start_round(0)
        msgs = [f"m{i:03d}".encode() for i in range(16)]
        result = run_with_messages(dep, rnd, msgs, "basic")
        assert sorted(result.messages) == sorted(msgs)

    def test_butterfly_topology(self):
        dep = AtomDeployment(
            small_config(num_servers=8, num_groups=2, topology="butterfly")
        )
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(4)]
        result = run_with_messages(dep, rnd, msgs, "basic")
        assert sorted(result.messages) == sorted(msgs)

    def test_manytrust_mode(self):
        dep = AtomDeployment(
            small_config(num_servers=10, group_size=4, mode="manytrust", h=2)
        )
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(4)]
        result = run_with_messages(dep, rnd, msgs, "basic")
        assert sorted(result.messages) == sorted(msgs)

    def test_output_order_differs_from_input(self):
        """The final permutation should not be the identity."""
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0)
        msgs = [f"m{i:03d}".encode() for i in range(16)]
        result = run_with_messages(dep, rnd, msgs, "basic")
        assert result.messages != msgs


class TestSubmissionValidation:
    def test_unbalanced_entry_rejected(self):
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0)
        dep.submit_plain(rnd, b"a", entry_gid=0)
        with pytest.raises(ValueError):
            dep.run_round(rnd)

    def test_duplicate_submission_rejected(self):
        """A rerandomized copy cannot even be built without the witness;
        an exact copy is rejected by the seen-set (and the NIZK binds
        gid so cross-group replay also fails, tested in crypto)."""
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0)
        client = Client(dep.group)
        ctx = rnd.contexts[0]
        sub = client.prepare_plain(b"dup", ctx.public_key, 0, dep.spec.payload_size)
        dep._accept(rnd, 0, [sub], None)
        with pytest.raises(ValueError):
            dep._accept(rnd, 0, [sub], None)

    def test_wrong_variant_submission(self):
        dep = AtomDeployment(small_config(variant="trap"))
        rnd = dep.start_round(0)
        with pytest.raises(ValueError):
            dep.submit_plain(rnd, b"x", entry_gid=0)
        dep2 = AtomDeployment(small_config(variant="basic"))
        rnd2 = dep2.start_round(0)
        with pytest.raises(ValueError):
            dep2.submit_trap(rnd2, b"x", entry_gid=0)

    def test_required_user_multiple(self):
        dep = AtomDeployment(small_config(num_groups=2))
        unit = dep.required_user_multiple()
        assert unit >= 1
        # a full unit of users runs cleanly
        rnd = dep.start_round(0)
        msgs = [f"u{i}".encode() for i in range(unit)]
        result = run_with_messages(dep, rnd, msgs, "basic")
        assert result.ok


class TestNizkVariantSecurity:
    def test_malicious_shuffler_aborts_with_culprit(self):
        dep = AtomDeployment(small_config(variant="nizk"))
        rnd = dep.start_round(0)
        bad_server = rnd.contexts[1].servers[0]
        bad_server.behavior = Behavior.BAD_SHUFFLE
        msgs = [f"m{i}".encode() for i in range(4)]
        result = run_with_messages(dep, rnd, msgs, "nizk")
        assert result.aborted
        assert result.offending_groups == [1]
        assert not result.messages  # nothing revealed

    def test_malicious_replacer_aborts(self):
        dep = AtomDeployment(small_config(variant="nizk"))
        rnd = dep.start_round(0)
        rnd.contexts[0].servers[1].behavior = Behavior.REPLACE_ONE
        msgs = [f"m{i}".encode() for i in range(4)]
        result = run_with_messages(dep, rnd, msgs, "nizk")
        assert result.aborted


class TestTrapVariantSecurity:
    def test_trap_counts(self):
        dep = AtomDeployment(small_config(variant="trap"))
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(4)]
        result = run_with_messages(dep, rnd, msgs, "trap")
        assert result.ok
        assert result.num_traps_checked == 4

    def test_replacement_detected_about_half_the_time(self):
        """§4.4: tampering trips a trap with probability 1/2.

        Seeded trials: each trial's coin (which of the pair the client
        made the trap, and which ciphertext the shuffle put in front of
        the tamperer) is drawn from a DeterministicRng, so the observed
        abort count is a fixed value inside the binomial bound rather
        than a fresh 2*2^-14 tail risk per CI run.
        """
        aborts = 0
        trials = 14
        for trial in range(trials):
            rng = DeterministicRng(b"trap-catch-%d" % trial)
            dep = AtomDeployment(small_config(variant="trap"))
            rnd = dep.start_round(trial, rng)
            rnd.contexts[0].servers[0].behavior = Behavior.REPLACE_ONE
            msgs = [f"m{i}".encode() for i in range(4)]
            result = run_with_messages(dep, rnd, msgs, "trap", rng)
            aborts += result.aborted
        # Binomial(14, 0.5): [2, 12] covers ~1 - 2*2^-14 of seeds.
        assert 2 <= aborts <= 12

    def test_successful_tampering_only_drops_one(self):
        """When the adversary evades the traps, all other messages
        still come out (anonymity set shrinks by exactly one).
        Seeded: one of the 20 fixed trials is a known evasion."""
        for trial in range(20):
            rng = DeterministicRng(b"trap-evade-%d" % trial)
            dep = AtomDeployment(small_config(variant="trap"))
            rnd = dep.start_round(trial, rng)
            rnd.contexts[0].servers[0].behavior = Behavior.REPLACE_ONE
            msgs = [f"m{i}".encode() for i in range(4)]
            result = run_with_messages(dep, rnd, msgs, "trap", rng)
            if result.ok:
                survivors = [m for m in result.messages if m in msgs]
                assert len(survivors) == len(msgs) - 1
                return
        pytest.fail("adversary never evaded the traps in 20 seeded trials")

    def test_duplicate_inner_detected(self):
        dep = AtomDeployment(small_config(variant="trap"))
        rnd = dep.start_round(0)
        rnd.contexts[0].servers[0].behavior = Behavior.DUPLICATE_ONE
        msgs = [f"m{i}".encode() for i in range(4)]
        result = run_with_messages(dep, rnd, msgs, "trap")
        # duplicating removes one ciphertext and repeats another: either a
        # missing trap or a duplicate inner — both abort.
        assert result.aborted

    def test_honest_round_after_aborted_round(self):
        """Keys are per-round: an abort does not poison later rounds."""
        dep = AtomDeployment(small_config(variant="trap"))
        rnd0 = dep.start_round(0)
        rnd0.contexts[0].servers[0].behavior = Behavior.DUPLICATE_ONE
        msgs = [f"m{i}".encode() for i in range(4)]
        run_with_messages(dep, rnd0, msgs, "trap")
        # servers objects are shared; reset behavior for the next round
        for server in dep.servers:
            server.behavior = Behavior.HONEST
            server.tamper_budget = 1
        rnd1 = dep.start_round(1)
        result = run_with_messages(dep, rnd1, msgs, "trap")
        assert result.ok and sorted(result.messages) == sorted(msgs)


class TestBlame:
    def test_bad_commitment_user_identified(self):
        dep = AtomDeployment(small_config(variant="trap"))
        rnd = dep.start_round(0)
        client = Client(dep.group)
        good_ids = [
            dep.submit_trap(rnd, f"m{i}".encode(), entry_gid=i % 2) for i in range(3)
        ]
        sub, _ = client.prepare_trap_pair(
            b"evil", rnd.contexts[1].public_key, rnd.trustees.public_key,
            1, dep.spec.payload_size, dep.config.message_size,
        )
        corrupted = TrapSubmission(pair=sub.pair, trap_commitment=commit(b"X"), gid=1)
        bad_id = dep.inject_trap_submission(rnd, 1, corrupted)
        result = dep.run_round(rnd)
        assert result.aborted
        report = dep.blame(rnd)
        assert report.all_blamed == (bad_id,)
        assert not set(good_ids) & set(report.all_blamed)

    def test_two_trap_user_identified(self):
        """A user submitting two traps (no inner) breaks the counts."""
        dep = AtomDeployment(small_config(variant="trap"))
        rnd = dep.start_round(0)
        client = Client(dep.group)
        for i in range(3):
            dep.submit_trap(rnd, f"m{i}".encode(), entry_gid=i % 2)
        # Build a malicious pair: two traps.
        from repro.core import messages as fmt

        ctx = rnd.contexts[1]
        t1 = fmt.build_trap_payload(1, b"a" * 16, dep.spec.payload_size)
        t2 = fmt.build_trap_payload(1, b"b" * 16, dep.spec.payload_size)
        s1 = client._submit_payload(t1, ctx.public_key, 1)
        s2 = client._submit_payload(t2, ctx.public_key, 1)
        malicious = TrapSubmission(pair=(s1, s2), trap_commitment=commit(t1), gid=1)
        bad_id = dep.inject_trap_submission(rnd, 1, malicious)
        result = dep.run_round(rnd)
        assert result.aborted
        report = dep.blame(rnd)
        assert bad_id in report.all_blamed


class TestChurn:
    def test_anytrust_failure_stalls_round(self):
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(4)]
        for i, m in enumerate(msgs):
            dep.submit_plain(rnd, m, entry_gid=i % 2)
        rnd.contexts[0].servers[0].fail()
        result = dep.run_round(rnd)
        assert result.aborted
        assert "alive" in result.abort_reason

    def test_manytrust_survives_failure(self):
        dep = AtomDeployment(
            small_config(num_servers=10, group_size=4, mode="manytrust", h=2)
        )
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(4)]
        for i, m in enumerate(msgs):
            dep.submit_plain(rnd, m, entry_gid=i % 2)
        rnd.contexts[0].servers[3].fail()
        result = dep.run_round(rnd)
        assert result.ok
        assert sorted(result.messages) == sorted(msgs)

    def test_buddy_recovery_end_to_end(self):
        from repro.core.faults import BuddySystem

        dep = AtomDeployment(
            small_config(num_servers=10, group_size=4, mode="manytrust", h=2)
        )
        rnd = dep.start_round(0)
        buddies = BuddySystem(dep.group)
        buddies.escrow(rnd.contexts[0], rnd.contexts[1])
        msgs = [f"m{i}".encode() for i in range(4)]
        for i, m in enumerate(msgs):
            dep.submit_plain(rnd, m, entry_gid=i % 2)
        for server in rnd.contexts[0].servers[:2]:
            server.fail()
        replacements = [AtomServer(server_id=200 + i, group=dep.group) for i in range(4)]
        rnd.contexts[0] = buddies.recover(rnd.contexts[0], replacements)
        result = dep.run_round(rnd)
        assert result.ok
        assert sorted(result.messages) == sorted(msgs)


class TestByteAccounting:
    def test_nizk_variant_sends_more_bytes(self):
        msgs = [f"m{i}".encode() for i in range(4)]
        dep_b = AtomDeployment(small_config(variant="basic"))
        rnd_b = dep_b.start_round(0)
        res_b = run_with_messages(dep_b, rnd_b, msgs, "basic")
        dep_n = AtomDeployment(small_config(variant="nizk"))
        rnd_n = dep_n.start_round(0)
        res_n = run_with_messages(dep_n, rnd_n, msgs, "nizk")
        assert res_n.bytes_sent_total > res_b.bytes_sent_total
