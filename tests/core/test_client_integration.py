"""Client-side submission tests plus larger integration rounds on the
128-bit TEST group (closer to deployment parameters)."""

import pytest

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.core import messages as fmt
from repro.core.group import GroupContext
from repro.core.server import AtomServer, Behavior
from repro.crypto.commit import verify_commitment


@pytest.fixture()
def entry_setup(toy_group):
    servers = [AtomServer(server_id=i, group=toy_group) for i in range(3)]
    ctx = GroupContext(gid=0, servers=servers, group=toy_group)
    client = Client(toy_group)
    return ctx, client


class TestClientPlain:
    def test_submission_verifies(self, toy_group, entry_setup):
        ctx, client = entry_setup
        sub = client.prepare_plain(b"hello", ctx.public_key, 0, payload_size=24)
        assert sub.verify(toy_group, ctx.public_key, gid=0)

    def test_wrong_gid_rejected(self, toy_group, entry_setup):
        ctx, client = entry_setup
        sub = client.prepare_plain(b"hello", ctx.public_key, 0, payload_size=24)
        assert not sub.verify(toy_group, ctx.public_key, gid=1)

    def test_proof_count_matches_parts(self, toy_group, entry_setup):
        ctx, client = entry_setup
        sub = client.prepare_plain(b"hello" * 4, ctx.public_key, 0, payload_size=40)
        assert len(sub.proofs) == len(sub.vector.parts) > 1

    def test_truncated_proofs_rejected(self, toy_group, entry_setup):
        from repro.core.client import Submission

        ctx, client = entry_setup
        sub = client.prepare_plain(b"hello" * 4, ctx.public_key, 0, payload_size=40)
        broken = Submission(vector=sub.vector, proofs=sub.proofs[:-1])
        assert not broken.verify(toy_group, ctx.public_key, gid=0)


class TestClientTrapPair:
    @pytest.fixture()
    def trap_setup(self, toy_group, entry_setup):
        from repro.core.trustees import TrusteeGroup

        ctx, client = entry_setup
        trustees = TrusteeGroup(toy_group, num_trustees=3)
        spec = fmt.PayloadSpec.for_deployment(toy_group, 16, trap_variant=True)
        return ctx, client, trustees, spec

    def test_pair_verifies(self, toy_group, trap_setup):
        ctx, client, trustees, spec = trap_setup
        sub, _ = client.prepare_trap_pair(
            b"msg", ctx.public_key, trustees.public_key, 0, spec.payload_size, 16
        )
        assert sub.verify(toy_group, ctx.public_key)

    def test_commitment_opens_to_trap(self, toy_group, trap_setup):
        ctx, client, trustees, spec = trap_setup
        sub, trap_payload = client.prepare_trap_pair(
            b"msg", ctx.public_key, trustees.public_key, 0, spec.payload_size, 16
        )
        assert verify_commitment(sub.trap_commitment, trap_payload)
        gid, nonce = fmt.parse_trap_payload(trap_payload)
        assert gid == 0 and len(nonce) == 16

    def test_pair_payloads_same_size(self, toy_group, trap_setup):
        """Traps and inner ciphertexts must be indistinguishable."""
        ctx, client, trustees, spec = trap_setup
        sub, _ = client.prepare_trap_pair(
            b"msg", ctx.public_key, trustees.public_key, 0, spec.payload_size, 16
        )
        sizes = {len(s.vector.parts) for s in sub.pair}
        assert len(sizes) == 1

    def test_pair_order_varies(self, toy_group, trap_setup):
        """The trap position within the pair must be random (the 50%
        detection probability depends on it)."""
        from repro.crypto.groups import DeterministicRng

        ctx, _, trustees, spec = trap_setup
        orders = set()
        for seed in range(12):
            client = Client(toy_group, rng=DeterministicRng(bytes([seed])))
            sub, trap_payload = client.prepare_trap_pair(
                b"msg", ctx.public_key, trustees.public_key, 0, spec.payload_size, 16
            )
            # which element of the pair is the trap?
            secrets_sum = sum(ctx.reveal_secrets()) % toy_group.q
            first = toy_group.decode_chunks(
                ctx.scheme.decrypt(secrets_sum, p) for p in sub.pair[0].vector.parts
            )
            orders.add(first == trap_payload)
        assert orders == {True, False}


class TestIntegration128Bit:
    """Rounds on the TEST (128-bit) group with realistic payloads."""

    def test_trap_round_with_32_byte_messages(self):
        config = DeploymentConfig(
            num_servers=8,
            num_groups=2,
            group_size=3,
            variant="trap",
            iterations=3,
            message_size=32,
            crypto_group="TEST",
        )
        dep = AtomDeployment(config)
        rnd = dep.start_round(0)
        msgs = [f"32-byte-ish message number {i:03d}".encode() for i in range(4)]
        for i, m in enumerate(msgs):
            dep.submit_trap(rnd, m, entry_gid=i % 2)
        result = dep.run_round(rnd)
        assert result.ok
        assert sorted(result.messages) == sorted(msgs)

    def test_manytrust_nizk_combination(self):
        """NIZK verification and threshold mixing compose."""
        config = DeploymentConfig(
            num_servers=10,
            num_groups=2,
            group_size=4,
            variant="nizk",
            mode="manytrust",
            h=2,
            iterations=2,
            message_size=8,
            crypto_group="TOY",
            nizk_rounds=4,
        )
        dep = AtomDeployment(config)
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(4)]
        for i, m in enumerate(msgs):
            dep.submit_plain(rnd, m, entry_gid=i % 2)
        rnd.contexts[1].servers[0].fail()  # within the h-1 budget
        result = dep.run_round(rnd)
        assert result.ok
        assert sorted(result.messages) == sorted(msgs)

    def test_two_malicious_servers_in_different_groups(self):
        """Multiple tamperings multiply detection odds (2^-kappa)."""
        config = DeploymentConfig(
            num_servers=8,
            num_groups=2,
            group_size=2,
            variant="trap",
            iterations=2,
            message_size=8,
            crypto_group="TOY",
        )
        aborts = 0
        trials = 12
        for trial in range(trials):
            from repro.crypto.groups import DeterministicRng

            rng = DeterministicRng(b"two-tamper-%d" % trial)
            dep = AtomDeployment(config)
            rnd = dep.start_round(trial, rng)
            rnd.contexts[0].servers[0].behavior = Behavior.REPLACE_ONE
            rnd.contexts[1].servers[0].behavior = Behavior.REPLACE_ONE
            client = Client(dep.group, rng)
            for i in range(4):
                dep.submit_trap(rnd, f"m{i}".encode(), entry_gid=i % 2, client=client)
            result = dep.run_round(rnd, rng)
            aborts += result.aborted
        # Two independent tamperings evade with probability ~1/4, so
        # E[aborts] = 9.  Seeded trials make the observed count a fixed
        # value; the p=3/4 binomial bound (P[<5] ~ 3e-3 over seeds, a
        # recurring flake when this drew fresh randomness) still
        # documents the statistic being reproduced.
        assert aborts >= 5

    def test_audit_totals_accumulate(self):
        config = DeploymentConfig(
            num_servers=6,
            num_groups=2,
            group_size=2,
            variant="basic",
            iterations=3,
            message_size=8,
            crypto_group="TOY",
        )
        dep = AtomDeployment(config)
        rnd = dep.start_round(0)
        for i in range(4):
            dep.submit_plain(rnd, f"m{i}".encode(), entry_gid=i % 2)
        result = dep.run_round(rnd)
        # one audit per group per layer
        assert len(result.audits) == config.num_groups * config.iterations
        assert result.bytes_sent_total == sum(a.bytes_sent for a in result.audits)
