"""Tests for §3 dummy-message padding (cover traffic for uneven loads
and the butterfly topology)."""

import pytest

from repro.core import AtomDeployment, DeploymentConfig
from repro.core import messages as fmt


def config(**overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="basic",
        iterations=3,
        message_size=24,
        crypto_group="TOY",
    )
    base.update(overrides)
    return DeploymentConfig(**base)


class TestDummyPayloadFormat:
    def test_build_and_detect(self):
        payload = fmt.build_dummy_payload(b"n" * 12, 64)
        assert fmt.is_dummy_payload(payload)
        assert not fmt.is_trap_payload(payload)
        assert not fmt.is_inner_payload(payload)

    def test_same_size_as_plain(self):
        assert len(fmt.build_dummy_payload(b"n" * 12, 64)) == len(
            fmt.build_plain_payload(b"msg", 64)
        )

    def test_garbage_is_not_dummy(self):
        assert not fmt.is_dummy_payload(b"\xff" * 10)


class TestPadRoundBasic:
    def test_uneven_load_padded_and_round_succeeds(self):
        dep = AtomDeployment(config())
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(3)]  # uneven: 2 vs 1
        for i, m in enumerate(msgs):
            dep.submit_plain(rnd, m, entry_gid=i % 2)
        added = dep.pad_round(rnd)
        assert added >= 1
        result = dep.run_round(rnd)
        assert result.ok
        # dummies are filtered out: exactly the user messages remain
        assert sorted(result.messages) == sorted(msgs)

    def test_empty_groups_padded(self):
        dep = AtomDeployment(config())
        rnd = dep.start_round(0)
        dep.submit_plain(rnd, b"lonely", entry_gid=0)
        dep.pad_round(rnd)
        result = dep.run_round(rnd)
        assert result.ok
        assert result.messages == [b"lonely"]

    def test_counts_divisible_after_padding(self):
        dep = AtomDeployment(config(num_groups=4, num_servers=10))
        rnd = dep.start_round(0)
        for i in range(5):
            dep.submit_plain(rnd, f"m{i}".encode(), entry_gid=i % 4)
        dep.pad_round(rnd)
        beta = rnd.topology.beta
        counts = {gid: len(v) for gid, v in rnd.holdings.items()}
        assert len(set(counts.values())) == 1
        assert next(iter(counts.values())) % beta == 0

    def test_nizk_variant_padding(self):
        dep = AtomDeployment(config(variant="nizk", nizk_rounds=4, iterations=2))
        rnd = dep.start_round(0)
        dep.submit_plain(rnd, b"solo", entry_gid=1)
        dep.pad_round(rnd)
        result = dep.run_round(rnd)
        assert result.ok
        assert result.messages == [b"solo"]


class TestPadRoundTrap:
    def test_trap_variant_dummies_are_full_pairs(self):
        dep = AtomDeployment(config(variant="trap"))
        rnd = dep.start_round(0)
        msgs = [f"m{i}".encode() for i in range(3)]
        for i, m in enumerate(msgs):
            dep.submit_trap(rnd, m, entry_gid=i % 2)
        before = sum(len(c) for c in rnd.commitments.values())
        added = dep.pad_round(rnd)
        after = sum(len(c) for c in rnd.commitments.values())
        assert added >= 1
        assert after == before + added  # each dummy registered a trap
        result = dep.run_round(rnd)
        assert result.ok
        assert sorted(result.messages) == sorted(msgs)

    def test_butterfly_with_padding(self):
        dep = AtomDeployment(config(topology="butterfly", variant="trap"))
        rnd = dep.start_round(0)
        dep.submit_trap(rnd, b"real message", entry_gid=0)
        dep.pad_round(rnd)
        result = dep.run_round(rnd)
        assert result.ok
        assert result.messages == [b"real message"]
