"""End-to-end tests for the multi-round stream engine (§4.5–§4.7).

Everything here is seeded: the engine threads one DeterministicRng
through client flips, shuffles, and key generation, so trap-catch
coin flips and blame outcomes are reproducible.
"""

import pytest

from repro.core import DeploymentConfig, FaultSchedule, StreamConfig, StreamEngine
from repro.core.pipeline import FaultEvent, FaultScheduleError
from repro.core.server import Behavior


def stream_config(**overrides):
    base = dict(
        num_servers=8,
        num_groups=2,
        group_size=4,
        variant="trap",
        mode="manytrust",
        h=2,
        iterations=4,
        message_size=16,
        crypto_group="TOY",
        nizk_rounds=4,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def expected_messages(report, users=4):
    for stats in report.rounds:
        assert sorted(stats.messages) == sorted(
            f"r{stats.round_id}u{i}".encode() for i in range(users)
        ), f"round {stats.round_id} lost or corrupted messages"


@pytest.mark.fast
class TestFaultScheduleParsing:
    def test_round_trip(self):
        spec = (
            "r2.i1:fail-group:0:2;r5:tamper-group:1:0:replace_one;"
            "r8:user:duplicate_inner@1;r3:fail:7;r4:recover:7;"
            "r6:tamper:2:bad_shuffle"
        )
        schedule = FaultSchedule.parse(spec)
        assert len(schedule.events) == 6
        assert ";".join(ev.describe() for ev in schedule.events) == spec

    def test_iteration_granularity(self):
        schedule = FaultSchedule.parse("r3.i2:fail:1")
        assert schedule.server_events(3, 2) == [
            FaultEvent(3, "fail", 1, iteration=2)
        ]
        assert schedule.server_events(3, None) == []
        assert schedule.server_events(2, 2) == []

    def test_user_events_filtered_by_round(self):
        schedule = FaultSchedule.parse("r4:user:two_traps@0")
        assert schedule.user_events(4)[0].attack == "two_traps"
        assert schedule.user_events(3) == []
        assert schedule.server_events(4, None) == []

    @pytest.mark.parametrize(
        "bad",
        [
            "x3:fail:1",             # missing round prefix
            "r3:explode:1",          # unknown action
            "r3:tamper:1:nonsense",  # unknown behavior
            "r3:user:phish@0",       # unknown attack
            "r3:fail-group:0",       # missing count
            "r:fail:1",              # missing round number
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(FaultScheduleError):
            FaultSchedule.parse(bad)

    def test_user_attack_requires_trap_variant(self):
        schedule = FaultSchedule.parse("r1:user:two_traps@0")
        with pytest.raises(FaultScheduleError):
            StreamEngine(stream_config(variant="basic"), schedule)

    @pytest.mark.parametrize(
        "spec",
        [
            "r1:fail-group:9:2",           # no group 9
            "r1:user:two_traps@7",         # no group 7
            "r1:tamper-group:0:9:replace_one",  # no member position 9
        ],
    )
    def test_out_of_range_targets_rejected_at_construction(self, spec):
        with pytest.raises(FaultScheduleError):
            StreamEngine(stream_config(), FaultSchedule.parse(spec))

    def test_unknown_server_id_fails_cleanly_at_runtime(self):
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse("r0:fail:99"),
            StreamConfig(rounds=1, users_per_round=4, seed=b"badsrv"),
        )
        with pytest.raises(FaultScheduleError, match="unknown server 99"):
            engine.run()


class TestHonestStream:
    def test_stream_delivers_every_round(self):
        engine = StreamEngine(
            stream_config(),
            stream=StreamConfig(rounds=3, users_per_round=4, seed=b"honest"),
        )
        report = engine.run()
        assert report.ok
        assert len(report.rounds) == 3
        expected_messages(report)

    def test_contexts_and_keys_reused_across_rounds(self):
        """The stream's tentpole reuse: one group-key epoch, one pool."""
        engine = StreamEngine(
            stream_config(),
            stream=StreamConfig(rounds=3, users_per_round=4, seed=b"reuse"),
        )
        keys = []
        original_start = engine.deployment.start_round

        def spying_start(round_id=0, rng=None, contexts=None):
            rnd = original_start(round_id, rng=rng, contexts=contexts)
            keys.append(tuple(ctx.public_key for ctx in rnd.contexts))
            return rnd

        engine.deployment.start_round = spying_start
        report = engine.run()
        assert report.ok
        assert len(set(keys)) == 1, "group keys must persist across the epoch"

    def test_intake_overlaps_previous_mixing(self):
        engine = StreamEngine(
            stream_config(),
            stream=StreamConfig(rounds=4, users_per_round=4, seed=b"overlap"),
        )
        report = engine.run()
        assert report.ok
        # Round 0 has nothing to hide inside; every later round's intake
        # must have ridden inside the previous round's mix window.
        for stats in report.rounds[1:]:
            assert stats.overlap_s > 0, f"round {stats.round_id} never overlapped"
            assert stats.overlap_s <= stats.intake_s + 1e-9

    def test_overlap_can_be_disabled(self):
        engine = StreamEngine(
            stream_config(),
            stream=StreamConfig(
                rounds=3, users_per_round=4, seed=b"serial", overlap_intake=False
            ),
        )
        report = engine.run()
        assert report.ok
        assert all(stats.overlap_s == 0 for stats in report.rounds)

    def test_basic_variant_stream(self):
        engine = StreamEngine(
            stream_config(variant="basic"),
            stream=StreamConfig(rounds=3, users_per_round=4, seed=b"basic"),
        )
        report = engine.run()
        assert report.ok
        expected_messages(report)


class TestBuddyRecoveryMidStream:
    def test_beyond_threshold_stall_recovers_without_rekeying(self):
        """§4.5 end to end: kill h members mid-stream, assert the
        restored group keeps the group key and the stream finishes."""
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse("r1.i1:fail-group:0:2"),
            StreamConfig(rounds=4, users_per_round=4, seed=b"buddy"),
        )
        # establish the epoch up front to capture its keys before the
        # stream's recovery mutates the shared context list
        first_round = engine._new_round(0)
        keys_before = [ctx.public_key for ctx in first_round.contexts]
        report = engine.run()
        assert report.ok
        assert report.rounds[1].recovered_gids == [0]
        assert report.total_recoveries == 1
        expected_messages(report)
        # same key, new servers: recovery did not rekey the group
        assert engine.contexts[0].public_key == keys_before[0]
        assert all(not s.failed for s in engine.contexts[0].servers)

    def test_within_threshold_churn_needs_no_recovery(self):
        """h-1 fail-stops are absorbed by the threshold scheme alone."""
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse("r1.i1:fail-group:0:1"),
            StreamConfig(rounds=3, users_per_round=4, seed=b"churn"),
        )
        report = engine.run()
        assert report.ok
        assert report.total_recoveries == 0
        expected_messages(report)

    def test_discarded_layer_restores_tamper_budget(self):
        """A tampering spent inside a layer that then stalls is wiped
        with the layer's outputs; the budget must come back so the
        scheduled fault still happens on the retried layer."""
        from repro.core import AtomDeployment

        with AtomDeployment(stream_config()) as dep:
            rnd = dep.start_round(0)
            tamperer = rnd.contexts[0].servers[0]
            tamperer.behavior = Behavior.REPLACE_ONE
            for i in range(4):
                dep.submit_trap(rnd, f"m{i}".encode(), entry_gid=i % 2)
            dep.pad_round(rnd)
            # group 1 (mixed after group 0 within the layer) stalls
            for server in rnd.contexts[1].servers[:3]:
                server.fail()
            run = dep.begin_mixing(rnd)
            with pytest.raises(Exception, match="alive"):
                run.run_layer()
            assert tamperer.tamper_budget == 1, (
                "budget spent in the discarded layer must be restored"
            )

    def test_anytrust_stall_is_fatal(self):
        """No buddy escrow in anytrust mode: a stall ends the stream."""
        engine = StreamEngine(
            stream_config(mode="anytrust", h=1, group_size=2, num_servers=6),
            FaultSchedule.parse("r1.i1:fail-group:0:1"),
            StreamConfig(rounds=3, users_per_round=4, seed=b"fatal"),
        )
        with pytest.raises(RuntimeError, match="no buddy escrow"):
            engine.run()


class TestAdversarialStream:
    def test_trap_catch_blame_and_retry_end_to_end(self):
        """The PR's headline scenario: a tampering server and a
        double-writing user hit one stream.  The trap/dedup checks
        catch both, blame names exactly the guilty user ids, and the
        honest users' messages survive the retry rounds."""
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse(
                "r1:tamper-group:1:0:replace_one;r2:user:duplicate_inner@1"
            ),
            # seed chosen so the round-1 tampering trips a trap (the
            # honest coin evades with probability 1/2; re-picked for the
            # envelope engine's per-(layer, group) sub-seed draw order)
            StreamConfig(rounds=4, users_per_round=4, seed=b"atom-net"),
        )
        report = engine.run()
        assert report.ok, [s.abort_reasons for s in report.rounds]

        tampered = report.rounds[1]
        assert tampered.attempts == 2, "tampering must abort the first attempt"
        assert tampered.abort_reasons and not tampered.blamed_users, (
            "server tampering aborts but blames no user"
        )
        assert tampered.rekeyed, (
            "blame opened the entry-group keys even though it named "
            "nobody; the epoch must still rekey"
        )

        double_write = report.rounds[2]
        assert double_write.attempts == 2
        malicious = tuple(sorted(engine._malicious_uids[2]))
        assert double_write.blamed_users == malicious
        assert len(malicious) == 2, "both sybil writers are guilty"
        assert double_write.rekeyed, "blame reveals keys; the epoch must rekey"

        # Every round's honest messages came through despite the retries.
        expected_messages(report)

    def test_nizk_tamper_abort_retries_clean(self):
        """A nizk tamperer is named immediately; the retry must disarm
        it (its budget was restored with the discarded layer) so the
        honest rerun succeeds."""
        engine = StreamEngine(
            stream_config(variant="nizk"),
            FaultSchedule.parse("r1:tamper-group:1:0:replace_one"),
            StreamConfig(rounds=3, users_per_round=4, seed=b"nizk-retry"),
        )
        report = engine.run()
        assert report.ok
        assert report.rounds[1].attempts == 2
        assert len(report.rounds[1].abort_reasons) == 1
        expected_messages(report)

    def test_buddy_without_quorum_fails_cleanly(self):
        """If the buddy itself lost quorum, recovery must surface a
        clear stream-stalled error, not a raw GroupStalled."""
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse("r1.i1:fail-group:0:2;r1.i1:fail-group:1:2"),
            StreamConfig(rounds=3, users_per_round=4, seed=b"dual-stall"),
        )
        with pytest.raises(RuntimeError, match="buddy group 1 has only"):
            engine.run()

    def test_iteration_beyond_depth_rejected(self):
        with pytest.raises(FaultScheduleError, match="has 4 layers"):
            StreamEngine(stream_config(), FaultSchedule.parse("r2.i9:fail:0"))

    def test_bad_commitment_user_blamed(self):
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse("r1:user:bad_commitment@0"),
            StreamConfig(rounds=3, users_per_round=4, seed=b"commitment"),
        )
        report = engine.run()
        assert report.ok
        stats = report.rounds[1]
        assert stats.blamed_users == tuple(engine._malicious_uids[1])
        expected_messages(report)

    def test_blame_rekeys_even_without_retry(self):
        """Blame reveals the epoch's entry-group keys; the stream must
        move to a fresh epoch whether or not the round is retried."""
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse("r1:user:duplicate_inner@1"),
            StreamConfig(
                rounds=4, users_per_round=4, seed=b"norekey-retry",
                retry_aborted=False,
            ),
        )
        report = engine.run()
        aborted = report.rounds[1]
        assert not aborted.ok and aborted.blamed_users
        assert aborted.rekeyed, "revealed keys must force a fresh epoch"
        assert all(s.ok for s in report.rounds[2:]), (
            "the stream continues on the new epoch"
        )

    def test_two_traps_user_blamed(self):
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse("r1:user:two_traps@1"),
            StreamConfig(rounds=3, users_per_round=4, seed=b"twotraps"),
        )
        report = engine.run()
        assert report.ok
        assert report.rounds[1].blamed_users == tuple(engine._malicious_uids[1])
        expected_messages(report)


@pytest.mark.slow
class TestLongStreamAcceptance:
    def test_twenty_rounds_with_full_fault_schedule(self):
        """The PR acceptance scenario: >= 20 consecutive rounds under a
        schedule with a beyond-threshold stall, a tampering server, and
        a malicious user — recovery and blame both trigger, and intake
        overlap shows up in the per-round wall clock."""
        engine = StreamEngine(
            stream_config(),
            FaultSchedule.parse(
                "r2.i1:fail-group:0:2;"
                "r5:tamper-group:1:0:replace_one;"
                "r8:user:duplicate_inner@1"
            ),
            # seed chosen so the round-5 tampering trips a trap under
            # exactly this config's deterministic randomness stream
            # (re-picked for the envelope engine's sub-seed draw order)
            StreamConfig(rounds=20, users_per_round=4, seed=b"sosp17-wire"),
        )
        report = engine.run()
        assert report.ok
        assert len(report.rounds) == 20
        assert report.total_recoveries >= 1
        assert report.total_blames >= 1
        assert report.rounds[5].attempts == 2  # tamper caught under this seed
        assert len(report.overlapped_rounds()) >= 15
        expected_messages(report)
        table = report.format_table()
        assert "recovered=g0" in table and "blamed=" in table
