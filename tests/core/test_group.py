"""Tests for the group mixing protocol (Algorithms 1 and 2)."""

import pytest

from repro.core.group import GroupContext, GroupStalled, ProtocolAbort
from repro.core.server import AtomServer, Behavior
from repro.crypto.elgamal import AtomElGamal
from repro.crypto.vector import CiphertextVector, encrypt_vector, plaintext_of


def make_group(toy_group, gid=0, size=3, mode="anytrust", h=1, nizk_rounds=4):
    servers = [AtomServer(server_id=gid * 100 + i, group=toy_group) for i in range(size)]
    return GroupContext(gid, servers, toy_group, mode=mode, h=h, nizk_rounds=nizk_rounds)


def encrypt_to(toy_group, ctx, payloads):
    scheme = AtomElGamal(toy_group)
    return [encrypt_vector(scheme, ctx.public_key, p)[0] for p in payloads]


def decrypt_final(ctx, batches):
    return [plaintext_of(ctx.scheme, vec) for batch in batches for vec in batch]


class TestGroupFormation:
    def test_anytrust_key_is_member_product(self, toy_group):
        ctx = make_group(toy_group)
        expected = toy_group.identity
        for kp in ctx.member_keys:
            expected = expected * kp.public
        assert ctx.public_key == expected

    def test_manytrust_threshold(self, toy_group):
        ctx = make_group(toy_group, size=5, mode="manytrust", h=2)
        assert ctx.threshold == 4

    def test_anytrust_h_must_be_one(self, toy_group):
        with pytest.raises(ValueError):
            make_group(toy_group, mode="anytrust", h=2)

    def test_unknown_mode(self, toy_group):
        with pytest.raises(ValueError):
            make_group(toy_group, mode="zerotrust")

    def test_participants_all_when_healthy(self, toy_group):
        ctx = make_group(toy_group, size=4)
        assert ctx.participants() == [0, 1, 2, 3]

    def test_anytrust_stalls_on_any_failure(self, toy_group):
        ctx = make_group(toy_group, size=3)
        ctx.servers[1].fail()
        with pytest.raises(GroupStalled):
            ctx.participants()

    def test_manytrust_tolerates_h_minus_1(self, toy_group):
        ctx = make_group(toy_group, size=5, mode="manytrust", h=2)
        ctx.servers[0].fail()
        assert len(ctx.participants()) == 4

    def test_manytrust_stalls_beyond_h_minus_1(self, toy_group):
        ctx = make_group(toy_group, size=5, mode="manytrust", h=2)
        ctx.servers[0].fail()
        ctx.servers[1].fail()
        with pytest.raises(GroupStalled):
            ctx.participants()


class TestAlgorithm1:
    """Basic group protocol: shuffle -> divide -> reencrypt."""

    def test_final_layer_reveals_plaintexts(self, toy_group):
        ctx = make_group(toy_group)
        payloads = [bytes([i]) * 4 for i in range(6)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, audit = ctx.mix(vectors, next_keys=[None])
        out = decrypt_final(ctx, batches)
        assert sorted(out) == sorted(payloads)

    def test_forwarding_to_next_group(self, toy_group):
        first = make_group(toy_group, gid=0)
        second = make_group(toy_group, gid=1)
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, first, payloads)
        batches, _ = first.mix(vectors, next_keys=[second.public_key])
        forwarded = batches[0]
        # next group can fully decrypt
        batches2, _ = second.mix(forwarded, next_keys=[None])
        out = decrypt_final(second, batches2)
        assert sorted(out) == sorted(payloads)

    def test_split_into_multiple_batches(self, toy_group):
        first = make_group(toy_group, gid=0)
        nexts = [make_group(toy_group, gid=1), make_group(toy_group, gid=2)]
        payloads = [bytes([i]) * 4 for i in range(6)]
        vectors = encrypt_to(toy_group, first, payloads)
        batches, _ = first.mix(vectors, next_keys=[n.public_key for n in nexts])
        assert [len(b) for b in batches] == [3, 3]
        out = []
        for ctx, batch in zip(nexts, batches):
            final, _ = ctx.mix(batch, next_keys=[None])
            out.extend(decrypt_final(ctx, final))
        assert sorted(out) == sorted(payloads)

    def test_uneven_division_rejected(self, toy_group):
        ctx = make_group(toy_group)
        payloads = [bytes([i]) * 4 for i in range(5)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        with pytest.raises(ValueError):
            ctx.mix(vectors, next_keys=[None, None])

    def test_no_successors_rejected(self, toy_group):
        ctx = make_group(toy_group)
        with pytest.raises(ValueError):
            ctx.mix([], next_keys=[])

    def test_mixing_permutes(self, toy_group):
        """With high probability, the output order differs from input."""
        ctx = make_group(toy_group)
        payloads = [bytes([i]) * 4 for i in range(16)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, _ = ctx.mix(vectors, next_keys=[None])
        out = decrypt_final(ctx, batches)
        assert out != payloads  # p(identity) = 1/16!

    def test_manytrust_mixing_with_failure(self, toy_group):
        ctx = make_group(toy_group, size=4, mode="manytrust", h=2)
        ctx.servers[2].fail()
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, _ = ctx.mix(vectors, next_keys=[None])
        assert sorted(decrypt_final(ctx, batches)) == sorted(payloads)

    def test_audit_byte_accounting(self, toy_group):
        ctx = make_group(toy_group)
        vectors = encrypt_to(toy_group, ctx, [b"abcd"])
        _, audit = ctx.mix(vectors, next_keys=[None])
        assert audit.bytes_sent > 0


class TestAlgorithm2:
    """NIZK-verified group protocol."""

    def test_honest_run_with_proofs(self, toy_group):
        ctx = make_group(toy_group, size=2)
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, audit = ctx.mix_with_reenc_proofs(vectors, next_keys=[None])
        assert sorted(decrypt_final(ctx, batches)) == sorted(payloads)
        assert audit.shuffles_proved == 2
        assert audit.reencs_proved > 0

    def test_bad_shuffle_detected(self, toy_group):
        ctx = make_group(toy_group, size=2)
        ctx.servers[0].behavior = Behavior.BAD_SHUFFLE
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        with pytest.raises(ProtocolAbort) as excinfo:
            ctx.mix_with_reenc_proofs(vectors, next_keys=[None])
        assert excinfo.value.culprit == ctx.servers[0].server_id
        assert excinfo.value.stage == "shuffle"

    def test_replace_detected(self, toy_group):
        ctx = make_group(toy_group, size=2)
        ctx.servers[1].behavior = Behavior.REPLACE_ONE
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        with pytest.raises(ProtocolAbort):
            ctx.mix_with_reenc_proofs(vectors, next_keys=[None])

    def test_shuffle_only_verification_mode(self, toy_group):
        """mix(verify=True) checks shuffles but skips ReEnc proofs."""
        ctx = make_group(toy_group, size=2)
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, audit = ctx.mix(vectors, next_keys=[None], verify=True)
        assert audit.shuffles_proved == 2
        assert audit.reencs_proved == 0
        assert sorted(decrypt_final(ctx, batches)) == sorted(payloads)

    def test_bad_shuffle_detected_in_verify_mode(self, toy_group):
        ctx = make_group(toy_group, size=2)
        ctx.servers[1].behavior = Behavior.BAD_SHUFFLE
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        with pytest.raises(ProtocolAbort):
            ctx.mix(vectors, next_keys=[None], verify=True)


class TestTamperingHooks:
    def test_trap_variant_tampering_flows_through(self, toy_group):
        """Without NIZKs, tampering is not caught during mixing."""
        ctx = make_group(toy_group, size=2)
        ctx.servers[0].behavior = Behavior.REPLACE_ONE
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, audit = ctx.mix(vectors, next_keys=[None])
        assert audit.tamperings  # recorded but not blocked
        out = decrypt_final(ctx, batches)
        assert sorted(out) != sorted(payloads)  # one message replaced

    def test_tamper_budget_limits_attacks(self, toy_group):
        ctx = make_group(toy_group, size=2)
        ctx.servers[0].behavior = Behavior.REPLACE_ONE
        ctx.servers[0].tamper_budget = 0
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, audit = ctx.mix(vectors, next_keys=[None])
        assert not audit.tamperings
        assert sorted(decrypt_final(ctx, batches)) == sorted(payloads)

    def test_duplicate_behavior(self, toy_group):
        ctx = make_group(toy_group, size=2)
        ctx.servers[0].behavior = Behavior.DUPLICATE_ONE
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = encrypt_to(toy_group, ctx, payloads)
        batches, audit = ctx.mix(vectors, next_keys=[None])
        out = decrypt_final(ctx, batches)
        assert audit.tamperings
        assert len(out) == len(set(out)) + 1  # one duplicate present


class TestRevealSecrets:
    def test_anytrust_reveal_matches_group_key(self, toy_group):
        ctx = make_group(toy_group)
        total = sum(ctx.reveal_secrets()) % toy_group.q
        assert toy_group.g ** total == ctx.public_key

    def test_manytrust_reveal_reconstructs(self, toy_group):
        from repro.crypto.secret_sharing import Share, shamir_reconstruct

        ctx = make_group(toy_group, size=4, mode="manytrust", h=2)
        values = ctx.reveal_secrets()
        shares = [Share(i + 1, v) for i, v in enumerate(values)]
        secret = shamir_reconstruct(toy_group, shares[: ctx.threshold])
        assert toy_group.g ** secret == ctx.public_key
