"""Tests for the directory (group formation, staggering) and the
trustee group's release logic."""

import pytest

from repro.core.directory import Directory, DirectoryConfig, make_fleet
from repro.core.server import AtomServer
from repro.core.trustees import GroupReport, KeyWithheld, TrusteeGroup
from repro.crypto.beacon import RandomnessBeacon
from repro.crypto.elgamal import AtomElGamal


@pytest.fixture()
def directory(toy_group):
    servers = [AtomServer(server_id=i, group=toy_group) for i in range(12)]
    return Directory(
        servers,
        toy_group,
        beacon=RandomnessBeacon(b"dir-test"),
        config=DirectoryConfig(group_size=3),
    )


class TestDirectory:
    def test_group_formation_deterministic(self, directory):
        a = directory.form_groups(0, num_groups=4)
        b = directory.form_groups(0, num_groups=4)
        for ga, gb in zip(a, b):
            assert [s.server_id for s in ga.servers] == [
                s.server_id for s in gb.servers
            ]

    def test_rounds_resample_groups(self, directory):
        a = directory.form_groups(0, num_groups=4)
        b = directory.form_groups(1, num_groups=4)
        ids_a = [[s.server_id for s in g.servers] for g in a]
        ids_b = [[s.server_id for s in g.servers] for g in b]
        assert ids_a != ids_b

    def test_group_keys_fresh_per_round(self, directory):
        a = directory.form_groups(0, num_groups=2)
        b = directory.form_groups(0, num_groups=2)
        # same membership but freshly generated keys (§4.4: keys change
        # across rounds, preventing replay)
        assert a[0].public_key != b[0].public_key

    def test_staggering_rotates_positions(self, directory):
        """§4.7: a server appearing in several groups should not always
        hold the same position."""
        contexts = directory.form_groups(0, num_groups=8)
        positions = directory.utilization_positions(contexts)
        multi = [p for p in positions if len(p) >= 3]
        assert multi, "expected servers serving in several groups"
        assert any(len(set(p)) > 1 for p in multi)

    def test_required_group_size_security_derivation(self, toy_group):
        servers = [AtomServer(server_id=i, group=toy_group) for i in range(40)]
        directory = Directory(
            servers, toy_group, config=DirectoryConfig(group_size=None)
        )
        assert directory.required_group_size(1024) == 32  # §4.1

    def test_empty_directory_rejected(self, toy_group):
        with pytest.raises(ValueError):
            Directory([], toy_group)

    def test_make_fleet_mix(self, toy_group):
        fleet = make_fleet(100, toy_group)
        cores = [s.cores for s in fleet]
        assert cores.count(4) == 80
        assert cores.count(8) == 10
        assert cores.count(16) == 5
        assert cores.count(32) == 5


class TestTrustees:
    def _clean_report(self, gid, traps=2, inner=2):
        return GroupReport(gid=gid, traps_ok=True, inner_ok=True,
                           num_traps=traps, num_inner=inner)

    def test_release_on_clean_reports(self, toy_group):
        trustees = TrusteeGroup(toy_group, num_trustees=3)
        for gid in range(4):
            trustees.submit_report(self._clean_report(gid))
        shares = trustees.evaluate(expected_groups=4)
        assert len(shares) == trustees.threshold
        secret = trustees.secret_key()
        assert toy_group.g ** secret == trustees.public_key

    def test_withheld_on_bad_trap_report(self, toy_group):
        trustees = TrusteeGroup(toy_group, num_trustees=3)
        trustees.submit_report(self._clean_report(0))
        trustees.submit_report(
            GroupReport(gid=1, traps_ok=False, inner_ok=True, num_traps=2, num_inner=2)
        )
        with pytest.raises(KeyWithheld) as excinfo:
            trustees.evaluate(expected_groups=2)
        assert excinfo.value.offending_gids == [1]

    def test_withheld_on_count_mismatch(self, toy_group):
        trustees = TrusteeGroup(toy_group, num_trustees=3)
        trustees.submit_report(self._clean_report(0, traps=3, inner=2))
        trustees.submit_report(self._clean_report(1))
        with pytest.raises(KeyWithheld, match="count mismatch"):
            trustees.evaluate(expected_groups=2)

    def test_withheld_on_missing_reports(self, toy_group):
        trustees = TrusteeGroup(toy_group, num_trustees=3)
        trustees.submit_report(self._clean_report(0))
        with pytest.raises(KeyWithheld, match="missing"):
            trustees.evaluate(expected_groups=2)

    def test_shares_deleted_after_abort(self, toy_group):
        """A failed round can never be decrypted later (§4.4)."""
        trustees = TrusteeGroup(toy_group, num_trustees=3)
        trustees.submit_report(
            GroupReport(gid=0, traps_ok=False, inner_ok=True, num_traps=1, num_inner=1)
        )
        with pytest.raises(KeyWithheld):
            trustees.evaluate(expected_groups=1)
        with pytest.raises(RuntimeError):
            trustees.submit_report(self._clean_report(0))
        with pytest.raises(RuntimeError):
            trustees.secret_key()

    def test_key_not_available_before_evaluate(self, toy_group):
        trustees = TrusteeGroup(toy_group, num_trustees=3)
        with pytest.raises(RuntimeError):
            trustees.secret_key()

    def test_threshold_trustees(self, toy_group):
        """Trustees double as a highly available threshold group."""
        trustees = TrusteeGroup(toy_group, num_trustees=5, threshold=3)
        scheme = AtomElGamal(toy_group)
        m = toy_group.encode(b"x")
        ct, _ = scheme.encrypt(trustees.public_key, m)
        for gid in range(2):
            trustees.submit_report(self._clean_report(gid))
        trustees.evaluate(expected_groups=2)
        assert scheme.decrypt(trustees.secret_key(), ct) == m
