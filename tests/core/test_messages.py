"""Tests for wire formats: padding, traps, inner ciphertexts."""

import pytest

from repro.core import messages as fmt
from repro.crypto.groups import get_group
from repro.crypto.kem import cca2_encrypt
from repro.crypto.elgamal import AtomElGamal


@pytest.fixture(scope="module")
def group():
    return get_group("TOY")


class TestPadding:
    def test_roundtrip(self):
        assert fmt.unpad_payload(fmt.pad_payload(b"hi", 32)) == b"hi"

    def test_empty(self):
        assert fmt.unpad_payload(fmt.pad_payload(b"", 16)) == b""

    def test_exact_fit(self):
        msg = b"x" * 12
        assert fmt.unpad_payload(fmt.pad_payload(msg, 16)) == msg

    def test_too_large_rejected(self):
        with pytest.raises(fmt.MessageFormatError):
            fmt.pad_payload(b"x" * 13, 16)

    def test_padded_size_exact(self):
        assert len(fmt.pad_payload(b"ab", 64)) == 64

    def test_truncated_rejected(self):
        with pytest.raises(fmt.MessageFormatError):
            fmt.unpad_payload(b"\x00\x00")

    def test_length_overflow_rejected(self):
        bad = b"\xff\xff\xff\xff" + b"\x00" * 12
        with pytest.raises(fmt.MessageFormatError):
            fmt.unpad_payload(bad)


class TestPlainPayload:
    def test_roundtrip(self):
        payload = fmt.build_plain_payload(b"tweet", 64)
        assert fmt.parse_plain_payload(payload) == b"tweet"

    def test_wrong_tag_rejected(self):
        trap = fmt.build_trap_payload(1, b"n" * 16, 64)
        with pytest.raises(fmt.MessageFormatError):
            fmt.parse_plain_payload(trap)


class TestTrapPayload:
    def test_roundtrip(self):
        payload = fmt.build_trap_payload(7, b"n" * 16, 64)
        gid, nonce = fmt.parse_trap_payload(payload)
        assert gid == 7 and nonce == b"n" * 16

    def test_is_trap(self):
        assert fmt.is_trap_payload(fmt.build_trap_payload(0, b"0" * 16, 64))
        assert not fmt.is_trap_payload(fmt.build_plain_payload(b"x", 64))

    def test_bad_nonce_length(self):
        with pytest.raises(fmt.MessageFormatError):
            fmt.build_trap_payload(0, b"short", 64)

    def test_traps_same_size_as_plain(self):
        """Indistinguishability requires equal sizes."""
        assert len(fmt.build_trap_payload(3, b"n" * 16, 80)) == len(
            fmt.build_plain_payload(b"msg", 80)
        )


class TestInnerPayload:
    def test_roundtrip(self, group):
        scheme = AtomElGamal(group)
        kp = scheme.keygen()
        inner = cca2_encrypt(group, kp.public, b"hello inner")
        size = fmt.inner_payload_size(group, 32)
        payload = fmt.build_inner_payload(group, inner, size)
        parsed = fmt.parse_inner_payload(group, payload)
        assert parsed == inner

    def test_is_inner(self, group):
        scheme = AtomElGamal(group)
        kp = scheme.keygen()
        inner = cca2_encrypt(group, kp.public, b"x")
        size = fmt.inner_payload_size(group, 32)
        assert fmt.is_inner_payload(fmt.build_inner_payload(group, inner, size))
        assert not fmt.is_inner_payload(fmt.build_trap_payload(0, b"0" * 16, size))

    def test_garbage_not_inner_or_trap(self):
        garbage = b"\x00\x00\x00\x04junk" + b"\x00" * 24
        assert not fmt.is_inner_payload(garbage[4:])  # malformed framing
        assert not fmt.is_trap_payload(b"\xff" * 32)

    def test_deserialize_cca2_too_short(self, group):
        with pytest.raises(fmt.MessageFormatError):
            fmt.deserialize_cca2(group, b"\x01" * 4)


class TestPayloadSpec:
    def test_trap_spec_fits_inner(self, group):
        spec = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=True)
        assert spec.payload_size >= fmt.inner_payload_size(group, 32)
        assert spec.elements_per_message == group.elements_for_size(spec.payload_size)

    def test_plain_spec_smaller(self, group):
        trap = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=True)
        plain = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=False)
        assert plain.payload_size < trap.payload_size

    def test_message_size_scales_payload(self, group):
        small = fmt.PayloadSpec.for_deployment(group, 16, trap_variant=True)
        large = fmt.PayloadSpec.for_deployment(group, 160, trap_variant=True)
        assert large.payload_size > small.payload_size


class TestPayloadSpecCodec:
    """The codec methods are the canonical API; the legacy free
    functions must stay byte-identical thin aliases."""

    def test_builders_match_aliases(self, group):
        spec = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=True)
        size = spec.payload_size
        assert spec.build_plain(b"msg") == fmt.build_plain_payload(b"msg", size)
        assert spec.build_dummy(b"n" * 12) == fmt.build_dummy_payload(b"n" * 12, size)
        assert spec.build_trap(3, b"x" * 16) == fmt.build_trap_payload(3, b"x" * 16, size)
        scheme = AtomElGamal(group)
        kp = scheme.keygen()
        inner = cca2_encrypt(group, kp.public, b"hello")
        assert spec.build_inner(group, inner) == fmt.build_inner_payload(
            group, inner, size
        )

    def test_round_trip_through_methods(self, group):
        spec = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=True)
        assert spec.parse_plain(spec.build_plain(b"hi")) == b"hi"
        assert spec.parse_trap(spec.build_trap(7, b"y" * 16)) == (7, b"y" * 16)
        assert spec.is_dummy(spec.build_dummy(b"z" * 8))
        assert spec.is_trap(spec.build_trap(0, b"0" * 16))
        assert not spec.is_inner(spec.build_trap(0, b"0" * 16))
        scheme = AtomElGamal(group)
        kp = scheme.keygen()
        inner = cca2_encrypt(group, kp.public, b"deep")
        assert spec.parse_inner(group, spec.build_inner(group, inner)) == inner

    def test_sized_spec_pads_to_its_size(self):
        spec = fmt.PayloadSpec.sized(40)
        assert len(spec.pad(b"abc")) == 40
        assert spec.unpad(spec.pad(b"abc")) == b"abc"
        assert spec.elements_per_message == 0

    def test_pad_overflow_raises(self):
        spec = fmt.PayloadSpec.sized(8)
        with pytest.raises(fmt.MessageFormatError):
            spec.pad(b"much too long for eight bytes")
