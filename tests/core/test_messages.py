"""Tests for wire formats: padding, traps, inner ciphertexts."""

import pytest

from repro.core import messages as fmt
from repro.crypto.groups import get_group
from repro.crypto.kem import cca2_encrypt
from repro.crypto.elgamal import AtomElGamal


@pytest.fixture(scope="module")
def group():
    return get_group("TOY")


class TestPadding:
    def test_roundtrip(self):
        assert fmt.unpad_payload(fmt.pad_payload(b"hi", 32)) == b"hi"

    def test_empty(self):
        assert fmt.unpad_payload(fmt.pad_payload(b"", 16)) == b""

    def test_exact_fit(self):
        msg = b"x" * 12
        assert fmt.unpad_payload(fmt.pad_payload(msg, 16)) == msg

    def test_too_large_rejected(self):
        with pytest.raises(fmt.MessageFormatError):
            fmt.pad_payload(b"x" * 13, 16)

    def test_padded_size_exact(self):
        assert len(fmt.pad_payload(b"ab", 64)) == 64

    def test_truncated_rejected(self):
        with pytest.raises(fmt.MessageFormatError):
            fmt.unpad_payload(b"\x00\x00")

    def test_length_overflow_rejected(self):
        bad = b"\xff\xff\xff\xff" + b"\x00" * 12
        with pytest.raises(fmt.MessageFormatError):
            fmt.unpad_payload(bad)


class TestPlainPayload:
    def test_roundtrip(self):
        payload = fmt.build_plain_payload(b"tweet", 64)
        assert fmt.parse_plain_payload(payload) == b"tweet"

    def test_wrong_tag_rejected(self):
        trap = fmt.build_trap_payload(1, b"n" * 16, 64)
        with pytest.raises(fmt.MessageFormatError):
            fmt.parse_plain_payload(trap)


class TestTrapPayload:
    def test_roundtrip(self):
        payload = fmt.build_trap_payload(7, b"n" * 16, 64)
        gid, nonce = fmt.parse_trap_payload(payload)
        assert gid == 7 and nonce == b"n" * 16

    def test_is_trap(self):
        assert fmt.is_trap_payload(fmt.build_trap_payload(0, b"0" * 16, 64))
        assert not fmt.is_trap_payload(fmt.build_plain_payload(b"x", 64))

    def test_bad_nonce_length(self):
        with pytest.raises(fmt.MessageFormatError):
            fmt.build_trap_payload(0, b"short", 64)

    def test_traps_same_size_as_plain(self):
        """Indistinguishability requires equal sizes."""
        assert len(fmt.build_trap_payload(3, b"n" * 16, 80)) == len(
            fmt.build_plain_payload(b"msg", 80)
        )


class TestInnerPayload:
    def test_roundtrip(self, group):
        scheme = AtomElGamal(group)
        kp = scheme.keygen()
        inner = cca2_encrypt(group, kp.public, b"hello inner")
        size = fmt.inner_payload_size(group, 32)
        payload = fmt.build_inner_payload(group, inner, size)
        parsed = fmt.parse_inner_payload(group, payload)
        assert parsed == inner

    def test_is_inner(self, group):
        scheme = AtomElGamal(group)
        kp = scheme.keygen()
        inner = cca2_encrypt(group, kp.public, b"x")
        size = fmt.inner_payload_size(group, 32)
        assert fmt.is_inner_payload(fmt.build_inner_payload(group, inner, size))
        assert not fmt.is_inner_payload(fmt.build_trap_payload(0, b"0" * 16, size))

    def test_garbage_not_inner_or_trap(self):
        garbage = b"\x00\x00\x00\x04junk" + b"\x00" * 24
        assert not fmt.is_inner_payload(garbage[4:])  # malformed framing
        assert not fmt.is_trap_payload(b"\xff" * 32)

    def test_deserialize_cca2_too_short(self, group):
        with pytest.raises(fmt.MessageFormatError):
            fmt.deserialize_cca2(group, b"\x01" * 4)


class TestPayloadSpec:
    def test_trap_spec_fits_inner(self, group):
        spec = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=True)
        assert spec.payload_size >= fmt.inner_payload_size(group, 32)
        assert spec.elements_per_message == group.elements_for_size(spec.payload_size)

    def test_plain_spec_smaller(self, group):
        trap = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=True)
        plain = fmt.PayloadSpec.for_deployment(group, 32, trap_variant=False)
        assert plain.payload_size < trap.payload_size

    def test_message_size_scales_payload(self, group):
        small = fmt.PayloadSpec.for_deployment(group, 16, trap_variant=True)
        large = fmt.PayloadSpec.for_deployment(group, 160, trap_variant=True)
        assert large.payload_size > small.payload_size
