"""Empirical anonymity: the end-to-end output permutation of real
protocol rounds is statistically uniform (§2.2's anonymity goal:
"the final permutation ... is indistinguishable from a random
permutation")."""

import pytest

from repro.analysis.anonymity import chi_squared_uniformity
from repro.core import AtomDeployment, DeploymentConfig
from repro.crypto.groups import DeterministicRng


def run_round_permutation(trial: int) -> list:
    """Run a tiny real round; return where each input landed.

    The mixing shuffles draw from a per-trial DeterministicRng, so the
    sampled permutations — and with them the chi-squared statistic
    below — are fixed across CI runs instead of a fresh tail-risk draw.
    """
    config = DeploymentConfig(
        num_servers=4,
        num_groups=2,
        group_size=2,
        variant="basic",
        iterations=3,
        message_size=4,
        crypto_group="TOY",
        seed=b"anon-%d" % trial,
    )
    dep = AtomDeployment(config)
    rng = DeterministicRng(b"anon-perm-%d" % trial)
    rnd = dep.start_round(trial, rng)
    msgs = [bytes([65 + i]) for i in range(4)]
    for i, m in enumerate(msgs):
        dep.submit_plain(rnd, m, entry_gid=i % 2)
    result = dep.run_round(rnd, rng)
    assert result.ok
    return [result.messages.index(m) for m in msgs]


@pytest.mark.slow
def test_output_permutation_uniform():
    """Chi-squared over repeated (seeded) full protocol runs."""
    perms = [run_round_permutation(t) for t in range(120)]
    stat, dof = chi_squared_uniformity(perms)
    # Uniform data concentrates near dof; identity-like routing scores
    # in the hundreds (see tests/analysis for the detector's power).
    # The 3.0*dof margin documents the headroom; with seeded trials the
    # statistic is a single fixed value well inside it.
    assert stat < 3.0 * dof, f"chi2 {stat:.1f} vs dof {dof}"


def test_no_input_position_fixed():
    """No input is stuck at its own output position across runs."""
    perms = [run_round_permutation(t) for t in range(30)]
    for inp in range(4):
        positions = {perm[inp] for perm in perms}
        assert len(positions) > 1, f"input {inp} always landed at one spot"
