"""Deep tests for the buddy-group escrow and recovery machinery (§4.5)."""

import pytest

from repro.core.faults import BuddySystem, restore_group
from repro.core.group import GroupContext, GroupStalled
from repro.core.server import AtomServer
from repro.crypto.secret_sharing import Share


def manytrust_group(toy_group, gid, size=4, h=2):
    servers = [AtomServer(server_id=gid * 100 + i, group=toy_group) for i in range(size)]
    return GroupContext(gid, servers, toy_group, mode="manytrust", h=h)


@pytest.fixture()
def pair(toy_group):
    return manytrust_group(toy_group, 0), manytrust_group(toy_group, 1)


class TestEscrow:
    def test_escrow_shares_reconstruct_originals(self, toy_group, pair):
        group, buddy = pair
        system = BuddySystem(toy_group)
        escrow = system.escrow(group, buddy)
        from repro.crypto.secret_sharing import shamir_reconstruct

        for member, subshares in enumerate(escrow.subshares):
            value = shamir_reconstruct(toy_group, subshares[: escrow.threshold])
            assert value == group._threshold_scheme.dvss.shares[member].value

    def test_anytrust_group_cannot_escrow(self, toy_group):
        servers = [AtomServer(server_id=i, group=toy_group) for i in range(3)]
        anytrust = GroupContext(0, servers, toy_group, mode="anytrust")
        buddy = manytrust_group(toy_group, 1)
        with pytest.raises(ValueError):
            BuddySystem(toy_group).escrow(anytrust, buddy)

    def test_multiple_buddies(self, toy_group, pair):
        group, buddy = pair
        second_buddy = manytrust_group(toy_group, 2)
        system = BuddySystem(toy_group)
        system.escrow(group, buddy)
        system.escrow(group, second_buddy)
        assert len(system.escrows_for(group.gid)) == 2

    def test_no_escrow_no_recovery(self, toy_group, pair):
        group, _ = pair
        system = BuddySystem(toy_group)
        replacements = [AtomServer(server_id=200 + i, group=toy_group) for i in range(4)]
        with pytest.raises(GroupStalled):
            system.recover(group, replacements)


class TestRecovery:
    def test_recovery_with_partial_buddy_availability(self, toy_group, pair):
        """Only a threshold subset of buddy members needs to respond."""
        group, buddy = pair
        system = BuddySystem(toy_group)
        system.escrow(group, buddy)
        for server in group.servers[:2]:
            server.fail()
        replacements = [AtomServer(server_id=200 + i, group=toy_group) for i in range(4)]
        # buddy threshold = k - (h-1) = 3; offer exactly 3 live members
        restored = system.recover(group, replacements, buddy_alive=[0, 2, 3])
        assert restored.public_key == group.public_key
        assert restored.participants()  # no longer stalled

    def test_recovery_fails_below_buddy_threshold(self, toy_group, pair):
        group, buddy = pair
        system = BuddySystem(toy_group)
        system.escrow(group, buddy)
        replacements = [AtomServer(server_id=200 + i, group=toy_group) for i in range(4)]
        with pytest.raises(GroupStalled):
            system.recover(group, replacements, buddy_alive=[0, 1])

    def test_replacement_count_must_match(self, toy_group, pair):
        group, buddy = pair
        system = BuddySystem(toy_group)
        system.escrow(group, buddy)
        with pytest.raises(ValueError):
            system.recover(group, [AtomServer(server_id=300, group=toy_group)])

    def test_restored_group_mixes(self, toy_group, pair):
        from repro.crypto.elgamal import AtomElGamal
        from repro.crypto.vector import encrypt_vector, plaintext_of

        group, buddy = pair
        system = BuddySystem(toy_group)
        system.escrow(group, buddy)
        scheme = AtomElGamal(toy_group)
        payloads = [bytes([i]) * 4 for i in range(4)]
        vectors = [encrypt_vector(scheme, group.public_key, p)[0] for p in payloads]
        for server in group.servers[:2]:
            server.fail()
        replacements = [AtomServer(server_id=200 + i, group=toy_group) for i in range(4)]
        restored = system.recover(group, replacements)
        batches, _ = restored.mix(vectors, next_keys=[None])
        out = [plaintext_of(restored.scheme, v) for b in batches for v in b]
        assert sorted(out) == sorted(payloads)

    def test_corrupted_escrow_detected(self, toy_group, pair):
        """restore_group cross-checks recovered shares against the
        originals; a corrupted escrow cannot silently change the key."""
        group, _ = pair
        replacements = [AtomServer(server_id=200 + i, group=toy_group) for i in range(4)]
        bad_shares = [
            Share(i + 1, (s.value + 1) % toy_group.q)
            for i, s in enumerate(group._threshold_scheme.dvss.shares)
        ]
        with pytest.raises(ValueError, match="escrow corrupted"):
            restore_group(group, replacements, bad_shares)

    def test_trustees_as_universal_buddy(self, toy_group):
        """§4.5: 'the trustee group can be used for this purpose' — a
        single highly-available group escrows for many groups."""
        system = BuddySystem(toy_group)
        trustee_like = manytrust_group(toy_group, 99, size=5, h=2)
        groups = [manytrust_group(toy_group, gid) for gid in range(3)]
        for group in groups:
            system.escrow(group, trustee_like)
        for group in groups:
            for server in group.servers[:2]:
                server.fail()
            replacements = [
                AtomServer(server_id=500 + group.gid * 10 + i, group=toy_group)
                for i in range(4)
            ]
            restored = system.recover(group, replacements)
            assert restored.public_key == group.public_key
