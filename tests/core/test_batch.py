"""Property tests for the struct-of-arrays CiphertextBatch.

The batch's record layout must be byte-identical to the envelope
layer's ``_write_vectors`` codec (that identity is what lets MIX_BATCH
splice batches onto the wire and checkpoints snapshot them without
re-encoding), and every structural operation (slice/split/concat/
extend) must agree with the same operation on a plain Python list of
vectors.  Hypothesis drives vector shapes across the Schnorr toy
group, the full 2048-bit MODP group, and the P-256 curve backend.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.batch import (
    BatchFormatError,
    CiphertextBatch,
    encode_vector_records,
    vector_fingerprint,
)
from repro.crypto.elgamal import AtomCiphertext
from repro.crypto.groups import get_group
from repro.crypto.vector import CiphertextVector
from repro.net.envelopes import _Writer, _write_vectors

BACKENDS = ["TOY", "MODP2048", "P256"]

_ELEMENTS = {}


def _elements(backend):
    if backend not in _ELEMENTS:
        group = get_group(backend)
        _ELEMENTS[backend] = [group.g_pow(k) for k in range(1, 9)]
    return _ELEMENTS[backend]


def element_st(backend):
    return st.sampled_from(_elements(backend))


def ciphertext_st(backend):
    return st.builds(
        AtomCiphertext,
        R=element_st(backend),
        c=element_st(backend),
        Y=st.one_of(st.none(), element_st(backend)),
    )


def vector_st(backend):
    return st.builds(
        CiphertextVector,
        parts=st.lists(ciphertext_st(backend), min_size=1, max_size=3).map(tuple),
    )


def vectors_st(backend, min_size=0, max_size=6):
    return st.lists(vector_st(backend), min_size=min_size, max_size=max_size)


COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("backend", BACKENDS)
class TestRoundTrip:
    @COMMON
    @given(data=st.data())
    def test_encode_matches_write_vectors(self, backend, data):
        """Batch bytes == the envelope codec's _write_vectors bytes."""
        group = get_group(backend)
        vectors = data.draw(vectors_st(backend))
        batch = CiphertextBatch.from_vectors(group, vectors)
        w = _Writer(group)
        _write_vectors(w, tuple(vectors))
        assert batch.to_bytes() == bytes(w.buf)

    @COMMON
    @given(data=st.data())
    def test_bytes_round_trip(self, backend, data):
        group = get_group(backend)
        vectors = data.draw(vectors_st(backend))
        batch = CiphertextBatch.from_vectors(group, vectors)
        decoded = CiphertextBatch.from_bytes(group, batch.to_bytes())
        assert len(decoded) == len(vectors)
        assert list(decoded) == vectors
        assert decoded == batch
        assert decoded == vectors

    @COMMON
    @given(data=st.data())
    def test_indexing_and_iteration(self, backend, data):
        group = get_group(backend)
        vectors = data.draw(vectors_st(backend, min_size=1))
        batch = CiphertextBatch.from_vectors(group, vectors)
        for i, vec in enumerate(vectors):
            assert batch[i] == vec
            assert batch.parts_count(i) == len(vec.parts)
        assert list(batch) == vectors
        assert bool(batch) is bool(vectors)

    @COMMON
    @given(data=st.data())
    def test_slice_is_view(self, backend, data):
        group = get_group(backend)
        vectors = data.draw(vectors_st(backend))
        n = len(vectors)
        i = data.draw(st.integers(min_value=0, max_value=n))
        j = data.draw(st.integers(min_value=i, max_value=n))
        batch = CiphertextBatch.from_vectors(group, vectors)
        sub = batch.slice(i, j)
        assert list(sub) == vectors[i:j]
        assert sub == vectors[i:j]
        assert batch[i:j] == vectors[i:j]
        # zero-copy: the view shares the parent's memory
        if j > i:
            assert memoryview(sub.raw_records()).obj is batch.raw_records()
        # and a view round-trips through bytes like an owned batch
        assert CiphertextBatch.from_bytes(group, sub.to_bytes()) == vectors[i:j]

    @COMMON
    @given(data=st.data())
    def test_split_matches_contiguous_division(self, backend, data):
        group = get_group(backend)
        beta = data.draw(st.integers(min_value=1, max_value=3))
        per = data.draw(st.integers(min_value=1, max_value=3))
        vectors = data.draw(
            vectors_st(backend, min_size=beta * per, max_size=beta * per)
        )
        batch = CiphertextBatch.from_vectors(group, vectors)
        parts = batch.split(beta)
        assert len(parts) == beta
        for k, part in enumerate(parts):
            assert list(part) == vectors[k * per: (k + 1) * per]

    @COMMON
    @given(data=st.data())
    def test_concat_and_extend(self, backend, data):
        group = get_group(backend)
        chunks = data.draw(
            st.lists(vectors_st(backend, max_size=3), min_size=0, max_size=4)
        )
        batches = [CiphertextBatch.from_vectors(group, c) for c in chunks]
        flat = [vec for chunk in chunks for vec in chunk]
        assert CiphertextBatch.concat(group, batches) == flat
        # extend with an iterable of vectors and with a batch view
        acc = CiphertextBatch(group)
        for chunk in chunks:
            acc.extend(chunk)
        assert acc == flat
        if flat:
            view = acc.slice(0, len(flat))
            grown = CiphertextBatch(group)
            grown.extend(view)
            grown.append(flat[0])
            assert list(grown) == flat + [flat[0]]

    @COMMON
    @given(data=st.data())
    def test_size_bytes_total(self, backend, data):
        group = get_group(backend)
        vectors = data.draw(vectors_st(backend))
        batch = CiphertextBatch.from_vectors(group, vectors)
        assert batch.size_bytes_total() == sum(v.size_bytes for v in vectors)


class TestStructure:
    def _batch(self, n=4):
        group = get_group("TOY")
        g = group.g_pow
        vectors = [
            CiphertextVector((AtomCiphertext(R=g(i + 1), c=g(i + 2), Y=None),))
            for i in range(n)
        ]
        return group, vectors, CiphertextBatch.from_vectors(group, vectors)

    def test_split_requires_divisibility(self):
        _, _, batch = self._batch(4)
        with pytest.raises(ValueError, match="do not divide"):
            batch.split(3)

    def test_strided_slice_rejected(self):
        _, _, batch = self._batch(4)
        with pytest.raises(ValueError, match="contiguous"):
            batch[::2]

    def test_view_copy_on_write(self):
        group, vectors, batch = self._batch(4)
        view = batch.slice(1, 3)
        before = bytes(batch.raw_records())
        view.append(vectors[0])  # must NOT touch the parent's buffer
        assert bytes(batch.raw_records()) == before
        assert list(view) == vectors[1:3] + [vectors[0]]

    def test_copy_is_independent(self):
        group, vectors, batch = self._batch(2)
        dup = batch.copy()
        dup.append(vectors[0])
        assert len(batch) == 2 and len(dup) == 3

    def test_truncated_bytes_rejected(self):
        group, _, batch = self._batch(3)
        data = batch.to_bytes()
        for cut in (0, 3, len(data) // 2, len(data) - 1):
            with pytest.raises(BatchFormatError):
                CiphertextBatch.from_bytes(group, data[:cut])

    def test_trailing_bytes_rejected(self):
        group, _, batch = self._batch(2)
        with pytest.raises(BatchFormatError, match="trailing"):
            CiphertextBatch.from_bytes(group, batch.to_bytes() + b"\x00")

    def test_bad_flag_rejected(self):
        group, _, batch = self._batch(1)
        data = bytearray(batch.to_bytes())
        # layout: u32 count | u32 parts | R | c | flag
        assert data[-1] == 0
        data[-1] = 7
        with pytest.raises(BatchFormatError, match="flag"):
            CiphertextBatch.from_bytes(group, bytes(data))

    def test_hostile_counts_rejected_without_allocation(self):
        group = get_group("TOY")
        # absurd record count
        with pytest.raises(BatchFormatError, match="records"):
            CiphertextBatch.from_bytes(group, b"\xff\xff\xff\xff")
        # absurd part count inside an otherwise valid batch
        with pytest.raises(BatchFormatError, match="parts"):
            CiphertextBatch.from_bytes(
                group, b"\x00\x00\x00\x01" + b"\xff\xff\xff\xff"
            )

    def test_element_validation_is_lazy(self):
        """Parsing is structural; a non-member element only fails on
        decode of that record (the wire path validates lazily).  Uses
        P-256, the backend whose element() actually rejects non-members
        (modp merely reduces mod p)."""
        group = get_group("P256")
        g = group.g_pow
        vectors = [
            CiphertextVector((AtomCiphertext(R=g(i + 1), c=g(i + 2), Y=None),))
            for i in range(2)
        ]
        batch = CiphertextBatch.from_vectors(group, vectors)
        data = bytearray(batch.to_bytes())
        # corrupt the x-coordinate of record 0's R point
        # (count u32 + parts u32 + 1 sign byte = offset 9)
        data[9] ^= 0xFF
        parsed = CiphertextBatch.from_bytes(group, bytes(data))
        assert len(parsed) == 2
        assert parsed.vector(1) == vectors[1]  # untouched record still decodes
        with pytest.raises(BatchFormatError, match="invalid element"):
            parsed.vector(0)

    def test_fingerprint_is_stable_and_small(self):
        _, vectors, _ = self._batch(2)
        fp0, fp1 = vector_fingerprint(vectors[0]), vector_fingerprint(vectors[1])
        assert len(fp0) == 32
        assert fp0 != fp1
        assert fp0 == vector_fingerprint(vectors[0])

    def test_encode_vector_records_matches_buffer(self):
        group, vectors, batch = self._batch(3)
        assert encode_vector_records(vectors) == bytes(batch.raw_records())

    def test_repr(self):
        _, _, batch = self._batch(2)
        assert "n=2" in repr(batch)
