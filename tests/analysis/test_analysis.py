"""Tests for the analytical modules (group math, anonymity, costs)."""

import pytest

from repro.analysis.anonymity import (
    chi_squared_uniformity,
    position_histogram,
    shannon_anonymity_bits,
    tampering_anonymity_loss,
)
from repro.analysis.costs import estimate_server_cost
from repro.analysis.groups_math import (
    anytrust_failure_probability,
    expected_dummy_messages,
    group_size_curve,
    manytrust_failure_probability,
    minimum_group_size,
)


class TestGroupSizeMath:
    def test_paper_anytrust_example(self):
        """§4.1: f=0.2, G=1024 -> k=32 gives failure < 2^-64."""
        assert minimum_group_size(0.2, 1024, h=1) == 32
        assert anytrust_failure_probability(32, 0.2, 1024) < 2 ** -64
        assert anytrust_failure_probability(31, 0.2, 1024) >= 2 ** -64

    def test_manytrust_costs_one_extra_member_per_h_roughly(self):
        sizes = group_size_curve(0.2, 1024, list(range(1, 6)))
        assert sizes[0] == 32
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_figure13_range(self):
        """Figure 13: k grows from ~32 (h=1) to ~70 (h=20)."""
        sizes = group_size_curve(0.2, 1024, [1, 10, 20])
        assert sizes[0] == 32
        assert 45 <= sizes[1] <= 60
        assert 65 <= sizes[2] <= 80

    def test_higher_adversarial_fraction_needs_larger_groups(self):
        assert minimum_group_size(0.3, 1024) > minimum_group_size(0.2, 1024)

    def test_more_groups_need_larger_k(self):
        assert minimum_group_size(0.2, 2 ** 20) >= minimum_group_size(0.2, 1024)

    def test_probability_bounds(self):
        assert manytrust_failure_probability(2, 0.2, h=5) == 1.0
        assert 0 <= anytrust_failure_probability(10, 0.5, 100) <= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            anytrust_failure_probability(32, 1.0)
        with pytest.raises(ValueError):
            anytrust_failure_probability(0, 0.2)
        with pytest.raises(ValueError):
            manytrust_failure_probability(32, 0.2, h=0)

    def test_dummy_messages_paper_number(self):
        """§6.2: mu=13,000 with 32 servers -> ~410k dummies."""
        assert expected_dummy_messages(13_000, 32) == pytest.approx(416_000)


class TestAnonymityMetrics:
    def test_histogram(self):
        hist = position_histogram([[0, 1], [1, 0]])
        assert hist[0][0] == 1 and hist[0][1] == 1

    def test_chi_squared_uniform_permutations(self):
        from repro.crypto.groups import DeterministicRng

        rng = DeterministicRng(b"chi")
        perms = []
        for _ in range(600):
            perm = list(range(4))
            rng.shuffle(perm)
            perms.append(perm)
        stat, dof = chi_squared_uniformity(perms)
        assert stat < 2.5 * dof  # uniform data stays near dof

    def test_chi_squared_detects_identity(self):
        perms = [[0, 1, 2, 3]] * 600
        stat, dof = chi_squared_uniformity(perms)
        assert stat > 10 * dof

    def test_inconsistent_sizes_rejected(self):
        with pytest.raises(ValueError):
            position_histogram([[0, 1], [0, 1, 2]])

    def test_shannon_bits(self):
        assert shannon_anonymity_bits(1024) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            shannon_anonymity_bits(0)

    def test_tampering_tradeoff(self):
        """§4.4: kappa removals succeed with probability 2^-kappa."""
        remaining, prob, bits = tampering_anonymity_loss(2 ** 20, 10)
        assert remaining == 2 ** 20 - 10
        assert prob == pytest.approx(2 ** -10)
        assert bits == pytest.approx(20.0, rel=1e-3)

    def test_tampering_bounds(self):
        with pytest.raises(ValueError):
            tampering_anonymity_loss(10, 11)


class TestDeploymentCosts:
    def test_paper_throughput_numbers(self):
        """§7: ~2,700 reenc/s and ~9,200 shuffles/s on four cores."""
        est = estimate_server_cost(4)
        assert est.reencrypt_msgs_per_s == pytest.approx(2985, rel=0.15)
        assert est.shuffle_msgs_per_s == pytest.approx(9570, rel=0.15)

    def test_paper_bandwidth_bound(self):
        """§7: ~300 KB/s upper bound for a 4-core server."""
        est = estimate_server_cost(4)
        assert est.bandwidth_bytes_per_s == pytest.approx(300e3, rel=0.1)

    def test_paper_dollar_figures(self):
        est4 = estimate_server_cost(4)
        est36 = estimate_server_cost(36)
        assert est4.compute_usd_month == pytest.approx(146.0)
        assert est4.bandwidth_usd_month == pytest.approx(7.20, rel=0.1)
        assert est36.compute_usd_month == pytest.approx(1165.0)
        # §7: bandwidth cost scales linearly with cores -> ~$65/month
        assert est36.bandwidth_usd_month == pytest.approx(65.0, rel=0.15)

    def test_total(self):
        est = estimate_server_cost(4)
        assert est.total_usd_month == pytest.approx(
            est.compute_usd_month + est.bandwidth_usd_month
        )
