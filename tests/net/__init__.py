"""Tests for the message-driven node layer (repro.net)."""
