"""Idempotent delivery: duplicates and retries change nothing.

The acceptance bar for the resilience layer: a seeded round whose
SUBMIT and COMMIT_LAYER envelopes are duplicated (chaos ``dup``) or
retried (chaos ``drop-reply``/``reset`` exercising the rpc retry loop
against a node that already processed the request) must produce a
**byte-identical** RoundResult to the fault-free run — same messages in
the same order, same audits, same byte counts — on both transports.
Convention per ``tests/net/test_transport_parity.py``: seeds are
pinned; if a draw-order change breaks identity, re-pick seeds, don't
loosen the comparison.
"""

import pytest

from repro.crypto.groups import get_group

from tests.net.test_transport_parity import (
    _canonical,
    _config,
    _run_seeded_round,
)

#: every intake and commit envelope delivered twice
DUP_PLAN = "submit_plain:dup;submit_trap:dup;commit_layer:dup"
#: lost replies and connection resets force the rpc layer to retry
#: requests the node already executed (dedup must replay, not re-run)
RETRY_PLAN = (
    "submit_plain:drop-reply:40%;submit_trap:drop-reply:40%;"
    "commit_layer:drop-reply:40%;commit_layer:reset:20%"
)


def _run(transport, variant, net_faults):
    config = _config(
        transport,
        "TOY",
        variant,
        net_faults=net_faults,
        rpc_attempts=8,
    )
    return _run_seeded_round(config)


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
@pytest.mark.parametrize("variant", ["basic", "trap"])
def test_duplicated_envelopes_apply_exactly_once(transport, variant):
    group = get_group("TOY")
    messages, clean = _run(transport, variant, None)
    _, duped = _run(transport, variant, DUP_PLAN)
    assert clean.ok and duped.ok
    assert sorted(duped.messages) == sorted(messages)
    assert _canonical(group, duped) == _canonical(group, clean)


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
def test_retried_envelopes_apply_exactly_once(transport):
    group = get_group("TOY")
    _, clean = _run(transport, "trap", None)
    _, retried = _run(transport, "trap", RETRY_PLAN)
    assert clean.ok and retried.ok
    assert _canonical(group, retried) == _canonical(group, clean)


def test_dedup_survives_cross_transport_parity():
    """Duplicated traffic on tcp still matches *clean inproc* bytes —
    the wrappers are invisible to the protocol, not merely
    self-consistent."""
    group = get_group("TOY")
    _, inproc_clean = _run("inproc", "trap", None)
    _, tcp_duped = _run("tcp", "trap", DUP_PLAN)
    assert _canonical(group, tcp_duped) == _canonical(group, inproc_clean)
