"""Round-trip property tests for every envelope type (both backends).

Every payload in the catalogue must survive
``Envelope.from_bytes(env.to_bytes(group), group)`` exactly — on a
Schnorr group and on the P-256 curve backend, whose element encodings
differ (fixed-width residues vs SEC1 compressed points).  Hypothesis
drives the payload contents; the generators build structurally valid
crypto objects (real group elements via ``g^k``) without paying for
real proofs, since the codec is agnostic to proof validity.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.client import Submission, TrapSubmission
from repro.core.group import MixAudit
from repro.core.trustees import GroupReport
from repro.crypto.elgamal import AtomCiphertext
from repro.crypto.groups import get_group
from repro.crypto.nizk import EncProof
from repro.crypto.sigma import SigmaProof
from repro.crypto.vector import (
    CiphertextVector,
    VectorShuffleProof,
    VectorShuffleRound,
)
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope, Kind, WireFormatError, wrap

BACKENDS = ["TOY", "P256"]

#: element cache per backend so strategies don't re-derive g^k
_ELEMENTS = {}


def _elements(backend):
    if backend not in _ELEMENTS:
        group = get_group(backend)
        _ELEMENTS[backend] = [group.g_pow(k) for k in range(1, 17)]
    return _ELEMENTS[backend]


def element_st(backend):
    return st.sampled_from(_elements(backend))


def scalar_st(backend):
    group = get_group(backend)
    return st.integers(min_value=0, max_value=group.q - 1)


def ciphertext_st(backend):
    return st.builds(
        AtomCiphertext,
        R=element_st(backend),
        c=element_st(backend),
        Y=st.one_of(st.none(), element_st(backend)),
    )


def vector_st(backend):
    return st.builds(
        CiphertextVector,
        parts=st.lists(ciphertext_st(backend), min_size=1, max_size=3).map(tuple),
    )


def sigma_st(backend):
    element_values = st.sampled_from([el.value for el in _elements(backend)])
    return st.builds(
        SigmaProof,
        commitments=st.lists(element_values, min_size=1, max_size=3).map(tuple),
        challenge=scalar_st(backend),
        responses=st.lists(scalar_st(backend), min_size=1, max_size=3).map(tuple),
    )


def submission_st(backend):
    def build(vector, proofs):
        return Submission(
            vector=vector,
            proofs=tuple(EncProof(p) for p in proofs[: len(vector.parts)])
            or (EncProof(proofs[0]),),
        )

    return st.builds(
        build,
        vector_st(backend),
        st.lists(sigma_st(backend), min_size=3, max_size=3),
    )


def trap_submission_st(backend):
    return st.builds(
        TrapSubmission,
        pair=st.tuples(submission_st(backend), submission_st(backend)),
        trap_commitment=st.binary(min_size=32, max_size=32),
        gid=st.integers(min_value=0, max_value=63),
    )


def shuffle_proof_st(backend):
    def build(intermediates, perm_sizes, bits):
        rounds = tuple(
            VectorShuffleRound(
                intermediate=(vec,),
                opened_perm=(0,),
                opened_rands=((rand,),),
            )
            for vec, rand in intermediates
        )
        return VectorShuffleProof(
            rounds=rounds, challenge_bits=tuple(bits[: len(rounds)])
        )

    return st.builds(
        build,
        st.lists(
            st.tuples(vector_st(backend), scalar_st(backend)),
            min_size=1,
            max_size=2,
        ),
        st.just(None),
        st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=2),
    )


def audit_st(backend):
    return st.builds(
        MixAudit,
        gid=st.integers(min_value=0, max_value=63),
        shuffles_proved=st.integers(min_value=0, max_value=9),
        shuffles_verified=st.integers(min_value=0, max_value=9),
        reencs_proved=st.integers(min_value=0, max_value=9),
        reencs_verified=st.integers(min_value=0, max_value=9),
        tamperings=st.lists(
            st.tuples(st.integers(min_value=-1, max_value=99), st.text(max_size=12)),
            max_size=2,
        ),
        bytes_sent=st.integers(min_value=0, max_value=2**48),
        final_shuffle_proof=st.one_of(st.none(), shuffle_proof_st(backend)),
    )


def payload_bytes_st():
    return st.lists(st.binary(max_size=64), max_size=4).map(tuple)


def payload_st(backend):
    """A strategy producing one payload of every kind in the catalogue."""
    gid = st.integers(min_value=0, max_value=63)
    return st.one_of(
        st.builds(ev.SubmitPlain, gid=gid, submission=submission_st(backend)),
        st.builds(ev.SubmitTrap, submission=trap_submission_st(backend)),
        st.builds(ev.SubmitOk, accepted=st.integers(min_value=0, max_value=9)),
        st.builds(ev.SubmitErr, reason=st.text(max_size=40)),
        st.builds(
            ev.Mix,
            layer=st.integers(min_value=0, max_value=31),
            successors=st.lists(gid, max_size=3).map(tuple),
            next_keys=st.lists(
                st.one_of(st.none(), element_st(backend)), max_size=3
            ).map(tuple),
            seed=st.one_of(st.none(), st.binary(min_size=32, max_size=32)),
            use_pool=st.booleans(),
        ),
        st.builds(ev.MixPending, layer=st.integers(min_value=0, max_value=31)),
        st.builds(ev.MixCollect, layer=st.integers(min_value=0, max_value=31)),
        st.builds(
            ev.MixBatch,
            layer=st.integers(min_value=0, max_value=31),
            vectors=st.lists(vector_st(backend), max_size=3).map(tuple),
        ),
        st.builds(
            ev.MixSummary,
            layer=st.integers(min_value=0, max_value=31),
            audit=audit_st(backend),
        ),
        st.builds(ev.CommitLayer, layer=st.integers(min_value=0, max_value=31)),
        st.builds(ev.AbortLayer, layer=st.integers(min_value=0, max_value=31)),
        st.builds(
            ev.Fault,
            code=st.sampled_from(["abort", "stalled", "error"]),
            gid=st.integers(min_value=-1, max_value=63),
            culprit=st.integers(min_value=-1, max_value=99),
            stage=st.text(max_size=12),
            alive=st.integers(min_value=0, max_value=9),
            needed=st.integers(min_value=0, max_value=9),
            message=st.text(max_size=40),
        ),
        st.builds(ev.Exit),
        st.builds(ev.ExitPayloads, payloads=payload_bytes_st()),
        st.builds(
            ev.TrapCheck,
            traps=payload_bytes_st(),
            inner_ok=st.booleans(),
            num_inner=st.integers(min_value=0, max_value=99),
        ),
        st.builds(
            ev.GroupReportMsg,
            report=st.builds(
                GroupReport,
                gid=gid,
                traps_ok=st.booleans(),
                inner_ok=st.booleans(),
                num_traps=st.integers(min_value=0, max_value=99),
                num_inner=st.integers(min_value=0, max_value=99),
            ),
        ),
        st.builds(ev.ReportOk),
        st.builds(
            ev.KeyRequest, expected_groups=st.integers(min_value=0, max_value=99)
        ),
        st.builds(
            ev.KeyRelease,
            secret=scalar_st(backend),
            shares=st.lists(scalar_st(backend), max_size=4).map(tuple),
        ),
        st.builds(
            ev.KeyWithheldMsg,
            reason=st.text(max_size=40),
            offending_gids=st.lists(gid, max_size=4).map(tuple),
        ),
        st.builds(ev.Ping),
        st.builds(
            ev.Pong,
            gid=gid,
            alive=st.integers(min_value=0, max_value=9),
            needed=st.integers(min_value=0, max_value=9),
        ),
        st.builds(
            ev.RoundOpen,
            fresh=st.booleans(),
            epoch_round=st.integers(min_value=0, max_value=999),
            seed=st.binary(min_size=1, max_size=48),
            counter=st.integers(min_value=0, max_value=2**64 - 1),
        ),
        st.builds(ev.RoundClose),
        st.builds(ev.FleetStatus),
        st.builds(
            ev.FleetStatusReply,
            name=st.text(max_size=16),
            ready=st.booleans(),
            pid=st.integers(min_value=0, max_value=2**32),
            gids=st.lists(gid, max_size=4).map(tuple),
            open_rounds=st.lists(
                st.integers(min_value=0, max_value=999), max_size=4
            ).map(tuple),
        ),
        st.builds(ev.FleetShutdown),
        st.builds(ev.BundleInstall, data=st.binary(max_size=128)),
        st.builds(ev.BundleFetch),
        st.builds(
            ev.BundleData,
            data=st.binary(max_size=128),
            records=st.integers(min_value=0, max_value=2**32 - 1),
        ),
        st.builds(ev.ControlOk),
    )


@pytest.mark.parametrize("backend", BACKENDS)
@given(data=st.data())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_envelope_round_trip(backend, data):
    """decode(encode(env)) == env for every envelope kind."""
    group = get_group(backend)
    payload = data.draw(payload_st(backend))
    env = wrap(
        payload,
        round_id=data.draw(st.integers(min_value=0, max_value=2**31 - 1)),
        sender=data.draw(st.integers(min_value=-3, max_value=63)),
        dest=data.draw(st.integers(min_value=-3, max_value=63)),
        req_id=data.draw(st.integers(min_value=0, max_value=2**64 - 1)),
    )
    decoded = Envelope.from_bytes(env.to_bytes(group), group)
    assert decoded == env


@pytest.mark.parametrize("backend", BACKENDS)
def test_every_kind_is_covered(backend):
    """The strategy above must exercise the whole catalogue: build one
    example of each registered payload type explicitly and round-trip
    it, so adding a Kind without a codec (or test) fails loudly."""
    group = get_group(backend)
    el = _elements(backend)[0]
    sub = Submission(
        vector=CiphertextVector((AtomCiphertext(R=el, c=el, Y=None),)),
        proofs=(EncProof(SigmaProof((el.value,), 5, (7,))),),
    )
    examples = {
        Kind.SUBMIT_PLAIN: ev.SubmitPlain(gid=0, submission=sub),
        Kind.SUBMIT_TRAP: ev.SubmitTrap(
            TrapSubmission(pair=(sub, sub), trap_commitment=b"\x01" * 32, gid=1)
        ),
        Kind.SUBMIT_OK: ev.SubmitOk(accepted=2),
        Kind.SUBMIT_ERR: ev.SubmitErr(reason="nope"),
        Kind.MIX: ev.Mix(
            layer=1, successors=(0, 1), next_keys=(el, None),
            seed=b"\x02" * 32, use_pool=True,
        ),
        Kind.MIX_PENDING: ev.MixPending(layer=1),
        Kind.MIX_COLLECT: ev.MixCollect(layer=1),
        Kind.MIX_BATCH: ev.MixBatch(
            layer=1, vectors=(CiphertextVector((AtomCiphertext(el, el, el),)),)
        ),
        Kind.MIX_SUMMARY: ev.MixSummary(layer=1, audit=MixAudit(gid=3)),
        Kind.COMMIT_LAYER: ev.CommitLayer(layer=1),
        Kind.ABORT_LAYER: ev.AbortLayer(layer=1),
        Kind.FAULT: ev.Fault(code="stalled", gid=2, alive=1, needed=3),
        Kind.EXIT: ev.Exit(),
        Kind.EXIT_PAYLOADS: ev.ExitPayloads(payloads=(b"p1", b"p2")),
        Kind.TRAP_CHECK: ev.TrapCheck(traps=(b"t",), inner_ok=True, num_inner=1),
        Kind.GROUP_REPORT: ev.GroupReportMsg(
            GroupReport(gid=0, traps_ok=True, inner_ok=False, num_traps=2, num_inner=3)
        ),
        Kind.REPORT_OK: ev.ReportOk(),
        Kind.KEY_REQUEST: ev.KeyRequest(expected_groups=2),
        Kind.KEY_RELEASE: ev.KeyRelease(secret=42, shares=(1, 2, 3)),
        Kind.KEY_WITHHELD: ev.KeyWithheldMsg(
            reason="count mismatch", offending_gids=(0, 1)
        ),
        Kind.PING: ev.Ping(),
        Kind.PONG: ev.Pong(gid=1, alive=2, needed=2),
        Kind.ROUND_OPEN: ev.RoundOpen(
            fresh=True, epoch_round=2, seed=b"\x03" * 32, counter=17
        ),
        Kind.ROUND_CLOSE: ev.RoundClose(),
        Kind.FLEET_STATUS: ev.FleetStatus(),
        Kind.FLEET_STATUS_REPLY: ev.FleetStatusReply(
            name="p0", ready=True, pid=4242, gids=(0, 2), open_rounds=(1,)
        ),
        Kind.FLEET_SHUTDOWN: ev.FleetShutdown(),
        Kind.BUNDLE_INSTALL: ev.BundleInstall(data=b"\x04" * 24),
        Kind.BUNDLE_FETCH: ev.BundleFetch(),
        Kind.BUNDLE_DATA: ev.BundleData(data=b"\x05" * 24, records=3),
        Kind.CONTROL_OK: ev.ControlOk(),
    }
    assert set(examples) == set(ev.all_payload_types()), (
        "catalogue drifted: update the examples (and the strategies)"
    )
    for kind, payload in examples.items():
        env = wrap(payload, round_id=7, sender=ev.COORDINATOR, dest=0)
        decoded = Envelope.from_bytes(env.to_bytes(group), group)
        assert decoded == env, kind
        assert decoded.kind is kind


class TestWireErrors:
    def test_bad_magic_rejected(self, toy_group):
        env = wrap(ev.SubmitOk(1), 0, ev.COORDINATOR, 0)
        raw = bytearray(env.to_bytes(toy_group))
        raw[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            Envelope.from_bytes(bytes(raw), toy_group)

    def test_wrong_version_rejected(self, toy_group):
        env = wrap(ev.SubmitOk(1), 0, ev.COORDINATOR, 0)
        env.version = 99
        raw = env.to_bytes(toy_group)
        with pytest.raises(WireFormatError, match="version"):
            Envelope.from_bytes(raw, toy_group)

    def test_truncated_body_rejected(self, toy_group):
        env = wrap(ev.ExitPayloads(payloads=(b"payload",)), 0, 0, ev.COORDINATOR)
        raw = env.to_bytes(toy_group)
        with pytest.raises(WireFormatError):
            Envelope.from_bytes(raw[:-3], toy_group)

    def test_trailing_bytes_rejected(self, toy_group):
        env = wrap(ev.SubmitOk(1), 0, ev.COORDINATOR, 0)
        raw = bytearray(env.to_bytes(toy_group))
        raw += b"\x00"
        # fix up the declared body length so only the codec overrun trips
        import struct

        body_len = struct.unpack(">I", raw[24:28])[0]
        raw[24:28] = struct.pack(">I", body_len + 1)
        with pytest.raises(WireFormatError, match="trailing"):
            Envelope.from_bytes(bytes(raw), toy_group)

    def test_invalid_element_rejected_lazily(self):
        """MIX_BATCH decode is a structural scan; element validation
        runs on first ``.vectors`` access (bounded-memory data plane),
        and still surfaces as WireFormatError."""
        group = get_group("P256")
        el = group.g_pow(3)
        env = wrap(
            ev.MixBatch(
                layer=0,
                vectors=(CiphertextVector((AtomCiphertext(el, el, None),)),),
            ),
            0, 0, 1,
        )
        raw = bytearray(env.to_bytes(group))
        # First element byte after the header (28) + layer (4) +
        # vector count (4) + part count (4) is R's SEC1 prefix byte;
        # 0xFF is never a valid compressed-point prefix.
        raw[40] = 0xFF
        decoded = Envelope.from_bytes(bytes(raw), group)
        with pytest.raises(WireFormatError, match="invalid element"):
            decoded.payload.vectors

    def test_invalid_element_rejected_eagerly_elsewhere(self):
        """Non-batch payloads still validate elements at decode time."""
        group = get_group("P256")
        el = group.g_pow(3)
        env = wrap(
            ev.Mix(layer=0, successors=(0,), next_keys=(el,),
                   seed=None, use_pool=False),
            0, ev.COORDINATOR, 0,
        )
        raw = bytearray(env.to_bytes(group))
        # next_keys[0]'s SEC1 prefix byte: header 28 + layer 4 +
        # successor count 4 + successor 4 + key count 4 + present flag 1
        raw[49] = 0xFF
        with pytest.raises(WireFormatError, match="element"):
            Envelope.from_bytes(bytes(raw), group)

    def test_mix_batch_structural_garbage_rejected(self):
        """Hostile counts/flags are rejected at decode, before any
        element math or allocation."""
        group = get_group("P256")
        env = wrap(ev.MixBatch(layer=0, vectors=()), 0, 0, 1)
        raw = bytearray(env.to_bytes(group))
        import struct as _struct

        raw[32:36] = _struct.pack(">I", 0xFFFFFFFF)  # absurd record count
        with pytest.raises(WireFormatError, match="malformed MIX_BATCH"):
            Envelope.from_bytes(bytes(raw), group)

    def test_unknown_kind_rejected(self, toy_group):
        env = wrap(ev.SubmitOk(1), 0, ev.COORDINATOR, 0)
        raw = bytearray(env.to_bytes(toy_group))
        raw[3] = 250  # kind byte
        with pytest.raises(WireFormatError, match="kind"):
            Envelope.from_bytes(bytes(raw), toy_group)
