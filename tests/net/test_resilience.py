"""Unit coverage of the RPC resilience layer.

A flaky fake transport (fails N times, then succeeds) pins the retry
loop's observable contract: how many attempts, what timeout reaches
the wire, what surfaces when the budget runs out — and that retries
never consume protocol randomness (determinism is checked end-to-end
by the idempotency suite; here we check the jitter rng is private).
"""

import pytest

from repro.crypto.groups import DeterministicRng
from repro.net.envelopes import COORDINATOR, Kind, wrap
from repro.net.nodes import ev
from repro.net.resilience import (
    DedupCache,
    ResilientTransport,
    RpcExhausted,
    RpcPolicy,
    SuspicionTracker,
)
from repro.net.transport import (
    RetryableTransportError,
    RpcTimeout,
    Transport,
    TransportError,
)


def _fast_policy(**kw):
    return RpcPolicy.default(**kw)


class _FlakyTransport(Transport):
    """Raises ``failures`` retryable errors, then echoes success."""

    name = "flaky"

    def __init__(self, failures, exc=RpcTimeout):
        self.failures = failures
        self.exc = exc
        self.calls = []  # (req_id, timeout)

    def register(self, round_id, node_id, node):
        pass

    def unregister_round(self, round_id):
        pass

    def request(self, env, timeout=None):
        self.calls.append((env.req_id, timeout))
        if len(self.calls) <= self.failures:
            raise self.exc("injected")
        return []


def _resilient(inner, **policy_kw):
    return ResilientTransport(
        inner, _fast_policy(**policy_kw), seed=b"rpc-test"
    )


def _env(payload=None, dest=0):
    return wrap(payload or ev.CommitLayer(layer=0), 0, COORDINATOR, dest)


class TestRetries:
    def test_retry_until_success(self, monkeypatch):
        monkeypatch.setattr("time.sleep", lambda s: None)
        inner = _FlakyTransport(failures=2)
        transport = _resilient(inner)
        assert transport.request(_env()) == []
        assert len(inner.calls) == 3
        assert transport.retries == 2

    def test_exhaustion_raises_with_context(self, monkeypatch):
        monkeypatch.setattr("time.sleep", lambda s: None)
        inner = _FlakyTransport(failures=99)
        transport = _resilient(inner, max_attempts=3)
        with pytest.raises(RpcExhausted) as excinfo:
            transport.request(_env(dest=5))
        exc = excinfo.value
        assert (exc.dest, exc.kind, exc.attempts) == (5, Kind.COMMIT_LAYER, 3)
        assert isinstance(exc.last_error, RpcTimeout)
        assert len(inner.calls) == 3

    def test_non_retryable_error_propagates_immediately(self):
        inner = _FlakyTransport(failures=99, exc=TransportError)
        transport = _resilient(inner)
        with pytest.raises(TransportError):
            transport.request(_env())
        assert len(inner.calls) == 1

    def test_retries_reuse_the_same_req_id(self, monkeypatch):
        monkeypatch.setattr("time.sleep", lambda s: None)
        inner = _FlakyTransport(failures=2)
        transport = _resilient(inner)
        transport.request(_env())
        ids = {req_id for req_id, _ in inner.calls}
        assert len(ids) == 1 and 0 not in ids

    def test_distinct_requests_get_distinct_req_ids(self):
        inner = _FlakyTransport(failures=0)
        transport = _resilient(inner)
        transport.request(_env())
        transport.request(_env())
        (a, _), (b, _) = inner.calls
        assert a != b

    def test_prestamped_req_id_is_preserved(self):
        inner = _FlakyTransport(failures=0)
        transport = _resilient(inner)
        env = _env()
        env.req_id = 0xDEAD
        transport.request(env)
        assert inner.calls[0][0] == 0xDEAD

    def test_ping_gets_single_attempt_and_tight_deadline(self):
        inner = _FlakyTransport(failures=99)
        transport = _resilient(inner, ping_timeout=0.125)
        with pytest.raises(RpcExhausted):
            transport.request(_env(ev.Ping()))
        assert inner.calls == [(inner.calls[0][0], 0.125)]

    def test_kind_timeouts_reach_the_wire(self):
        inner = _FlakyTransport(failures=0)
        transport = _resilient(inner, base_timeout=2.0)
        transport.request(_env(ev.Mix(
            layer=0, successors=(), next_keys=(), seed=None, use_pool=False,
        )))
        transport.request(_env())
        assert [t for _, t in inner.calls] == [8.0, 2.0]

    def test_explicit_timeout_overrides_policy(self):
        inner = _FlakyTransport(failures=0)
        transport = _resilient(inner)
        transport.request(_env(), timeout=0.5)
        assert inner.calls[0][1] == 0.5


class TestBackoff:
    def test_deterministic_per_seed(self):
        policy = _fast_policy()
        a = [policy.backoff(i, DeterministicRng(b"s")) for i in range(1, 5)]
        b = [policy.backoff(i, DeterministicRng(b"s")) for i in range(1, 5)]
        assert a == b

    def test_exponential_envelope_with_jitter(self):
        policy = _fast_policy()
        rng = DeterministicRng(b"jitter")
        for attempt in range(1, 12):
            base = min(2.0, 0.02 * 2**attempt)
            sleep = policy.backoff(attempt, rng)
            assert base * 0.5 <= sleep < base * 1.5

    def test_jitter_rng_is_not_the_protocol_rng(self, monkeypatch):
        """The retry path draws only from the transport's private rng:
        a caller-held rng sees identical output with retries on or off."""
        monkeypatch.setattr("time.sleep", lambda s: None)
        protocol_rng = DeterministicRng(b"protocol")
        before = protocol_rng.randbytes(16)
        transport = _resilient(_FlakyTransport(failures=3))
        transport.request(_env())
        assert DeterministicRng(b"protocol").randbytes(16) == before


class TestDedupCache:
    def test_miss_returns_none_but_empty_list_is_a_hit(self):
        cache = DedupCache()
        assert cache.get(7) is None
        cache.put(7, [])
        got = cache.get(7)
        assert got == [] and got is not None
        assert cache.hits == 1

    def test_req_id_zero_opts_out(self):
        cache = DedupCache()
        cache.put(0, ["x"])
        assert cache.get(0) is None
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = DedupCache(capacity=2)
        cache.put(1, ["a"])
        cache.put(2, ["b"])
        assert cache.get(1) == ["a"]  # refresh 1: now 2 is oldest
        cache.put(3, ["c"])
        assert cache.get(2) is None
        assert cache.get(1) == ["a"] and cache.get(3) == ["c"]


class TestSuspicionTracker:
    def test_declares_after_threshold_consecutive_misses(self):
        tracker = SuspicionTracker(miss_threshold=3)
        assert tracker.record_miss(1) == 1
        assert tracker.record_miss(1) == 2
        assert not tracker.suspected(1)
        assert tracker.record_miss(1) == 3
        assert tracker.suspected(1)
        tracker.declare(1)
        assert tracker.declared == [1]
        assert not tracker.suspected(1)  # counter reset with the verdict

    def test_pong_clears_suspicion(self):
        tracker = SuspicionTracker(miss_threshold=2)
        tracker.record_miss(0)
        tracker.record_pong(0)
        tracker.record_miss(0)
        assert not tracker.suspected(0)  # misses were not consecutive

    def test_groups_tracked_independently(self):
        tracker = SuspicionTracker(miss_threshold=1)
        tracker.record_miss(0)
        assert tracker.suspected(0) and not tracker.suspected(1)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            SuspicionTracker(miss_threshold=0)
