"""Behavior tests for the node services, transports, and coordinator."""

import pytest

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.core.group import GroupStalled, ProtocolAbort
from repro.core.server import Behavior
from repro.crypto.groups import DeterministicRng, get_group
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope, Kind, wrap
from repro.net.nodes import raise_fault
from repro.net.transport import (
    InProcessTransport,
    TcpTransport,
    TransportError,
    make_transport,
)


def small_config(**overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="basic",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


class TestFaultTranslation:
    def test_abort_round_trips(self):
        with pytest.raises(ProtocolAbort) as excinfo:
            raise_fault(ev.Fault(code="abort", gid=3, culprit=7, stage="shuffle"))
        assert (excinfo.value.gid, excinfo.value.culprit) == (3, 7)

    def test_stalled_round_trips(self):
        with pytest.raises(GroupStalled) as excinfo:
            raise_fault(ev.Fault(code="stalled", gid=1, alive=1, needed=2))
        assert (excinfo.value.alive, excinfo.value.needed) == (1, 2)

    def test_error_becomes_runtime_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            raise_fault(ev.Fault(code="error", message="boom"))


class TestNodeIntake:
    def _deployment(self):
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0, rng=DeterministicRng(b"node-intake"))
        return dep, rnd

    def test_wrong_gid_rejected(self):
        dep, rnd = self._deployment()
        client = Client(dep.group)
        sub = client.prepare_plain(
            b"x", rnd.contexts[0].public_key, 0, dep.spec.payload_size
        )
        # Route a submission built for group 0 to node 1: the EncProof
        # is bound to gid 0 and the envelope says gid 0 — node 1 must
        # refuse it rather than accept foreign traffic.
        replies = rnd.coordinator.transport.request(
            wrap(ev.SubmitPlain(gid=0, submission=sub), 0, ev.COORDINATOR, 1)
        )
        assert isinstance(replies[0].payload, ev.SubmitErr)
        assert "wrong group" in replies[0].payload.reason

    def test_duplicate_rejected_at_node(self):
        dep, rnd = self._deployment()
        client = Client(dep.group)
        sub = client.prepare_plain(
            b"dup", rnd.contexts[0].public_key, 0, dep.spec.payload_size
        )
        env = wrap(ev.SubmitPlain(gid=0, submission=sub), 0, ev.COORDINATOR, 0)
        first = rnd.coordinator.transport.request(env)[0].payload
        assert isinstance(first, ev.SubmitOk)
        # Re-sending the *same request* (the resilience layer stamped
        # its req_id on the first send) is a retry/duplicate delivery:
        # the node replays the cached SubmitOk instead of re-executing.
        replayed = rnd.coordinator.transport.request(env)[0].payload
        assert isinstance(replayed, ev.SubmitOk)
        # A *fresh* request carrying the same ciphertext is a true
        # §2.3 replay attempt and is rejected at the node.
        second_env = wrap(
            ev.SubmitPlain(gid=0, submission=sub), 0, ev.COORDINATOR, 0
        )
        second = rnd.coordinator.transport.request(second_env)[0].payload
        assert isinstance(second, ev.SubmitErr)
        assert "duplicate" in second.reason

    def test_unknown_kind_raises(self):
        dep, rnd = self._deployment()
        with pytest.raises(ValueError, match="cannot handle"):
            rnd.coordinator.transport.request(
                wrap(ev.ReportOk(), 0, ev.COORDINATOR, 0)
            )


class TestLayerAtomicity:
    def test_stalled_layer_leaves_node_holdings_untouched(self):
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0, rng=DeterministicRng(b"atomic"))
        for i in range(4):
            dep.submit_plain(rnd, b"m%d" % i, i % 2)
        node0 = rnd.coordinator.nodes[0]
        node1 = rnd.coordinator.nodes[1]
        before = (list(node0.holdings), list(node1.holdings))
        # Group 1 stalls; group 0 mixed first within the layer.
        rnd.contexts[1].servers[0].fail()
        run = dep.begin_mixing(rnd, DeterministicRng(b"atomic-mix"))
        with pytest.raises(GroupStalled):
            run.run_layer()
        assert (node0.holdings, node1.holdings) == (before[0], before[1])
        # Recovery path: un-fail and retry the same layer successfully.
        rnd.contexts[1].servers[0].recover()
        run.run_layer()
        assert run.layer == 1

    def test_commit_advances_holdings(self):
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0, rng=DeterministicRng(b"advance"))
        for i in range(4):
            dep.submit_plain(rnd, b"m%d" % i, i % 2)
        node0 = rnd.coordinator.nodes[0]
        before = list(node0.holdings)
        run = dep.begin_mixing(rnd, DeterministicRng(b"advance-mix"))
        run.run_layer()
        assert node0.holdings and node0.holdings != before


class TestTransports:
    def test_inproc_routing_miss(self):
        transport = InProcessTransport()
        with pytest.raises(TransportError, match="no node"):
            transport.request(wrap(ev.ReportOk(), 5, ev.COORDINATOR, 0))

    def test_tcp_round_trip_and_unregister(self):
        group = get_group("TOY")

        class Echo:
            def handle(self, env):
                return [wrap(ev.SubmitOk(accepted=7), env.round_id, 0, env.sender)]

        transport = TcpTransport(group)
        try:
            transport.register(0, 0, Echo())
            replies = transport.request(
                wrap(ev.SubmitErr("ping"), 0, ev.COORDINATOR, 0)
            )
            assert replies[0].payload == ev.SubmitOk(accepted=7)
            transport.unregister_round(0)
            with pytest.raises(TransportError):
                transport.request(wrap(ev.SubmitErr("x"), 0, ev.COORDINATOR, 0))
        finally:
            transport.close()

    def test_tcp_surfaces_handler_exceptions(self):
        group = get_group("TOY")

        class Exploder:
            def handle(self, env):
                raise KeyError("kaboom")

        transport = TcpTransport(group)
        try:
            transport.register(0, 0, Exploder())
            with pytest.raises(TransportError, match="kaboom"):
                transport.request(wrap(ev.ReportOk(), 0, ev.COORDINATOR, 0))
        finally:
            transport.close()

    def test_node_swap_behind_live_endpoint(self):
        """Stream rekeys re-register the same (round, node) key; the
        endpoint must dispatch to the new node without rebinding."""
        group = get_group("TOY")

        class Const:
            def __init__(self, n):
                self.n = n

            def handle(self, env):
                return [wrap(ev.SubmitOk(self.n), env.round_id, 0, env.sender)]

        transport = TcpTransport(group)
        try:
            transport.register(0, 0, Const(1))
            assert transport.request(
                wrap(ev.ReportOk(), 0, ev.COORDINATOR, 0)
            )[0].payload.accepted == 1
            transport.register(0, 0, Const(2))
            assert transport.request(
                wrap(ev.ReportOk(), 0, ev.COORDINATOR, 0)
            )[0].payload.accepted == 2
        finally:
            transport.close()

    def test_make_transport_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport("pigeon", get_group("TOY"))

    def test_config_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            small_config(transport="carrier")


class TestCoordinatorLifecycle:
    def test_release_is_idempotent(self):
        dep = AtomDeployment(small_config())
        rnd = dep.start_round(0, rng=DeterministicRng(b"release"))
        rnd.coordinator.release()
        rnd.coordinator.release()
        with pytest.raises(TransportError):
            rnd.coordinator.submit(
                ev.SubmitErr("after release"), 0
            )

    def test_parallel_round_over_tcp(self):
        """parallelism > 1 fans group mixes to the worker pool through
        the MIX_PENDING / MIX_COLLECT flow — also behind TCP."""
        config = small_config(
            transport="tcp", parallelism=2, adversarial_fraction=0.0
        )
        with AtomDeployment(config) as dep:
            rnd = dep.start_round(0, rng=DeterministicRng(b"pool-tcp"))
            msgs = [b"pp%d" % i for i in range(4)]
            for i, m in enumerate(msgs):
                dep.submit_plain(rnd, m, i % 2)
            result = dep.run_round(rnd, DeterministicRng(b"pool-tcp-mix"))
        assert result.ok
        assert sorted(result.messages) == sorted(msgs)

    def test_tamper_audit_travels_in_summary(self):
        """A trap-variant tampering is recorded node-side and must
        reach the coordinator's RoundResult through MIX_SUMMARY."""
        config = small_config(variant="trap")
        with AtomDeployment(config) as dep:
            rnd = dep.start_round(0, rng=DeterministicRng(b"audit"))
            rnd.contexts[0].servers[0].behavior = Behavior.REPLACE_ONE
            for i in range(4):
                dep.submit_trap(rnd, b"m%d" % i, i % 2)
            result = dep.run_round(rnd, DeterministicRng(b"audit-mix"))
        tamperings = [t for audit in result.audits for t in audit.tamperings]
        assert tamperings, "the tampering must surface in the audits"

    def test_nizk_summary_carries_shuffle_proof(self):
        """Verified variants attach the final shuffle-proof NIZK to the
        mix-layer hand-off evidence."""
        config = small_config(variant="nizk")
        with AtomDeployment(config) as dep:
            rnd = dep.start_round(0, rng=DeterministicRng(b"proofs"))
            for i in range(4):
                dep.submit_plain(rnd, b"m%d" % i, i % 2)
            result = dep.run_round(rnd, DeterministicRng(b"proofs-mix"))
        assert result.ok
        assert all(a.final_shuffle_proof is not None for a in result.audits)
