"""TcpTransport lifecycle: close() must not leak threads or sockets.

The original close() joined the event-loop thread with a 5 s timeout
and then unconditionally closed the loop and dropped the references —
a wedged thread was silently abandoned (and closing a running loop
raises inside it).  Now a failed join surfaces a TransportError and
keeps the refs so the caller can retry; the success path still tears
everything down, repeatably.
"""

import threading

import pytest

from repro.crypto.groups import get_group
from repro.net.envelopes import COORDINATOR, SubmitOk, wrap
from repro.net.transport import TcpTransport, TransportError


class _EchoNode:
    def handle(self, env):
        return [wrap(SubmitOk(accepted=1), env.round_id, env.dest, COORDINATOR)]


def _loop_threads():
    return [
        t for t in threading.enumerate() if t.name == "atom-tcp-transport"
    ]


class TestClose:
    def test_close_joins_loop_thread(self, toy_group):
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())
        env = wrap(SubmitOk(accepted=1), 0, COORDINATOR, 0)
        assert transport.request(env)[0].payload.accepted == 1
        assert len(_loop_threads()) == 1
        transport.close()
        assert _loop_threads() == []
        assert transport._loop is None and transport._thread is None

    def test_close_is_idempotent(self, toy_group):
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())
        transport.close()
        transport.close()

    def test_repeated_open_close_leaks_nothing(self, toy_group):
        baseline = threading.active_count()
        for i in range(5):
            transport = TcpTransport(toy_group)
            transport.register(i, 0, _EchoNode())
            env = wrap(SubmitOk(accepted=1), i, COORDINATOR, 0)
            transport.request(env)
            transport.close()
        assert _loop_threads() == []
        assert threading.active_count() <= baseline

    def test_wedged_loop_thread_surfaces_transport_error(
        self, toy_group, monkeypatch
    ):
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())
        real_thread = transport._thread
        real_loop = transport._loop

        class _WedgedThread:
            def join(self, timeout=None):
                pass  # simulate a join that times out

            def is_alive(self):
                return True

        transport._thread = _WedgedThread()
        with pytest.raises(TransportError, match="did not stop"):
            transport.close()
        # The refs survive the failure (a retry is possible) and the
        # still-running loop was NOT closed out from under its thread.
        assert transport._thread is not None
        assert transport._loop is real_loop
        assert not transport._closed
        assert not real_loop.is_closed()
        # Swap the real thread back: the retry now succeeds cleanly.
        transport._thread = real_thread
        transport.close()
        assert _loop_threads() == []
        assert transport._closed
