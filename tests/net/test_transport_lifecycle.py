"""TcpTransport lifecycle: close() must not leak threads or sockets.

The original close() joined the event-loop thread with a 5 s timeout
and then unconditionally closed the loop and dropped the references —
a wedged thread was silently abandoned (and closing a running loop
raises inside it).  Now a failed join surfaces a TransportError and
keeps the refs so the caller can retry; the success path still tears
everything down, repeatably.
"""

import gc
import logging
import threading
import warnings

import pytest

from repro.crypto.groups import get_group
from repro.net.envelopes import COORDINATOR, SubmitOk, wrap
from repro.net.transport import TcpTransport, TransportError


class _EchoNode:
    def handle(self, env):
        return [wrap(SubmitOk(accepted=1), env.round_id, env.dest, COORDINATOR)]


def _loop_threads():
    return [
        t for t in threading.enumerate() if t.name == "atom-tcp-transport"
    ]


class TestClose:
    def test_close_joins_loop_thread(self, toy_group):
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())
        env = wrap(SubmitOk(accepted=1), 0, COORDINATOR, 0)
        assert transport.request(env)[0].payload.accepted == 1
        assert len(_loop_threads()) == 1
        transport.close()
        assert _loop_threads() == []
        assert transport._loop is None and transport._thread is None

    def test_close_is_idempotent(self, toy_group):
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())
        transport.close()
        transport.close()

    def test_repeated_open_close_leaks_nothing(self, toy_group):
        baseline = threading.active_count()
        for i in range(5):
            transport = TcpTransport(toy_group)
            transport.register(i, 0, _EchoNode())
            env = wrap(SubmitOk(accepted=1), i, COORDINATOR, 0)
            transport.request(env)
            transport.close()
        assert _loop_threads() == []
        assert threading.active_count() <= baseline

    def test_wedged_loop_thread_surfaces_transport_error(
        self, toy_group, monkeypatch
    ):
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())
        real_thread = transport._thread
        real_loop = transport._loop

        class _WedgedThread:
            def join(self, timeout=None):
                pass  # simulate a join that times out

            def is_alive(self):
                return True

        transport._thread = _WedgedThread()
        with pytest.raises(TransportError, match="did not stop"):
            transport.close()
        # The refs survive the failure (a retry is possible) and the
        # still-running loop was NOT closed out from under its thread.
        assert transport._thread is not None
        assert transport._loop is real_loop
        assert not transport._closed
        assert not real_loop.is_closed()
        # Swap the real thread back: the retry now succeeds cleanly.
        transport._thread = real_thread
        transport.close()
        assert _loop_threads() == []
        assert transport._closed


class _ZombieThread:
    """Reports alive forever, so close() takes the scheduling path."""

    def join(self, timeout=None):
        pass

    def is_alive(self):
        return True


class TestCloseWarnings:
    """close() must neither leak never-awaited coroutines nor swallow
    shutdown failures silently (ISSUE 7 satellite bugs)."""

    def test_close_emits_no_runtime_warnings(self, toy_group):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            transport = TcpTransport(toy_group)
            transport.register(0, 0, _EchoNode())
            env = wrap(SubmitOk(accepted=1), 0, COORDINATOR, 0)
            transport.request(env)
            transport.close()
            gc.collect()

    def test_close_after_loop_stopped_does_not_leak_coroutines(
        self, toy_group, monkeypatch, caplog
    ):
        """The original bug: when the loop stops before close() gets to
        schedule ``_stop_server``/``_drain_tasks``, the futures time
        out and the coroutine objects were abandoned un-awaited —
        Python warns ``coroutine ... was never awaited`` at GC.  Now
        the coroutines are closed explicitly and the timeouts are
        logged instead of swallowed."""
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())
        real_thread = transport._thread
        transport._loop.call_soon_threadsafe(transport._loop.stop)
        real_thread.join(timeout=5)
        assert not real_thread.is_alive()

        monkeypatch.setattr(TcpTransport, "_CLOSE_TIMEOUT_S", 0.05)
        transport._thread = _ZombieThread()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with caplog.at_level(logging.WARNING, "repro.net.transport"):
                with pytest.raises(TransportError, match="did not stop"):
                    transport.close()
            gc.collect()
        assert any(
            "did not finish" in rec.getMessage() for rec in caplog.records
        ), "abandoned close futures must be logged, not silent"
        # Clean up for real: the dead thread lets close() finish.
        transport._thread = real_thread
        transport.close()
        assert transport._closed

    def test_failing_stop_server_is_logged_not_eaten(
        self, toy_group, monkeypatch, caplog
    ):
        """A raising _stop_server used to vanish into ``except
        Exception: pass``; it must now surface in the logs while close
        still completes."""
        transport = TcpTransport(toy_group)
        transport.register(0, 0, _EchoNode())

        async def _boom(server):
            raise ValueError("server refused to stop")

        monkeypatch.setattr(TcpTransport, "_stop_server", staticmethod(_boom))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with caplog.at_level(logging.WARNING, "repro.net.transport"):
                transport.close()
            gc.collect()
        assert transport._closed
        assert _loop_threads() == []
        failures = [
            rec
            for rec in caplog.records
            if "server shutdown failed" in rec.getMessage()
        ]
        assert failures, "the _stop_server failure must be visible"
        assert "server refused to stop" in str(failures[0].exc_info[1])
