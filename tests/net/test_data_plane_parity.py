"""Data-plane parity: batch buffers must be a pure representation change.

The batch data plane moves serialized record buffers instead of vector
object lists, and may spill intake to disk — but it replicates the
object path's rng draw order exactly, so a seeded round must produce a
**byte-identical** :class:`~repro.core.protocol.RoundResult` on either
plane, over either transport, spilling or not.  (Seed convention per
``tests/net/test_transport_parity.py``: pinned seeds, strict
comparison.)
"""

import pytest

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.crypto.groups import DeterministicRng, get_group
from repro.net.envelopes import encode_audit


def _config(data_plane, crypto_group="TOY", variant="trap", **overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant=variant,
        iterations=3,
        message_size=8,
        crypto_group=crypto_group,
        nizk_rounds=4,
        data_plane=data_plane,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def _run_seeded_round(config, num_users=4):
    with AtomDeployment(config) as dep:
        rng = DeterministicRng(b"plane-setup")
        rnd = dep.start_round(0, rng=rng)
        client = Client(dep.group, rng)
        messages = [b"plane-%d" % i for i in range(num_users)]
        for i, message in enumerate(messages):
            gid = i % config.num_groups
            if config.variant == "trap":
                dep.submit_trap(rnd, message, gid, client)
            else:
                dep.submit_plain(rnd, message, gid, client)
        dep.pad_round(rnd, rng)
        result = dep.run_round(rnd, DeterministicRng(b"plane-round"))
    return messages, result


def _canonical(group, result) -> bytes:
    parts = [
        b"round:%d" % result.round_id,
        b"aborted:%d" % result.aborted,
        b"reason:" + result.abort_reason.encode(),
        b"offending:" + ",".join(map(str, result.offending_groups)).encode(),
        b"bytes:%d" % result.bytes_sent_total,
        b"traps:%d" % result.num_traps_checked,
    ]
    for message in result.messages:
        parts.append(b"msg:" + message)
    for audit in result.audits:
        parts.append(encode_audit(group, audit))
    return b"\x00".join(parts)


@pytest.mark.parametrize("variant", ["basic", "nizk", "trap"])
def test_batch_plane_byte_identical_to_object_plane(variant):
    group = get_group("TOY")
    messages, batch = _run_seeded_round(_config("batch", variant=variant))
    _, legacy = _run_seeded_round(_config("object", variant=variant))
    assert batch.ok and legacy.ok
    assert sorted(batch.messages) == sorted(messages)
    assert _canonical(group, batch) == _canonical(group, legacy)


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
def test_spilled_round_byte_identical_to_unspilled(transport):
    """The acceptance criterion's shape: a spilling batch round equals
    both the in-memory batch round and the object round, on inproc and
    tcp (threshold 3 forces multiple segments at 8+ vectors/group)."""
    group = get_group("TOY")
    _, spilled = _run_seeded_round(
        _config("batch", transport=transport, spill_threshold=3)
    )
    _, unspilled = _run_seeded_round(_config("batch", transport=transport))
    _, legacy = _run_seeded_round(_config("object", transport=transport))
    assert spilled.ok and unspilled.ok and legacy.ok
    assert _canonical(group, spilled) == _canonical(group, unspilled)
    assert _canonical(group, spilled) == _canonical(group, legacy)


@pytest.mark.slow
@pytest.mark.parametrize("crypto_group", ["MODP2048", "P256"])
def test_data_plane_parity_real_groups(crypto_group):
    group = get_group(crypto_group)
    messages, batch = _run_seeded_round(
        _config("batch", crypto_group, iterations=2, spill_threshold=2),
        num_users=2,
    )
    _, legacy = _run_seeded_round(
        _config("object", crypto_group, iterations=2), num_users=2
    )
    assert batch.ok and legacy.ok
    assert sorted(batch.messages) == sorted(messages)
    assert _canonical(group, batch) == _canonical(group, legacy)


def test_tampering_round_falls_back_and_still_catches():
    """A malicious member disables streaming for its group (the tamper
    hooks mutate object lists), but the batch plane's fallback must
    keep the trap catch working end to end."""
    from repro.core.server import Behavior

    config = _config("batch")
    with AtomDeployment(config) as dep:
        rng = DeterministicRng(b"tamper-setup")
        dep.servers[0].behavior = Behavior.REPLACE_ONE
        rnd = dep.start_round(0, rng=rng)
        client = Client(dep.group, rng)
        for i in range(4):
            dep.submit_trap(rnd, b"t%d" % i, i % 2, client)
        dep.pad_round(rnd, rng)
        result = dep.run_round(rnd, DeterministicRng(b"tamper-mix"))
    # The seeded coin may land either way per group; the round either
    # catches the substitution (abort) or the attacker got lucky — but
    # it must never crash or lose honest messages silently.
    if result.ok:
        assert len(result.messages) >= 4
    else:
        assert result.offending_groups
