"""NetFaultPlan grammar and ChaosTransport unit behavior.

Mirrors the FaultSchedule parser suite: every accepted spec must
round-trip exactly through ``parse -> describe -> parse``, and every
malformed spec must fail with a message naming the offending chunk.
The transport-level tests drive a ChaosTransport over a recording fake
so each fault's observable behavior (delivered? raised? held?) is
pinned without any crypto.
"""

import pytest
from hypothesis import given, strategies as st

from repro.net.chaos import (
    ChaosTransport,
    NetFaultPlan,
    NetFaultPlanError,
    NetRule,
    REORDERABLE,
)
from repro.net.envelopes import COORDINATOR, Kind, wrap
from repro.net.nodes import ev
from repro.net.transport import (
    RetryableTransportError,
    RpcTimeout,
    Transport,
)


class TestParsing:
    def test_round_trip(self):
        spec = (
            "*:drop:0.02;"
            "r1-3:delay:20.0:0.1;"
            "c>1:dup;"
            "r2-/mix_batch:reorder:0.5;"
            "0>*/submit_plain:garble:0.25;"
            "*:reset:0.01;"
            "r1/c>1/ping:kill:1;"
            "*:drop-reply:0.05"
        )
        plan = NetFaultPlan.parse(spec)
        assert plan.describe() == spec
        assert NetFaultPlan.parse(plan.describe()).describe() == spec

    def test_percent_rates(self):
        plan = NetFaultPlan.parse("*:drop:2%")
        assert plan.rules[0].rate == pytest.approx(0.02)

    def test_round_scopes(self):
        single = NetFaultPlan.parse("r3:drop").rules[0]
        assert (single.round_start, single.round_end) == (3, 3)
        onward = NetFaultPlan.parse("r3-:drop").rules[0]
        assert (onward.round_start, onward.round_end) == (3, None)
        ranged = NetFaultPlan.parse("r3-5:drop").rules[0]
        assert (ranged.round_start, ranged.round_end) == (3, 5)

    def test_endpoint_scopes(self):
        rule = NetFaultPlan.parse("c>1:drop").rules[0]
        assert (rule.src, rule.dst) == (COORDINATOR, 1)
        rule = NetFaultPlan.parse("*>t:drop").rules[0]
        assert (rule.src, rule.dst) == (None, ev.TRUSTEE)

    def test_kind_scope_is_case_insensitive(self):
        assert NetFaultPlan.parse("MIX_BATCH:drop").rules[0].kind is (
            Kind.MIX_BATCH
        )

    def test_empty_chunks_skipped(self):
        assert len(NetFaultPlan.parse(";;*:drop;;").rules) == 1

    @pytest.mark.parametrize(
        "bad,needle",
        [
            ("drop", "scope:action"),
            ("*:nope", "unknown action"),
            ("*:drop:2", "out of range"),
            ("*:drop:banana", "expected a float"),
            ("*:delay", "delay takes"),
            ("*:delay:-5", "delay must be >= 0"),
            ("*:kill", "kill takes"),
            ("*:kill:c", "expected a gid"),
            ("*:kill:-1", "gid >= 0"),
            ("*:drop:1:2", "at most one arg"),
            ("x>:drop", "bad endpoint"),
            ("r3-1:drop", "empty round range"),
            ("bogus:drop", "bad scope term"),
            ("r1/r2:drop", "duplicate round"),
            ("c>1/0>2:drop", "duplicate endpoint"),
            ("ping/mix:drop", "duplicate kind"),
        ],
    )
    def test_rejects_malformed_specs(self, bad, needle):
        with pytest.raises(NetFaultPlanError, match="bad net fault rule"):
            try:
                NetFaultPlan.parse(bad)
            except NetFaultPlanError as exc:
                assert needle in str(exc), str(exc)
                raise

    def test_overlapping_scopes_both_apply_in_order(self):
        plan = NetFaultPlan.parse("*:delay:1;r1:delay:2")
        env = wrap(ev.CommitLayer(layer=0), 1, COORDINATOR, 0)
        assert [r.matches(env) for r in plan.rules] == [True, True]
        env0 = wrap(ev.CommitLayer(layer=0), 0, COORDINATOR, 0)
        assert [r.matches(env0) for r in plan.rules] == [True, False]


rate_st = st.one_of(
    st.just(1.0),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
round_st = st.one_of(
    st.just((None, None)),
    st.integers(min_value=0, max_value=99).map(lambda n: (n, n)),
    st.integers(min_value=0, max_value=99).map(lambda n: (n, None)),
    st.tuples(
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=99),
    ).map(lambda p: (min(p), max(p))),
)
endpoint_st = st.one_of(
    st.none(),
    st.sampled_from([COORDINATOR, ev.TRUSTEE]),
    st.integers(min_value=0, max_value=63),
)
kind_st = st.one_of(st.none(), st.sampled_from(sorted(Kind, key=int)))


@st.composite
def rule_st(draw):
    action = draw(st.sampled_from(
        ["drop", "drop-reply", "delay", "dup", "reorder", "garble", "reset"]
    ))
    start, end = draw(round_st)
    return NetRule(
        action=action,
        rate=draw(rate_st),
        delay_ms=draw(
            st.floats(min_value=0, max_value=5000, allow_nan=False)
        ) if action == "delay" else 0.0,
        round_start=start,
        round_end=end,
        src=draw(endpoint_st),
        dst=draw(endpoint_st),
        kind=draw(kind_st),
    )


class TestDescribeRoundTrip:
    @given(rules=st.lists(rule_st(), min_size=1, max_size=6))
    def test_parse_describe_identity(self, rules):
        """describe() is a canonical spelling: parsing it reproduces
        the rules exactly (the Hypothesis analogue of the FaultSchedule
        suite's round-trip test)."""
        plan = NetFaultPlan(rules)
        reparsed = NetFaultPlan.parse(plan.describe())
        assert reparsed.rules == rules
        assert reparsed.describe() == plan.describe()


class _RecordingTransport(Transport):
    """Counts deliveries; optionally replies per kind."""

    name = "fake"

    def __init__(self):
        self.delivered = []

    def register(self, round_id, node_id, node):
        pass

    def unregister_round(self, round_id):
        pass

    def request(self, env, timeout=None):
        self.delivered.append(env)
        return []


def _env(kind_payload, round_id=0, dest=0):
    return wrap(kind_payload, round_id, COORDINATOR, dest)


class TestChaosTransport:
    def _chaos(self, spec, seed=b"chaos-test"):
        inner = _RecordingTransport()
        return ChaosTransport(inner, NetFaultPlan.parse(spec), seed), inner

    def test_drop_never_delivers(self):
        chaos, inner = self._chaos("*:drop")
        with pytest.raises(RpcTimeout):
            chaos.request(_env(ev.CommitLayer(layer=0)))
        assert inner.delivered == []
        assert chaos.stats["drop"] == 1

    def test_drop_reply_delivers_then_times_out(self):
        chaos, inner = self._chaos("*:drop-reply")
        with pytest.raises(RpcTimeout):
            chaos.request(_env(ev.CommitLayer(layer=0)))
        assert len(inner.delivered) == 1

    def test_dup_delivers_twice(self):
        chaos, inner = self._chaos("*:dup")
        chaos.request(_env(ev.CommitLayer(layer=0)))
        assert len(inner.delivered) == 2

    def test_garble_and_reset_are_retryable(self):
        for spec, processed in [("*:garble", 1), ("*:reset", 0)]:
            chaos, inner = self._chaos(spec)
            with pytest.raises(RetryableTransportError):
                chaos.request(_env(ev.CommitLayer(layer=0)))
            assert len(inner.delivered) == processed

    def test_rates_are_seed_deterministic(self):
        def drops(seed):
            chaos, _ = self._chaos("*:drop:50%", seed=seed)
            out = []
            for i in range(32):
                try:
                    chaos.request(_env(ev.CommitLayer(layer=0)))
                    out.append(False)
                except RpcTimeout:
                    out.append(True)
            return out

        a, b = drops(b"seed-a"), drops(b"seed-a")
        assert a == b and any(a) and not all(a)
        assert drops(b"seed-b") != a

    def test_reorder_only_applies_to_reorderable_kinds(self):
        assert REORDERABLE == frozenset({Kind.MIX_BATCH})
        chaos, inner = self._chaos("*:reorder")
        chaos.request(_env(ev.CommitLayer(layer=0)))  # not reorderable
        assert len(inner.delivered) == 1
        assert chaos.stats["reorder"] == 0

    def test_reorder_swaps_batches_and_barriers_before_commit(self):
        chaos, inner = self._chaos("0>2:reorder")
        batch = ev.MixBatch(layer=0, vectors=())
        first = wrap(batch, 0, 0, 2)   # held (matches 0>2)
        second = wrap(batch, 0, 1, 2)  # delivered, then flushes `first`
        chaos.request(first)
        assert inner.delivered == []
        chaos.request(second)
        assert [e.sender for e in inner.delivered] == [1, 0]  # swapped
        # An ordered RPC is a barrier: anything still held lands first.
        chaos.request(wrap(batch, 0, 0, 2))  # held again
        chaos.request(_env(ev.CommitLayer(layer=0), dest=2))
        kinds = [e.kind for e in inner.delivered[2:]]
        assert kinds == [Kind.MIX_BATCH, Kind.COMMIT_LAYER]

    def test_kill_is_one_shot_and_revivable(self):
        chaos, inner = self._chaos("ping:kill:1")
        # Non-matching traffic flows.
        chaos.request(_env(ev.CommitLayer(layer=0), dest=1))
        assert len(inner.delivered) == 1
        # The first matching envelope arms the partition...
        with pytest.raises(RpcTimeout, match="dark"):
            chaos.request(_env(ev.Ping(), dest=1))
        # ...which now black-holes *everything* to that endpoint.
        with pytest.raises(RpcTimeout, match="dark"):
            chaos.request(_env(ev.CommitLayer(layer=1), dest=1))
        # Other endpoints are unaffected.
        chaos.request(_env(ev.CommitLayer(layer=1), dest=0))
        # Recovery revives the endpoint; the kill stays spent.
        chaos.revive(1)
        chaos.request(_env(ev.Ping(), dest=1))
        assert [(e.kind, e.dest) for e in inner.delivered] == [
            (Kind.COMMIT_LAYER, 1),
            (Kind.COMMIT_LAYER, 0),
            (Kind.PING, 1),
        ]
