"""Heartbeat failure detection, end to end.

Unit level: the coordinator's pre-layer PING probes must count
consecutive misses against a dark endpoint and surface the declaration
as ``GroupStalled`` (the signal §4.5 buddy recovery already consumes),
and a PONG reporting a lost quorum must stall immediately.

Acceptance level (the ISSUE 6 criterion): a seeded TCP stream under a
drop+delay+duplicate chaos plan with one *undeclared* mid-stream server
kill — no FaultSchedule entry, nothing tells the engine — completes
with the identical per-round payload to the fault-free run, with the
kill detected by heartbeats and healed by buddy recovery.
"""

import pytest

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.core.group import GroupStalled
from repro.core.pipeline import StreamConfig, StreamEngine
from repro.crypto.groups import DeterministicRng


def _round_config(**overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant="basic",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
        heartbeat=True,
        heartbeat_misses=3,
        heartbeat_grace_s=0.001,
        heartbeat_timeout_s=0.25,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def _primed_round(dep):
    rng = DeterministicRng(b"heartbeat-setup")
    rnd = dep.start_round(0, rng=rng)
    client = Client(dep.group, rng)
    for i in range(4):
        dep.submit_plain(rnd, b"hb-%d" % i, i % 2, client)
    return rnd


class TestDetector:
    def test_dark_endpoint_declared_after_misses(self):
        config = _round_config(net_faults="c>1/ping:kill:1")
        with AtomDeployment(config) as dep:
            rnd = _primed_round(dep)
            run = dep.begin_mixing(rnd, DeterministicRng(b"hb-mix"))
            with pytest.raises(GroupStalled) as excinfo:
                run.run_layer()
            assert excinfo.value.gid == 1
            tracker = rnd.coordinator.suspicion
            assert tracker.declared == [1]

    def test_healthy_round_probes_without_suspicion(self):
        with AtomDeployment(_round_config()) as dep:
            rnd = _primed_round(dep)
            result = dep.run_round(rnd, DeterministicRng(b"hb-mix"))
            assert result.ok
            assert rnd.coordinator.suspicion.declared == []

    def test_lost_quorum_stalls_via_pong(self):
        """The endpoint answers, but the PONG says the group is below
        threshold: same GroupStalled, better diagnosis — and *zero*
        recorded misses, since the node did respond."""
        with AtomDeployment(_round_config()) as dep:
            rnd = _primed_round(dep)
            for server in rnd.contexts[1].servers:
                server.failed = True
            run = dep.begin_mixing(rnd, DeterministicRng(b"hb-mix"))
            with pytest.raises(GroupStalled) as excinfo:
                run.run_layer()
            assert excinfo.value.gid == 1
            assert excinfo.value.alive == 0
            assert rnd.coordinator.suspicion.declared == []

    def test_heartbeat_off_means_no_tracker(self):
        with AtomDeployment(_round_config(heartbeat=False)) as dep:
            rnd = _primed_round(dep)
            assert rnd.coordinator.suspicion is None
            assert dep.run_round(rnd, DeterministicRng(b"hb-mix")).ok


#: drop + delay + duplicate background noise, plus one undeclared kill:
#: the first round-1 heartbeat to group 1 turns its endpoint dark.
CHAOS_NOISE = "*:drop:2%;*:delay:2:10%;*:dup:1%"
CHAOS_KILL = CHAOS_NOISE + ";r1/c>1/ping:kill:1"


def _stream(net_faults=None, heartbeat=False):
    config = DeploymentConfig(
        num_servers=8,
        num_groups=2,
        group_size=4,
        h=2,
        mode="manytrust",
        variant="trap",
        iterations=3,
        message_size=8,
        crypto_group="TOY",
        nizk_rounds=4,
        transport="tcp",
        net_faults=net_faults,
        heartbeat=heartbeat,
        heartbeat_grace_s=0.01,
        heartbeat_timeout_s=0.25,
    )
    engine = StreamEngine(
        config,
        stream=StreamConfig(rounds=3, users_per_round=4, seed=b"chaos-stream"),
    )
    return engine.run()


class TestChaosStreamAcceptance:
    @pytest.mark.slow
    def test_undeclared_kill_detected_and_healed(self):
        """The PR's acceptance criterion, end to end over TCP."""
        clean = _stream()
        chaotic = _stream(net_faults=CHAOS_KILL, heartbeat=True)
        assert clean.ok and chaotic.ok
        # The kill was healed by buddy recovery, in the round it hit.
        assert chaotic.total_recoveries == 1
        assert chaotic.rounds[1].recovered_gids == [1]
        # Recovery redraws group sub-seeds, so the comparison is the
        # per-round delivered payload (order-free), not raw bytes.
        assert [
            (r.round_id, r.ok, sorted(r.messages)) for r in chaotic.rounds
        ] == [(r.round_id, r.ok, sorted(r.messages)) for r in clean.rounds]

    @pytest.mark.slow
    def test_pure_chaos_stream_is_order_identical(self):
        """Without the kill, drop/delay/dup noise must be *completely*
        invisible: same payloads in the same order as the calm network."""
        clean = _stream()
        noisy = _stream(net_faults=CHAOS_NOISE, heartbeat=True)
        assert noisy.ok and noisy.total_recoveries == 0
        assert [
            (r.round_id, r.ok, r.messages) for r in noisy.rounds
        ] == [(r.round_id, r.ok, r.messages) for r in clean.rounds]
