"""Cross-transport parity: inproc and tcp must be the same protocol.

The transport moves envelopes; it must not influence the crypto.  Under
identical :class:`~repro.crypto.groups.DeterministicRng` seeds the
coordinator draws identical per-(layer, group) sub-seeds in both modes,
so a round driven over loopback TCP sockets must produce a
**byte-identical** :class:`~repro.core.protocol.RoundResult` — same
delivered messages in the same order, same audits, same byte counts —
as the zero-copy in-process round.  (Convention per
``tests/core/test_pipeline.py``: seeds are pinned; if a draw-order
change breaks parity, re-pick seeds, don't loosen the comparison.)
"""

import pytest

from repro.core import AtomDeployment, Client, DeploymentConfig
from repro.crypto.groups import DeterministicRng, get_group
from repro.net.envelopes import encode_audit


def _config(transport, crypto_group, variant="trap", **overrides):
    base = dict(
        num_servers=6,
        num_groups=2,
        group_size=2,
        variant=variant,
        iterations=3,
        message_size=8,
        crypto_group=crypto_group,
        nizk_rounds=4,
        transport=transport,
    )
    base.update(overrides)
    return DeploymentConfig(**base)


def _run_seeded_round(config, num_users=4):
    """One fully deterministic round: seeded setup, client, padding,
    and mixing."""
    with AtomDeployment(config) as dep:
        rng = DeterministicRng(b"parity-setup")
        rnd = dep.start_round(0, rng=rng)
        client = Client(dep.group, rng)
        messages = [b"parity-%d" % i for i in range(num_users)]
        for i, message in enumerate(messages):
            gid = i % config.num_groups
            if config.variant == "trap":
                dep.submit_trap(rnd, message, gid, client)
            else:
                dep.submit_plain(rnd, message, gid, client)
        dep.pad_round(rnd, rng)
        result = dep.run_round(rnd, DeterministicRng(b"parity-round"))
    return messages, result


def _canonical(group, result) -> bytes:
    """Serialize every RoundResult field to comparable bytes."""
    parts = [
        b"round:%d" % result.round_id,
        b"aborted:%d" % result.aborted,
        b"reason:" + result.abort_reason.encode(),
        b"offending:" + ",".join(map(str, result.offending_groups)).encode(),
        b"bytes:%d" % result.bytes_sent_total,
        b"traps:%d" % result.num_traps_checked,
    ]
    for message in result.messages:
        parts.append(b"msg:" + message)
    for audit in result.audits:
        parts.append(encode_audit(group, audit))
    return b"\x00".join(parts)


@pytest.mark.parametrize("variant", ["basic", "nizk", "trap"])
def test_round_results_byte_identical_toy(variant):
    group = get_group("TOY")
    messages, inproc = _run_seeded_round(_config("inproc", "TOY", variant))
    _, tcp = _run_seeded_round(_config("tcp", "TOY", variant))
    assert inproc.ok and tcp.ok
    assert sorted(inproc.messages) == sorted(messages)
    assert _canonical(group, inproc) == _canonical(group, tcp)


@pytest.mark.slow
@pytest.mark.parametrize("crypto_group", ["MODP2048", "P256"])
def test_round_results_byte_identical_real_groups(crypto_group):
    """The acceptance criterion's backends: a full trap round on the
    2048-bit MODP group and on the paper's P-256 curve delivers the
    identical message set — byte-identical results — either transport.
    """
    group = get_group(crypto_group)
    messages, inproc = _run_seeded_round(
        _config("inproc", crypto_group, iterations=2), num_users=2
    )
    _, tcp = _run_seeded_round(
        _config("tcp", crypto_group, iterations=2), num_users=2
    )
    assert inproc.ok and tcp.ok
    assert sorted(inproc.messages) == sorted(messages)
    assert sorted(tcp.messages) == sorted(messages)
    assert _canonical(group, inproc) == _canonical(group, tcp)


def test_transport_does_not_change_message_multiset_across_seeds():
    """Different seeds give different permutations, but each seed's
    delivered multiset is transport-independent (and complete)."""
    for seed_suffix in (b"a", b"b"):
        results = {}
        for transport in ("inproc", "tcp"):
            config = _config(transport, "TOY", "basic")
            with AtomDeployment(config) as dep:
                rng = DeterministicRng(b"multi-" + seed_suffix)
                rnd = dep.start_round(0, rng=rng)
                client = Client(dep.group, rng)
                for i in range(4):
                    dep.submit_plain(rnd, b"m%d" % i, i % 2, client)
                results[transport] = dep.run_round(
                    rnd, DeterministicRng(b"mix-" + seed_suffix)
                )
        assert results["inproc"].messages == results["tcp"].messages
