"""Tests for the §4.7 pipelining mode and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.sim import SimConfig
from repro.sim.pipeline import PipelinedAtomSimulator


class TestPipelining:
    def test_pipelined_throughput_beats_latency_mode(self):
        """§4.7: pipelining outputs messages every one group's worth of
        latency, so steady-state throughput rises."""
        sim = PipelinedAtomSimulator(SimConfig(num_servers=1024, num_groups=1024))
        comparison = sim.compare_with_latency_mode(2 ** 20)
        assert comparison["throughput_gain"] > 1.0

    def test_pipelined_round_latency_worse(self):
        """The trade-off: a single batch takes longer end to end,
        because each stage has only N/T servers."""
        config = SimConfig(num_servers=1024, num_groups=1024)
        pipelined = PipelinedAtomSimulator(config).simulate(2 ** 20)
        from repro.sim import AtomSimulator

        latency_mode = AtomSimulator(config).simulate_round(2 ** 20)
        assert pipelined.round_latency_s > latency_mode.total_s

    def test_output_period_is_stage_time(self):
        sim = PipelinedAtomSimulator(SimConfig(num_servers=512, num_groups=512))
        result = sim.simulate(2 ** 19)
        assert result.round_latency_s == pytest.approx(
            result.output_period_s * result.stages
        )

    def test_throughput_definition(self):
        sim = PipelinedAtomSimulator(SimConfig(num_servers=512, num_groups=512))
        result = sim.simulate(2 ** 19)
        assert result.throughput_msgs_per_s == pytest.approx(
            2 ** 19 / result.output_period_s
        )


class TestCli:
    def test_round_command(self, capsys):
        code = cli_main(
            ["round", "--users", "4", "--iterations", "3", "--crypto-group", "TOY"]
        )
        assert code == 0
        assert "round: ok" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = cli_main(["simulate", "--servers", "1024"])
        assert code == 0
        out = capsys.readouterr().out
        assert "28.2 min" in out

    def test_group_size_command(self, capsys):
        code = cli_main(["group-size", "--h", "1"])
        assert code == 0
        assert "k = 32" in capsys.readouterr().out

    def test_costs_command(self, capsys):
        code = cli_main(["costs", "--cores", "4"])
        assert code == 0
        assert "$146" in capsys.readouterr().out

    def test_nizk_round(self, capsys):
        code = cli_main(
            [
                "round", "--users", "4", "--variant", "nizk",
                "--iterations", "2", "--crypto-group", "TOY",
            ]
        )
        assert code == 0
