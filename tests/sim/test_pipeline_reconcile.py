"""Reconciling the analytic §4.7 pipelining model against the real
stream engine's measured intake/mix overlap."""

import pytest

from repro.core import DeploymentConfig, StreamConfig, StreamEngine
from repro.sim import reconcile_with_engine


def run_stream(overlap: bool, rounds: int = 4):
    engine = StreamEngine(
        DeploymentConfig(
            num_servers=6,
            num_groups=2,
            group_size=2,
            variant="basic",
            iterations=3,
            message_size=8,
            crypto_group="TOY",
        ),
        stream=StreamConfig(
            rounds=rounds,
            users_per_round=8,
            seed=b"reconcile",
            overlap_intake=overlap,
        ),
    )
    report = engine.run()
    assert report.ok
    return report


class TestReconciliation:
    def test_model_vs_engine(self):
        report = run_stream(overlap=True)
        numbers = reconcile_with_engine(report)

        # The two-stage model: serial = intake + mix, ideal = max of the
        # two, so the analytic speedup lies in (1, 2].
        assert numbers["serial_period_s"] == pytest.approx(
            numbers["mean_intake_s"] + numbers["mean_mix_s"]
        )
        assert numbers["analytic_period_s"] == pytest.approx(
            max(numbers["mean_intake_s"], numbers["mean_mix_s"])
        )
        assert 1.0 < numbers["analytic_speedup"] <= 2.0

        # The engine measurably moved intake inside the mix window; the
        # realized overlap can't exceed the smaller stage.
        assert numbers["mean_overlap_s"] > 0
        assert 0.0 < numbers["overlap_utilization"] <= 1.0 + 1e-6

        # On one core the cooperative schedule cannot beat the ideal
        # pipeline; the measured period includes per-round exit work,
        # so it also cannot beat the serial stage sum.
        assert numbers["measured_period_s"] >= numbers["analytic_period_s"]
        assert numbers["measured_speedup"] <= numbers["analytic_speedup"]

    def test_serial_baseline_shows_no_overlap(self):
        numbers = reconcile_with_engine(run_stream(overlap=False))
        assert numbers["mean_overlap_s"] == 0.0
        assert numbers["overlap_utilization"] == 0.0

    def test_empty_report_rejected(self):
        from repro.core.pipeline import StreamReport

        with pytest.raises(ValueError):
            reconcile_with_engine(StreamReport())
