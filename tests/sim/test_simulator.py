"""Tests for the performance simulator: model invariants and the
paper-shape properties every figure relies on."""

import pytest

from repro.sim import (
    AtomSimulator,
    Fleet,
    GroupMixModel,
    MachineSpec,
    NetworkModel,
    PrimitiveCosts,
    SimConfig,
    amdahl_speedup,
    group_setup_latency,
)


@pytest.fixture(scope="module")
def costs():
    return PrimitiveCosts.paper_table3()


class TestCostModel:
    def test_table3_values(self, costs):
        assert costs.enc == pytest.approx(1.40e-4)
        assert costs.reenc == pytest.approx(3.35e-4)
        assert costs.shuffle_per_msg == pytest.approx(1.07e-1 / 1024)

    def test_nizk_trap_ratio_about_four(self, costs):
        """§6.1: 'The NIZK variant takes about four times longer'."""
        ratio = costs.nizk_over_trap_ratio(trap_doubling=True)
        assert 3.0 < ratio < 5.5

    def test_scaled(self, costs):
        double = costs.scaled(2.0)
        assert double.enc == pytest.approx(2 * costs.enc)
        assert double.dvss_pair == costs.dvss_pair  # non-CPU knobs kept

    def test_measure_costs_runs(self):
        from repro.sim.costmodel import measure_costs

        measured = measure_costs(group_name="TOY", batch=8, repeat=1)
        assert measured.enc > 0
        assert measured.shufproof_verify_per_msg > measured.shuffle_per_msg


class TestMachines:
    def test_amdahl_limits(self):
        assert amdahl_speedup(1, 0.9) == pytest.approx(1.0)
        assert amdahl_speedup(10 ** 6, 0.9) == pytest.approx(10.0, rel=1e-3)

    def test_amdahl_monotone(self):
        speeds = [amdahl_speedup(c, 0.95) for c in (1, 2, 4, 8, 16)]
        assert speeds == sorted(speeds)

    def test_amdahl_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.5)
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)

    def test_paper_mix_fractions(self):
        fleet = Fleet.paper_mix(1000)
        cores = [m.cores for m in fleet.machines]
        assert cores.count(4) == 800
        assert cores.count(8) == 100
        assert cores.count(16) == 50
        assert cores.count(32) == 50

    def test_trap_more_parallel_than_nizk(self):
        m = MachineSpec(cores=36, bandwidth_mbps=100)
        assert m.effective_cores("trap") > m.effective_cores("nizk")

    def test_homogeneous(self):
        fleet = Fleet.homogeneous(10, cores=8)
        assert all(m.cores == 8 for m in fleet.machines)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            Fleet([])


class TestNetwork:
    def test_latency_range(self):
        net = NetworkModel()
        for a in range(0, 100, 7):
            for b in range(0, 100, 11):
                lat = net.latency(a, b, 100)
                assert lat == 0 or 0.040 <= lat <= 0.160

    def test_self_latency_zero(self):
        assert NetworkModel().latency(5, 5, 100) == 0.0

    def test_intra_cluster_cheaper(self):
        net = NetworkModel()
        intra = net.latency(0, 1, 100)
        inter = net.latency(0, 99, 100)
        assert intra < inter

    def test_transfer_time(self):
        net = NetworkModel()
        m = MachineSpec(4, 100.0)  # 12.5 MB/s
        assert net.transfer_time(12.5e6, m) == pytest.approx(1.0)

    def test_mean_latency_in_range(self):
        mean = NetworkModel().mean_latency()
        assert 0.040 <= mean <= 0.160


class TestGroupMixModel:
    """Figures 5-7 shapes."""

    def _model(self, costs, variant, k=32, cores=4):
        machines = [MachineSpec(cores, 100.0)] * k
        return GroupMixModel(costs, NetworkModel(), machines, variant=variant)

    def test_fig5_linear_in_messages(self, costs):
        model = self._model(costs, "trap")
        t1 = model.iteration_time(1024)
        t2 = model.iteration_time(2048)
        t4 = model.iteration_time(4096)
        assert t2 / t1 == pytest.approx((t4 / t2), rel=0.25)
        assert t4 > t2 > t1

    def test_fig5_nizk_about_4x_trap(self, costs):
        trap = self._model(costs, "trap").iteration_time(2 * 4096)  # trap doubling
        nizk = self._model(costs, "nizk").iteration_time(4096)
        assert 2.5 < nizk / trap < 6.0

    def test_fig6_linear_in_group_size(self, costs):
        t8 = self._model(costs, "trap", k=8).iteration_time(1024)
        t16 = self._model(costs, "trap", k=16).iteration_time(1024)
        t32 = self._model(costs, "trap", k=32).iteration_time(1024)
        assert t16 / t8 == pytest.approx(2.0, rel=0.2)
        assert t32 / t16 == pytest.approx(2.0, rel=0.2)

    def test_fig7_trap_speedup_near_linear(self, costs):
        # Evaluated at a compute-dominated load (Figure 5's upper end);
        # at tiny loads network hops cap the speed-up for any variant.
        model = self._model(costs, "trap")
        base = model.iteration_time_with_cores(4, 16384)
        s36 = base / model.iteration_time_with_cores(36, 16384)
        assert 4.5 < s36 <= 9.0  # paper: ~8x, near-linear vs 9x ideal

    def test_fig7_nizk_speedup_sublinear(self, costs):
        trap_model = self._model(costs, "trap")
        nizk_model = self._model(costs, "nizk")
        trap_s = trap_model.iteration_time_with_cores(4, 16384) / trap_model.iteration_time_with_cores(36, 16384)
        nizk_s = nizk_model.iteration_time_with_cores(4, 16384) / nizk_model.iteration_time_with_cores(36, 16384)
        assert nizk_s < trap_s

    def test_table4_setup_quadratic(self, costs):
        t4 = group_setup_latency(4, costs)
        t8 = group_setup_latency(8, costs)
        t64 = group_setup_latency(64, costs)
        assert t8 / t4 == pytest.approx(4.0)
        # paper anchors: 7.4ms at k=4, 1432.1ms at k=64 (same order)
        assert 0.001 < t4 < 0.05
        assert 0.3 < t64 < 5.0


class TestEndToEnd:
    """Figures 9-11 and Table 12 shapes."""

    def test_fig9_linear_in_messages(self):
        sim = AtomSimulator(SimConfig())
        lat = [sim.latency_minutes(m) for m in (2 ** 19, 2 ** 20, 2 ** 21)]
        assert lat[1] / lat[0] == pytest.approx(2.0, rel=0.3)
        assert lat[2] / lat[1] == pytest.approx(2.0, rel=0.3)

    def test_paper_headline_28_minutes(self):
        """§1: 'a million Tweet-length messages in 28 minutes'."""
        sim = AtomSimulator(SimConfig(num_servers=1024, num_groups=1024))
        assert sim.latency_minutes(2 ** 20) == pytest.approx(28.2, rel=0.05)

    def test_fig10_horizontal_scaling(self):
        lat = {}
        for n in (128, 256, 512, 1024):
            lat[n] = AtomSimulator(
                SimConfig(num_servers=n, num_groups=n)
            ).latency_minutes(2 ** 20)
        assert lat[512] / lat[1024] == pytest.approx(2.0, rel=0.15)
        assert lat[128] / lat[1024] == pytest.approx(8.0, rel=0.15)

    def test_fig11_sublinear_at_scale(self):
        base = AtomSimulator(
            SimConfig(num_servers=2 ** 10, num_groups=2 ** 10)
        ).simulate_round(10 ** 9)
        big = AtomSimulator(
            SimConfig(num_servers=2 ** 15, num_groups=2 ** 15)
        ).simulate_round(10 ** 9)
        speedup = base.total_s / big.total_s
        assert 15 < speedup < 30  # sub-linear vs 32x ideal (paper: 23.6x)

    def test_dialing_close_to_microblogging(self):
        micro = AtomSimulator(SimConfig()).latency_minutes(2 ** 20)
        dial = AtomSimulator(
            SimConfig(application="dialing", message_size=80)
        ).latency_minutes(2 ** 20)
        assert dial == pytest.approx(micro, rel=0.25)  # Table 12: 28.2 vs 27.9

    def test_bandwidth_below_1mb_per_s(self):
        """§6.2: Atom servers use less than 1 MB/s."""
        result = AtomSimulator(SimConfig()).simulate_round(2 ** 20)
        assert result.per_server_bandwidth_bytes_s < 1e6

    def test_staggering_helps(self):
        """§4.7 ablation: naive placement wastes capacity."""
        on = AtomSimulator(SimConfig(staggered=True)).simulate_round(2 ** 22)
        off = AtomSimulator(SimConfig(staggered=False)).simulate_round(2 ** 22)
        assert off.total_s >= on.total_s

    def test_trap_doubles_ciphertexts(self):
        sim = AtomSimulator(SimConfig(variant="trap"))
        assert sim.total_ciphertexts(1000) == 2000
        sim2 = AtomSimulator(SimConfig(variant="nizk"))
        assert sim2.total_ciphertexts(1000) == 1000

    def test_setup_under_two_seconds(self):
        """§1: fault tolerance adds 'less than two seconds of overhead'
        (the k=33 group setup)."""
        assert AtomSimulator(SimConfig(group_size=33)).setup_time() < 2.0


class TestEventEngine:
    def test_task_graph_chain(self):
        from repro.sim.events import TaskGraph

        graph = TaskGraph()
        graph.add_task("a", duration=1.0, num_inputs=0)
        graph.add_task("b", duration=2.0, num_inputs=1)
        graph.add_edge("a", "b", delay=0.5)
        graph.start("a")
        finish = graph.run()
        assert finish["a"] == pytest.approx(1.0)
        assert finish["b"] == pytest.approx(3.5)

    def test_task_graph_join(self):
        from repro.sim.events import TaskGraph

        graph = TaskGraph()
        graph.add_task("a", 1.0, 0)
        graph.add_task("b", 5.0, 0)
        graph.add_task("join", 1.0, 2)
        graph.add_edge("a", "join", 0.0)
        graph.add_edge("b", "join", 0.0)
        graph.start("a")
        graph.start("b")
        finish = graph.run()
        assert finish["join"] == pytest.approx(6.0)

    def test_cannot_schedule_in_past(self):
        from repro.sim.events import EventQueue

        queue = EventQueue()
        queue.schedule(1.0, lambda: queue.schedule(0.5, lambda: None))
        with pytest.raises(ValueError):
            queue.run()

    def test_duplicate_task_rejected(self):
        from repro.sim.events import TaskGraph

        graph = TaskGraph()
        graph.add_task("a", 1.0, 0)
        with pytest.raises(ValueError):
            graph.add_task("a", 1.0, 0)
