"""Tests for the Riposte / Vuvuzela / Alpenhorn baselines."""

import pytest

from repro.baselines.dpf import NaiveDpf, SqrtDpf
from repro.baselines.riposte import (
    RiposteServerPair,
    riposte_cannot_scale_out,
    riposte_latency_minutes,
)
from repro.baselines.vuvuzela import (
    VuvuzelaChain,
    vuvuzela_dial_latency_minutes,
)
from repro.baselines.alpenhorn import (
    alpenhorn_dial_latency_minutes,
    atom_fits_dialing_cadence,
)
from repro.crypto.groups import get_group


class TestNaiveDpf:
    def test_point_function(self):
        dpf = NaiveDpf(num_slots=8, slot_bytes=4)
        key_a, key_b = dpf.generate(3, b"msg!")
        combined = NaiveDpf.combine(dpf.expand(key_a), dpf.expand(key_b))
        assert combined[3] == b"msg!"
        assert all(combined[i] == b"\x00" * 4 for i in range(8) if i != 3)

    def test_single_share_looks_random(self):
        dpf = NaiveDpf(num_slots=8, slot_bytes=4)
        key_a, _ = dpf.generate(3, b"msg!")
        # share A alone reveals nothing: target slot not distinguishable
        assert key_a.share[3] != b"msg!"

    def test_target_out_of_range(self):
        with pytest.raises(IndexError):
            NaiveDpf(4, 4).generate(4, b"x")

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            NaiveDpf(0, 4)


class TestSqrtDpf:
    @pytest.mark.parametrize("target", [0, 5, 15, 16, 24])
    def test_point_function_various_targets(self, target):
        dpf = SqrtDpf(num_slots=25, slot_bytes=8)
        key_a, key_b = dpf.generate(target, b"hello!")
        combined = SqrtDpf.combine(dpf.expand(key_a), dpf.expand(key_b))
        expected = b"hello!".ljust(8, b"\x00")
        for i in range(25):
            assert combined[i] == (expected if i == target else b"\x00" * 8)

    def test_key_size_sublinear(self):
        small = SqrtDpf(num_slots=16, slot_bytes=8)
        large = SqrtDpf(num_slots=1024, slot_bytes=8)
        key_small, _ = small.generate(0, b"x")
        key_large, _ = large.generate(0, b"x")
        # 64x more slots -> only 8x more key material
        ratio = large.key_size_bytes(key_large) / small.key_size_bytes(key_small)
        assert ratio < 16

    def test_non_square_table(self):
        dpf = SqrtDpf(num_slots=10, slot_bytes=4)
        key_a, key_b = dpf.generate(9, b"end")
        combined = SqrtDpf.combine(dpf.expand(key_a), dpf.expand(key_b))
        assert len(combined) == 10
        assert combined[9] == b"end\x00"

    def test_message_too_large(self):
        with pytest.raises(ValueError):
            SqrtDpf(4, 2).generate(0, b"toolong")


class TestRiposte:
    def test_writes_accumulate(self):
        pair = RiposteServerPair(num_slots=16, slot_bytes=8)
        pair.write(2, b"alpha")
        pair.write(7, b"beta")
        pair.write(11, b"gamma")
        board = pair.reveal()
        assert board[2].rstrip(b"\x00") == b"alpha"
        assert board[7].rstrip(b"\x00") == b"beta"
        assert board[11].rstrip(b"\x00") == b"gamma"
        assert pair.writes == 3

    def test_collision_xors(self):
        """Two writes to the same slot collide (Riposte's known issue,
        handled by table sizing in the real system)."""
        pair = RiposteServerPair(num_slots=4, slot_bytes=4)
        pair.write(1, b"aaaa")
        pair.write(1, b"bbbb")
        slot = pair.reveal()[1]
        assert slot == bytes(a ^ b for a, b in zip(b"aaaa", b"bbbb"))

    def test_latency_model_quadratic(self):
        one = riposte_latency_minutes(1_000_000)
        two = riposte_latency_minutes(2_000_000)
        assert one == pytest.approx(669.2)
        assert two == pytest.approx(4 * 669.2)

    def test_scale_out_caveat(self):
        assert "anytrust" in riposte_cannot_scale_out(10)


class TestVuvuzela:
    def test_chain_routes_messages(self):
        group = get_group("TOY")
        chain = VuvuzelaChain(group)
        onions = [chain.wrap(b"message %d" % i) for i in range(4)]
        out = chain.run_round(onions)
        assert sorted(out) == sorted(b"message %d" % i for i in range(4))

    def test_chain_shuffles(self):
        group = get_group("TOY")
        chain = VuvuzelaChain(group)
        onions = [chain.wrap(bytes([i]) * 4) for i in range(16)]
        out = chain.run_round(onions)
        assert out != [bytes([i]) * 4 for i in range(16)]

    def test_dialing_mailboxes(self):
        group = get_group("TOY")
        chain = VuvuzelaChain(group)
        mailboxes = chain.dial_round(
            [(1, b"call-bob"), (2, b"call-carol"), (1, b"call-bob-2")],
            num_mailboxes=4,
        )
        assert sorted(mailboxes[1]) == [b"call-bob", b"call-bob-2"]
        assert mailboxes[2] == [b"call-carol"]

    def test_noise_added(self):
        group = get_group("TOY")
        chain = VuvuzelaChain(group, noise_mu=3.0)
        out = chain.run_round([chain.wrap(b"\x01real")])
        assert len(out) > 1  # noise onions survive to the end

    def test_latency_model_linear(self):
        assert vuvuzela_dial_latency_minutes(1_000_000) == pytest.approx(0.5)
        assert vuvuzela_dial_latency_minutes(2_000_000) == pytest.approx(1.0)


class TestAlpenhorn:
    def test_latency_model(self):
        assert alpenhorn_dial_latency_minutes(1_000_000) == pytest.approx(0.5)

    def test_atom_fits_cadence(self):
        """§6.2: Atom's 28 min fits a dial-every-few-hours cadence."""
        assert atom_fits_dialing_cadence(28.2)
        assert not atom_fits_dialing_cadence(500.0)


class TestTable12Shape:
    """The comparison table's headline ratios."""

    def test_atom_vs_riposte_speedup(self):
        from repro.sim import AtomSimulator, SimConfig

        atom = AtomSimulator(SimConfig(num_servers=1024, num_groups=1024))
        atom_min = atom.latency_minutes(2 ** 20)
        speedup = riposte_latency_minutes(2 ** 20) / atom_min
        assert 15 < speedup < 35  # paper: 23.7x

    def test_vuvuzela_vs_atom_slowdown(self):
        from repro.sim import AtomSimulator, SimConfig

        atom = AtomSimulator(
            SimConfig(num_servers=1024, num_groups=1024, application="dialing", message_size=80)
        )
        slowdown = atom.latency_minutes(2 ** 20) / vuvuzela_dial_latency_minutes(2 ** 20)
        assert 30 < slowdown < 90  # paper: 56x
