"""Tests for vector ciphertexts and the vector shuffle proof."""

import pytest

from repro.crypto.elgamal import AtomElGamal
from repro.crypto.vector import (
    CiphertextVector,
    decrypt_vector,
    encrypt_vector,
    plaintext_of,
    prove_vector_shuffle,
    rerandomize_vector,
    reencrypt_vector,
    shuffle_vectors,
    verify_vector_shuffle,
)

ROUNDS = 6


@pytest.fixture()
def setup(toy_group):
    scheme = AtomElGamal(toy_group)
    kp = scheme.keygen()
    messages = [bytes([i]) * 12 for i in range(4)]
    vectors = [encrypt_vector(scheme, kp.public, m)[0] for m in messages]
    return scheme, kp, messages, vectors


class TestVectorOps:
    def test_multi_part_roundtrip(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        assert len(vectors[0]) > 1  # 12 bytes exceeds TOY capacity
        for m, v in zip(messages, vectors):
            assert decrypt_vector(scheme, kp.secret, v) == m

    def test_reencrypt_vector_pipeline(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        nxt = scheme.keygen()
        out = reencrypt_vector(scheme, kp.secret, nxt.public, vectors[0])
        out = out.with_y_bot()
        assert decrypt_vector(scheme, nxt.secret, out) == messages[0]

    def test_plaintext_of_after_final_layer(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        final = reencrypt_vector(scheme, kp.secret, None, vectors[0])
        assert plaintext_of(scheme, final) == messages[0]

    def test_rerandomize_arity_check(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        with pytest.raises(ValueError):
            rerandomize_vector(scheme, kp.public, vectors[0], randomness=[1])

    def test_shuffle_witness_consistency(self, toy_group, setup, rng):
        scheme, kp, messages, vectors = setup
        shuffled, perm, rands = shuffle_vectors(scheme, kp.public, vectors, rng)
        for i in range(len(vectors)):
            expect = rerandomize_vector(
                scheme, kp.public, vectors[perm[i]], randomness=rands[i]
            )
            assert expect == shuffled[i]

    def test_size_bytes(self, setup):
        scheme, kp, messages, vectors = setup
        assert vectors[0].size_bytes == len(vectors[0].to_bytes())


class TestVectorShuffleProof:
    def test_honest_proof_verifies(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        shuffled, perm, rands = shuffle_vectors(scheme, kp.public, vectors)
        proof = prove_vector_shuffle(
            scheme, kp.public, vectors, shuffled, perm, rands, ROUNDS
        )
        assert verify_vector_shuffle(
            scheme, kp.public, vectors, shuffled, proof, ROUNDS
        )

    def test_swapped_vectors_fail(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        shuffled, perm, rands = shuffle_vectors(scheme, kp.public, vectors)
        proof = prove_vector_shuffle(
            scheme, kp.public, vectors, shuffled, perm, rands, ROUNDS
        )
        bad = list(shuffled)
        bad[0], bad[1] = bad[1], bad[0]
        assert not verify_vector_shuffle(scheme, kp.public, vectors, bad, proof, ROUNDS)

    def test_cross_vector_part_swap_fails(self, toy_group, setup):
        """Permuting parts *across* messages is cheating and is caught —
        the vector is the unit of permutation."""
        scheme, kp, messages, vectors = setup
        shuffled, perm, rands = shuffle_vectors(scheme, kp.public, vectors)
        proof = prove_vector_shuffle(
            scheme, kp.public, vectors, shuffled, perm, rands, ROUNDS
        )
        a_parts = list(shuffled[0].parts)
        b_parts = list(shuffled[1].parts)
        a_parts[0], b_parts[0] = b_parts[0], a_parts[0]
        bad = list(shuffled)
        bad[0] = CiphertextVector(tuple(a_parts))
        bad[1] = CiphertextVector(tuple(b_parts))
        assert not verify_vector_shuffle(scheme, kp.public, vectors, bad, proof, ROUNDS)

    def test_replaced_part_fails(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        shuffled, perm, rands = shuffle_vectors(scheme, kp.public, vectors)
        proof = prove_vector_shuffle(
            scheme, kp.public, vectors, shuffled, perm, rands, ROUNDS
        )
        parts = list(shuffled[2].parts)
        parts[0], _ = scheme.encrypt(kp.public, toy_group.encode(b"EVIL"))
        bad = list(shuffled)
        bad[2] = CiphertextVector(tuple(parts))
        assert not verify_vector_shuffle(scheme, kp.public, vectors, bad, proof, ROUNDS)

    def test_witness_size_mismatch_raises(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        shuffled, perm, rands = shuffle_vectors(scheme, kp.public, vectors)
        with pytest.raises(ValueError):
            prove_vector_shuffle(
                scheme, kp.public, vectors, shuffled, perm[:-1], rands, ROUNDS
            )

    def test_wrong_round_count_fails(self, toy_group, setup):
        scheme, kp, messages, vectors = setup
        shuffled, perm, rands = shuffle_vectors(scheme, kp.public, vectors)
        proof = prove_vector_shuffle(
            scheme, kp.public, vectors, shuffled, perm, rands, ROUNDS
        )
        assert not verify_vector_shuffle(
            scheme, kp.public, vectors, shuffled, proof, ROUNDS + 2
        )
