"""Tests for the AEAD and the IND-CCA2 hybrid KEM."""

import pytest

from repro.crypto.aead import (
    AeadCiphertext,
    AuthenticationError,
    aead_decrypt,
    aead_encrypt,
)
from repro.crypto.elgamal import AtomElGamal
from repro.crypto.kem import Cca2Ciphertext, cca2_decrypt, cca2_encrypt

KEY = bytes(range(32))


class TestAead:
    @pytest.mark.parametrize("plaintext", [b"", b"a", b"hello world", b"\x00" * 100])
    def test_roundtrip(self, plaintext):
        ct = aead_encrypt(KEY, plaintext)
        assert aead_decrypt(KEY, ct) == plaintext

    def test_wrong_key_fails(self):
        ct = aead_encrypt(KEY, b"secret")
        with pytest.raises(AuthenticationError):
            aead_decrypt(bytes(32), ct)

    def test_flipped_body_bit_detected(self):
        ct = aead_encrypt(KEY, b"integrity matters")
        tampered = AeadCiphertext(ct.nonce, bytes([ct.body[0] ^ 1]) + ct.body[1:], ct.tag)
        with pytest.raises(AuthenticationError):
            aead_decrypt(KEY, tampered)

    def test_flipped_tag_bit_detected(self):
        ct = aead_encrypt(KEY, b"integrity")
        tampered = AeadCiphertext(ct.nonce, ct.body, bytes([ct.tag[0] ^ 1]) + ct.tag[1:])
        with pytest.raises(AuthenticationError):
            aead_decrypt(KEY, tampered)

    def test_nonce_swap_detected(self):
        ct1 = aead_encrypt(KEY, b"one")
        ct2 = aead_encrypt(KEY, b"two")
        spliced = AeadCiphertext(ct2.nonce, ct1.body, ct1.tag)
        with pytest.raises(AuthenticationError):
            aead_decrypt(KEY, spliced)

    def test_distinct_nonces_give_distinct_bodies(self):
        a = aead_encrypt(KEY, b"same msg")
        b = aead_encrypt(KEY, b"same msg")
        assert a.body != b.body or a.nonce != b.nonce

    def test_serialization_roundtrip(self):
        ct = aead_encrypt(KEY, b"wire format")
        assert AeadCiphertext.from_bytes(ct.to_bytes()) == ct

    def test_short_wire_rejected(self):
        with pytest.raises(ValueError):
            AeadCiphertext.from_bytes(b"short")

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            aead_encrypt(b"short", b"x")


class TestCca2Kem:
    def test_roundtrip(self, test_group):
        scheme = AtomElGamal(test_group)
        kp = scheme.keygen()
        msg = b"inner ciphertext payload" * 4
        ct = cca2_encrypt(test_group, kp.public, msg)
        assert cca2_decrypt(test_group, kp.secret, ct) == msg

    def test_wrong_secret_fails(self, test_group):
        scheme = AtomElGamal(test_group)
        kp, other = scheme.keygen(), scheme.keygen()
        ct = cca2_encrypt(test_group, kp.public, b"msg")
        with pytest.raises(AuthenticationError):
            cca2_decrypt(test_group, other.secret, ct)

    def test_mauled_body_detected(self, test_group):
        """Non-malleability: this is what stops servers tampering with
        inner ciphertexts in the trap variant (§4.4)."""
        scheme = AtomElGamal(test_group)
        kp = scheme.keygen()
        ct = cca2_encrypt(test_group, kp.public, b"msg")
        body = ct.body
        from repro.crypto.aead import AeadCiphertext

        mauled = Cca2Ciphertext(
            ct.R,
            AeadCiphertext(body.nonce, bytes([body.body[0] ^ 1]) + body.body[1:], body.tag),
        )
        with pytest.raises(AuthenticationError):
            cca2_decrypt(test_group, kp.secret, mauled)

    def test_swapped_encapsulation_detected(self, test_group):
        scheme = AtomElGamal(test_group)
        kp = scheme.keygen()
        ct1 = cca2_encrypt(test_group, kp.public, b"one")
        ct2 = cca2_encrypt(test_group, kp.public, b"two")
        spliced = Cca2Ciphertext(ct2.R, ct1.body)
        with pytest.raises(AuthenticationError):
            cca2_decrypt(test_group, kp.secret, spliced)

    def test_deterministic_with_rng(self, test_group):
        from repro.crypto.groups import DeterministicRng

        scheme = AtomElGamal(test_group)
        kp = scheme.keygen()
        a = cca2_encrypt(test_group, kp.public, b"m", DeterministicRng(b"s"))
        b = cca2_encrypt(test_group, kp.public, b"m", DeterministicRng(b"s"))
        assert a == b

    def test_size_bytes(self, test_group):
        scheme = AtomElGamal(test_group)
        kp = scheme.keygen()
        ct = cca2_encrypt(test_group, kp.public, b"0123456789")
        assert ct.size_bytes == len(ct.to_bytes())


class TestCommitments:
    def test_commit_verify(self):
        from repro.crypto.commit import commit, verify_commitment

        payload = b"trap|gid=3|nonce=abcdef"
        c = commit(payload)
        assert verify_commitment(c, payload)
        assert not verify_commitment(c, payload + b"!")

    def test_distinct_payloads_distinct_commitments(self):
        from repro.crypto.commit import commit

        assert commit(b"a") != commit(b"b")


class TestBeacon:
    def test_reproducible_groups(self):
        from repro.crypto.beacon import RandomnessBeacon

        beacon = RandomnessBeacon(b"seed")
        a = beacon.sample_groups(1, num_servers=20, num_groups=5, group_size=4)
        b = beacon.sample_groups(1, num_servers=20, num_groups=5, group_size=4)
        assert a == b

    def test_rounds_differ(self):
        from repro.crypto.beacon import RandomnessBeacon

        beacon = RandomnessBeacon(b"seed")
        assert beacon.sample_groups(1, 20, 5, 4) != beacon.sample_groups(2, 20, 5, 4)

    def test_groups_have_distinct_members(self):
        from repro.crypto.beacon import RandomnessBeacon

        groups = RandomnessBeacon().sample_groups(0, 50, 10, 8)
        for group in groups:
            assert len(set(group)) == len(group) == 8

    def test_group_size_bound(self):
        from repro.crypto.beacon import RandomnessBeacon

        with pytest.raises(ValueError):
            RandomnessBeacon().sample_groups(0, 3, 1, 4)
