"""Tests for the cut-and-choose verifiable shuffle (ShufProof)."""

import pytest

from repro.crypto.elgamal import AtomElGamal
from repro.crypto.shuffle_proof import prove_shuffle, verify_shuffle

ROUNDS = 10


@pytest.fixture()
def setup(toy_group):
    scheme = AtomElGamal(toy_group)
    kp = scheme.keygen()
    cts = [
        scheme.encrypt(kp.public, toy_group.encode(bytes([i])))[0] for i in range(6)
    ]
    return scheme, kp, cts


def make_proof(toy_group, scheme, kp, cts, rounds=ROUNDS):
    shuffled, perm, rands = scheme.shuffle(kp.public, cts)
    proof = prove_shuffle(toy_group, kp.public, cts, shuffled, perm, rands, rounds)
    return shuffled, proof


class TestCompleteness:
    def test_honest_shuffle_verifies(self, toy_group, setup):
        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        assert verify_shuffle(toy_group, kp.public, cts, shuffled, proof, ROUNDS)

    def test_identity_permutation_verifies(self, toy_group, setup):
        scheme, kp, cts = setup
        n = len(cts)
        perm = list(range(n))
        rands = [toy_group.random_scalar() for _ in range(n)]
        shuffled = [
            scheme.rerandomize(kp.public, cts[i], randomness=rands[i]) for i in range(n)
        ]
        proof = prove_shuffle(toy_group, kp.public, cts, shuffled, perm, rands, ROUNDS)
        assert verify_shuffle(toy_group, kp.public, cts, shuffled, proof, ROUNDS)

    def test_single_element(self, toy_group):
        scheme = AtomElGamal(toy_group)
        kp = scheme.keygen()
        cts = [scheme.encrypt(kp.public, toy_group.encode(b"1"))[0]]
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        assert verify_shuffle(toy_group, kp.public, cts, shuffled, proof, ROUNDS)


class TestSoundness:
    def test_swapped_outputs_fail(self, toy_group, setup):
        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        bad = list(shuffled)
        bad[0], bad[1] = bad[1], bad[0]
        assert not verify_shuffle(toy_group, kp.public, cts, bad, proof, ROUNDS)

    def test_replaced_message_fails(self, toy_group, setup):
        """A malicious mixer substituting a ciphertext is caught."""
        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        bad = list(shuffled)
        bad[2], _ = scheme.encrypt(kp.public, toy_group.encode(b"EVIL"))
        assert not verify_shuffle(toy_group, kp.public, cts, bad, proof, ROUNDS)

    def test_dropped_message_fails(self, toy_group, setup):
        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        assert not verify_shuffle(
            toy_group, kp.public, cts, shuffled[:-1], proof, ROUNDS
        )

    def test_duplicated_message_fails(self, toy_group, setup):
        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        bad = list(shuffled)
        bad[3] = bad[2]
        assert not verify_shuffle(toy_group, kp.public, cts, bad, proof, ROUNDS)

    def test_forged_proof_wrong_inputs(self, toy_group, setup):
        """A valid proof for one input set does not transfer to another."""
        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        other = [
            scheme.encrypt(kp.public, toy_group.encode(bytes([99 - i])))[0]
            for i in range(len(cts))
        ]
        assert not verify_shuffle(toy_group, kp.public, other, shuffled, proof, ROUNDS)

    def test_wrong_round_count_rejected(self, toy_group, setup):
        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        assert not verify_shuffle(
            toy_group, kp.public, cts, shuffled, proof, ROUNDS + 1
        )

    def test_invalid_permutation_in_round_rejected(self, toy_group, setup):
        from repro.crypto.shuffle_proof import ShuffleProof, ShuffleRound

        scheme, kp, cts = setup
        shuffled, proof = make_proof(toy_group, scheme, kp, cts)
        first = proof.rounds[0]
        broken = ShuffleRound(
            intermediate=first.intermediate,
            opened_perm=(0,) * len(first.opened_perm),  # not a permutation
            opened_rands=first.opened_rands,
        )
        bad = ShuffleProof(
            rounds=(broken,) + proof.rounds[1:], challenge_bits=proof.challenge_bits
        )
        assert not verify_shuffle(toy_group, kp.public, cts, shuffled, bad, ROUNDS)


class TestZeroKnowledgeShape:
    def test_proof_does_not_reveal_permutation_directly(self, toy_group, setup):
        """Structural check: opened permutations differ across rounds and
        from the witness permutation (they are blinded compositions)."""
        scheme, kp, cts = setup
        shuffled, perm, rands = scheme.shuffle(kp.public, cts)
        proof = prove_shuffle(
            toy_group, kp.public, cts, shuffled, perm, rands, rounds=16
        )
        opened = {r.opened_perm for r in proof.rounds}
        # With 16 rounds over 6! permutations, openings should not all
        # equal the witness (probability astronomically small).
        assert any(list(o) != list(perm) for o in opened)

    def test_size_bytes_scales_with_rounds(self, toy_group, setup):
        scheme, kp, cts = setup
        shuffled, perm, rands = scheme.shuffle(kp.public, cts)
        small = prove_shuffle(toy_group, kp.public, cts, shuffled, perm, rands, 4)
        large = prove_shuffle(toy_group, kp.public, cts, shuffled, perm, rands, 8)
        assert large.size_bytes > small.size_bytes
