"""Tests for Shamir sharing, Feldman VSS, DVSS, and threshold ElGamal."""

import pytest

from repro.crypto.elgamal import AtomElGamal
from repro.crypto.secret_sharing import (
    DvssProtocol,
    Share,
    feldman_deal,
    feldman_verify,
    lagrange_coefficient,
    shamir_reconstruct,
    shamir_share,
)
from repro.crypto.threshold import ThresholdElGamal, release_and_decrypt


class TestShamir:
    def test_reconstruct_from_threshold(self, toy_group):
        secret = 123456789 % toy_group.q
        shares = shamir_share(toy_group, secret, threshold=3, num_shares=5)
        assert shamir_reconstruct(toy_group, shares[:3]) == secret
        assert shamir_reconstruct(toy_group, shares[2:]) == secret

    def test_any_subset_of_threshold_size(self, toy_group):
        secret = 42
        shares = shamir_share(toy_group, secret, threshold=2, num_shares=4)
        import itertools

        for subset in itertools.combinations(shares, 2):
            assert shamir_reconstruct(toy_group, list(subset)) == secret

    def test_below_threshold_gives_wrong_secret(self, toy_group):
        secret = 777
        shares = shamir_share(toy_group, secret, threshold=3, num_shares=5)
        assert shamir_reconstruct(toy_group, shares[:2]) != secret

    def test_invalid_threshold_rejected(self, toy_group):
        with pytest.raises(ValueError):
            shamir_share(toy_group, 1, threshold=6, num_shares=5)
        with pytest.raises(ValueError):
            shamir_share(toy_group, 1, threshold=0, num_shares=5)

    def test_duplicate_indices_rejected(self, toy_group):
        shares = [Share(1, 10), Share(1, 20)]
        with pytest.raises(ValueError):
            shamir_reconstruct(toy_group, shares)

    def test_lagrange_partition_of_unity(self, toy_group):
        # Interpolating the constant polynomial 1: coefficients sum to 1.
        xs = [1, 2, 5, 7]
        total = sum(
            lagrange_coefficient(toy_group.q, xs, j) for j in range(len(xs))
        ) % toy_group.q
        assert total == 1


class TestFeldman:
    def test_honest_dealing_verifies(self, toy_group):
        secret = toy_group.random_scalar()
        dealing = feldman_deal(toy_group, secret, threshold=3, num_shares=5)
        for share in dealing.shares:
            assert feldman_verify(toy_group, share, dealing.commitments)

    def test_corrupted_share_detected(self, toy_group):
        secret = toy_group.random_scalar()
        dealing = feldman_deal(toy_group, secret, threshold=3, num_shares=5)
        bad = Share(dealing.shares[0].index, (dealing.shares[0].value + 1) % toy_group.q)
        assert not feldman_verify(toy_group, bad, dealing.commitments)

    def test_public_matches_secret(self, toy_group):
        secret = toy_group.random_scalar()
        dealing = feldman_deal(toy_group, secret, threshold=2, num_shares=3)
        assert dealing.public == toy_group.g ** secret


class TestDvss:
    def test_shares_reconstruct_group_secret(self, toy_group):
        result = DvssProtocol(toy_group, num_members=5, threshold=3).run()
        secret = shamir_reconstruct(toy_group, result.shares[:3])
        assert toy_group.g ** secret == result.group_public

    def test_all_honest_dealers_qualify(self, toy_group):
        result = DvssProtocol(toy_group, num_members=4, threshold=2).run()
        assert result.qualified == [0, 1, 2, 3]

    def test_corrupt_dealer_disqualified(self, toy_group):
        result = DvssProtocol(toy_group, num_members=4, threshold=2).run(
            corrupt_dealers={1: 2}
        )
        assert 1 not in result.qualified
        # Remaining dealers still produce a usable key.
        secret = shamir_reconstruct(toy_group, result.shares[:2])
        assert toy_group.g ** secret == result.group_public

    def test_share_publics_consistent(self, toy_group):
        result = DvssProtocol(toy_group, num_members=4, threshold=2).run()
        for member, share in enumerate(result.shares):
            assert toy_group.g ** share.value == result.share_publics[member]

    def test_invalid_params(self, toy_group):
        with pytest.raises(ValueError):
            DvssProtocol(toy_group, num_members=3, threshold=4)


class TestThresholdElGamal:
    @pytest.fixture()
    def scheme_and_threshold(self, toy_group):
        scheme = AtomElGamal(toy_group)
        dvss = DvssProtocol(toy_group, num_members=5, threshold=3).run()
        return scheme, ThresholdElGamal(toy_group, dvss)

    def test_decrypt_with_various_subsets(self, toy_group, scheme_and_threshold):
        scheme, thresh = scheme_and_threshold
        m = toy_group.encode(b"thr")
        ct, _ = scheme.encrypt(thresh.public_key, m)
        for participants in ([0, 1, 2], [2, 3, 4], [0, 2, 4], [0, 1, 2, 3, 4]):
            assert thresh.decrypt_with(participants, ct) == m

    def test_below_threshold_rejected(self, toy_group, scheme_and_threshold):
        scheme, thresh = scheme_and_threshold
        ct, _ = scheme.encrypt(thresh.public_key, toy_group.encode(b"x"))
        with pytest.raises(ValueError):
            thresh.decrypt_with([0, 1], ct)

    def test_weighted_secrets_sum_to_group_secret(self, toy_group, scheme_and_threshold):
        _, thresh = scheme_and_threshold
        participants = [1, 2, 4]
        total = sum(
            thresh.weighted_secret(m, participants) for m in participants
        ) % toy_group.q
        assert toy_group.g ** total == thresh.public_key

    def test_weighted_reencryption_pipeline(self, toy_group, scheme_and_threshold):
        """Many-trust mixing: k-(h-1) members peel the group layer."""
        scheme, thresh = scheme_and_threshold
        nxt = scheme.keygen()
        m = toy_group.encode(b"mt")
        ct, _ = scheme.encrypt(thresh.public_key, m)
        participants = [0, 3, 4]
        for member in participants:
            w = thresh.weighted_secret(member, participants)
            ct = scheme.reencrypt(w, nxt.public, ct)
        ct = ct.with_y_bot()
        assert scheme.decrypt(nxt.secret, ct) == m

    def test_release_and_decrypt(self, toy_group, scheme_and_threshold):
        """Trap-variant trustees: publish shares, anyone decrypts."""
        scheme, thresh = scheme_and_threshold
        m = toy_group.encode(b"rel")
        ct, _ = scheme.encrypt(thresh.public_key, m)
        released = {i: thresh.dvss.shares[i].value for i in (0, 1, 2)}
        assert release_and_decrypt(toy_group, thresh, released, ct) == m

    def test_release_too_few_shares(self, toy_group, scheme_and_threshold):
        scheme, thresh = scheme_and_threshold
        ct, _ = scheme.encrypt(thresh.public_key, toy_group.encode(b"x"))
        with pytest.raises(ValueError):
            release_and_decrypt(toy_group, thresh, {0: thresh.dvss.shares[0].value}, ct)

    def test_partial_decryption_proof(self, toy_group, scheme_and_threshold):
        scheme, thresh = scheme_and_threshold
        ct, _ = scheme.encrypt(thresh.public_key, toy_group.encode(b"p"))
        participants = [0, 1, 2]
        partial = thresh.partial_decrypt(0, participants, ct)
        proof = thresh.prove_partial(0, participants, ct, partial)
        assert thresh.verify_partial(0, participants, ct, partial, proof)

    def test_forged_partial_rejected(self, toy_group, scheme_and_threshold):
        from repro.crypto.threshold import PartialDecryption

        scheme, thresh = scheme_and_threshold
        ct, _ = scheme.encrypt(thresh.public_key, toy_group.encode(b"p"))
        participants = [0, 1, 2]
        partial = thresh.partial_decrypt(0, participants, ct)
        proof = thresh.prove_partial(0, participants, ct, partial)
        forged = PartialDecryption(0, partial.value * toy_group.g)
        assert not thresh.verify_partial(0, participants, ct, forged, proof)

    def test_nonparticipant_weighted_secret_rejected(self, toy_group, scheme_and_threshold):
        _, thresh = scheme_and_threshold
        with pytest.raises(ValueError):
            thresh.weighted_secret(0, [1, 2, 3])
