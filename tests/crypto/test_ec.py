"""Unit tests for the NIST P-256 backend (``repro.crypto.ec``).

Point arithmetic is checked against published P-256 multiples of the
generator and against an independent double-and-add reference written
directly from the curve equation, so a bug in the Jacobian formulas
cannot hide behind itself.
"""

import pytest

from repro.crypto.ec import (
    B,
    GX,
    GY,
    JAC_OPS,
    N,
    P,
    EcGroup,
    EcPoint,
    _batch_to_affine,
    _jdbl,
    _jmul,
    _to_affine,
)
from repro.crypto.groups import DeterministicRng, EncodingError, get_group

GROUP = get_group("P256")

# Published multiples of the P-256 base point (affine x, y).
KNOWN_MULTIPLES = {
    1: (GX, GY),
    2: (
        0x7CF27B188D034F7E8A52380304B51AC3C08969E277F21B35A60B48FC47669978,
        0x07775510DB8ED040293D9AC69F7430DBBA7DADE63CE982299E04B79D227873D1,
    ),
    3: (
        0x5ECBE4D1A6330A44C8F7EF951D4BF165E6C6B721EFADA985FB41661BC6E7FD6C,
        0x8734640C4998FF7E374B06CE1A64A2ECD82AB036384FB83D9A79B127A27D5032,
    ),
    5: (
        0x51590B7A515140D2D784C85608668FDFEF8C82FD1F5BE52421554A0DC3D033ED,
        0xE0C17DA8904A727D8AE1BF36BF8A79260D012F00D4D80888D1D0BB44FDA16DA4,
    ),
}


def _ref_add(p1, p2):
    """Affine addition straight from the curve equation (reference)."""
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    (x1, y1), (x2, y2) = p1, p2
    if x1 == x2 and (y1 + y2) % P == 0:
        return None
    if p1 == p2:
        lam = (3 * x1 * x1 - 3) * pow(2 * y1, -1, P) % P
    else:
        lam = (y2 - y1) * pow(x2 - x1, -1, P) % P
    x3 = (lam * lam - x1 - x2) % P
    return (x3, (lam * (x1 - x3) - y1) % P)


def _ref_mult(k):
    """Double-and-add reference scalar multiplication of the generator."""
    acc, addend = None, (GX, GY)
    while k:
        if k & 1:
            acc = _ref_add(acc, addend)
        addend = _ref_add(addend, addend)
        k >>= 1
    return acc


class TestCurveConstants:
    def test_generator_on_curve(self):
        assert (GY * GY - (GX ** 3 - 3 * GX + B)) % P == 0

    def test_group_order(self):
        assert (GROUP.g ** N).is_identity()
        assert not (GROUP.g ** (N - 1)).is_identity()


class TestPointArithmetic:
    @pytest.mark.parametrize("k", sorted(KNOWN_MULTIPLES))
    def test_known_multiples(self, k):
        point = GROUP.g ** k
        assert (point.x, point.y) == KNOWN_MULTIPLES[k]

    @pytest.mark.parametrize("k", [2, 3, 5, 7, 12345, N - 1, N - 2])
    def test_matches_reference_ladder(self, k):
        point = GROUP.g ** k
        assert (point.x, point.y) == _ref_mult(k)

    def test_jacobian_vs_affine_paths_agree(self):
        rng = DeterministicRng(b"ec-jacobian")
        a = GROUP.random_element(rng)
        b = GROUP.random_element(rng)
        via_affine = a * b
        via_jac = GROUP._wrap_raw(_jmul(a._jac(), b._jac()))
        assert via_affine == via_jac
        assert GROUP._wrap_raw(_jdbl(a._jac())) == a * a

    def test_identity_laws(self):
        e = GROUP.identity
        a = GROUP.random_element(DeterministicRng(b"ec-identity"))
        assert e * a == a and a * e == a
        assert a / a == e
        assert a * a.inverse() == e
        assert (e ** 12345).is_identity()
        assert e.inverse() == e

    def test_inverse_negates_y(self):
        a = GROUP.random_element(DeterministicRng(b"ec-neg"))
        assert a.inverse() == EcPoint(GROUP, a.x, P - a.y)

    def test_negative_exponents_reduce_mod_n(self):
        a = GROUP.random_element(DeterministicRng(b"ec-negexp"))
        assert a ** -1 == a ** (N - 1) == a.inverse()

    def test_batch_to_affine_matches_single(self):
        rng = DeterministicRng(b"ec-batch")
        jacs = [_jdbl(GROUP.random_element(rng)._jac()) for _ in range(5)]
        jacs.append(JAC_OPS.one)
        normalized = _batch_to_affine(jacs)
        for jac, norm in zip(jacs, normalized):
            assert _to_affine(jac) == _to_affine(norm)


class TestSerialization:
    def test_compressed_roundtrip(self):
        rng = DeterministicRng(b"ec-serialize")
        for _ in range(8):
            el = GROUP.random_element(rng)
            assert GROUP.element(el.value) == el
            assert len(el.to_bytes()) == GROUP.element_bytes == 33

    def test_identity_serializes_as_zero(self):
        assert GROUP.identity.value == 0
        assert GROUP.element(0).is_identity()
        assert GROUP.identity.to_bytes() == b"\x00" * 33

    @pytest.mark.parametrize(
        "bad",
        [
            (0x04 << 256) | GX,  # uncompressed prefix
            (0x02 << 256) | P,  # x out of field
            (0x02 << 256) | 1,  # x not on the curve (1-3+B is a non-residue)
            1,
        ],
    )
    def test_invalid_encodings_rejected(self, bad):
        with pytest.raises(ValueError):
            GROUP.element(bad)

    def test_off_curve_affine_rejected(self):
        with pytest.raises(ValueError):
            GROUP.element_from_affine(GX, GY + 1)


class TestKoblitzEncoding:
    def test_roundtrip(self):
        for message in [b"", b"x", b"hello curve", b"a" * GROUP.params.message_bytes]:
            point = GROUP.encode(message)
            assert GROUP.decode(point) == message

    def test_deterministic_even_y(self):
        point = GROUP.encode(b"determinism")
        assert point == GROUP.encode(b"determinism")
        assert point.y % 2 == 0

    def test_capacity_enforced(self):
        with pytest.raises(EncodingError):
            GROUP.encode(b"a" * (GROUP.params.message_bytes + 1))

    def test_identity_not_decodable(self):
        with pytest.raises(EncodingError):
            GROUP.decode(GROUP.identity)

    def test_decode_ignores_y(self):
        # Rerandomization moves a ciphertext, not the embedded point;
        # decoding depends only on x, so the mirrored point decodes too.
        point = GROUP.encode(b"mirror")
        assert GROUP.decode(point.inverse()) == b"mirror"


class TestRegistry:
    def test_get_group_caches_singleton(self):
        assert get_group("P256") is GROUP
        assert get_group("p256") is GROUP

    def test_is_registered_backend(self):
        from repro.crypto.groups import available_groups

        assert "P256" in available_groups()

    def test_isolated_instance_does_not_share_cache(self):
        fresh = EcGroup()
        assert fresh._fixed_cache == {}

    def test_prime_order_is_structural(self):
        assert GROUP.is_prime_order(GROUP.g)
        assert GROUP.is_prime_order(GROUP.identity)
