"""Property-based tests (hypothesis) on the core cryptographic
invariants everything else depends on."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.aead import aead_decrypt, aead_encrypt
from repro.crypto.elgamal import AtomElGamal
from repro.crypto.groups import DeterministicRng, get_group
from repro.crypto.secret_sharing import (
    Share,
    shamir_reconstruct,
    shamir_share,
)

GROUP = get_group("TOY")
SCHEME = AtomElGamal(GROUP)

scalars = st.integers(min_value=1, max_value=GROUP.q - 1)
small_messages = st.binary(min_size=0, max_size=GROUP.params.message_bytes)
settings_fast = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestGroupProperties:
    @given(small_messages)
    @settings_fast
    def test_encode_decode_roundtrip(self, message):
        assert GROUP.decode(GROUP.encode(message)) == message

    @given(st.binary(min_size=0, max_size=120))
    @settings_fast
    def test_chunked_roundtrip(self, message):
        assert GROUP.decode_chunks(GROUP.encode_chunks(message)) == message

    @given(scalars, scalars)
    @settings_fast
    def test_exponent_addition(self, x, y):
        assert (GROUP.g ** x) * (GROUP.g ** y) == GROUP.g ** ((x + y) % GROUP.q)

    @given(scalars)
    @settings_fast
    def test_encoded_elements_in_subgroup(self, x):
        element = GROUP.g ** x
        assert (element ** GROUP.q).is_identity()


class TestElGamalProperties:
    @given(small_messages, scalars)
    @settings_fast
    def test_decrypt_inverts_encrypt(self, message, secret):
        m = GROUP.encode(message)
        public = GROUP.g ** secret
        ct, _ = SCHEME.encrypt(public, m)
        assert SCHEME.decrypt(secret, ct) == m

    @given(small_messages, scalars, st.lists(scalars, min_size=1, max_size=4))
    @settings_fast
    def test_rerandomization_chain_preserves_plaintext(self, message, secret, rands):
        m = GROUP.encode(message)
        public = GROUP.g ** secret
        ct, _ = SCHEME.encrypt(public, m)
        for r in rands:
            ct = SCHEME.rerandomize(public, ct, randomness=r)
        assert SCHEME.decrypt(secret, ct) == m

    @given(small_messages, st.lists(scalars, min_size=2, max_size=5))
    @settings_fast
    def test_out_of_order_reencryption_any_group_size(self, message, secrets_list):
        """The Appendix A invariant for arbitrary anytrust group sizes:
        k members peel their layers while re-encrypting to a next key,
        and the next key's holder recovers the plaintext."""
        m = GROUP.encode(message)
        publics = [GROUP.g ** s for s in secrets_list]
        group_key = SCHEME.combine_public_keys(publics)
        next_secret = 12345
        next_public = GROUP.g ** next_secret
        ct, _ = SCHEME.encrypt(group_key, m)
        for s in secrets_list:
            ct = SCHEME.reencrypt(s, next_public, ct)
        ct = ct.with_y_bot()
        assert SCHEME.decrypt(next_secret, ct) == m

    @given(small_messages, scalars, st.integers(0, 2 ** 32))
    @settings_fast
    def test_shuffle_multiset_invariant(self, message, secret, seed):
        """Shuffling never creates, drops, or alters plaintexts."""
        rng = DeterministicRng(seed.to_bytes(8, "big"))
        public = GROUP.g ** secret
        ms = [GROUP.encode(bytes([i])) for i in range(6)]
        cts = [SCHEME.encrypt(public, m)[0] for m in ms]
        shuffled, _, _ = SCHEME.shuffle(public, cts, rng)
        out = sorted(SCHEME.decrypt(secret, ct).value for ct in shuffled)
        assert out == sorted(m.value for m in ms)


class TestShamirProperties:
    @given(
        st.integers(min_value=0, max_value=GROUP.q - 1),
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    @settings_fast
    def test_any_threshold_subset_reconstructs(self, secret, threshold, data):
        num_shares = data.draw(st.integers(min_value=threshold, max_value=8))
        shares = shamir_share(GROUP, secret, threshold, num_shares)
        indices = data.draw(
            st.lists(
                st.integers(0, num_shares - 1),
                min_size=threshold,
                max_size=threshold,
                unique=True,
            )
        )
        subset = [shares[i] for i in indices]
        assert shamir_reconstruct(GROUP, subset) == secret % GROUP.q

    @given(st.integers(min_value=0, max_value=GROUP.q - 1))
    @settings_fast
    def test_single_share_of_two_threshold_is_not_secret(self, secret):
        shares = shamir_share(GROUP, secret, threshold=2, num_shares=3)
        # Reconstruction from one share (degenerate interpolation at the
        # share itself) yields the share value, not the secret, except
        # with negligible probability over the random polynomial.
        assert shamir_reconstruct(GROUP, shares[:1]) == shares[0].value


class TestAeadProperties:
    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=0, max_size=200))
    @settings_fast
    def test_roundtrip(self, key, plaintext):
        assert aead_decrypt(key, aead_encrypt(key, plaintext)) == plaintext

    @given(
        st.binary(min_size=32, max_size=32),
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=0),
        st.integers(min_value=0, max_value=7),
    )
    @settings_fast
    def test_any_bitflip_detected(self, key, plaintext, byte_pos, bit):
        from repro.crypto.aead import AeadCiphertext, AuthenticationError

        ct = aead_encrypt(key, plaintext)
        raw = bytearray(ct.to_bytes())
        raw[byte_pos % len(raw)] ^= 1 << bit
        tampered = AeadCiphertext.from_bytes(bytes(raw))
        if tampered == ct:  # flip landed on an identical byte? impossible
            return
        with pytest.raises(AuthenticationError):
            aead_decrypt(key, tampered)


class TestVectorProperties:
    @given(st.binary(min_size=0, max_size=40), scalars)
    @settings_fast
    def test_vector_encrypt_decrypt(self, message, secret):
        from repro.crypto.vector import decrypt_vector, encrypt_vector

        public = GROUP.g ** secret
        vector, _ = encrypt_vector(SCHEME, public, message)
        assert decrypt_vector(SCHEME, secret, vector) == message

    @given(st.integers(0, 2 ** 32), scalars)
    @settings_fast
    def test_vector_shuffle_preserves_messages(self, seed, secret):
        from repro.crypto.vector import (
            decrypt_vector,
            encrypt_vector,
            shuffle_vectors,
        )

        rng = DeterministicRng(seed.to_bytes(8, "big"))
        public = GROUP.g ** secret
        messages = [bytes([i]) * 10 for i in range(5)]
        vectors = [encrypt_vector(SCHEME, public, m)[0] for m in messages]
        shuffled, _, _ = shuffle_vectors(SCHEME, public, vectors, rng)
        out = sorted(decrypt_vector(SCHEME, secret, v) for v in shuffled)
        assert out == sorted(messages)
