"""Tests for Atom's rerandomizable ElGamal with out-of-order ReEnc."""

import pytest

from repro.crypto.elgamal import AtomCiphertext, AtomElGamal, ElGamalKeyPair


@pytest.fixture()
def scheme(toy_group):
    return AtomElGamal(toy_group)


def anytrust_key(scheme, size):
    """Generate `size` member keypairs and the combined group key."""
    members = [scheme.keygen() for _ in range(size)]
    group_key = scheme.combine_public_keys([m.public for m in members])
    return members, group_key


class TestBasicEncryption:
    def test_encrypt_decrypt_single_key(self, scheme, toy_group):
        kp = scheme.keygen()
        m = toy_group.encode(b"msg")
        ct, _ = scheme.encrypt(kp.public, m)
        assert scheme.decrypt(kp.secret, ct) == m

    def test_fresh_ciphertext_has_y_bot(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"a"))
        assert ct.Y is None

    def test_decrypt_rejects_mid_reencryption(self, scheme, toy_group):
        kp, kp2 = scheme.keygen(), scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"a"))
        mid = scheme.reencrypt(kp.secret, kp2.public, ct)
        assert mid.Y is not None
        with pytest.raises(ValueError):
            scheme.decrypt(kp2.secret, mid)

    def test_known_randomness(self, scheme, toy_group):
        kp = scheme.keygen()
        m = toy_group.encode(b"r")
        ct, r = scheme.encrypt(kp.public, m, randomness=42)
        assert r == 42
        assert ct.R == toy_group.g ** 42

    def test_bytes_roundtrip_multi_element(self, scheme, toy_group):
        kp = scheme.keygen()
        message = b"a longer message spanning several group elements!"
        cts, _ = scheme.encrypt_bytes(kp.public, message)
        assert len(cts) > 1
        assert scheme.decrypt_bytes(kp.secret, cts) == message


class TestAnytrustGroupKey:
    def test_combined_key_decryption_requires_all(self, scheme, toy_group):
        members, group_key = anytrust_key(scheme, 3)
        m = toy_group.encode(b"gm")
        ct, _ = scheme.encrypt(group_key, m)
        # sequential final-layer ReEnc by each member recovers m
        for member in members:
            ct = scheme.reencrypt(member.secret, None, ct)
        assert ct.c == m

    def test_missing_member_fails(self, scheme, toy_group):
        members, group_key = anytrust_key(scheme, 3)
        m = toy_group.encode(b"gm")
        ct, _ = scheme.encrypt(group_key, m)
        for member in members[:-1]:
            ct = scheme.reencrypt(member.secret, None, ct)
        assert ct.c != m


class TestRerandomization:
    def test_rerandomize_preserves_plaintext(self, scheme, toy_group):
        kp = scheme.keygen()
        m = toy_group.encode(b"rr")
        ct, _ = scheme.encrypt(kp.public, m)
        ct2 = scheme.rerandomize(kp.public, ct)
        assert ct2 != ct
        assert scheme.decrypt(kp.secret, ct2) == m

    def test_rerandomize_rejects_nonbot_y(self, scheme, toy_group):
        kp, kp2 = scheme.keygen(), scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"a"))
        mid = scheme.reencrypt(kp.secret, kp2.public, ct)
        with pytest.raises(ValueError):
            scheme.rerandomize(kp2.public, mid)

    def test_randomness_composes_additively(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"add"))
        via_two = scheme.rerandomize(
            kp.public, scheme.rerandomize(kp.public, ct, randomness=5), randomness=7
        )
        direct = scheme.rerandomize(kp.public, ct, randomness=12)
        assert via_two == direct

    def test_shuffle_outputs_decrypt_to_same_multiset(self, scheme, toy_group, rng):
        kp = scheme.keygen()
        plaintexts = [toy_group.encode(bytes([i])) for i in range(10)]
        cts = [scheme.encrypt(kp.public, m)[0] for m in plaintexts]
        shuffled, perm, rands = scheme.shuffle(kp.public, cts, rng)
        decrypted = [scheme.decrypt(kp.secret, ct) for ct in shuffled]
        assert sorted(d.value for d in decrypted) == sorted(p.value for p in plaintexts)
        # witness is consistent
        for i in range(len(cts)):
            expect = scheme.rerandomize(kp.public, cts[perm[i]], randomness=rands[i])
            assert expect == shuffled[i]


class TestOutOfOrderReEnc:
    """The crux of Atom's cryptography (Appendix A)."""

    def test_two_group_pipeline(self, scheme, toy_group):
        first, first_key = anytrust_key(scheme, 3)
        second, second_key = anytrust_key(scheme, 3)
        m = toy_group.encode(b"ooo")
        ct, _ = scheme.encrypt(first_key, m)
        for member in first:
            ct = scheme.reencrypt(member.secret, second_key, ct)
        ct = ct.with_y_bot()
        # ct is now a fresh-looking ciphertext under second_key
        for member in second:
            ct = scheme.reencrypt(member.secret, None, ct)
        assert ct.c == m

    def test_interleaved_shuffles_between_layers(self, scheme, toy_group, rng):
        first, first_key = anytrust_key(scheme, 2)
        second, second_key = anytrust_key(scheme, 2)
        m = toy_group.encode(b"mix")
        ct, _ = scheme.encrypt(first_key, m)
        # group 1: each member shuffles (rerandomize) then reencrypts
        ct = scheme.rerandomize(first_key, ct)
        for member in first:
            ct = scheme.reencrypt(member.secret, second_key, ct)
        ct = ct.with_y_bot()
        ct = scheme.rerandomize(second_key, ct)
        for member in second:
            ct = scheme.reencrypt(member.secret, None, ct)
        assert ct.c == m

    def test_three_hop_chain(self, scheme, toy_group):
        keys = [anytrust_key(scheme, 2) for _ in range(3)]
        m = toy_group.encode(b"3h")
        ct, _ = scheme.encrypt(keys[0][1], m)
        for hop in range(3):
            members = keys[hop][0]
            next_key = keys[hop + 1][1] if hop < 2 else None
            for member in members:
                ct = scheme.reencrypt(member.secret, next_key, ct)
            ct = ct.with_y_bot() if hop < 2 else ct
        assert ct.c == m

    def test_wrong_secret_corrupts(self, scheme, toy_group):
        first, first_key = anytrust_key(scheme, 2)
        m = toy_group.encode(b"bad")
        ct, _ = scheme.encrypt(first_key, m)
        ct = scheme.reencrypt(first[0].secret, None, ct)
        ct = scheme.reencrypt(first[0].secret, None, ct)  # wrong: reuse member 0
        assert ct.c != m

    def test_final_layer_keeps_y(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"y"))
        final = scheme.reencrypt(kp.secret, None, ct)
        assert final.Y is not None
        assert final.c == toy_group.encode(b"y")

    def test_batch_reencrypt(self, scheme, toy_group):
        kp, kp2 = scheme.keygen(), scheme.keygen()
        ms = [toy_group.encode(bytes([i])) for i in range(5)]
        cts = [scheme.encrypt(kp.public, m)[0] for m in ms]
        out = scheme.reencrypt_batch(kp.secret, kp2.public, cts)
        out = [ct.with_y_bot() for ct in out]
        got = [scheme.decrypt(kp2.secret, ct) for ct in out]
        assert got == ms


class TestCiphertextDataclass:
    def test_with_y_bot(self, scheme, toy_group):
        kp, kp2 = scheme.keygen(), scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"a"))
        mid = scheme.reencrypt(kp.secret, kp2.public, ct)
        assert mid.with_y_bot().Y is None
        assert mid.with_y_bot().c == mid.c

    def test_to_bytes_distinguishes_y(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"a"))
        assert ct.to_bytes() != ct.to_bytes()[:-1]

    def test_size_bytes_positive(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"a"))
        assert ct.size_bytes > 0
