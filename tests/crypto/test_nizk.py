"""Tests for EncProof / ReEncProof NIZKs and the sigma framework."""

import pytest

from repro.crypto import sigma
from repro.crypto.elgamal import AtomElGamal
from repro.crypto.nizk import (
    ReEncryptor,
    prove_encryption,
    prove_reencryption,
    verify_encryption,
    verify_reencryption,
)


@pytest.fixture()
def scheme(toy_group):
    return AtomElGamal(toy_group)


class TestSigmaFramework:
    def test_single_schnorr(self, toy_group):
        x = toy_group.random_scalar()
        X = toy_group.g ** x
        rows = [(X, [toy_group.g])]
        proof = sigma.prove(toy_group, rows, [x])
        assert sigma.verify(toy_group, rows, proof)

    def test_wrong_witness_fails(self, toy_group):
        x = toy_group.random_scalar()
        X = toy_group.g ** (x + 1)
        rows = [(X, [toy_group.g])]
        proof = sigma.prove(toy_group, rows, [x])
        assert not sigma.verify(toy_group, rows, proof)

    def test_context_binding(self, toy_group):
        x = toy_group.random_scalar()
        rows = [(toy_group.g ** x, [toy_group.g])]
        proof = sigma.prove(toy_group, rows, [x], b"ctx-a")
        assert sigma.verify(toy_group, rows, proof, b"ctx-a")
        assert not sigma.verify(toy_group, rows, proof, b"ctx-b")

    def test_and_composition(self, toy_group):
        g = toy_group.g
        h = toy_group.random_element()
        x, y = toy_group.random_scalar(), toy_group.random_scalar()
        rows = [
            ((g ** x), [g, toy_group.identity]),
            ((h ** y), [toy_group.identity, h]),
            ((g ** x) * (h ** y), [g, h]),
        ]
        proof = sigma.prove(toy_group, rows, [x, y])
        assert sigma.verify(toy_group, rows, proof)

    def test_arity_mismatch_raises(self, toy_group):
        rows = [(toy_group.g, [toy_group.g, toy_group.g])]
        with pytest.raises(ValueError):
            sigma.prove(toy_group, rows, [1])

    def test_tampered_response_fails(self, toy_group):
        x = toy_group.random_scalar()
        rows = [(toy_group.g ** x, [toy_group.g])]
        proof = sigma.prove(toy_group, rows, [x])
        bad = sigma.SigmaProof(
            proof.commitments, proof.challenge, (proof.responses[0] + 1,)
        )
        assert not sigma.verify(toy_group, rows, bad)

    def test_statement_swap_fails(self, toy_group):
        x = toy_group.random_scalar()
        rows = [(toy_group.g ** x, [toy_group.g])]
        other = [(toy_group.g ** (x + 1), [toy_group.g])]
        proof = sigma.prove(toy_group, rows, [x])
        assert not sigma.verify(toy_group, other, proof)


class TestEncProof:
    def test_honest_proof_verifies(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, r = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        proof = prove_encryption(toy_group, ct, r, kp.public, gid=3)
        assert verify_encryption(toy_group, ct, proof, kp.public, gid=3)

    def test_gid_binding_blocks_cross_group_replay(self, scheme, toy_group):
        """Paper §3: resubmitting (c, pi) to a different entry group fails."""
        kp = scheme.keygen()
        ct, r = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        proof = prove_encryption(toy_group, ct, r, kp.public, gid=3)
        assert not verify_encryption(toy_group, ct, proof, kp.public, gid=4)

    def test_rerandomized_copy_has_no_proof(self, scheme, toy_group):
        """Paper §3: a rerandomized copy of an honest ciphertext cannot
        reuse the original proof (the statement changed)."""
        kp = scheme.keygen()
        ct, r = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        proof = prove_encryption(toy_group, ct, r, kp.public, gid=1)
        copy = scheme.rerandomize(kp.public, ct)
        assert not verify_encryption(toy_group, copy, proof, kp.public, gid=1)

    def test_mid_pipeline_ciphertext_rejected(self, scheme, toy_group):
        kp, kp2 = scheme.keygen(), scheme.keygen()
        ct, r = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        proof = prove_encryption(toy_group, ct, r, kp.public, gid=1)
        mid = scheme.reencrypt(kp.secret, kp2.public, ct)
        assert not verify_encryption(toy_group, mid, proof, kp.public, gid=1)

    def test_wrong_randomness_fails(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, r = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        proof = prove_encryption(toy_group, ct, r + 1, kp.public, gid=1)
        assert not verify_encryption(toy_group, ct, proof, kp.public, gid=1)

    def test_size_bytes(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, r = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        proof = prove_encryption(toy_group, ct, r, kp.public, gid=1)
        assert proof.size_bytes > 0


class TestReEncProof:
    def test_middle_layer(self, scheme, toy_group):
        kp, nxt = scheme.keygen(), scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        r = toy_group.random_scalar()
        out = scheme.reencrypt(kp.secret, nxt.public, ct, randomness=r)
        proof = prove_reencryption(toy_group, kp.secret, r, nxt.public, ct, out)
        assert verify_reencryption(toy_group, kp.public, nxt.public, ct, out, proof)

    def test_final_layer(self, scheme, toy_group):
        kp = scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        out = scheme.reencrypt(kp.secret, None, ct)
        proof = prove_reencryption(toy_group, kp.secret, None, None, ct, out)
        assert proof.final_layer
        assert verify_reencryption(toy_group, kp.public, None, ct, out, proof)

    def test_nonbot_y_input(self, scheme, toy_group):
        """ReEnc applied mid-pipeline (Y != ⊥) must also be provable."""
        kps = [scheme.keygen() for _ in range(2)]
        group_key = scheme.combine_public_keys([k.public for k in kps])
        nxt = scheme.keygen()
        ct, _ = scheme.encrypt(group_key, toy_group.encode(b"m"))
        mid = scheme.reencrypt(kps[0].secret, nxt.public, ct)
        r = toy_group.random_scalar()
        out = scheme.reencrypt(kps[1].secret, nxt.public, mid, randomness=r)
        proof = prove_reencryption(toy_group, kps[1].secret, r, nxt.public, mid, out)
        assert verify_reencryption(toy_group, kps[1].public, nxt.public, mid, out, proof)

    def test_wrong_server_key_fails(self, scheme, toy_group):
        kp, other, nxt = scheme.keygen(), scheme.keygen(), scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        r = toy_group.random_scalar()
        out = scheme.reencrypt(kp.secret, nxt.public, ct, randomness=r)
        proof = prove_reencryption(toy_group, kp.secret, r, nxt.public, ct, out)
        assert not verify_reencryption(toy_group, other.public, nxt.public, ct, out, proof)

    def test_tampered_output_fails(self, scheme, toy_group):
        """A server that swaps the message for another cannot prove it."""
        kp, nxt = scheme.keygen(), scheme.keygen()
        ct, _ = scheme.encrypt(kp.public, toy_group.encode(b"m"))
        r = toy_group.random_scalar()
        out = scheme.reencrypt(kp.secret, nxt.public, ct, randomness=r)
        forged, _ = scheme.encrypt(nxt.public, toy_group.encode(b"EVIL"))
        proof = prove_reencryption(toy_group, kp.secret, r, nxt.public, ct, out)
        # Substituting a different output ciphertext invalidates the proof.
        from repro.crypto.elgamal import AtomCiphertext

        substituted = AtomCiphertext(forged.R, forged.c, out.Y)
        assert not verify_reencryption(
            toy_group, kp.public, nxt.public, ct, substituted, proof
        )

    def test_reencryptor_batch(self, scheme, toy_group):
        kp, nxt = scheme.keygen(), scheme.keygen()
        cts = [scheme.encrypt(kp.public, toy_group.encode(bytes([i])))[0] for i in range(4)]
        worker = ReEncryptor(toy_group)
        outs, proofs = worker.reencrypt_and_prove(kp.secret, nxt.public, cts)
        assert worker.verify_batch(kp.public, nxt.public, cts, outs, proofs)
        # Tamper with one output
        outs2 = list(outs)
        outs2[0], outs2[1] = outs2[1], outs2[0]
        assert not worker.verify_batch(kp.public, nxt.public, cts, outs2, proofs)
