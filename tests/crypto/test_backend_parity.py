"""Cross-backend parity: MODP2048 and P-256 behave identically.

The group-backend registry promises that every layer above
``repro.crypto.groups`` is backend-blind.  These Hypothesis property
tests drive the *same* inputs through both registered backends —
the realistic Schnorr group (MODP2048) and the paper's NIST P-256
curve — and assert the protocol-level results round-trip identically:
message encoding, element serialization, ElGamal
encrypt/rerandomize/reencrypt, the fixed-base/multiexp engine, and the
shuffle/encryption NIZKs.

Scalars are kept short (64-bit) where a reference computation walks an
O(bits) multiply ladder, so the MODP2048 cases stay fast; the
properties themselves are bit-length independent.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.elgamal import AtomElGamal
from repro.crypto.groups import DeterministicRng, get_group
from repro.crypto.nizk import (
    prove_encryption,
    prove_reencryption,
    verify_encryption,
    verify_reencryption,
)
from repro.crypto.shuffle_proof import prove_shuffle, verify_shuffle

BACKENDS = ["MODP2048", "P256"]

#: both backends can embed at least this much per element (P-256: 29)
SHARED_CAPACITY = min(
    get_group(name).params.message_bytes for name in BACKENDS
)

settings_parity = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

messages = st.binary(min_size=0, max_size=SHARED_CAPACITY)
small_scalars = st.integers(min_value=1, max_value=(1 << 64) - 1)
seeds = st.binary(min_size=1, max_size=8)


def _ladder(group, exponent):
    """Reference exponentiation using only ``*`` (square-and-multiply),
    independent of the comb/table code paths under test."""
    acc = group.identity
    base = group.g
    while exponent:
        if exponent & 1:
            acc = acc * base
        base = base * base
        exponent >>= 1
    return acc


@pytest.mark.parametrize("name", BACKENDS)
class TestEncodingParity:
    @given(message=messages)
    @settings_parity
    def test_encode_decode_roundtrip(self, name, message):
        group = get_group(name)
        assert group.decode(group.encode(message)) == message

    @given(message=st.binary(min_size=0, max_size=3 * SHARED_CAPACITY))
    @settings_parity
    def test_chunked_roundtrip(self, name, message):
        group = get_group(name)
        elements = group.encode_chunks(message)
        assert len(elements) >= group.elements_for_size(len(message)) - 1
        assert group.decode_chunks(elements) == message

    @given(seed=seeds)
    @settings_parity
    def test_element_value_roundtrip(self, name, seed):
        """Proof transcripts serialize elements as integers; every
        element must survive ``element(el.value)``."""
        group = get_group(name)
        el = group.random_element(DeterministicRng(seed))
        assert group.element(el.value) == el
        assert len(el.to_bytes()) == group.element_bytes

    def test_identity_and_generator_membership(self, name):
        group = get_group(name)
        assert group.is_prime_order(group.g)
        assert group.is_prime_order(group.encode(b"member"))


@pytest.mark.parametrize("name", BACKENDS)
class TestFastExpParity:
    @given(exponent=small_scalars)
    @settings_parity
    def test_gpow_matches_ladder(self, name, exponent):
        group = get_group(name)
        expected = _ladder(group, exponent)
        assert group.g_pow(exponent) == expected
        assert group.g ** exponent == expected
        assert group.pow_cached(group.g, exponent) == expected

    @given(exponents=st.lists(small_scalars, min_size=1, max_size=4), seed=seeds)
    @settings_parity
    def test_multiexp_matches_product(self, name, exponents, seed):
        group = get_group(name)
        rng = DeterministicRng(seed)
        bases = [group.random_element(rng) for _ in exponents]
        expected = group.identity
        for base, e in zip(bases, exponents):
            expected = expected * (base ** e)
        assert group.multiexp(bases, exponents) == expected

    def test_promotion_agrees_with_generic(self, name):
        group = get_group(name)
        rng = DeterministicRng(b"parity-promote")
        base = group.random_element(rng)
        e = group.random_scalar(rng)
        results = {group.pow_cached(base, e) for _ in range(4)}
        assert results == {base ** e}


@pytest.mark.parametrize("name", BACKENDS)
class TestElGamalParity:
    @given(message=messages, seed=seeds)
    @settings_parity
    def test_encrypt_decrypt(self, name, message, seed):
        group = get_group(name)
        scheme = AtomElGamal(group)
        rng = DeterministicRng(seed)
        kp = scheme.keygen(rng)
        ct, _ = scheme.encrypt(kp.public, group.encode(message), rng)
        assert group.decode(scheme.decrypt(kp.secret, ct)) == message

    @given(message=messages, seed=seeds)
    @settings_parity
    def test_rerandomize_preserves_plaintext(self, name, message, seed):
        group = get_group(name)
        scheme = AtomElGamal(group)
        rng = DeterministicRng(seed)
        kp = scheme.keygen(rng)
        ct, _ = scheme.encrypt(kp.public, group.encode(message), rng)
        ct2 = scheme.rerandomize(kp.public, ct, rng)
        assert ct2 != ct
        assert group.decode(scheme.decrypt(kp.secret, ct2)) == message

    @given(message=messages, seed=seeds)
    @settings_parity
    def test_out_of_order_reencrypt_chain(self, name, message, seed):
        """The Appendix-A hop: strip group 1's layer while adding
        group 2's, then decrypt at the exit — identical on both
        backends."""
        group = get_group(name)
        scheme = AtomElGamal(group)
        rng = DeterministicRng(seed)
        kp1 = scheme.keygen(rng)
        kp2 = scheme.keygen(rng)
        ct, _ = scheme.encrypt(kp1.public, group.encode(message), rng)
        ct = scheme.reencrypt(kp1.secret, kp2.public, ct, rng)
        ct = ct.with_y_bot()
        ct = scheme.reencrypt(kp2.secret, None, ct, rng)
        assert group.decode(scheme.decrypt(kp2.secret, ct.with_y_bot())) == message


@pytest.mark.parametrize("name", BACKENDS)
class TestProofParity:
    def test_enc_proof_roundtrip(self, name):
        group = get_group(name)
        scheme = AtomElGamal(group)
        rng = DeterministicRng(b"parity-encproof")
        kp = scheme.keygen(rng)
        ct, r = scheme.encrypt(kp.public, group.encode(b"proof me"), rng)
        proof = prove_encryption(group, ct, r, kp.public, gid=3)
        assert verify_encryption(group, ct, proof, kp.public, gid=3)
        assert not verify_encryption(group, ct, proof, kp.public, gid=4)

    def test_reenc_proof_roundtrip(self, name):
        group = get_group(name)
        scheme = AtomElGamal(group)
        rng = DeterministicRng(b"parity-reencproof")
        kp = scheme.keygen(rng)
        nxt = scheme.keygen(rng)
        ct, _ = scheme.encrypt(kp.public, group.encode(b"hop"), rng)
        r = group.random_scalar(rng)
        out = scheme.reencrypt(kp.secret, nxt.public, ct, randomness=r)
        proof = prove_reencryption(group, kp.secret, r, nxt.public, ct, out)
        assert verify_reencryption(group, kp.public, nxt.public, ct, out, proof)

    @pytest.mark.parametrize("batched", [True, False])
    def test_shuffle_proof_roundtrip(self, name, batched):
        group = get_group(name)
        scheme = AtomElGamal(group)
        rng = DeterministicRng(b"parity-shuffle")
        kp = scheme.keygen(rng)
        inputs = [
            scheme.encrypt(kp.public, group.encode(b"m%d" % i), rng)[0]
            for i in range(4)
        ]
        outputs, perm, rands = scheme.shuffle(kp.public, inputs, rng)
        proof = prove_shuffle(
            group, kp.public, inputs, outputs, perm, rands, rounds=4, rng=rng
        )
        assert verify_shuffle(
            group, kp.public, inputs, outputs, proof, rounds=4, batched=batched
        )
        tampered = list(outputs)
        tampered[0], tampered[1] = tampered[1], tampered[0]
        assert not verify_shuffle(
            group, kp.public, inputs, tampered, proof, rounds=4, batched=batched
        )


@pytest.mark.parametrize("name", BACKENDS)
class TestRegistryParity:
    def test_groups_are_cached_singletons(self, name):
        assert get_group(name) is get_group(name.lower())

    def test_pickle_restores_singleton(self, name):
        group = get_group(name)
        el = group.random_element(DeterministicRng(b"parity-pickle"))
        clone = pickle.loads(pickle.dumps(el))
        assert clone == el
        assert clone.group is group
