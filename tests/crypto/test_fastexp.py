"""Property tests for the fast-exponentiation engine.

``FixedBaseExp``, ``multiexp`` and the Jacobi-symbol QR test must agree
*exactly* with the generic ``pow`` paths they replace — any divergence
is a soundness bug, not a performance bug — and the batched shuffle
verifier must keep rejecting tampered proofs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.elgamal import AtomElGamal, ElGamalKeyPair
from repro.crypto.fastexp import FixedBaseExp, jacobi, multiexp, multiexp_ints
from repro.crypto.groups import DeterministicRng, get_group
from repro.crypto.shuffle_proof import ShuffleRound, prove_shuffle, verify_shuffle
from repro.crypto.vector import (
    encrypt_vector,
    prove_vector_shuffle,
    shuffle_vectors,
    verify_vector_shuffle,
)

TOY = get_group("TOY")
TEST = get_group("TEST")
MODP = get_group("MODP2048")

settings_fast = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

toy_scalars = st.integers(min_value=0, max_value=2 * TOY.q)
toy_bases = st.integers(min_value=2, max_value=TOY.p - 1)


class TestFixedBaseExp:
    @given(toy_bases, toy_scalars)
    @settings_fast
    def test_matches_pow_toy(self, base, exponent):
        table = FixedBaseExp(TOY.p, TOY.q, base)
        assert table.pow(exponent) == pow(base, exponent % TOY.q, TOY.p)

    @given(st.integers(min_value=0, max_value=2 * TEST.q))
    @settings_fast
    def test_matches_pow_test_group(self, exponent):
        table = TEST.fixed_base(TEST.g)
        assert table.pow(exponent) == pow(TEST.params.g, exponent % TEST.q, TEST.p)

    @pytest.mark.parametrize("group", [TOY, TEST, MODP], ids=lambda g: g.params.name)
    def test_edge_exponents(self, group):
        table = FixedBaseExp(group.p, group.q, group.params.g)
        for e in (0, 1, 2, group.q - 1, group.q, group.q + 1):
            assert table.pow(e) == pow(group.params.g, e % group.q, group.p)

    def test_modp2048_random_exponent(self, rng):
        e = rng.randint(1, MODP.q - 1)
        assert MODP.g_pow(e).value == pow(MODP.params.g, e, MODP.p)

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            FixedBaseExp(TOY.p, TOY.q, 0)

    @given(toy_scalars)
    @settings_fast
    def test_group_element_pow_uses_table(self, exponent):
        # g is table-backed on the cached group; result must equal pow.
        TOY.fixed_base(TOY.g)
        assert (TOY.g ** exponent).value == pow(TOY.params.g, exponent % TOY.q, TOY.p)


class TestMultiexp:
    @given(st.lists(st.tuples(toy_bases, toy_scalars), min_size=0, max_size=6))
    @settings_fast
    def test_matches_naive_product(self, pairs):
        bases = [b for b, _ in pairs]
        exps = [e for _, e in pairs]
        expected = 1
        for b, e in pairs:
            expected = expected * pow(b, e % TOY.q, TOY.p) % TOY.p
        assert multiexp_ints(TOY.p, TOY.q, bases, exps) == expected

    @given(st.lists(toy_scalars, min_size=1, max_size=5))
    @settings_fast
    def test_group_wrapper(self, exps):
        bases = [TOY.g_pow(i + 2) for i in range(len(exps))]
        expected = TOY.identity
        for b, e in zip(bases, exps):
            expected = expected * b ** e
        assert multiexp(TOY, bases, exps) == expected

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multiexp_ints(TOY.p, TOY.q, [2, 3], [1])

    def test_empty_and_zero_exponents(self):
        assert multiexp_ints(TOY.p, TOY.q, [], []) == 1
        assert multiexp_ints(TOY.p, TOY.q, [2, 3], [0, 0]) == 1
        assert multiexp_ints(TOY.p, TOY.q, [2, 3], [TOY.q, 0]) == 1

    def test_modp2048_spot_check(self, rng):
        bases = [pow(MODP.params.g, i + 2, MODP.p) for i in range(4)]
        exps = [rng.randint(1, MODP.q - 1) for _ in range(4)]
        expected = 1
        for b, e in zip(bases, exps):
            expected = expected * pow(b, e, MODP.p) % MODP.p
        assert multiexp_ints(MODP.p, MODP.q, bases, exps) == expected


class TestJacobi:
    @given(st.integers(min_value=0, max_value=TOY.p - 1))
    @settings_fast
    def test_agrees_with_euler_criterion_toy(self, value):
        if value == 0:
            assert jacobi(value, TOY.p) == 0
        else:
            assert (jacobi(value, TOY.p) == 1) == TOY._is_qr_euler(value)

    @given(st.integers(min_value=1, max_value=TEST.p - 1))
    @settings_fast
    def test_agrees_with_euler_criterion_test_group(self, value):
        assert (jacobi(value, TEST.p) == 1) == TEST._is_qr_euler(value)

    def test_group_is_qr_delegates_to_jacobi(self, rng):
        for _ in range(20):
            v = rng.randint(1, TOY.p - 1)
            assert TOY._is_qr(v) == TOY._is_qr_euler(v)

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            jacobi(3, 10)


def _scalar_proof(rng_seed=b"fastexp-batch"):
    rng = DeterministicRng(rng_seed)
    scheme = AtomElGamal(TOY)
    keys = ElGamalKeyPair.generate(TOY, rng)
    inputs = []
    for i in range(6):
        ct, _ = scheme.encrypt(keys.public, TOY.encode(b"m%d" % i), rng)
        inputs.append(ct)
    outputs, perm, rands = scheme.shuffle(keys.public, inputs, rng)
    proof = prove_shuffle(TOY, keys.public, inputs, outputs, perm, rands, rounds=6, rng=rng)
    return keys.public, inputs, outputs, proof


class TestBatchedVerifier:
    def test_batched_accepts_honest_proof(self):
        pk, inputs, outputs, proof = _scalar_proof()
        assert verify_shuffle(TOY, pk, inputs, outputs, proof, rounds=6, batched=True)
        assert verify_shuffle(TOY, pk, inputs, outputs, proof, rounds=6, batched=False)

    def test_batched_rejects_swapped_outputs(self):
        pk, inputs, outputs, proof = _scalar_proof()
        tampered = list(outputs)
        tampered[0], tampered[1] = tampered[1], tampered[0]
        assert not verify_shuffle(TOY, pk, inputs, tampered, proof, rounds=6)

    def test_batched_rejects_tampered_opening(self):
        pk, inputs, outputs, proof = _scalar_proof()
        rnd0 = proof.rounds[0]
        bad_rands = (rnd0.opened_rands[0] + 1,) + rnd0.opened_rands[1:]
        bad_round = ShuffleRound(
            intermediate=rnd0.intermediate,
            opened_perm=rnd0.opened_perm,
            opened_rands=bad_rands,
        )
        bad = type(proof)(
            rounds=(bad_round,) + proof.rounds[1:],
            challenge_bits=proof.challenge_bits,
        )
        # The TOY group order is ~63 bits, far below WEIGHT_BITS, so a
        # single corrupted opening cannot hide in the linear combination.
        assert not verify_shuffle(TOY, pk, inputs, outputs, bad, rounds=6)
        assert not verify_shuffle(TOY, pk, inputs, outputs, bad, rounds=6, batched=False)

    def test_batched_rejects_replaced_element(self, rng):
        pk, inputs, outputs, proof = _scalar_proof()
        scheme = AtomElGamal(TOY)
        forged, _ = scheme.encrypt(pk, TOY.encode(b"evil"), rng)
        tampered = list(outputs)
        tampered[0] = forged
        assert not verify_shuffle(TOY, pk, inputs, tampered, proof, rounds=6)

    def test_batched_rejects_order2_coset_tampering(self):
        # Regression: a sign-flipped component (x -> p - x) lies in
        # Z_p^* but outside the QR subgroup; without the Jacobi checks
        # it survived the linear combination whenever its weight was
        # even (~1/2 per round).  Must now fail deterministically.
        from repro.crypto.elgamal import AtomCiphertext
        from repro.crypto.groups import GroupElement
        from repro.crypto.shuffle_proof import batch_rerand_check

        rng = DeterministicRng(b"coset")
        scheme = AtomElGamal(TOY)
        keys = ElGamalKeyPair.generate(TOY, rng)
        sources, targets, rands = [], [], []
        for i in range(4):
            ct, _ = scheme.encrypt(keys.public, TOY.encode(b"s%d" % i), rng)
            r = TOY.random_scalar(rng)
            sources.append(ct)
            targets.append(scheme.rerandomize(keys.public, ct, randomness=r))
            rands.append(r)
        assert batch_rerand_check(TOY, keys.public, sources, targets, rands)
        for attr in ("R", "c"):
            flipped_el = GroupElement(
                TOY.p - getattr(targets[0], attr).value, TOY
            )
            flipped = AtomCiphertext(
                R=flipped_el if attr == "R" else targets[0].R,
                c=flipped_el if attr == "c" else targets[0].c,
                Y=None,
            )
            tampered = [flipped] + targets[1:]
            for seed in (b"w1", b"w2", b"w3", b"w4"):
                assert not batch_rerand_check(
                    TOY, keys.public, sources, tampered, rands,
                    rng=DeterministicRng(seed),
                ), f"sign-flipped {attr} accepted"

    def test_weight_rng_reproducible(self):
        pk, inputs, outputs, proof = _scalar_proof()
        assert verify_shuffle(
            TOY, pk, inputs, outputs, proof, rounds=6,
            weight_rng=DeterministicRng(b"weights"),
        )


class TestBatchedVectorVerifier:
    def _vector_proof(self):
        rng = DeterministicRng(b"fastexp-vector")
        scheme = AtomElGamal(TEST)
        keys = ElGamalKeyPair.generate(TEST, rng)
        vectors = []
        for i in range(4):
            vec, _ = encrypt_vector(scheme, keys.public, b"payload-%d" % i * 3, rng)
            vectors.append(vec)
        outputs, perm, rands = shuffle_vectors(scheme, keys.public, vectors, rng)
        proof = prove_vector_shuffle(
            scheme, keys.public, vectors, outputs, perm, rands, rounds=5, rng=rng
        )
        return scheme, keys.public, vectors, outputs, proof

    def test_accepts_and_matches_elementwise(self):
        scheme, pk, inputs, outputs, proof = self._vector_proof()
        assert verify_vector_shuffle(scheme, pk, inputs, outputs, proof, rounds=5)
        assert verify_vector_shuffle(
            scheme, pk, inputs, outputs, proof, rounds=5, batched=False
        )

    def test_rejects_tampered_vector(self):
        scheme, pk, inputs, outputs, proof = self._vector_proof()
        tampered = list(outputs)
        tampered[0], tampered[1] = tampered[1], tampered[0]
        assert not verify_vector_shuffle(scheme, pk, inputs, tampered, proof, rounds=5)
        assert not verify_vector_shuffle(
            scheme, pk, inputs, tampered, proof, rounds=5, batched=False
        )
