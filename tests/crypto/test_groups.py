"""Unit tests for the Schnorr group abstraction and message encoding."""

import pytest

from repro.crypto.groups import (
    DeterministicRng,
    EncodingError,
    Group,
    GroupElement,
    get_group,
)


class TestGroupStructure:
    def test_safe_prime_relationship(self, toy_group):
        assert toy_group.p == 2 * toy_group.q + 1

    def test_generator_has_subgroup_order(self, toy_group):
        assert (toy_group.g ** toy_group.q).is_identity()
        assert not (toy_group.g ** 1).is_identity()

    def test_generator_is_quadratic_residue(self, toy_group):
        assert pow(toy_group.params.g, toy_group.q, toy_group.p) == 1

    @pytest.mark.parametrize("name", ["TOY", "TEST", "P256ISH", "MODP2048"])
    def test_all_parameter_sets_valid(self, name):
        group = get_group(name)
        assert group.p == 2 * group.q + 1
        assert (group.g ** group.q).is_identity()

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            get_group("NOPE")

    def test_groups_are_cached(self):
        assert get_group("TOY") is get_group("TOY")


class TestElementArithmetic:
    def test_mul_and_div_inverse(self, toy_group):
        a = toy_group.random_element()
        b = toy_group.random_element()
        assert (a * b) / b == a

    def test_pow_addition_law(self, toy_group):
        x, y = 12345, 67890
        g = toy_group.g
        assert (g ** x) * (g ** y) == g ** (x + y)

    def test_pow_mod_q_reduction(self, toy_group):
        g = toy_group.g
        assert g ** (toy_group.q + 5) == g ** 5

    def test_inverse(self, toy_group):
        a = toy_group.random_element()
        assert (a * a.inverse()).is_identity()

    def test_identity(self, toy_group):
        a = toy_group.random_element()
        assert a * toy_group.identity == a

    def test_element_outside_range_rejected(self, toy_group):
        with pytest.raises(ValueError):
            GroupElement(0, toy_group)
        with pytest.raises(ValueError):
            GroupElement(toy_group.p, toy_group)

    def test_equality_across_groups(self):
        toy = get_group("TOY")
        test = get_group("TEST")
        assert toy.element(4) != test.element(4)

    def test_hashable(self, toy_group):
        a = toy_group.random_element()
        assert a in {a}

    def test_to_bytes_fixed_width(self, toy_group):
        width = len(toy_group.identity.to_bytes())
        assert len(toy_group.random_element().to_bytes()) == width


class TestScalars:
    def test_random_scalar_in_range(self, toy_group):
        for _ in range(100):
            s = toy_group.random_scalar()
            assert 1 <= s < toy_group.q

    def test_deterministic_rng_reproducible(self, toy_group):
        a = toy_group.random_scalar(DeterministicRng(b"seed"))
        b = toy_group.random_scalar(DeterministicRng(b"seed"))
        assert a == b

    def test_hash_to_scalar_deterministic(self, toy_group):
        assert toy_group.hash_to_scalar(b"a", b"b") == toy_group.hash_to_scalar(b"a", b"b")

    def test_hash_to_scalar_length_prefixed(self, toy_group):
        # ("ab", "c") must differ from ("a", "bc"): parts are length-framed.
        assert toy_group.hash_to_scalar(b"ab", b"c") != toy_group.hash_to_scalar(b"a", b"bc")


class TestMessageEncoding:
    @pytest.mark.parametrize(
        "message", [b"", b"a", b"hello", b"\x00\x00lead", b"\xff" * 5]
    )
    def test_roundtrip(self, toy_group, message):
        if len(message) <= toy_group.params.message_bytes:
            assert toy_group.decode(toy_group.encode(message)) == message

    def test_roundtrip_max_capacity(self, test_group):
        message = b"\x01" * test_group.params.message_bytes
        assert test_group.decode(test_group.encode(message)) == message

    def test_oversized_message_rejected(self, toy_group):
        with pytest.raises(EncodingError):
            toy_group.encode(b"x" * (toy_group.params.message_bytes + 1))

    def test_encoded_element_is_in_subgroup(self, test_group):
        el = test_group.encode(b"subgroup?")
        assert (el ** test_group.q).is_identity()

    def test_chunked_roundtrip(self, test_group):
        message = bytes(range(256)) * 2
        elements = test_group.encode_chunks(message)
        assert test_group.decode_chunks(elements) == message

    def test_chunked_empty(self, test_group):
        assert test_group.decode_chunks(test_group.encode_chunks(b"")) == b""

    def test_elements_for_size(self, test_group):
        cap = test_group.params.message_bytes
        assert test_group.elements_for_size(1) == 1
        assert test_group.elements_for_size(cap) == 1
        assert test_group.elements_for_size(cap + 1) == 2
        assert test_group.elements_for_size(160) == -(-160 // cap)

    def test_decode_garbage_raises(self, toy_group):
        # An element whose payload has an invalid length byte.
        bad = toy_group.element(toy_group.p - 2)
        try:
            toy_group.decode(bad)
        except EncodingError:
            pass  # acceptable: flagged as garbage


class TestDeterministicRng:
    def test_randint_bounds(self):
        rng = DeterministicRng(b"bounds")
        values = [rng.randint(3, 7) for _ in range(200)]
        assert min(values) == 3 and max(values) == 7

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(b"perm")
        items = list(range(50))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely

    def test_randbytes_length(self):
        rng = DeterministicRng(b"len")
        assert len(rng.randbytes(100)) == 100

    def test_streams_differ_by_seed(self):
        assert DeterministicRng(b"a").randbytes(32) != DeterministicRng(b"b").randbytes(32)
