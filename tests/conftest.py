"""Shared fixtures: groups and deterministic randomness."""

import pytest

from repro.crypto.groups import DeterministicRng, get_group


@pytest.fixture(scope="session")
def toy_group():
    """64-bit Schnorr group: fast enough for exhaustive unit tests."""
    return get_group("TOY")


@pytest.fixture(scope="session")
def test_group():
    """128-bit Schnorr group for integration tests."""
    return get_group("TEST")


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test (reproducible failures)."""
    return DeterministicRng(b"pytest-fixture-seed")
