"""Tests for the permutation-network topologies (paper §3)."""

import pytest

from repro.topology import IteratedButterflyNetwork, SquareNetwork, route_batches
from repro.topology.base import PermutationNetwork


class TestSquareNetwork:
    def test_beta_equals_width(self):
        net = SquareNetwork(width=4, depth=5)
        assert net.beta == net.width == 4

    def test_successors_all_nodes(self):
        net = SquareNetwork(width=3, depth=4)
        assert net.successors(0, 0) == [0, 1, 2]
        assert net.successors(2, 2) == [0, 1, 2]

    def test_last_layer_has_no_successors(self):
        net = SquareNetwork(width=3, depth=4)
        with pytest.raises(IndexError):
            net.successors(3, 0)

    def test_node_out_of_range(self):
        net = SquareNetwork(width=3, depth=4)
        with pytest.raises(IndexError):
            net.successors(0, 3)

    def test_validate(self):
        SquareNetwork(width=4, depth=6).validate()

    def test_for_messages_sqrt_sizing(self):
        net = SquareNetwork.for_messages(64)
        assert net.width == 8

    def test_default_depth_is_paper_iterations(self):
        from repro.topology.square import PAPER_ITERATIONS

        assert SquareNetwork(width=4).depth == PAPER_ITERATIONS == 10

    def test_predecessors(self):
        net = SquareNetwork(width=3, depth=4)
        assert net.predecessors(1, 0) == [0, 1, 2]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SquareNetwork(width=0)
        with pytest.raises(ValueError):
            SquareNetwork(width=2, depth=0)


class TestButterfly:
    def test_width_power_of_two(self):
        net = IteratedButterflyNetwork(log_width=3)
        assert net.width == 8

    def test_beta_two(self):
        assert IteratedButterflyNetwork(log_width=2).beta == 2

    def test_successors_are_self_and_partner(self):
        net = IteratedButterflyNetwork(log_width=3)
        assert set(net.successors(0, 0)) == {0, 1}  # stage 0: flip bit 0
        assert set(net.successors(1, 0)) == {0, 2}  # stage 1: flip bit 1
        assert set(net.successors(2, 0)) == {0, 4}  # stage 2: flip bit 2

    def test_stage_cycles(self):
        net = IteratedButterflyNetwork(log_width=2, repetitions=3)
        stages = [net.stage_of_layer(t) for t in range(6)]
        assert stages == [0, 1, 0, 1, 0, 1]

    def test_depth_is_log_squared(self):
        net = IteratedButterflyNetwork(log_width=4)  # default reps = log_width
        assert net.depth == 4 * 4 + 1

    def test_validate(self):
        IteratedButterflyNetwork(log_width=3).validate()

    def test_for_messages(self):
        net = IteratedButterflyNetwork.for_messages(100)
        assert net.width >= 100

    def test_invalid_log_width(self):
        with pytest.raises(ValueError):
            IteratedButterflyNetwork(log_width=0)


class TestRouting:
    def test_route_batches_even(self):
        batches = route_batches(list(range(12)), beta=3)
        assert len(batches) == 3
        assert all(len(b) == 4 for b in batches)
        assert sorted(sum(batches, [])) == list(range(12))

    def test_route_batches_uneven_rejected(self):
        with pytest.raises(ValueError):
            route_batches(list(range(10)), beta=3)

    def test_node_load(self):
        net = SquareNetwork(width=4, depth=3)
        assert net.node_load(16) == 4
        with pytest.raises(ValueError):
            net.node_load(10)

    def test_padded_message_count(self):
        net = SquareNetwork(width=4, depth=3)
        assert net.padded_message_count(1) == 16
        assert net.padded_message_count(16) == 16
        assert net.padded_message_count(17) == 32


class TestMixingQuality:
    """Empirical: the square network actually mixes (paper §3 claim)."""

    def _simulate_positions(self, net, per_node, iterations, seed):
        """Track where each message lands after shuffle-split-forward."""
        from repro.crypto.groups import DeterministicRng

        rng = DeterministicRng(seed)
        holdings = {
            node: [(node, i) for i in range(per_node)] for node in range(net.width)
        }
        for layer in range(iterations):
            incoming = {node: [] for node in range(net.width)}
            for node in range(net.width):
                items = holdings[node]
                rng.shuffle(items)
                succ = net.successors(layer, node)
                per = len(items) // len(succ)
                for b, target in enumerate(succ):
                    incoming[target].extend(items[b * per: (b + 1) * per])
            holdings = incoming
        return holdings

    def test_square_disperses_messages(self):
        """After a few iterations, messages from one source node spread
        over all destination nodes."""
        net = SquareNetwork(width=4, depth=6)
        holdings = self._simulate_positions(net, per_node=16, iterations=5, seed=b"mix")
        source_zero_positions = {
            node
            for node, items in holdings.items()
            for (src, _) in items
            if src == 0
        }
        assert len(source_zero_positions) == net.width

    def test_square_output_counts_preserved(self):
        net = SquareNetwork(width=4, depth=6)
        holdings = self._simulate_positions(net, per_node=8, iterations=5, seed=b"c")
        total = sum(len(items) for items in holdings.values())
        assert total == 32
        assert all(len(items) == 8 for items in holdings.values())

    def test_butterfly_disperses_messages(self):
        net = IteratedButterflyNetwork(log_width=3)
        holdings = self._simulate_positions(
            net, per_node=16, iterations=net.depth - 1, seed=b"bf"
        )
        source_zero_positions = {
            node for node, items in holdings.items() for (src, _) in items if src == 0
        }
        # 16 messages into 8 bins: expected distinct bins ~7.1; require 5+
        assert len(source_zero_positions) >= 5
