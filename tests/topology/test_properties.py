"""Property-based tests on topology invariants (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import IteratedButterflyNetwork, SquareNetwork, route_batches

# pure graph logic, no crypto: part of the sub-second smoke subset
pytestmark = pytest.mark.fast

settings_fast = settings(max_examples=30, deadline=None)


class TestSquareProperties:
    @given(st.integers(1, 12), st.integers(1, 12))
    @settings_fast
    def test_always_validates(self, width, depth):
        SquareNetwork(width=width, depth=depth).validate()

    @given(st.integers(1, 12), st.integers(2, 8), st.data())
    @settings_fast
    def test_edge_symmetry(self, width, depth, data):
        """predecessors() inverts successors() for every node."""
        net = SquareNetwork(width=width, depth=depth)
        layer = data.draw(st.integers(0, depth - 2))
        node = data.draw(st.integers(0, width - 1))
        for succ in net.successors(layer, node):
            assert node in net.predecessors(layer + 1, succ)

    @given(st.integers(1, 10))
    @settings_fast
    def test_padded_count_is_minimal_multiple(self, width):
        net = SquareNetwork(width=width, depth=3)
        unit = width * net.beta
        for messages in (1, unit - 1, unit, unit + 1):
            padded = net.padded_message_count(messages)
            assert padded >= messages
            assert padded % unit == 0
            assert padded - messages < unit


class TestButterflyProperties:
    @given(st.integers(1, 6), st.integers(1, 3))
    @settings_fast
    def test_always_validates(self, log_width, reps):
        IteratedButterflyNetwork(log_width=log_width, repetitions=reps).validate()

    @given(st.integers(1, 6), st.data())
    @settings_fast
    def test_partner_is_involution(self, log_width, data):
        """Crossing the same butterfly stage twice returns home."""
        net = IteratedButterflyNetwork(log_width=log_width)
        layer = data.draw(st.integers(0, net.depth - 2))
        node = data.draw(st.integers(0, net.width - 1))
        partner = [s for s in net.successors(layer, node) if s != node]
        if partner:
            back = [
                s for s in net.successors(layer, partner[0]) if s != partner[0]
            ]
            assert back == [node]

    @given(st.integers(1, 5))
    @settings_fast
    def test_every_node_reachable_after_full_butterfly(self, log_width):
        """One full butterfly connects any source to any sink."""
        net = IteratedButterflyNetwork(log_width=log_width, repetitions=1)
        reachable = {0}
        for layer in range(log_width):
            reachable = {
                succ for node in reachable for succ in net.successors(layer, node)
            }
        assert reachable == set(range(net.width))


class TestRoutingProperties:
    @given(st.integers(1, 8), st.integers(1, 8))
    @settings_fast
    def test_route_batches_partition(self, beta, per_batch):
        items = list(range(beta * per_batch))
        batches = route_batches(items, beta)
        assert len(batches) == beta
        assert sorted(sum(batches, [])) == items
        assert all(len(b) == per_batch for b in batches)


def route_tokens(net, load):
    """Push ``load`` distinct tokens per node through every forwarding
    layer of ``net`` (the protocol engine's routing, minus the crypto);
    returns the final per-node holdings."""
    holdings = {
        node: [(node, i) for i in range(load)] for node in range(net.width)
    }
    for layer in range(net.depth - 1):
        incoming = {node: [] for node in range(net.width)}
        for node in range(net.width):
            batches = route_batches(holdings[node], net.beta)
            for succ, batch in zip(net.successors(layer, node), batches):
                incoming[succ].extend(batch)
        holdings = incoming
    return holdings


class TestNetworksArePermutations:
    """§2/§3: the network must neither lose nor duplicate messages, and
    after T iterations any source must be able to reach any sink."""

    @given(st.integers(1, 8), st.integers(2, 6), st.integers(1, 3))
    @settings_fast
    def test_square_routing_is_a_permutation(self, width, depth, mult):
        net = SquareNetwork(width=width, depth=depth)
        load = net.beta * mult  # divisible at every division step
        holdings = route_tokens(net, load)
        expected = {(node, i) for node in range(width) for i in range(load)}
        routed = [token for batch in holdings.values() for token in batch]
        assert len(routed) == len(expected), "message loss or duplication"
        assert set(routed) == expected

    @given(st.integers(1, 5), st.integers(1, 3), st.integers(1, 3))
    @settings_fast
    def test_butterfly_routing_is_a_permutation(self, log_width, reps, mult):
        net = IteratedButterflyNetwork(log_width=log_width, repetitions=reps)
        load = net.beta * mult
        holdings = route_tokens(net, load)
        expected = {
            (node, i) for node in range(net.width) for i in range(load)
        }
        routed = [token for batch in holdings.values() for token in batch]
        assert len(routed) == len(expected)
        assert set(routed) == expected

    @given(st.integers(2, 10), st.integers(2, 6), st.data())
    @settings_fast
    def test_square_full_connectivity_after_T(self, width, depth, data):
        """Any source reaches every sink: beta = width links each layer
        completely, so one forwarding layer already suffices."""
        net = SquareNetwork(width=width, depth=depth)
        source = data.draw(st.integers(0, width - 1))
        reachable = {source}
        for layer in range(net.depth - 1):
            reachable = {
                succ for node in reachable for succ in net.successors(layer, node)
            }
        assert reachable == set(range(width))

    @given(st.integers(1, 5), st.integers(1, 3), st.data())
    @settings_fast
    def test_butterfly_full_connectivity_after_T(self, log_width, reps, data):
        """After one full butterfly (log W stages) every source–sink
        pair is connected, from *any* source and with any repetitions."""
        net = IteratedButterflyNetwork(log_width=log_width, repetitions=reps)
        source = data.draw(st.integers(0, net.width - 1))
        reachable = {source}
        for layer in range(net.depth - 1):
            reachable = {
                succ for node in reachable for succ in net.successors(layer, node)
            }
        assert reachable == set(range(net.width))
