"""Legacy setup shim kept alongside ``pyproject.toml``.

Offline environments install with ``pip install -e .
--no-build-isolation`` (needs ``setuptools >= 64`` and ``wheel``
pre-installed; see pyproject.toml).  This shim keeps the historical
``python setup.py develop`` escape hatch working for toolchains that
predate PEP 660 editable installs.
"""
from setuptools import setup

setup()
