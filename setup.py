"""Legacy setup shim: the offline environment lacks the `wheel` package
that PEP 660 editable installs require, so `python setup.py develop`
(or `pip install -e . --no-build-isolation`) uses this instead."""
from setuptools import setup

setup()
