"""Chaos transport: a declarative, reproducible adversarial network.

:class:`ChaosTransport` decorates any :class:`~repro.net.transport.Transport`
and injects faults according to a :class:`NetFaultPlan` — the network
analogue of the stream engine's ``FaultSchedule``.  Every coin flip
comes from a :class:`~repro.crypto.groups.DeterministicRng` seeded from
the deployment seed, so a chaotic run is exactly as reproducible as a
fault-free one: same seed, same drops, same duplicates, same delays.

Plan grammar (``parse``)::

    spec   := rule (';' rule)*
    rule   := scope ':' action          # first ':' splits the two
    scope  := '*' | where ('/' where)*
    where  := 'r'N['-'[M]]              # round N, rounds N-M, N onward
            | SRC '>' DST               # endpoints: 'c', 't', '*', gid
            | KINDNAME                  # e.g. submit, mix_batch, ping
            | '*'
    action := 'drop' [':' RATE]         # request never delivered
            | 'drop-reply' [':' RATE]   # delivered, reply lost
            | 'delay' ':' MS [':' RATE] # added latency, milliseconds
            | 'dup' [':' RATE]          # request delivered twice
            | 'reorder' [':' RATE]      # held past the next request
            | 'garble' [':' RATE]       # reply corrupted on the wire
            | 'reset' [':' RATE]        # connection reset mid-request
            | 'kill' ':' GID            # endpoint goes dark (partition)
    RATE   := '37%' | '0.37'            # default 1.0

Examples: ``*:drop:2%`` (drop 2 % of everything),
``r1/c>1/ping:kill:1`` (from round 1, the first heartbeat to group 1
blackholes that endpoint until recovery revives it),
``mix_batch:reorder:50%`` (shuffle half the inter-group batches).

``kill`` is the one *stateful* action: once its first matching
envelope arrives the destination is dark for **all** traffic — an
undeclared fail-stop, detected only by the heartbeat failure detector
— until :meth:`ChaosTransport.revive` is called for that gid (buddy
recovery does this when it re-hosts the group).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.crypto.groups import DeterministicRng
from repro.net.envelopes import Envelope, Kind
from repro.net.transport import (
    RetryableTransportError,
    RpcTimeout,
    Transport,
)


class NetFaultPlanError(ValueError):
    """A network fault plan spec failed to parse."""


_ACTIONS = (
    "drop", "drop-reply", "delay", "dup", "reorder", "garble", "reset",
    "kill",
)

#: Kinds whose in-flight envelope may legally be held past a later
#: request (the "reorder" fault).  Only the inter-group MIX_BATCH
#: deliveries qualify: nodes adopt a committed layer's batches sorted
#: by sender, so arrival order is explicitly immaterial.  Everything
#: else on the wire is a strictly ordered RPC the coordinator acts on
#: immediately (a held COMMIT_LAYER, for instance, would leave stale
#: holdings under the coordinator's feet mid-round) — for those,
#: reorder rules simply never match.
REORDERABLE = frozenset({Kind.MIX_BATCH})

_ROUND_RE = re.compile(r"^r(\d+)(?:-(\d*))?$")
_ENDPOINTS = {"c": -1, "t": -2}  # COORDINATOR / TRUSTEE addresses


def _parse_endpoint(token: str) -> Optional[int]:
    if token == "*":
        return None
    if token in _ENDPOINTS:
        return _ENDPOINTS[token]
    try:
        return int(token)
    except ValueError:
        raise NetFaultPlanError(
            f"bad endpoint {token!r}: expected 'c', 't', '*', or a gid"
        ) from None


def _parse_rate(token: str, what: str) -> float:
    try:
        if token.endswith("%"):
            rate = float(token[:-1]) / 100.0
        else:
            rate = float(token)
    except ValueError:
        raise NetFaultPlanError(
            f"bad {what} {token!r}: expected a float or 'N%'"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise NetFaultPlanError(f"{what} {token!r} out of range [0, 1]")
    return rate


@dataclass
class NetRule:
    """One parsed fault rule: a scope plus an action."""

    action: str
    rate: float = 1.0
    delay_ms: float = 0.0
    kill_gid: int = -1
    round_start: Optional[int] = None
    round_end: Optional[int] = None  # inclusive; None = unbounded
    src: Optional[int] = None  # None = any
    dst: Optional[int] = None
    kind: Optional[Kind] = None

    def matches(self, env: Envelope) -> bool:
        if self.round_start is not None and env.round_id < self.round_start:
            return False
        if self.round_end is not None and env.round_id > self.round_end:
            return False
        if self.src is not None and env.sender != self.src:
            return False
        if self.dst is not None and env.dest != self.dst:
            return False
        if self.kind is not None and env.kind is not self.kind:
            return False
        if self.action == "reorder" and env.kind not in REORDERABLE:
            return False
        return True

    def describe(self) -> str:
        """Canonical spec text: ``parse(describe())`` is the identity."""
        wheres = []
        if self.round_start is not None or self.round_end is not None:
            start = self.round_start if self.round_start is not None else 0
            if self.round_end is None:
                wheres.append(f"r{start}-")
            elif self.round_end == start:
                wheres.append(f"r{start}")
            else:
                wheres.append(f"r{start}-{self.round_end}")
        if self.src is not None or self.dst is not None:
            names = {v: k for k, v in _ENDPOINTS.items()}

            def end(v):
                if v is None:
                    return "*"
                return names.get(v, str(v))

            wheres.append(f"{end(self.src)}>{end(self.dst)}")
        if self.kind is not None:
            wheres.append(self.kind.name.lower())
        scope = "/".join(wheres) if wheres else "*"
        if self.action == "kill":
            return f"{scope}:kill:{self.kill_gid}"
        parts = [scope, self.action]
        if self.action == "delay":
            parts.append(repr(self.delay_ms))
        if self.rate != 1.0:
            parts.append(repr(self.rate))
        return ":".join(parts)


class NetFaultPlan:
    """An ordered list of :class:`NetRule` (evaluated in spec order)."""

    def __init__(self, rules: List[NetRule]):
        self.rules = rules

    @classmethod
    def parse(cls, spec: str) -> "NetFaultPlan":
        rules = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            try:
                rules.append(cls._parse_rule(chunk))
            except NetFaultPlanError as exc:
                raise NetFaultPlanError(
                    f"bad net fault rule {chunk!r}: {exc}"
                ) from None
        return cls(rules)

    @classmethod
    def _parse_rule(cls, chunk: str) -> NetRule:
        # The first ':' splits scope from action: scopes never contain
        # ':' (wheres are '/'-separated), actions may ('delay:20:5%').
        scope, sep, action = chunk.partition(":")
        if not sep or not scope or not action:
            raise NetFaultPlanError("expected 'scope:action'")
        rule = cls._parse_action(action)
        cls._parse_scope(scope, rule)
        return rule

    @staticmethod
    def _parse_action(text: str) -> NetRule:
        parts = text.split(":")
        name = parts[0]
        if name not in _ACTIONS:
            raise NetFaultPlanError(
                f"unknown action {name!r}; choose from {_ACTIONS}"
            )
        if name == "kill":
            if len(parts) != 2:
                raise NetFaultPlanError("kill takes exactly one arg: kill:GID")
            try:
                gid = int(parts[1])
            except ValueError:
                raise NetFaultPlanError(
                    f"bad kill target {parts[1]!r}: expected a gid"
                ) from None
            if gid < 0:
                raise NetFaultPlanError("kill target must be a gid >= 0")
            return NetRule(action="kill", kill_gid=gid)
        if name == "delay":
            if len(parts) not in (2, 3):
                raise NetFaultPlanError("delay takes delay:MS[:RATE]")
            try:
                ms = float(parts[1])
            except ValueError:
                raise NetFaultPlanError(
                    f"bad delay {parts[1]!r}: expected milliseconds"
                ) from None
            if ms < 0:
                raise NetFaultPlanError("delay must be >= 0 ms")
            rate = _parse_rate(parts[2], "rate") if len(parts) == 3 else 1.0
            return NetRule(action="delay", delay_ms=ms, rate=rate)
        if len(parts) > 2:
            raise NetFaultPlanError(f"{name} takes at most one arg: {name}[:RATE]")
        rate = _parse_rate(parts[1], "rate") if len(parts) == 2 else 1.0
        return NetRule(action=name, rate=rate)

    @staticmethod
    def _parse_scope(scope: str, rule: NetRule) -> None:
        seen: Set[str] = set()

        def claim(what: str) -> None:
            if what in seen:
                raise NetFaultPlanError(f"duplicate {what} constraint in scope")
            seen.add(what)

        for where in scope.split("/"):
            where = where.strip()
            if where == "*":
                continue
            if ">" in where:
                claim("endpoint")
                src, _, dst = where.partition(">")
                rule.src = _parse_endpoint(src)
                rule.dst = _parse_endpoint(dst)
                continue
            m = _ROUND_RE.match(where)
            if m:
                claim("round")
                rule.round_start = int(m.group(1))
                if m.group(2) is None:  # 'rN' — that round only
                    rule.round_end = rule.round_start
                elif m.group(2) == "":  # 'rN-' — N onward
                    rule.round_end = None
                else:  # 'rN-M' — inclusive range
                    rule.round_end = int(m.group(2))
                    if rule.round_end < rule.round_start:
                        raise NetFaultPlanError(
                            f"empty round range {where!r}"
                        )
                continue
            try:
                kind = Kind[where.upper()]
            except KeyError:
                raise NetFaultPlanError(
                    f"bad scope term {where!r}: not a round ('rN'), "
                    f"endpoint pair ('SRC>DST'), or envelope kind"
                ) from None
            claim("kind")
            rule.kind = kind

    def describe(self) -> str:
        return ";".join(rule.describe() for rule in self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)


class ChaosTransport(Transport):
    """Transport decorator that perturbs traffic per a fault plan.

    Faults happen *below* the resilience layer, so retries, dedup, and
    heartbeats see exactly what a real flaky network would show them.
    Every random decision comes from the plan's own seeded rng;
    protocol randomness is untouched.
    """

    def __init__(self, inner: Transport, plan: NetFaultPlan, seed: bytes):
        self.inner = inner
        self.plan = plan
        self.name = "chaos+" + inner.name
        self._rng = DeterministicRng(seed)
        self._killed: Set[int] = set()  # dark endpoints (gid)
        self._armed_kills = [r for r in plan.rules if r.action == "kill"]
        self._held: List[Envelope] = []  # reorder: delayed deliveries
        self.stats: Dict[str, int] = {
            a: 0 for a in _ACTIONS
        }

    # -- Transport interface -------------------------------------------

    def register(self, round_id: int, node_id: int, node) -> None:
        self.inner.register(round_id, node_id, node)

    def unregister_round(self, round_id: int) -> None:
        self._flush_held()
        self.inner.unregister_round(round_id)

    def close(self) -> None:
        self._flush_held()
        self.inner.close()

    # -- kill / revive --------------------------------------------------

    def revive(self, gid: int) -> None:
        """Recovery re-hosted ``gid``: the replacement endpoint is
        reachable again (and any armed kill for it stays spent)."""
        self._killed.discard(gid)

    def _check_kills(self, env: Envelope) -> None:
        for rule in list(self._armed_kills):
            if rule.matches(env):
                self._armed_kills.remove(rule)  # one-shot
                self._killed.add(rule.kill_gid)
                self.stats["kill"] += 1

    # -- fault evaluation ----------------------------------------------

    def _flip(self, rate: float) -> bool:
        if rate >= 1.0:
            return True
        return int.from_bytes(self._rng.randbytes(4), "big") / 2**32 < rate

    def request(self, env: Envelope, timeout=None) -> List[Envelope]:
        self._check_kills(env)
        if env.dest in self._killed:
            # The endpoint is dark: traffic vanishes, exactly like a
            # crashed host.  Held batches for it vanish too.
            self._held = [h for h in self._held if h.dest not in self._killed]
            raise RpcTimeout(
                f"chaos: node {env.dest} is dark (killed endpoint)"
            )
        if env.kind not in REORDERABLE:
            # Ordered RPCs are a barrier: anything held must land
            # before them — including before any fault-injected extra
            # delivery below (a duplicated COMMIT_LAYER must never
            # outrun the batch it commits).
            self._flush_held()
        for rule in self.plan.rules:
            if rule.action == "kill" or not rule.matches(env):
                continue
            if not self._flip(rule.rate):
                continue
            self.stats[rule.action] += 1
            if rule.action == "drop":
                raise RpcTimeout(
                    f"chaos: dropped {env.kind.name} to node {env.dest}"
                )
            if rule.action == "delay":
                time.sleep(rule.delay_ms / 1000.0)
            elif rule.action == "dup":
                self._deliver(env, timeout)  # extra copy; replies discarded
            elif rule.action == "reorder":
                self._held.append(env)
                return []  # MIX_BATCH replies are empty anyway
            elif rule.action == "garble":
                self._deliver(env, timeout)  # processed; reply corrupted
                raise RetryableTransportError(
                    f"chaos: garbled reply from node {env.dest}"
                )
            elif rule.action == "reset":
                raise RetryableTransportError(
                    f"chaos: connection to node {env.dest} reset"
                )
            elif rule.action == "drop-reply":
                self._deliver(env, timeout)  # processed; reply lost
                raise RpcTimeout(
                    f"chaos: reply from node {env.dest} dropped"
                )
        if env.kind in REORDERABLE:
            # Deliver first, then flush anything held: the held
            # envelope lands *after* this one — an actual swap (only
            # relative order among batches may change).
            replies = self._deliver(env, timeout)
            self._flush_held()
            return replies
        return self._deliver(env, timeout)

    def _deliver(self, env: Envelope, timeout) -> List[Envelope]:
        return self.inner.request(env, timeout=timeout)

    def _flush_held(self) -> None:
        held, self._held = self._held, []
        for env in held:
            if env.dest in self._killed:
                continue  # the endpoint died holding the batch
            self._deliver(env, None)
