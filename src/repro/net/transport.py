"""Transports: how envelopes move between the coordinator and nodes.

The contract is a blocking RPC primitive::

    replies = transport.request(envelope)

``envelope.dest`` names a logical node registered under
``(round_id, node_id)``; the transport delivers the envelope to that
node's ``handle`` method and returns whatever envelopes it replies
with.  Requests are strictly ordered (one outstanding request per
transport), which is what makes rounds deterministic under a
:class:`~repro.crypto.groups.DeterministicRng` regardless of the
transport in use — the cross-transport parity tests rely on it.

Two implementations:

- :class:`InProcessTransport` — the default.  Registered nodes live in
  a dict and ``request`` is a direct method call; envelope payloads are
  passed through as objects (zero copy, zero serialization), so the
  refactored round pays only envelope construction over the old direct
  calls.

- :class:`TcpTransport` — every registered node gets its own asyncio
  server on a loopback socket; ``request`` frames
  ``envelope.to_bytes()`` over a persistent connection to the node's
  port and decodes the framed replies.  This is the real service
  boundary: everything a round needs crosses the wire as bytes, which
  is what future multi-process sharding builds on.

Frame format (TCP): ``u32 length || envelope bytes``; a request is one
frame, a response is ``u32 count`` followed by ``count`` frames.
"""

from __future__ import annotations

import abc
import asyncio
import inspect
import logging
import socket
import struct
import threading
from typing import Awaitable, Callable, Dict, List, Tuple

from repro.crypto.groups import GroupBackend as Group
from repro.net.envelopes import Envelope, WireFormatError

logger = logging.getLogger(__name__)

NodeKey = Tuple[int, int]  # (round_id, node_id)


class TransportError(RuntimeError):
    """Routing or connection failure at the transport layer."""


class RetryableTransportError(TransportError):
    """A failure where the request may not have been processed — the
    connection dropped, the peer reset, the reply was garbled.  The
    resilience layer may retry these (idempotency via request IDs makes
    the retry safe); a plain :class:`TransportError` is terminal."""


class RpcTimeout(RetryableTransportError):
    """The peer did not answer within the caller's deadline."""


class Transport(abc.ABC):
    """Blocking request/reply delivery between registered nodes."""

    name: str

    @abc.abstractmethod
    def register(self, round_id: int, node_id: int, node) -> None:
        """Expose ``node`` (anything with ``handle(env) -> [env]``)
        under ``(round_id, node_id)``.  Re-registering a live key swaps
        the node behind the same endpoint (stream rekeys do this)."""

    @abc.abstractmethod
    def unregister_round(self, round_id: int) -> None:
        """Tear down every endpoint of ``round_id`` (idempotent)."""

    @abc.abstractmethod
    def request(self, env: Envelope, timeout=None) -> List[Envelope]:
        """Deliver ``env`` to its destination; return its replies.

        ``timeout`` (seconds) bounds the wait for the reply where the
        transport has a real wire to wait on; transports with no
        network in between (in-process dispatch) ignore it."""

    def close(self) -> None:  # pragma: no cover - overridden where needed
        """Release all endpoints and connections."""


class InProcessTransport(Transport):
    """Zero-copy direct dispatch (the single-process fast path)."""

    name = "inproc"

    def __init__(self):
        self._nodes: Dict[NodeKey, object] = {}

    def register(self, round_id: int, node_id: int, node) -> None:
        self._nodes[(round_id, node_id)] = node

    def unregister_round(self, round_id: int) -> None:
        for key in [k for k in self._nodes if k[0] == round_id]:
            del self._nodes[key]

    def request(self, env: Envelope, timeout=None) -> List[Envelope]:
        try:
            node = self._nodes[(env.round_id, env.dest)]
        except KeyError:
            raise TransportError(
                f"no node {env.dest} registered for round {env.round_id}"
            ) from None
        return node.handle(env)

    def close(self) -> None:
        self._nodes.clear()


_LEN = struct.Struct(">I")


class TcpTransport(Transport):
    """Loopback TCP: each node behind its own asyncio socket server.

    The asyncio event loop runs in a daemon thread; ``register`` binds
    a fresh server per node key and ``request`` talks to it over a
    persistent blocking client connection.  Handlers dispatch on the
    envelope header, so swapping the node behind a key (stream rekey)
    needs no rebind.  Unexpected handler exceptions are returned to the
    caller as a :class:`TransportError` carrying the repr — protocol
    failures proper travel as FAULT envelopes, not exceptions.
    """

    name = "tcp"

    def __init__(self, group: Group, host: str = "127.0.0.1"):
        self.group = group
        self.host = host
        self._nodes: Dict[NodeKey, object] = {}
        self._servers: Dict[NodeKey, Tuple[object, int]] = {}  # (server, port)
        self._conns: Dict[NodeKey, socket.socket] = {}
        self._loop = None
        self._thread = None
        self._closed = False

    # -- event loop ----------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            if self._closed:
                raise TransportError("transport is closed")
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="atom-tcp-transport", daemon=True
            )
            thread.start()
            self._loop, self._thread = loop, thread
        return self._loop

    def _run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._ensure_loop()).result()

    # -- server side ---------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readexactly(_LEN.size)
                except asyncio.IncompleteReadError:
                    return
                except (asyncio.CancelledError, ConnectionResetError):
                    return  # transport shutdown / peer vanished
                (length,) = _LEN.unpack(head)
                raw = await reader.readexactly(length)
                env = Envelope.from_bytes(raw, self.group)
                node = self._nodes.get((env.round_id, env.dest))
                if node is None:
                    out = [self._fault_frame(env, "no such node")]
                else:
                    try:
                        replies = node.handle(env)
                        out = [r.to_bytes(self.group) for r in replies]
                    except Exception as exc:  # crossed-wire: no raising back
                        out = [self._fault_frame(env, repr(exc))]
                writer.write(_LEN.pack(len(out)))
                for frame in out:
                    writer.write(_LEN.pack(len(frame)) + frame)
                await writer.drain()
        finally:
            writer.close()

    async def _start_server(self):
        server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=0
        )
        port = server.sockets[0].getsockname()[1]
        return server, port

    # -- registry ------------------------------------------------------

    def register(self, round_id: int, node_id: int, node) -> None:
        key = (round_id, node_id)
        self._nodes[key] = node
        if key not in self._servers:
            self._servers[key] = self._run(self._start_server())

    def unregister_round(self, round_id: int) -> None:
        for key in [k for k in list(self._servers) if k[0] == round_id]:
            server, _ = self._servers.pop(key)
            self._run(self._stop_server(server))
            conn = self._conns.pop(key, None)
            if conn is not None:
                conn.close()
            self._nodes.pop(key, None)

    @staticmethod
    async def _stop_server(server) -> None:
        server.close()
        await server.wait_closed()

    def _fault_frame(self, request: Envelope, message: str) -> bytes:
        """A serialized FAULT envelope reporting a server-side failure
        that is not part of the protocol (unexpected exception, routing
        miss) — surfaced client-side as :class:`TransportError`."""
        from repro.net.envelopes import COORDINATOR, Fault, wrap

        env = wrap(
            Fault(code="transport-error", message=message),
            request.round_id, request.dest, COORDINATOR,
        )
        return env.to_bytes(self.group)

    # -- client side ---------------------------------------------------

    def _connection(self, key: NodeKey) -> socket.socket:
        conn = self._conns.get(key)
        if conn is None:
            try:
                _, port = self._servers[key]
            except KeyError:
                raise TransportError(
                    f"no node {key[1]} registered for round {key[0]}"
                ) from None
            conn = socket.create_connection((self.host, port))
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conns[key] = conn
        return conn

    def _drop_connection(self, key: NodeKey) -> None:
        """Discard a connection whose stream state is no longer trusted
        (timeout mid-frame, reset, garbled frame): the next request
        dials fresh instead of reading a stale half-reply."""
        conn = self._conns.pop(key, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close on a dead socket
                pass

    def request(self, env: Envelope, timeout=None) -> List[Envelope]:
        key = (env.round_id, env.dest)
        conn = self._connection(key)
        raw = env.to_bytes(self.group)
        conn.settimeout(timeout)
        try:
            conn.sendall(_LEN.pack(len(raw)) + raw)
            count = _LEN.unpack(self._recv_exact(conn, _LEN.size))[0]
            replies = []
            for _ in range(count):
                length = _LEN.unpack(self._recv_exact(conn, _LEN.size))[0]
                replies.append(
                    Envelope.from_bytes(self._recv_exact(conn, length), self.group)
                )
        except socket.timeout as exc:
            self._drop_connection(key)
            raise RpcTimeout(
                f"request to node {key} timed out after {timeout}s"
            ) from exc
        except (OSError, WireFormatError, TransportError) as exc:
            self._drop_connection(key)
            raise RetryableTransportError(
                f"request to node {key} failed: {exc}"
            ) from exc
        for reply in replies:
            if _is_error_reply(reply):
                # The node *did* process the request and crashed doing
                # so; retrying would re-execute the failure, so this
                # stays non-retryable.
                raise TransportError(
                    f"node {key} failed: {reply.payload.message}"
                )
        return replies

    @staticmethod
    def _recv_exact(conn: socket.socket, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = conn.recv(n - len(chunks))
            if not chunk:
                raise RetryableTransportError("connection closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    # -- lifecycle -----------------------------------------------------

    #: Bound on every wait during close(); a wedged loop must surface
    #: as an error, not hang the caller.  Class attribute so tests can
    #: shrink it instead of sleeping out real 5 s timeouts.
    _CLOSE_TIMEOUT_S = 5.0

    def _run_on_loop(self, coro_fn: Callable[[], Awaitable], what: str) -> None:
        """Run ``coro_fn()`` on the loop thread, waiting a bounded time.

        The failure modes here used to be an ``except Exception: pass``
        pair, which both swallowed real shutdown errors and leaked the
        coroutine object un-awaited (the ``coroutine ... was never
        awaited`` RuntimeWarning at GC) whenever the loop had stopped
        before the callback ran.  Now the coroutine is closed
        explicitly on every path where it never got to run, and any
        failure is logged at warning level instead of vanishing.
        """
        coro = coro_fn()
        try:
            future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        except RuntimeError as exc:
            # Loop already closed: the coroutine was never scheduled.
            coro.close()
            logger.warning("tcp close: could not schedule %s: %s", what, exc)
            return
        try:
            future.result(timeout=self._CLOSE_TIMEOUT_S)
        except TimeoutError:
            # Loop stopped (or wedged) before running the callback.  If
            # cancel() wins, the coroutine will never be awaited — close
            # it so it cannot warn at GC; if it lost, the loop owns it.
            cancelled = future.cancel()
            if cancelled and (
                inspect.getcoroutinestate(coro) == inspect.CORO_CREATED
            ):
                coro.close()
            logger.warning(
                "tcp close: %s did not finish within %.0fs",
                what,
                self._CLOSE_TIMEOUT_S,
            )
        except Exception:
            # The coroutine ran and raised: shutdown continues, but the
            # failure must be visible.
            logger.warning("tcp close: %s failed", what, exc_info=True)

    def close(self) -> None:
        if self._closed:
            return
        for conn in self._conns.values():
            conn.close()
        self._conns.clear()
        if self._loop is not None:
            if self._thread.is_alive():
                for server, _ in self._servers.values():
                    self._run_on_loop(
                        lambda server=server: self._stop_server(server),
                        "server shutdown",
                    )
                self._run_on_loop(self._drain_tasks, "connection drain")
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join(timeout=self._CLOSE_TIMEOUT_S)
            self._servers.clear()
            if self._thread.is_alive():
                # The loop thread is wedged.  Closing a still-running
                # loop raises from inside it and the thread (plus its
                # sockets) would leak silently; keep the refs so a
                # retry can try again, and make the failure loud.
                raise TransportError(
                    "tcp transport event-loop thread did not stop within 5s"
                )
            self._loop.close()
            self._loop = self._thread = None
        self._nodes.clear()
        self._closed = True

    @staticmethod
    async def _drain_tasks() -> None:
        """Cancel lingering connection handlers before the loop stops."""
        tasks = [
            t for t in asyncio.all_tasks() if t is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)


def _is_error_reply(reply: Envelope) -> bool:
    from repro.net.envelopes import Fault, Kind

    return reply.kind is Kind.FAULT and isinstance(reply.payload, Fault) and (
        reply.payload.code == "transport-error"
    )


TRANSPORTS = ("inproc", "tcp")


def make_transport(name: str, group: Group) -> Transport:
    """Factory for ``DeploymentConfig.transport`` / CLI ``--transport``."""
    if name == "inproc":
        return InProcessTransport()
    if name == "tcp":
        return TcpTransport(group)
    raise ValueError(f"unknown transport {name!r}; choose from {TRANSPORTS}")
