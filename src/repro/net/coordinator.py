"""Round orchestration over envelopes.

The :class:`Coordinator` re-implements the round sequence that
``AtomDeployment`` used to run by calling group objects directly —
intake, T mixing layers, exit, trap checks, trustee key release —
purely in terms of :mod:`repro.net.envelopes` messages moved by a
:mod:`repro.net.transport`.  One coordinator drives one round; the
stream engine creates one per round and the deployment's ``MixingRun``
adapter drives it layer by layer so fault recovery and pipelined
intake keep working unchanged.

Layer protocol (two-phase, preserving the old ``MixingRun`` atomicity):

1. ``MIX`` to every group that holds ciphertexts, in gid order.  A
   node replies with its ``MIX_BATCH``/``MIX_SUMMARY`` set, with
   ``MIX_PENDING`` (pooled mix in flight), or with a ``FAULT``.
2. ``MIX_COLLECT`` drains pending pooled mixes, in gid order.
3. Only when every group succeeded: the buffered ``MIX_BATCH``
   envelopes are delivered to their destination nodes and
   ``COMMIT_LAYER`` adopts them — so any ``FAULT`` leaves every node
   at its pre-layer snapshot (``ABORT_LAYER``) and the layer can be
   retried after §4.5 recovery.

Determinism: when the round runs under a
:class:`~repro.crypto.groups.DeterministicRng`, the coordinator draws
one 32-byte sub-seed per (layer, group) in a fixed order and ships it
in the ``MIX`` envelope; nodes expand it locally.  Both transports
therefore perform byte-identical crypto, which the cross-transport
parity tests assert end to end.

Control plane vs data plane: node *objects* are created here and kept
(they always live in this process; TCP moves only the messages), so
test instrumentation — context replacement after buddy recovery,
tamper-budget bookkeeping — stays direct object access, while all
round data crosses the transport.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional

from repro.core import messages as fmt
from repro.core.batch import CiphertextBatch, vector_fingerprint
from repro.core.group import GroupStalled
from repro.crypto.groups import DeterministicRng
from repro.crypto.kem import cca2_decrypt
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope, Kind
from repro.net.nodes import ServerNode, TrusteeNode, raise_fault
from repro.net.resilience import RpcExhausted, SuspicionTracker
from repro.net.transport import Transport, TransportError


def _find_fleet(transport):
    """Walk the decorator chain (Resilient -> Chaos -> base) for a
    FleetTransport; None when the round is single-process."""
    while transport is not None:
        if getattr(transport, "name", None) == "fleet":
            return transport
        transport = getattr(transport, "inner", None)
    return None


class Coordinator:
    """Drives one round of the protocol over a transport."""

    def __init__(self, deployment, rnd, transport: Transport):
        from repro.core.protocol import RoundResult

        self.deployment = deployment
        self.rnd = rnd
        self.transport = transport
        self.round_id = rnd.round_id
        self.rng: Optional[DeterministicRng] = None
        self.layer = 0
        self.result = RoundResult(round_id=rnd.round_id)
        self._released = False
        self.store = deployment.store

        # Placement: under a fleet transport, gids assigned in the
        # deployment plan live in other OS processes — no local node is
        # built for them; everything else (all gids on inproc/tcp, plus
        # unassigned gids and the trustee under a fleet) stays local.
        self._fleet = _find_fleet(transport)
        placed = (
            set(self._fleet.placement) - self._fleet.rehomed
            if self._fleet is not None
            else set()
        )
        self.gids: List[int] = sorted(ctx.gid for ctx in rnd.contexts)
        self._remote = {gid for gid in self.gids if gid in placed}
        #: post-commit holdings mirror for remote groups, rebuilt from
        #: the delivered MIX_BATCH envelopes at every commit (exactly
        #: the sender-sorted adoption the nodes perform); None when the
        #: whole round is local and direct node access suffices
        self._view: Optional[Dict[int, List]] = {} if self._remote else None

        pool = deployment._mixing_pool() if len(rnd.contexts) > 1 else None
        self.nodes: Dict[int, ServerNode] = {
            ctx.gid: ServerNode(
                ctx, rnd.round_id, deployment.config.variant, pool=pool,
                store=self.store,
                data_plane=deployment.config.data_plane,
                spill_threshold=deployment.config.spill_threshold,
                spill_dir=deployment.spill_dir(),
            )
            for ctx in rnd.contexts
            if ctx.gid not in self._remote
        }
        for gid, node in self.nodes.items():
            transport.register(rnd.round_id, gid, node)
        self.trustee_node: Optional[TrusteeNode] = None
        if rnd.trustees is not None:
            self.trustee_node = TrusteeNode(rnd.trustees, rnd.round_id)
            transport.register(rnd.round_id, ev.TRUSTEE, self.trustee_node)
        #: heartbeat failure detector (None when cfg.heartbeat is off)
        self.suspicion: Optional[SuspicionTracker] = (
            SuspicionTracker(deployment.config.heartbeat_misses)
            if deployment.config.heartbeat
            else None
        )

    # -- plumbing ------------------------------------------------------

    def _send(self, payload, dest: int, req_id: int = 0) -> List[Envelope]:
        return self.transport.request(
            ev.wrap(payload, self.round_id, ev.COORDINATOR, dest, req_id=req_id)
        )

    def _guarded_send(self, payload, gid: int) -> List[Envelope]:
        """A mixing-phase send: an unreachable group (retries
        exhausted) becomes ``GroupStalled``, the signal §4.5 buddy
        recovery already handles.  Only safe *before* any delivery or
        commit of the layer — nothing has mutated yet, so the layer as
        a whole can be retried against the recovered group."""
        try:
            return self._send(payload, gid)
        except RpcExhausted as exc:
            raise GroupStalled(
                gid, 0, self.rnd.context(gid).threshold
            ) from exc

    def release(self) -> None:
        """Drop this round's endpoints (idempotent; streams call it
        once a round settles so transports don't accumulate sockets)."""
        if not self._released:
            self._released = True
            self.transport.unregister_round(self.round_id)

    # -- intake --------------------------------------------------------

    def submit(self, payload, gid: int, req_id: int = 0) -> int:
        """Route one intake envelope; returns the accepted-ciphertext
        count or raises ``ValueError`` with the node's reason.

        ``req_id`` lets WAL replay re-ship a journaled envelope under
        its *original* request id, so replayed intake keeps the exact
        dedup identity it had before the crash."""
        replies = self._send(payload, gid, req_id=req_id)
        reply = replies[0].payload
        if isinstance(reply, ev.SubmitErr):
            raise ValueError(reply.reason)
        return reply.accepted

    def intake_counts(self) -> Dict[int, int]:
        return {gid: len(self._holdings_view(gid)) for gid in self.gids}

    def _holdings_view(self, gid: int) -> List:
        """The coordinator's view of a group's current holdings: the
        local node's for local groups; for fleet-homed groups, the
        post-commit mirror (rebuilt from the delivered batches), or —
        before the first commit — the round's intake mirror, which
        appends in exactly the order the remote node does."""
        node = self.nodes.get(gid)
        if node is not None:
            return node.holdings
        if self._view:
            return self._view.get(gid, [])
        return self.rnd.holdings.get(gid, [])

    # -- mixing --------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.layer >= self.rnd.topology.depth

    @property
    def remaining_layers(self) -> int:
        return self.rnd.topology.depth - self.layer

    def _sync_contexts(self) -> None:
        """Control plane: adopt context swaps (§4.5 buddy recovery) and
        pin this round's attacker-payload forger before mixing."""
        rnd = self.rnd
        for gid, node in self.nodes.items():
            node.ctx = rnd.contexts[gid]
            if rnd.forger is not None:
                node.ctx.forge_payload_fn = rnd.forger

    # -- health --------------------------------------------------------

    def probe_health(self) -> None:
        """Heartbeat every group before the layer touches it.  Runs
        *after* ``_sync_contexts`` so a freshly recovered group is
        probed through its restored context, not the dead one."""
        if self.suspicion is None:
            return
        for gid in self.gids:
            self._probe_node(gid)

    def _probe_node(self, gid: int) -> None:
        """PING until answered or declared dead.  Deliberately *not*
        routed through the retry machinery (the policy gives PING one
        attempt): each miss must reach the SuspicionTracker — retries
        hiding misses would defeat the detector."""
        cfg = self.deployment.config
        tracker = self.suspicion
        while True:
            try:
                replies = self.transport.request(
                    ev.wrap(ev.Ping(), self.round_id, ev.COORDINATOR, gid),
                    timeout=cfg.heartbeat_timeout_s,
                )
            except TransportError:
                if tracker.record_miss(gid) >= tracker.miss_threshold:
                    tracker.declare(gid)
                    raise GroupStalled(
                        gid, 0, self.rnd.context(gid).threshold
                    ) from None
                time.sleep(cfg.heartbeat_grace_s)
                continue
            tracker.record_pong(gid)
            pong = replies[0].payload
            if pong.alive < pong.needed:
                # The endpoint answers but the group lost its quorum:
                # same recovery path, better diagnosis.
                raise GroupStalled(gid, pong.alive, pong.needed)
            return

    def run_layer(self) -> None:
        """Mix one layer across all groups (Algorithm 1/2) atomically."""
        if self.done:
            raise RuntimeError("all mixing layers already complete")
        if self.layer == 0:
            # The rng mark before the first sub-seed draw: a crash with
            # no committed layer yet resumes mixing from here.  Layer-0
            # retries after buddy recovery refresh the mark — the retry
            # draws from the advanced rng, and the reader takes the
            # latest mark.
            self.store.mixing_begin(self.round_id, self.rng)
        self._sync_contexts()
        self.probe_health()
        rnd = self.rnd
        topo = rnd.topology
        layer = self.layer
        last = layer == topo.depth - 1

        active = [gid for gid in self.gids if self._holdings_view(gid)]
        cfg = self.deployment.config
        eligible = sum(
            1 for gid in active if rnd.contexts[gid].parallel_safe()
        )
        # Pool when configured locally — or across a fleet, where each
        # process's single mix worker turns MIX into MIX_PENDING and
        # the layer runs concurrently across OS processes (the paper's
        # horizontal scaling).  Either path is byte-identical to the
        # inline mix given the same sub-seed.
        use_pool = (
            cfg.parallelism > 1 and len(rnd.contexts) > 1 and eligible > 1
        ) or (bool(self._remote) and eligible > 1)

        batches: List[Envelope] = []
        audits = []
        pending: List[int] = []
        try:
            for gid in active:
                if last:
                    successors = (gid,)
                    next_keys = (None,)
                else:
                    successors = tuple(topo.successors(layer, gid))
                    next_keys = tuple(
                        rnd.context(succ).public_key for succ in successors
                    )
                seed = self.rng.randbytes(32) if self.rng is not None else None
                replies = self._guarded_send(
                    ev.Mix(
                        layer=layer, successors=successors,
                        next_keys=next_keys, seed=seed, use_pool=use_pool,
                    ),
                    gid,
                )
                if replies and replies[0].kind is Kind.MIX_PENDING:
                    pending.append(gid)
                    continue
                self._sort_mix_replies(replies, batches, audits)
            for gid in pending:
                replies = self._guarded_send(ev.MixCollect(layer=layer), gid)
                self._sort_mix_replies(replies, batches, audits)
        except Exception:
            self._abort_layer(layer)
            raise

        # Whole layer succeeded: deliver hand-offs, then commit.  A
        # transport failure in here is fatal to the round (nothing
        # catches it for retry — recovery only retries GroupStalled,
        # which is raised above, before any delivery); the best-effort
        # ABORT_LAYER still clears staged state on reachable nodes.
        try:
            for env in batches:
                self.transport.request(env)
            for gid in self.gids:
                self._send(ev.CommitLayer(layer=layer), gid)
        except Exception:
            self._abort_layer(layer)
            raise
        if self._view is not None:
            # Mirror the nodes' sender-sorted adoption so the view is
            # byte-identical to every remote node's committed holdings.
            staged: Dict[int, List] = {gid: [] for gid in self.gids}
            for env in batches:
                staged[env.dest].append((env.sender, env.payload))
            if self.deployment.config.data_plane == "batch":
                group = self.deployment.group
                self._view = {
                    gid: CiphertextBatch.concat(
                        group,
                        (
                            payload.as_batch(group)
                            for _, payload in sorted(pairs, key=lambda p: p[0])
                        ),
                    )
                    for gid, pairs in staged.items()
                }
            else:
                self._view = {
                    gid: [
                        vec
                        for _, payload in sorted(pairs, key=lambda p: p[0])
                        for vec in payload.vectors
                    ]
                    for gid, pairs in staged.items()
                }
        # Canonical per-layer audit order: collection order differs when
        # a layer mixes inline (local) and pooled (remote) groups in one
        # pass, so sort by gid — a no-op for the all-inline and
        # all-pooled paths, which already emit gid-ascending.
        audits.sort(key=lambda a: a.gid)
        for audit in audits:
            self.result.audits.append(audit)
            self.result.bytes_sent_total += audit.bytes_sent
        self.layer += 1
        if self.store.enabled:
            # Journal the committed layer: rng state + audits, plus a
            # holdings snapshot per the checkpoint cadence.  Gated on
            # `enabled` so the no-op default never builds the snapshot.
            self.store.layer_commit(
                self.round_id,
                self.layer,
                self.rng,
                audits,
                # Checkpoint bytes are encoded synchronously inside
                # layer_commit, so batch/spillable containers pass
                # through without copying; plain lists still snapshot.
                {gid: self._snapshot_holdings(gid) for gid in self.gids},
            )

    def _snapshot_holdings(self, gid: int):
        view = self._holdings_view(gid)
        return list(view) if isinstance(view, list) else view

    def _sort_mix_replies(self, replies, batches, audits) -> None:
        """File a node's MIX replies; FAULTs become raised exceptions."""
        for env in replies:
            if env.kind is Kind.FAULT:
                raise_fault(env.payload)
        for env in replies:
            if env.kind is Kind.MIX_BATCH:
                batches.append(env)
            elif env.kind is Kind.MIX_SUMMARY:
                audits.append(env.payload.audit)

    def _abort_layer(self, layer: int) -> None:
        for gid in self.gids:
            try:
                self._send(ev.AbortLayer(layer=layer), gid)
            except Exception:
                pass

    # -- recovery ------------------------------------------------------

    def rehome_group(self, gid: int) -> None:
        """§4.5 buddy recovery rebuilt a fleet-homed group whose OS
        process died: host the restored group in-coordinator from now
        on.  The dead process cannot come back with its pre-layer
        state, but the coordinator's holdings view (delivered batches /
        intake mirror) plus the round's commitment mirror reconstruct
        the exact snapshot the recovered context must resume from."""
        if self._fleet is None or gid not in self._remote:
            return
        rnd = self.rnd
        deployment = self.deployment
        pool = (
            deployment._mixing_pool() if len(rnd.contexts) > 1 else None
        )
        node = ServerNode(
            rnd.contexts[gid], self.round_id, deployment.config.variant,
            pool=pool, store=self.store,
            data_plane=deployment.config.data_plane,
            spill_threshold=deployment.config.spill_threshold,
            spill_dir=deployment.spill_dir(),
        )
        view = self._holdings_view(gid)
        if isinstance(node.holdings, list):
            node.holdings = list(view)
        else:
            node.holdings.extend(view)
        node.commitments = list(rnd.commitments.get(gid, []))
        node._seen = {
            vector_fingerprint(vec) for vec in rnd.holdings.get(gid, [])
        }
        self._remote.discard(gid)
        self.nodes[gid] = node
        self._fleet.rehome(self.round_id, gid, node)

    # -- exit ----------------------------------------------------------

    def abort(self, failure: RuntimeError):
        """Record an unrecovered protocol failure and release the
        round's endpoints (the round is over either way)."""
        self.result.aborted = True
        self.result.abort_reason = str(failure)
        self.result.offending_groups = [failure.gid]
        self.store.round_end(self.round_id, ok=False)
        self.release()
        return self.result

    def finish(self):
        """Run the exit protocol over the fully mixed holdings."""
        if not self.done:
            raise RuntimeError(f"{self.remaining_layers} mixing layers remain")
        payloads_by_gid: Dict[int, List[bytes]] = {}
        for gid in self.gids:
            replies = self._send(ev.Exit(), gid)
            payloads_by_gid[gid] = list(replies[0].payload.payloads)
        try:
            if self.deployment.config.variant == "trap":
                result = self._trap_exit(payloads_by_gid)
            else:
                result = self._plain_exit(payloads_by_gid)
            self.store.round_end(self.round_id, ok=result.ok)
            return result
        finally:
            # The round is settled: drop its endpoints so repeated
            # run_round calls on one deployment don't accumulate node
            # registrations (and, under TCP, listener sockets).
            self.release()

    def _plain_exit(self, payloads_by_gid: Dict[int, List[bytes]]):
        """Basic/NIZK exit: parse payloads, drop cover dummies (§3)."""
        result = self.result
        spec = self.deployment.spec
        for gid in sorted(payloads_by_gid):
            for payload in payloads_by_gid[gid]:
                if spec.is_dummy(payload):
                    continue  # cover traffic, discarded at exit (§3)
                try:
                    result.messages.append(spec.parse_plain(payload))
                except fmt.MessageFormatError:
                    result.aborted = True
                    result.abort_reason = "malformed payload at exit"
                    result.offending_groups.append(gid)
        return result

    def _trap_exit(self, payloads_by_gid: Dict[int, List[bytes]]):
        """§4.4 over envelopes: sort traps and inner ciphertexts, have
        every entry group check and report, ask the trustees to release,
        open.  The coordinator performs the sort-and-forward step (the
        last servers' routing) and the *global* inner-ciphertext
        de-duplication, which in the paper is an inter-group exchange.
        """
        result = self.result
        cfg = self.deployment.config
        spec = self.deployment.spec
        num_groups = cfg.num_groups

        traps_for_gid: Dict[int, List[bytes]] = {g: [] for g in range(num_groups)}
        inners_for_gid: Dict[int, List[bytes]] = {g: [] for g in range(num_groups)}
        malformed_from: List[int] = []
        for gid in sorted(payloads_by_gid):
            for payload in payloads_by_gid[gid]:
                if spec.is_trap(payload):
                    trap_gid, _ = spec.parse_trap(payload)
                    if 0 <= trap_gid < num_groups:
                        traps_for_gid[trap_gid].append(payload)
                    else:
                        malformed_from.append(gid)
                elif spec.is_inner(payload):
                    # Universal-hash load balancing of inner ciphertexts.
                    digest = hashlib.sha3_256(payload).digest()
                    target = int.from_bytes(digest[:8], "big") % num_groups
                    inners_for_gid[target].append(payload)
                else:
                    malformed_from.append(gid)

        # Global duplicate detection across the assigned inner sets.
        seen_inner: set = set()
        inner_ok_for_gid: Dict[int, bool] = {}
        for gid in range(num_groups):
            inner_ok = gid not in malformed_from
            for inner in inners_for_gid[gid]:
                if inner in seen_inner:
                    inner_ok = False
                seen_inner.add(inner)
            inner_ok_for_gid[gid] = inner_ok

        # Each entry group checks its traps and reports to the trustees.
        for gid in range(num_groups):
            replies = self._send(
                ev.TrapCheck(
                    traps=tuple(traps_for_gid[gid]),
                    inner_ok=inner_ok_for_gid[gid],
                    num_inner=len(inners_for_gid[gid]),
                ),
                gid,
            )
            for env in replies:
                if env.kind is Kind.GROUP_REPORT:
                    self.transport.request(env)  # forward to the trustees
        result.num_traps_checked = sum(len(t) for t in traps_for_gid.values())

        decision = self._send(
            ev.KeyRequest(expected_groups=num_groups), ev.TRUSTEE
        )[0]
        if decision.kind is Kind.KEY_WITHHELD:
            result.aborted = True
            result.abort_reason = decision.payload.reason
            result.offending_groups = list(decision.payload.offending_gids)
            return result

        from repro.core.protocol import DUMMY_MAGIC

        secret = decision.payload.secret
        group = self.deployment.group
        for gid in range(num_groups):
            for payload in inners_for_gid[gid]:
                inner = spec.parse_inner(group, payload)
                try:
                    padded = cca2_decrypt(group, secret, inner)
                    message = spec.unpad(padded)
                    marker = DUMMY_MAGIC[: cfg.message_size]
                    if message.startswith(marker):
                        continue  # trap-variant cover dummy
                    result.messages.append(message)
                except Exception:
                    # IND-CCA2: a mauled inner ciphertext fails to open.
                    result.aborted = True
                    result.abort_reason = "inner ciphertext failed authentication"
                    result.offending_groups.append(gid)
        return result
