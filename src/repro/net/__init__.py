"""Message-driven node architecture (the service boundary).

- :mod:`repro.net.envelopes` — typed, versioned wire envelopes with
  byte codecs for every inter-node interaction.
- :mod:`repro.net.transport` — the :class:`Transport` contract with
  the zero-copy :class:`InProcessTransport` and the socket-backed
  :class:`TcpTransport`.
- :mod:`repro.net.nodes` — :class:`ServerNode` / :class:`TrusteeNode`
  services exposing ``handle(envelope) -> [envelope]``.
- :mod:`repro.net.coordinator` — the :class:`Coordinator` that drives
  a full round purely over envelopes.
- :mod:`repro.net.resilience` — deadlines, deterministic retries,
  idempotent request ids, and the heartbeat suspicion tracker.
- :mod:`repro.net.chaos` — :class:`ChaosTransport`, a reproducible
  adversarial network driven by a parseable :class:`NetFaultPlan`.
"""

from repro.net.chaos import ChaosTransport, NetFaultPlan, NetFaultPlanError
from repro.net.coordinator import Coordinator
from repro.net.envelopes import Envelope, Kind, WireFormatError, wrap
from repro.net.nodes import ServerNode, TrusteeNode
from repro.net.resilience import (
    DedupCache,
    ResilientTransport,
    RpcExhausted,
    RpcPolicy,
    SuspicionTracker,
)
from repro.net.transport import (
    InProcessTransport,
    RetryableTransportError,
    RpcTimeout,
    TcpTransport,
    Transport,
    TransportError,
    TRANSPORTS,
    make_transport,
)

__all__ = [
    "ChaosTransport",
    "NetFaultPlan",
    "NetFaultPlanError",
    "Coordinator",
    "Envelope",
    "Kind",
    "WireFormatError",
    "wrap",
    "ServerNode",
    "TrusteeNode",
    "DedupCache",
    "ResilientTransport",
    "RpcExhausted",
    "RpcPolicy",
    "SuspicionTracker",
    "InProcessTransport",
    "RetryableTransportError",
    "RpcTimeout",
    "TcpTransport",
    "Transport",
    "TransportError",
    "TRANSPORTS",
    "make_transport",
]
