"""Message-driven node architecture (the service boundary).

- :mod:`repro.net.envelopes` — typed, versioned wire envelopes with
  byte codecs for every inter-node interaction.
- :mod:`repro.net.transport` — the :class:`Transport` contract with
  the zero-copy :class:`InProcessTransport` and the socket-backed
  :class:`TcpTransport`.
- :mod:`repro.net.nodes` — :class:`ServerNode` / :class:`TrusteeNode`
  services exposing ``handle(envelope) -> [envelope]``.
- :mod:`repro.net.coordinator` — the :class:`Coordinator` that drives
  a full round purely over envelopes.
"""

from repro.net.coordinator import Coordinator
from repro.net.envelopes import Envelope, Kind, WireFormatError, wrap
from repro.net.nodes import ServerNode, TrusteeNode
from repro.net.transport import (
    InProcessTransport,
    TcpTransport,
    Transport,
    TransportError,
    TRANSPORTS,
    make_transport,
)

__all__ = [
    "Coordinator",
    "Envelope",
    "Kind",
    "WireFormatError",
    "wrap",
    "ServerNode",
    "TrusteeNode",
    "InProcessTransport",
    "TcpTransport",
    "Transport",
    "TransportError",
    "TRANSPORTS",
    "make_transport",
]
