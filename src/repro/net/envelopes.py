"""Typed, versioned wire envelopes for inter-node messages.

Every interaction that :class:`~repro.net.coordinator.Coordinator`
drives between nodes — intake submissions, mix-layer hand-offs
(ciphertext batches plus the shuffle-proof NIZK evidence of the
verified variants), trap checks, trustee reports and key release,
fault notifications — is an :class:`Envelope`: a fixed header
(magic, wire version, kind, round id, sender, destination) plus a
typed payload with an explicit byte codec.

The codecs reuse the serialization conventions the repo already has:
group elements travel as the fixed-width big-endian integers that
``element.to_bytes()`` / ``GroupBackend.element`` round-trip (PR 3's
backend contract, so the same envelope bytes work on Schnorr groups
and on P-256), scalars as ``q``-width integers, and routed payloads as
the :mod:`repro.core.messages` fixed-size byte layouts, length-prefixed
like :func:`repro.core.messages.pad_payload`.

Transports decide how envelopes move: the in-process transport passes
the typed objects through untouched (zero copy), the TCP transport
frames ``envelope.to_bytes()`` over a socket.  Either way the payload
types below are the API surface nodes program against.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import ClassVar, Dict, Optional, Tuple, Type

from repro.core.client import Submission, TrapSubmission
from repro.core.group import MixAudit
from repro.core.trustees import GroupReport
from repro.crypto.elgamal import AtomCiphertext
from repro.crypto.groups import GroupBackend as Group
from repro.crypto.nizk import EncProof
from repro.crypto.sigma import SigmaProof
from repro.crypto.vector import (
    CiphertextVector,
    VectorShuffleProof,
    VectorShuffleRound,
)

#: bump when the header or any codec changes incompatibly
#: (v2: u64 request id in the header for idempotent RPC delivery)
WIRE_VERSION = 2
MAGIC = b"AT"

#: well-known logical node addresses (server nodes use their gid >= 0)
COORDINATOR = -1
TRUSTEE = -2
#: fleet-process control plane (round lifecycle, status, shutdown)
CONTROL = -3


class WireFormatError(ValueError):
    """Raised on malformed, truncated, or wrong-version envelope bytes."""


class Kind(enum.IntEnum):
    """The envelope catalogue (see DESIGN.md for the full sequence)."""

    # intake
    SUBMIT_PLAIN = 1
    SUBMIT_TRAP = 2
    SUBMIT_OK = 3
    SUBMIT_ERR = 4
    # mixing
    MIX = 10
    MIX_PENDING = 11
    MIX_COLLECT = 12
    MIX_BATCH = 13
    MIX_SUMMARY = 14
    COMMIT_LAYER = 15
    ABORT_LAYER = 16
    # faults
    FAULT = 20
    # exit
    EXIT = 30
    EXIT_PAYLOADS = 31
    TRAP_CHECK = 32
    GROUP_REPORT = 33
    REPORT_OK = 34
    KEY_REQUEST = 35
    KEY_RELEASE = 36
    KEY_WITHHELD = 37
    # health (heartbeat failure detector)
    PING = 40
    PONG = 41
    # fleet control plane (multi-process deployments)
    ROUND_OPEN = 50
    ROUND_CLOSE = 51
    FLEET_STATUS = 52
    FLEET_STATUS_REPLY = 53
    FLEET_SHUTDOWN = 54
    CONTROL_OK = 55
    BUNDLE_INSTALL = 56
    BUNDLE_FETCH = 57
    BUNDLE_DATA = 58


# ---------------------------------------------------------------------------
# binary writer / reader
# ---------------------------------------------------------------------------


class _Writer:
    """Append-only binary writer bound to one group backend."""

    def __init__(self, group: Group):
        self.group = group
        self._element_bytes = group.element_bytes
        self._scalar_bytes = (group.q.bit_length() + 7) // 8
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf += struct.pack(">B", v)

    def u32(self, v: int) -> None:
        self.buf += struct.pack(">I", v)

    def u64(self, v: int) -> None:
        self.buf += struct.pack(">Q", v)

    def i32(self, v: int) -> None:
        self.buf += struct.pack(">i", v)

    def bool_(self, v: bool) -> None:
        self.u8(1 if v else 0)

    def scalar(self, v: int) -> None:
        self.buf += int(v).to_bytes(self._scalar_bytes, "big")

    def element_value(self, value: int) -> None:
        """A group element serialized as its integer ``value``."""
        self.buf += int(value).to_bytes(self._element_bytes, "big")

    def element(self, el) -> None:
        self.element_value(el.value)

    def opt_element(self, el) -> None:
        if el is None:
            self.u8(0)
        else:
            self.u8(1)
            self.element(el)

    def blob(self, data: bytes) -> None:
        self.u32(len(data))
        self.buf += data

    def text(self, s: str) -> None:
        self.blob(s.encode("utf-8"))


class _Reader:
    """Bounds-checked reader mirroring :class:`_Writer`."""

    def __init__(self, raw: bytes, group: Group):
        self.group = group
        self._element_bytes = group.element_bytes
        self._scalar_bytes = (group.q.bit_length() + 7) // 8
        self.raw = raw
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.raw):
            raise WireFormatError(
                f"truncated envelope body: need {n} bytes at offset {self.pos}"
            )
        out = self.raw[self.pos: self.pos + n]
        self.pos += n
        return out

    def done(self) -> bool:
        return self.pos == len(self.raw)

    def u8(self) -> int:
        return struct.unpack(">B", self.take(1))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def i32(self) -> int:
        return struct.unpack(">i", self.take(4))[0]

    def bool_(self) -> bool:
        return self.u8() != 0

    def scalar(self) -> int:
        return int.from_bytes(self.take(self._scalar_bytes), "big")

    def element_value(self) -> int:
        return int.from_bytes(self.take(self._element_bytes), "big")

    def element(self):
        value = self.element_value()
        try:
            return self.group.element(value)
        except ValueError as exc:
            raise WireFormatError(f"invalid element on the wire: {exc}") from exc

    def opt_element(self):
        return self.element() if self.u8() else None

    def blob(self) -> bytes:
        return self.take(self.u32())

    def text(self) -> str:
        return self.blob().decode("utf-8")


# -- shared crypto-object codecs --------------------------------------------


def _write_ciphertext(w: _Writer, ct: AtomCiphertext) -> None:
    w.element(ct.R)
    w.element(ct.c)
    w.opt_element(ct.Y)


def _read_ciphertext(r: _Reader) -> AtomCiphertext:
    R = r.element()
    c = r.element()
    Y = r.opt_element()
    return AtomCiphertext(R=R, c=c, Y=Y)


def _write_vector(w: _Writer, vec: CiphertextVector) -> None:
    w.u32(len(vec.parts))
    for part in vec.parts:
        _write_ciphertext(w, part)


def _read_vector(r: _Reader) -> CiphertextVector:
    return CiphertextVector(tuple(_read_ciphertext(r) for _ in range(r.u32())))


def _write_vectors(w: _Writer, vectors: Tuple[CiphertextVector, ...]) -> None:
    w.u32(len(vectors))
    for vec in vectors:
        _write_vector(w, vec)


def _read_vectors(r: _Reader) -> Tuple[CiphertextVector, ...]:
    return tuple(_read_vector(r) for _ in range(r.u32()))


def _write_sigma(w: _Writer, proof: SigmaProof) -> None:
    w.u32(len(proof.commitments))
    for t in proof.commitments:
        w.element_value(t)
    w.scalar(proof.challenge)
    w.u32(len(proof.responses))
    for z in proof.responses:
        w.scalar(z)


def _read_sigma(r: _Reader) -> SigmaProof:
    commitments = tuple(r.element_value() for _ in range(r.u32()))
    challenge = r.scalar()
    responses = tuple(r.scalar() for _ in range(r.u32()))
    return SigmaProof(
        commitments=commitments, challenge=challenge, responses=responses
    )


def _write_submission(w: _Writer, sub: Submission) -> None:
    _write_vector(w, sub.vector)
    w.u32(len(sub.proofs))
    for proof in sub.proofs:
        _write_sigma(w, proof.proof)


def _read_submission(r: _Reader) -> Submission:
    vector = _read_vector(r)
    proofs = tuple(EncProof(_read_sigma(r)) for _ in range(r.u32()))
    return Submission(vector=vector, proofs=proofs)


def _write_shuffle_proof(w: _Writer, proof: VectorShuffleProof) -> None:
    w.u32(len(proof.rounds))
    for rnd in proof.rounds:
        _write_vectors(w, rnd.intermediate)
        w.u32(len(rnd.opened_perm))
        for idx in rnd.opened_perm:
            w.u32(idx)
        w.u32(len(rnd.opened_rands))
        for rands in rnd.opened_rands:
            w.u32(len(rands))
            for rand in rands:
                w.scalar(rand)
    w.u32(len(proof.challenge_bits))
    for bit in proof.challenge_bits:
        w.u8(bit)


def _read_shuffle_proof(r: _Reader) -> VectorShuffleProof:
    rounds = []
    for _ in range(r.u32()):
        intermediate = _read_vectors(r)
        opened_perm = tuple(r.u32() for _ in range(r.u32()))
        opened_rands = tuple(
            tuple(r.scalar() for _ in range(r.u32())) for _ in range(r.u32())
        )
        rounds.append(
            VectorShuffleRound(
                intermediate=intermediate,
                opened_perm=opened_perm,
                opened_rands=opened_rands,
            )
        )
    bits = tuple(r.u8() for _ in range(r.u32()))
    return VectorShuffleProof(rounds=tuple(rounds), challenge_bits=bits)


def encode_audit(group: Group, audit: MixAudit) -> bytes:
    """Canonical bytes of a :class:`MixAudit` (also used by tests to
    compare results across transports byte for byte)."""
    w = _Writer(group)
    _write_audit(w, audit)
    return bytes(w.buf)


def _write_audit(w: _Writer, audit: MixAudit) -> None:
    w.u32(audit.gid)
    w.u32(audit.shuffles_proved)
    w.u32(audit.shuffles_verified)
    w.u32(audit.reencs_proved)
    w.u32(audit.reencs_verified)
    w.u32(len(audit.tamperings))
    for server_id, what in audit.tamperings:
        w.i32(server_id)
        w.text(what)
    w.u64(audit.bytes_sent)
    proof = audit.final_shuffle_proof
    w.bool_(proof is not None)
    if proof is not None:
        _write_shuffle_proof(w, proof)


def _read_audit(r: _Reader) -> MixAudit:
    audit = MixAudit(gid=r.u32())
    audit.shuffles_proved = r.u32()
    audit.shuffles_verified = r.u32()
    audit.reencs_proved = r.u32()
    audit.reencs_verified = r.u32()
    audit.tamperings = [(r.i32(), r.text()) for _ in range(r.u32())]
    audit.bytes_sent = r.u64()
    if r.bool_():
        audit.final_shuffle_proof = _read_shuffle_proof(r)
    return audit


def _write_payloads(w: _Writer, payloads: Tuple[bytes, ...]) -> None:
    """Routed payloads: the fixed-size :mod:`repro.core.messages`
    layouts, length-prefixed so mixed sizes stay parseable."""
    w.u32(len(payloads))
    for payload in payloads:
        w.blob(payload)


def _read_payloads(r: _Reader) -> Tuple[bytes, ...]:
    return tuple(r.blob() for _ in range(r.u32()))


# ---------------------------------------------------------------------------
# payload types — one dataclass per envelope kind
# ---------------------------------------------------------------------------

_PAYLOADS: Dict[Kind, Type["_Payload"]] = {}


def _register(kind: Kind):
    def wrap(cls):
        cls.kind = kind
        _PAYLOADS[kind] = cls
        return cls

    return wrap


class _Payload:
    """Base: payloads encode themselves into a writer and decode from a
    reader; empty payloads inherit the no-op implementations."""

    kind: ClassVar[Kind]

    def _encode(self, w: _Writer) -> None:  # pragma: no cover - trivial
        pass

    @classmethod
    def _decode(cls, r: _Reader) -> "_Payload":
        return cls()


@_register(Kind.SUBMIT_PLAIN)
@dataclass
class SubmitPlain(_Payload):
    """Basic/NIZK-variant intake: one proved submission for ``gid``."""

    gid: int
    submission: Submission

    def _encode(self, w: _Writer) -> None:
        w.u32(self.gid)
        _write_submission(w, self.submission)

    @classmethod
    def _decode(cls, r: _Reader) -> "SubmitPlain":
        return cls(gid=r.u32(), submission=_read_submission(r))


@_register(Kind.SUBMIT_TRAP)
@dataclass
class SubmitTrap(_Payload):
    """Trap-variant intake: the (inner, trap) pair plus commitment."""

    submission: TrapSubmission

    def _encode(self, w: _Writer) -> None:
        sub = self.submission
        w.u32(sub.gid)
        _write_submission(w, sub.pair[0])
        _write_submission(w, sub.pair[1])
        w.blob(sub.trap_commitment)

    @classmethod
    def _decode(cls, r: _Reader) -> "SubmitTrap":
        gid = r.u32()
        pair = (_read_submission(r), _read_submission(r))
        commitment = r.blob()
        return cls(
            TrapSubmission(pair=pair, trap_commitment=commitment, gid=gid)
        )


@_register(Kind.SUBMIT_OK)
@dataclass
class SubmitOk(_Payload):
    """Intake accepted; ``accepted`` ciphertexts entered the holdings."""

    accepted: int

    def _encode(self, w: _Writer) -> None:
        w.u32(self.accepted)

    @classmethod
    def _decode(cls, r: _Reader) -> "SubmitOk":
        return cls(accepted=r.u32())


@_register(Kind.SUBMIT_ERR)
@dataclass
class SubmitErr(_Payload):
    """Intake rejected (bad EncProof, duplicate, ...)."""

    reason: str

    def _encode(self, w: _Writer) -> None:
        w.text(self.reason)

    @classmethod
    def _decode(cls, r: _Reader) -> "SubmitErr":
        return cls(reason=r.text())


@_register(Kind.MIX)
@dataclass
class Mix(_Payload):
    """Coordinator -> node: mix your holdings for ``layer``.

    ``next_keys[i]`` is successor ``successors[i]``'s public key
    (``None`` on the final layer: re-encrypt to ⊥).  ``seed`` derives
    the node's deterministic randomness (absent: system randomness);
    ``use_pool`` opts the node into the shared mixing worker pool.
    """

    layer: int
    successors: Tuple[int, ...]
    next_keys: Tuple[Optional[object], ...]
    seed: Optional[bytes] = None
    use_pool: bool = False

    def _encode(self, w: _Writer) -> None:
        w.u32(self.layer)
        w.u32(len(self.successors))
        for succ in self.successors:
            w.u32(succ)
        w.u32(len(self.next_keys))
        for key in self.next_keys:
            w.opt_element(key)
        w.bool_(self.seed is not None)
        if self.seed is not None:
            w.blob(self.seed)
        w.bool_(self.use_pool)

    @classmethod
    def _decode(cls, r: _Reader) -> "Mix":
        layer = r.u32()
        successors = tuple(r.u32() for _ in range(r.u32()))
        next_keys = tuple(r.opt_element() for _ in range(r.u32()))
        seed = r.blob() if r.bool_() else None
        use_pool = r.bool_()
        return cls(
            layer=layer, successors=successors, next_keys=next_keys,
            seed=seed, use_pool=use_pool,
        )


@_register(Kind.MIX_PENDING)
@dataclass
class MixPending(_Payload):
    """Node -> coordinator: the mix went to the worker pool; collect
    its result with :class:`MixCollect`."""

    layer: int

    def _encode(self, w: _Writer) -> None:
        w.u32(self.layer)

    @classmethod
    def _decode(cls, r: _Reader) -> "MixPending":
        return cls(layer=r.u32())


@_register(Kind.MIX_COLLECT)
@dataclass
class MixCollect(_Payload):
    """Coordinator -> node: block on the pooled mix and return it."""

    layer: int

    def _encode(self, w: _Writer) -> None:
        w.u32(self.layer)

    @classmethod
    def _decode(cls, r: _Reader) -> "MixCollect":
        return cls(layer=r.u32())


@_register(Kind.MIX_BATCH)
class MixBatch(_Payload):
    """Node -> node: one mixed batch handed to a successor group.

    The payload holds the batch in one of two forms with identical
    wire bytes (``u32 layer || u32 count || records``):

    - ``vectors=`` — a tuple of decoded :class:`CiphertextVector`
      (the legacy object path), or
    - ``batch=`` — a :class:`~repro.core.batch.CiphertextBatch`
      buffer (the streaming path), whose records are **spliced**
      into the envelope body without re-encoding.

    Decoding off the wire always produces the batch form via a
    structural scan (counts/flags/widths); element validation is
    deferred to the first ``.vectors`` or per-record access, so a
    multi-megabyte batch costs O(bytes) to receive, not O(elements).
    """

    def __init__(self, layer: int, vectors=None, batch=None):
        if (vectors is None) == (batch is None):
            raise TypeError("MixBatch takes exactly one of vectors= or batch=")
        self.layer = layer
        self._vectors = tuple(vectors) if vectors is not None else None
        self._batch = batch

    @classmethod
    def of(cls, layer: int, data) -> "MixBatch":
        """Wrap either container form without copying."""
        from repro.core.batch import CiphertextBatch

        if isinstance(data, CiphertextBatch):
            return cls(layer, batch=data)
        return cls(layer, vectors=tuple(data))

    @property
    def count(self) -> int:
        if self._vectors is not None:
            return len(self._vectors)
        return len(self._batch)

    @property
    def vectors(self) -> Tuple[CiphertextVector, ...]:
        """Decoded vectors (lazy; first access validates elements)."""
        if self._vectors is None:
            from repro.core.batch import BatchFormatError

            try:
                self._vectors = tuple(self._batch)
            except BatchFormatError as exc:
                raise WireFormatError(
                    f"invalid element in MIX_BATCH: {exc}"
                ) from exc
        return self._vectors

    def as_batch(self, group: Group):
        """The batch form (built from vectors on the legacy path)."""
        if self._batch is None:
            from repro.core.batch import CiphertextBatch

            self._batch = CiphertextBatch.from_vectors(group, self._vectors)
        return self._batch

    def _encode(self, w: _Writer) -> None:
        w.u32(self.layer)
        if self._batch is not None:
            w.u32(len(self._batch))
            w.buf += self._batch.raw_records()
        else:
            _write_vectors(w, self._vectors)

    @classmethod
    def _decode(cls, r: _Reader) -> "MixBatch":
        from repro.core.batch import BatchFormatError, CiphertextBatch

        layer = r.u32()
        try:
            batch, end = CiphertextBatch.parse(r.group, r.raw, r.pos)
        except BatchFormatError as exc:
            raise WireFormatError(f"malformed MIX_BATCH: {exc}") from exc
        r.pos = end
        return cls(layer, batch=batch)

    def _canonical(self):
        from repro.core.batch import encode_vector_records

        if self._batch is not None:
            return len(self._batch), bytes(self._batch.raw_records())
        return len(self._vectors), encode_vector_records(self._vectors)

    def __eq__(self, other) -> bool:
        if not isinstance(other, MixBatch):
            return NotImplemented
        return self.layer == other.layer and self._canonical() == other._canonical()

    __hash__ = None  # match dataclass(eq=True) payloads

    def __repr__(self) -> str:
        form = "batch" if self._batch is not None else "vectors"
        return f"MixBatch(layer={self.layer}, count={self.count}, form={form})"


@_register(Kind.MIX_SUMMARY)
@dataclass
class MixSummary(_Payload):
    """Node -> coordinator: the audit of one completed mix (includes
    the last participant's shuffle-proof NIZK in verified variants)."""

    layer: int
    audit: MixAudit

    def _encode(self, w: _Writer) -> None:
        w.u32(self.layer)
        _write_audit(w, self.audit)

    @classmethod
    def _decode(cls, r: _Reader) -> "MixSummary":
        return cls(layer=r.u32(), audit=_read_audit(r))


@_register(Kind.COMMIT_LAYER)
@dataclass
class CommitLayer(_Payload):
    """Coordinator -> node: the whole layer succeeded; adopt the
    batches delivered for it as your new holdings."""

    layer: int

    def _encode(self, w: _Writer) -> None:
        w.u32(self.layer)

    @classmethod
    def _decode(cls, r: _Reader) -> "CommitLayer":
        return cls(layer=r.u32())


@_register(Kind.ABORT_LAYER)
@dataclass
class AbortLayer(_Payload):
    """Coordinator -> node: the layer failed somewhere; discard any
    staged state for it (holdings stay at the pre-layer snapshot)."""

    layer: int

    def _encode(self, w: _Writer) -> None:
        w.u32(self.layer)

    @classmethod
    def _decode(cls, r: _Reader) -> "AbortLayer":
        return cls(layer=r.u32())


@_register(Kind.FAULT)
@dataclass
class Fault(_Payload):
    """Node -> coordinator: a protocol failure notification.

    ``code`` is ``"abort"`` (Algorithm 2 caught a deviating server:
    ``gid``/``culprit``/``stage`` are set), ``"stalled"`` (quorum loss:
    ``gid``/``alive``/``needed``), or ``"error"`` (unexpected exception,
    ``message`` carries the repr).
    """

    code: str
    gid: int = -1
    culprit: int = -1
    stage: str = ""
    alive: int = 0
    needed: int = 0
    message: str = ""

    def _encode(self, w: _Writer) -> None:
        w.text(self.code)
        w.i32(self.gid)
        w.i32(self.culprit)
        w.text(self.stage)
        w.u32(self.alive)
        w.u32(self.needed)
        w.text(self.message)

    @classmethod
    def _decode(cls, r: _Reader) -> "Fault":
        return cls(
            code=r.text(), gid=r.i32(), culprit=r.i32(), stage=r.text(),
            alive=r.u32(), needed=r.u32(), message=r.text(),
        )


@_register(Kind.EXIT)
@dataclass
class Exit(_Payload):
    """Coordinator -> node: mixing is done; reveal your payloads."""


@_register(Kind.EXIT_PAYLOADS)
@dataclass
class ExitPayloads(_Payload):
    """Node -> coordinator: the fully-peeled payload bytes."""

    payloads: Tuple[bytes, ...]

    def _encode(self, w: _Writer) -> None:
        _write_payloads(w, self.payloads)

    @classmethod
    def _decode(cls, r: _Reader) -> "ExitPayloads":
        return cls(payloads=_read_payloads(r))


@_register(Kind.TRAP_CHECK)
@dataclass
class TrapCheck(_Payload):
    """Coordinator -> entry node: the traps routed back to you, plus
    the globally-determined inner-ciphertext verdict to fold into your
    trustee report (global duplicate detection spans groups, so the
    coordinator — standing in for the §4.4 inter-group broadcast —
    computes it)."""

    traps: Tuple[bytes, ...]
    inner_ok: bool
    num_inner: int

    def _encode(self, w: _Writer) -> None:
        _write_payloads(w, self.traps)
        w.bool_(self.inner_ok)
        w.u32(self.num_inner)

    @classmethod
    def _decode(cls, r: _Reader) -> "TrapCheck":
        return cls(
            traps=_read_payloads(r), inner_ok=r.bool_(), num_inner=r.u32()
        )


@_register(Kind.GROUP_REPORT)
@dataclass
class GroupReportMsg(_Payload):
    """Entry node -> trustees: the §4.4 per-group report."""

    report: GroupReport

    def _encode(self, w: _Writer) -> None:
        rep = self.report
        w.u32(rep.gid)
        w.bool_(rep.traps_ok)
        w.bool_(rep.inner_ok)
        w.u32(rep.num_traps)
        w.u32(rep.num_inner)

    @classmethod
    def _decode(cls, r: _Reader) -> "GroupReportMsg":
        return cls(
            GroupReport(
                gid=r.u32(), traps_ok=r.bool_(), inner_ok=r.bool_(),
                num_traps=r.u32(), num_inner=r.u32(),
            )
        )


@_register(Kind.REPORT_OK)
@dataclass
class ReportOk(_Payload):
    """Trustees -> sender: report recorded."""


@_register(Kind.KEY_REQUEST)
@dataclass
class KeyRequest(_Payload):
    """Coordinator -> trustees: evaluate the reports and decide."""

    expected_groups: int

    def _encode(self, w: _Writer) -> None:
        w.u32(self.expected_groups)

    @classmethod
    def _decode(cls, r: _Reader) -> "KeyRequest":
        return cls(expected_groups=r.u32())


@_register(Kind.KEY_RELEASE)
@dataclass
class KeyRelease(_Payload):
    """Trustees -> coordinator: all checks passed; the decryption-key
    shares (and their reconstruction) are released."""

    secret: int
    shares: Tuple[int, ...]

    def _encode(self, w: _Writer) -> None:
        w.scalar(self.secret)
        w.u32(len(self.shares))
        for share in self.shares:
            w.scalar(share)

    @classmethod
    def _decode(cls, r: _Reader) -> "KeyRelease":
        secret = r.scalar()
        shares = tuple(r.scalar() for _ in range(r.u32()))
        return cls(secret=secret, shares=shares)


@_register(Kind.PING)
@dataclass
class Ping(_Payload):
    """Coordinator -> node: liveness probe.  A healthy node answers
    with :class:`Pong` immediately; a missed deadline counts against
    the coordinator's suspicion threshold."""


@_register(Kind.PONG)
@dataclass
class Pong(_Payload):
    """Node -> coordinator: alive, with the group's quorum health so
    the detector also surfaces sub-threshold membership (a group whose
    servers died without the endpoint going dark)."""

    gid: int
    alive: int
    needed: int

    def _encode(self, w: _Writer) -> None:
        w.u32(self.gid)
        w.u32(self.alive)
        w.u32(self.needed)

    @classmethod
    def _decode(cls, r: _Reader) -> "Pong":
        return cls(gid=r.u32(), alive=r.u32(), needed=r.u32())


@_register(Kind.ROUND_OPEN)
@dataclass
class RoundOpen(_Payload):
    """Coordinator -> fleet process: a round object now exists for the
    header's round id.  Carries the deterministic-rng epoch mark
    ``(epoch_round, seed, counter)`` from which the process re-derives
    the identical :class:`~repro.core.group.GroupContext` objects the
    coordinator formed (``Directory.form_groups`` is a pure function of
    the mark) — no secrets cross the wire beyond the run's own seed.
    A repeated ROUND_OPEN for the same round id means the coordinator
    rebuilt the round (abort retry / rekey): the process discards any
    prior state for that round and starts clean."""

    fresh: bool
    epoch_round: int
    seed: bytes
    counter: int

    def _encode(self, w: _Writer) -> None:
        w.bool_(self.fresh)
        w.u32(self.epoch_round)
        w.blob(self.seed)
        w.u64(self.counter)

    @classmethod
    def _decode(cls, r: _Reader) -> "RoundOpen":
        return cls(
            fresh=r.bool_(), epoch_round=r.u32(), seed=r.blob(),
            counter=r.u64(),
        )


@_register(Kind.ROUND_CLOSE)
@dataclass
class RoundClose(_Payload):
    """Coordinator -> fleet process: the header's round is settled;
    drop its nodes and journal the close so a restart does not replay
    it."""


@_register(Kind.FLEET_STATUS)
@dataclass
class FleetStatus(_Payload):
    """Controller -> fleet process: readiness/liveness probe."""


@_register(Kind.FLEET_STATUS_REPLY)
@dataclass
class FleetStatusReply(_Payload):
    """Fleet process -> controller: identity plus readiness."""

    name: str
    ready: bool
    pid: int
    gids: Tuple[int, ...] = field(default_factory=tuple)
    open_rounds: Tuple[int, ...] = field(default_factory=tuple)

    def _encode(self, w: _Writer) -> None:
        w.text(self.name)
        w.bool_(self.ready)
        w.u64(self.pid)
        w.u32(len(self.gids))
        for gid in self.gids:
            w.u32(gid)
        w.u32(len(self.open_rounds))
        for rid in self.open_rounds:
            w.u32(rid)

    @classmethod
    def _decode(cls, r: _Reader) -> "FleetStatusReply":
        name = r.text()
        ready = r.bool_()
        pid = r.u64()
        gids = tuple(r.u32() for _ in range(r.u32()))
        open_rounds = tuple(r.u32() for _ in range(r.u32()))
        return cls(
            name=name, ready=ready, pid=pid, gids=gids,
            open_rounds=open_rounds,
        )


@_register(Kind.FLEET_SHUTDOWN)
@dataclass
class FleetShutdown(_Payload):
    """Controller -> fleet process: drain and exit gracefully (the
    socket-level half of SIGTERM, for rolling restarts)."""


@_register(Kind.BUNDLE_INSTALL)
@dataclass
class BundleInstall(_Payload):
    """Controller -> replacement fleet process: restore your per-round
    state from this checkpoint bundle (built from the dead process's
    state dir — see :mod:`repro.store.ship`) instead of whatever is on
    your disk.  ``data`` is an opaque bundle blob."""

    data: bytes

    def _encode(self, w: _Writer) -> None:
        w.blob(self.data)

    @classmethod
    def _decode(cls, r: _Reader) -> "BundleInstall":
        return cls(data=r.blob())


@_register(Kind.BUNDLE_FETCH)
@dataclass
class BundleFetch(_Payload):
    """Controller -> fleet process: distill your journal's live suffix
    into a bundle and send it back (BUNDLE_DATA) — lets an operator
    snapshot a live process without touching its state dir."""


@_register(Kind.BUNDLE_DATA)
@dataclass
class BundleData(_Payload):
    """Fleet process -> controller: the requested checkpoint bundle,
    plus how many live records it carries."""

    data: bytes
    records: int

    def _encode(self, w: _Writer) -> None:
        w.blob(self.data)
        w.u32(self.records)

    @classmethod
    def _decode(cls, r: _Reader) -> "BundleData":
        data = r.blob()
        return cls(data=data, records=r.u32())


@_register(Kind.CONTROL_OK)
@dataclass
class ControlOk(_Payload):
    """Fleet process -> coordinator/controller: control op applied."""


@_register(Kind.KEY_WITHHELD)
@dataclass
class KeyWithheldMsg(_Payload):
    """Trustees -> coordinator: checks failed; shares deleted."""

    reason: str
    offending_gids: Tuple[int, ...] = field(default_factory=tuple)

    def _encode(self, w: _Writer) -> None:
        w.text(self.reason)
        w.u32(len(self.offending_gids))
        for gid in self.offending_gids:
            w.u32(gid)

    @classmethod
    def _decode(cls, r: _Reader) -> "KeyWithheldMsg":
        reason = r.text()
        gids = tuple(r.u32() for _ in range(r.u32()))
        return cls(reason=reason, offending_gids=gids)


# ---------------------------------------------------------------------------
# the envelope
# ---------------------------------------------------------------------------

#: magic, version, kind, round_id, sender, dest, req_id, body_len.
#: ``req_id`` is the resilience layer's per-request identity (0 when
#: unstamped): node-side dedup caches key on it so a retried or
#: chaos-duplicated request is applied exactly once.  Its slot lives in
#: the fixed header — not a payload — because dedup must decide before
#: any payload decoding or dispatch happens.
_HEADER = struct.Struct(">2sBBIiiQI")


@dataclass
class Envelope:
    """One wire message: header plus a typed payload."""

    kind: Kind
    round_id: int
    sender: int
    dest: int
    payload: _Payload
    version: int = WIRE_VERSION
    req_id: int = 0

    def to_bytes(self, group: Group) -> bytes:
        w = _Writer(group)
        self.payload._encode(w)
        header = _HEADER.pack(
            MAGIC, self.version, int(self.kind), self.round_id,
            self.sender, self.dest, self.req_id, len(w.buf),
        )
        return header + bytes(w.buf)

    @classmethod
    def from_bytes(cls, raw: bytes, group: Group) -> "Envelope":
        if len(raw) < _HEADER.size:
            raise WireFormatError(f"envelope too short ({len(raw)} bytes)")
        magic, version, kind_raw, round_id, sender, dest, req_id, body_len = (
            _HEADER.unpack_from(raw)
        )
        if magic != MAGIC:
            raise WireFormatError(f"bad magic {magic!r}")
        if version != WIRE_VERSION:
            raise WireFormatError(
                f"unsupported wire version {version} (speaking {WIRE_VERSION})"
            )
        try:
            kind = Kind(kind_raw)
        except ValueError as exc:
            raise WireFormatError(f"unknown envelope kind {kind_raw}") from exc
        body = raw[_HEADER.size:]
        if len(body) != body_len:
            raise WireFormatError(
                f"body length mismatch: header says {body_len}, got {len(body)}"
            )
        r = _Reader(body, group)
        payload = _PAYLOADS[kind]._decode(r)
        if not r.done():
            raise WireFormatError(
                f"{len(body) - r.pos} trailing bytes after {kind.name} payload"
            )
        return cls(
            kind=kind, round_id=round_id, sender=sender, dest=dest,
            payload=payload, version=version, req_id=req_id,
        )


def wrap(
    payload: _Payload, round_id: int, sender: int, dest: int, req_id: int = 0
) -> Envelope:
    """Build an envelope around ``payload`` (kind inferred)."""
    return Envelope(
        kind=payload.kind, round_id=round_id, sender=sender, dest=dest,
        payload=payload, req_id=req_id,
    )


def all_payload_types() -> Dict[Kind, Type[_Payload]]:
    """The envelope catalogue (used by round-trip property tests)."""
    return dict(_PAYLOADS)
