"""Node services: the server side of the message-driven protocol.

A :class:`ServerNode` hosts one mixing group (the paper's unit of
placement: "each group handles one node per layer") behind a single
``handle(envelope) -> [envelope]`` method; a :class:`TrusteeNode` does
the same for the trap variant's trustee group.  Nodes own the state
the old :class:`~repro.core.protocol.AtomDeployment` kept per group in
its ``Round`` — holdings, the duplicate-submission filter, trap
commitments — and mutate it only through envelopes, so a node can sit
behind any :class:`~repro.net.transport.Transport`.

Layer atomicity mirrors the old ``MixingRun`` contract: a ``MIX``
request computes outgoing batches but does **not** advance holdings;
the coordinator delivers ``MIX_BATCH`` envelopes and then commits the
layer with ``COMMIT_LAYER`` only once every group succeeded, so a
failed layer leaves every node at its pre-layer snapshot and can be
retried (buddy recovery, §4.5).

Control plane vs data plane: everything a round *routes* travels as
envelopes.  Test instrumentation (fault injection flags, tamper-budget
bookkeeping, context replacement after buddy recovery) remains direct
object access by the engine — nodes always live in the coordinator's
process even under the TCP transport, which moves only the messages.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.batch import CiphertextBatch, vector_fingerprint
from repro.core.client import Submission, TrapSubmission
from repro.core.group import (
    GroupContext,
    GroupStalled,
    ProtocolAbort,
    _parallel_mix_worker,
)
from repro.core.trustees import GroupReport, KeyWithheld, TrusteeGroup
from repro.crypto.commit import commit
from repro.crypto.groups import DeterministicRng
from repro.crypto.vector import plaintext_of
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope, Kind
from repro.net.resilience import DedupCache


def _fault_from(exc: Exception) -> ev.Fault:
    """Translate a protocol exception into a FAULT payload."""
    if isinstance(exc, ProtocolAbort):
        return ev.Fault(
            code="abort", gid=exc.gid, culprit=exc.culprit, stage=exc.stage
        )
    if isinstance(exc, GroupStalled):
        return ev.Fault(
            code="stalled", gid=exc.gid, alive=exc.alive, needed=exc.needed
        )
    return ev.Fault(code="error", message=repr(exc))


def raise_fault(fault: ev.Fault) -> None:
    """Reconstruct and raise the exception a FAULT payload describes."""
    if fault.code == "abort":
        raise ProtocolAbort(fault.gid, fault.culprit, fault.stage)
    if fault.code == "stalled":
        raise GroupStalled(fault.gid, fault.alive, fault.needed)
    raise RuntimeError(fault.message or fault.code)


class ServerNode:
    """One mixing group as an addressable service."""

    def __init__(
        self,
        ctx: GroupContext,
        round_id: int,
        variant: str,
        pool=None,
        store=None,
        data_plane: str = "object",
        spill_threshold: int = 0,
        spill_dir=None,
    ):
        from repro.store import NullStore

        self.ctx = ctx
        self.round_id = round_id
        self.variant = variant
        self.pool = pool
        #: durability hook: accepted intake envelopes are journaled
        #: node-side, so the write-ahead log holds exactly the wire
        #: bytes this node admitted — on either transport
        self.store = store if store is not None else NullStore()
        #: hot data plane: "batch" keeps holdings as contiguous
        #: CiphertextBatch buffers (optionally spilling intake to disk
        #: past spill_threshold vectors); "object" keeps the legacy
        #: vector-object lists
        self.data_plane = data_plane
        self.spill_threshold = spill_threshold
        self.spill_dir = spill_dir
        #: vectors awaiting the next mixing layer
        self.holdings = self._make_holdings()
        #: trap commitments registered at submission time
        self.commitments: List[bytes] = []
        #: duplicate-submission filter (exact-copy replay, §2.3)
        self._seen = set()
        #: batches delivered for the in-flight layer, adopted on commit
        #: as (sender, vectors) so adoption can sort by sender — batch
        #: arrival order is immaterial (chaos reorder, parallel mix)
        self._pending: List = []
        #: outstanding pooled mix: (layer, future, successors)
        self._inflight = None
        #: request-id dedup: retried/duplicated requests replay their
        #: cached replies instead of re-executing (idempotent delivery)
        self._dedup = DedupCache()

    @property
    def gid(self) -> int:
        return self.ctx.gid

    # -- holdings containers --------------------------------------------

    def _make_holdings(self):
        """A fresh, empty holdings container for this node's data
        plane.  Recovery may later assign a plain list regardless of
        plane (checkpoint snapshots decode to vectors); every consumer
        below stays polymorphic over list / batch / spillable."""
        if self.data_plane != "batch":
            return []
        if self.spill_threshold > 0 and self.spill_dir is not None:
            from repro.store.spill import SpillableHoldings

            return SpillableHoldings(
                self.ctx.group,
                self.spill_threshold,
                self.spill_dir,
                tag=f"r{self.round_id}-g{self.gid}",
            )
        return CiphertextBatch(self.ctx.group)

    def _holdings_batch(self) -> CiphertextBatch:
        """Current holdings as one contiguous batch (splices for batch
        containers; encodes when recovery assigned a plain list)."""
        holdings = self.holdings
        if isinstance(holdings, CiphertextBatch):
            return holdings
        as_batch = getattr(holdings, "as_batch", None)
        if as_batch is not None:
            return as_batch()
        return CiphertextBatch.from_vectors(self.ctx.group, holdings)

    def _holdings_list(self) -> List:
        """Current holdings as a vector list (the legacy mix paths and
        the pickled pool task want object graphs)."""
        holdings = self.holdings
        return holdings if isinstance(holdings, list) else list(holdings)

    # -- dispatch ------------------------------------------------------

    _HANDLERS = {
        Kind.SUBMIT_PLAIN: "_on_submit_plain",
        Kind.SUBMIT_TRAP: "_on_submit_trap",
        Kind.MIX: "_on_mix",
        Kind.MIX_COLLECT: "_on_mix_collect",
        Kind.MIX_BATCH: "_on_mix_batch",
        Kind.COMMIT_LAYER: "_on_commit_layer",
        Kind.ABORT_LAYER: "_on_abort_layer",
        Kind.EXIT: "_on_exit",
        Kind.TRAP_CHECK: "_on_trap_check",
        Kind.PING: "_on_ping",
    }

    def handle(self, env: Envelope) -> List[Envelope]:
        cached = self._dedup.get(env.req_id)
        if cached is not None:
            return cached
        name = self._HANDLERS.get(env.kind)
        if name is None:
            raise ValueError(
                f"server node {self.gid} cannot handle {env.kind.name}"
            )
        replies = getattr(self, name)(env)
        if (
            env.kind in (Kind.SUBMIT_PLAIN, Kind.SUBMIT_TRAP)
            and replies
            and replies[0].kind is Kind.SUBMIT_OK
        ):
            # Journal only *accepted* submissions: rejected ones left
            # no state behind, so replay must not see them either.
            self.store.envelope_accepted(env, self.ctx.group)
        # Cached only after full success (journal included): a handler
        # that raised is retried for real, never replayed from cache.
        self._dedup.put(env.req_id, replies)
        return replies

    def _reply(self, payload, dest: int = ev.COORDINATOR) -> Envelope:
        return ev.wrap(payload, self.round_id, self.gid, dest)

    # -- intake --------------------------------------------------------

    def _accept_submissions(
        self, subs: List[Submission], trap_commitment: Optional[bytes]
    ) -> List[Envelope]:
        """Every server of the entry group verifies the EncProof NIZKs
        and exact duplicates are rejected; commitments are recorded.

        Atomic: all parts are validated before any state mutates, so a
        rejected trap pair leaves no stray vector behind — node
        holdings and the deployment-side mirror (updated only on
        SUBMIT_OK) can never diverge.
        """
        group = self.ctx.group
        fingerprints = []
        for sub in subs:
            if not sub.verify(group, self.ctx.public_key, self.gid):
                return [
                    self._reply(
                        ev.SubmitErr("EncProof verification failed at entry")
                    )
                ]
            fingerprint = vector_fingerprint(sub.vector)
            if fingerprint in self._seen or fingerprint in fingerprints:
                return [
                    self._reply(
                        ev.SubmitErr("duplicate ciphertext submission rejected")
                    )
                ]
            fingerprints.append(fingerprint)
        for sub, fingerprint in zip(subs, fingerprints):
            self._seen.add(fingerprint)
            self.holdings.append(sub.vector)
        if trap_commitment is not None:
            self.commitments.append(trap_commitment)
        return [self._reply(ev.SubmitOk(accepted=len(subs)))]

    def _on_submit_plain(self, env: Envelope) -> List[Envelope]:
        payload: ev.SubmitPlain = env.payload
        if payload.gid != self.gid:
            return [self._reply(ev.SubmitErr("submission addressed to wrong group"))]
        return self._accept_submissions([payload.submission], None)

    def _on_submit_trap(self, env: Envelope) -> List[Envelope]:
        sub: TrapSubmission = env.payload.submission
        if sub.gid != self.gid:
            return [self._reply(ev.SubmitErr("submission addressed to wrong group"))]
        return self._accept_submissions(list(sub.pair), sub.trap_commitment)

    # -- mixing --------------------------------------------------------

    def _on_mix(self, env: Envelope) -> List[Envelope]:
        payload: ev.Mix = env.payload
        rng = DeterministicRng(payload.seed) if payload.seed is not None else None
        if (
            payload.use_pool
            and self.pool is not None
            and self.ctx.parallel_safe()
        ):
            # Fan the CPU-bound mix out to the shared worker pool; the
            # coordinator collects the result after dispatching every
            # group of the layer (Fig. 7 horizontal scaling).
            task = (
                self.ctx,
                list(self.holdings),
                list(payload.next_keys),
                self.variant == "nizk",
                payload.seed,
            )
            future = self.pool.submit(_parallel_mix_worker, task)
            self._inflight = (payload.layer, future, payload.successors)
            return [self._reply(ev.MixPending(layer=payload.layer))]
        try:
            if self.variant == "nizk":
                batches, audit = self.ctx.mix_with_reenc_proofs(
                    self._holdings_list(), list(payload.next_keys), rng
                )
            elif self.data_plane == "batch" and self.ctx.streaming_safe():
                # Streaming path: mix over the contiguous buffer —
                # byte-identical to mix() (see GroupContext.mix_batch),
                # never materializing the round as an object graph.
                batches, audit = self.ctx.mix_batch(
                    self._holdings_batch(), list(payload.next_keys), rng=rng
                )
            else:
                batches, audit = self.ctx.mix(
                    self._holdings_list(), list(payload.next_keys),
                    verify=False, rng=rng,
                )
        except (ProtocolAbort, GroupStalled) as exc:
            return [self._reply(_fault_from(exc))]
        return self._mix_replies(payload.layer, payload.successors, batches, audit)

    def _on_mix_collect(self, env: Envelope) -> List[Envelope]:
        payload: ev.MixCollect = env.payload
        if self._inflight is None or self._inflight[0] != payload.layer:
            raise RuntimeError(
                f"node {self.gid}: no pooled mix in flight for layer "
                f"{payload.layer}"
            )
        layer, future, successors = self._inflight
        self._inflight = None
        try:
            _, batches, audit = future.result()
        except (ProtocolAbort, GroupStalled) as exc:
            return [self._reply(_fault_from(exc))]
        return self._mix_replies(layer, successors, batches, audit)

    def _mix_replies(self, layer, successors, batches, audit) -> List[Envelope]:
        # MixBatch.of keeps whichever container the mix produced:
        # streaming CiphertextBatch buffers are spliced onto the wire
        # (or handed through zero-copy in-process) without re-encoding.
        replies = [
            self._reply(ev.MixBatch.of(layer, batch), dest=succ)
            for succ, batch in zip(successors, batches)
        ]
        replies.append(self._reply(ev.MixSummary(layer=layer, audit=audit)))
        return replies

    def _on_mix_batch(self, env: Envelope) -> List[Envelope]:
        self._pending.append((env.sender, env.payload))
        return []

    def _on_commit_layer(self, env: Envelope) -> List[Envelope]:
        # Adopt sorted by sender: batch arrival order carries no
        # meaning (the mix permutes anyway), and sorting makes chaos
        # reordering invisible to the committed state.
        holdings = self._make_holdings()
        if isinstance(holdings, list):
            for _, payload in sorted(self._pending, key=lambda p: p[0]):
                holdings.extend(payload.vectors)
        else:
            # batch plane: adopt by buffer splice — wire-decoded
            # batches are never turned into object graphs here
            for _, payload in sorted(self._pending, key=lambda p: p[0]):
                holdings.extend(payload.as_batch(self.ctx.group))
        replaced = self.holdings
        self.holdings = holdings
        self._pending = []
        # a spillable container being replaced drops its scratch files
        release = getattr(replaced, "release", None)
        if release is not None:
            release()
        return []

    def _on_abort_layer(self, env: Envelope) -> List[Envelope]:
        self._pending = []
        if self._inflight is not None:
            _, future, _ = self._inflight
            self._inflight = None
            future.cancel()
        return []

    # -- exit ----------------------------------------------------------

    def _on_exit(self, env: Envelope) -> List[Envelope]:
        payloads = tuple(
            plaintext_of(self.ctx.scheme, vec) for vec in self.holdings
        )
        return [self._reply(ev.ExitPayloads(payloads=payloads))]

    def _on_trap_check(self, env: Envelope) -> List[Envelope]:
        """§4.4: check the traps routed back to this entry group against
        its registered commitments and report to the trustees."""
        payload: ev.TrapCheck = env.payload
        expected = {bytes(c) for c in self.commitments}
        got = {commit(t) for t in payload.traps}
        traps_ok = expected == got and len(payload.traps) == len(self.commitments)
        report = GroupReport(
            gid=self.gid,
            traps_ok=traps_ok,
            inner_ok=payload.inner_ok,
            num_traps=len(payload.traps),
            num_inner=payload.num_inner,
        )
        return [self._reply(ev.GroupReportMsg(report), dest=ev.TRUSTEE)]

    # -- health --------------------------------------------------------

    def _on_ping(self, env: Envelope) -> List[Envelope]:
        """Heartbeat: alive, and here is the group's quorum health —
        the detector also catches a group whose servers died without
        the endpoint itself going dark."""
        return [
            self._reply(
                ev.Pong(
                    gid=self.gid,
                    alive=len(self.ctx.alive_positions()),
                    needed=self.ctx.threshold,
                )
            )
        ]


class TrusteeNode:
    """The trustee group as an addressable service (trap variant)."""

    def __init__(self, trustees: TrusteeGroup, round_id: int):
        self.trustees = trustees
        self.round_id = round_id
        self._dedup = DedupCache()

    def handle(self, env: Envelope) -> List[Envelope]:
        cached = self._dedup.get(env.req_id)
        if cached is not None:
            return cached
        replies = self._dispatch(env)
        self._dedup.put(env.req_id, replies)
        return replies

    def _dispatch(self, env: Envelope) -> List[Envelope]:
        if env.kind is Kind.GROUP_REPORT:
            self.trustees.submit_report(env.payload.report)
            return [
                ev.wrap(ev.ReportOk(), self.round_id, ev.TRUSTEE, env.sender)
            ]
        if env.kind is Kind.KEY_REQUEST:
            try:
                shares = self.trustees.evaluate(
                    expected_groups=env.payload.expected_groups
                )
            except KeyWithheld as withheld:
                return [
                    ev.wrap(
                        ev.KeyWithheldMsg(
                            reason=str(withheld),
                            offending_gids=tuple(withheld.offending_gids),
                        ),
                        self.round_id, ev.TRUSTEE, env.sender,
                    )
                ]
            return [
                ev.wrap(
                    ev.KeyRelease(
                        secret=self.trustees.secret_key(), shares=tuple(shares)
                    ),
                    self.round_id, ev.TRUSTEE, env.sender,
                )
            ]
        raise ValueError(f"trustee node cannot handle {env.kind.name}")
