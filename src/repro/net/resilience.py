"""RPC resilience: deadlines, retries, idempotency, and suspicion.

PR 4's transports assume a perfect network: ``request`` blocks forever
on a silent peer and any hiccup surfaces as an exception the round
machinery treats as fatal.  This module is the layer between the
:class:`~repro.net.coordinator.Coordinator` and the transport that
makes those assumptions explicit and survivable:

- :class:`RpcPolicy` — per-envelope-kind deadlines and a bounded,
  deterministic exponential-backoff retry budget.  Jitter comes from a
  dedicated :class:`~repro.crypto.groups.DeterministicRng` (never the
  protocol rng), so a retried run draws the same protocol randomness
  as a fault-free one — byte-identical results are preserved.

- :class:`ResilientTransport` — a :class:`~repro.net.transport.Transport`
  decorator applying the policy.  It stamps a unique ``req_id`` into
  every outgoing envelope; paired with the node-side
  :class:`DedupCache` this makes retries *idempotent*: a request whose
  reply was lost is re-sent, the node recognises the id, and replays
  the cached reply instead of re-executing (the two-phase layer commit
  stays replay-safe).

- :class:`DedupCache` — bounded LRU of ``req_id -> replies`` consulted
  by ``ServerNode.handle`` / ``TrusteeNode.handle`` before dispatch.

- :class:`SuspicionTracker` — phi-accrual-lite failure detector state
  for the coordinator's heartbeat probes: consecutive missed PONGs
  accumulate per group until a miss threshold declares the endpoint
  dead, surfacing the existing ``GroupStalled`` into buddy recovery.

Retries exist for *delivery* failures (:class:`RetryableTransportError`:
timeouts, resets, garbled frames).  A plain ``TransportError`` means
the node processed the request and failed doing so — re-executing a
failure is never an improvement, so those propagate immediately.
"""

from __future__ import annotations

import secrets
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.groups import DeterministicRng
from repro.net.envelopes import Envelope, Kind
from repro.net.transport import (
    RetryableTransportError,
    Transport,
    TransportError,
)


class RpcExhausted(TransportError):
    """Every retry attempt against one destination failed."""

    def __init__(self, dest: int, kind: Kind, attempts: int, last_error):
        super().__init__(
            f"rpc {kind.name} to node {dest} exhausted "
            f"{attempts} attempt(s): {last_error}"
        )
        self.dest = dest
        self.kind = kind
        self.attempts = attempts
        self.last_error = last_error


#: backoff shape: 20 ms doubling per attempt, capped at 2 s, scaled by
#: jitter in [0.5, 1.5) drawn from the policy's dedicated rng.
_BACKOFF_BASE_S = 0.02
_BACKOFF_CAP_S = 2.0


@dataclass
class RpcPolicy:
    """Deadlines and retry budget, resolved per envelope kind."""

    base_timeout: float = 30.0
    max_attempts: int = 4
    kind_timeouts: Dict[Kind, float] = field(default_factory=dict)

    @classmethod
    def default(
        cls,
        base_timeout: Optional[float] = None,
        max_attempts: int = 4,
        ping_timeout: float = 0.25,
    ) -> "RpcPolicy":
        """The stock policy: mixing RPCs (a node re-encrypting and
        shuffling a whole batch, possibly on a 2048-bit group) get 4x
        the base deadline; liveness probes get a tight one — a PING
        that needs 30 s is indistinguishable from a dead peer."""
        base = base_timeout if base_timeout is not None else 30.0
        return cls(
            base_timeout=base,
            max_attempts=max_attempts,
            kind_timeouts={
                Kind.MIX: base * 4,
                Kind.MIX_COLLECT: base * 4,
                Kind.PING: ping_timeout,
                Kind.PONG: ping_timeout,
            },
        )

    def timeout_for(self, kind: Kind) -> float:
        return self.kind_timeouts.get(kind, self.base_timeout)

    def attempts_for(self, kind: Kind) -> int:
        # Heartbeats measure liveness; retrying one inside the rpc
        # layer would hide exactly the misses the SuspicionTracker
        # exists to count.
        if kind in (Kind.PING, Kind.PONG):
            return 1
        return self.max_attempts

    def backoff(self, attempt: int, rng: DeterministicRng) -> float:
        """Sleep before retry ``attempt`` (1-based): exponential with
        deterministic jitter so co-retrying callers decorrelate without
        breaking run-to-run reproducibility."""
        u = int.from_bytes(rng.randbytes(4), "big") / 2**32
        return min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * 2**attempt) * (0.5 + u)


class ResilientTransport(Transport):
    """Transport decorator enforcing an :class:`RpcPolicy`.

    Outgoing envelopes with ``req_id == 0`` are stamped with a unique
    id ``(session_nonce << 32) | counter`` — the random nonce keeps ids
    from colliding across process restarts, so replies journaled by a
    pre-crash session never alias a fresh session's requests.
    """

    def __init__(self, inner: Transport, policy: RpcPolicy, seed: bytes):
        self.inner = inner
        self.policy = policy
        self.name = "rpc+" + inner.name
        self._rng = DeterministicRng(seed)
        self._nonce = int.from_bytes(secrets.token_bytes(4), "big")
        self._counter = 0
        self.retries = 0  # observability: total re-sends this session

    def _next_req_id(self) -> int:
        self._counter += 1
        return (self._nonce << 32) | (self._counter & 0xFFFFFFFF)

    # -- Transport interface (registry delegates straight down) --------

    def register(self, round_id: int, node_id: int, node) -> None:
        self.inner.register(round_id, node_id, node)

    def unregister_round(self, round_id: int) -> None:
        self.inner.unregister_round(round_id)

    def close(self) -> None:
        self.inner.close()

    def request(self, env: Envelope, timeout=None) -> List[Envelope]:
        if env.req_id == 0:
            env.req_id = self._next_req_id()
        deadline = timeout if timeout is not None else (
            self.policy.timeout_for(env.kind)
        )
        attempts = self.policy.attempts_for(env.kind)
        last_error = None
        for attempt in range(1, attempts + 1):
            try:
                return self.inner.request(env, timeout=deadline)
            except RetryableTransportError as exc:
                last_error = exc
                if attempt < attempts:
                    self.retries += 1
                    time.sleep(self.policy.backoff(attempt, self._rng))
        raise RpcExhausted(env.dest, env.kind, attempts, last_error)


class DedupCache:
    """Bounded LRU of ``req_id -> cached replies`` (node side).

    ``get`` returns ``None`` on a miss — never a cached value — and
    callers must test ``is not None``: a legitimately cached reply list
    can be empty (MIX_BATCH and COMMIT_LAYER reply with ``[]``).
    Failed handlers are *not* cached; a retry re-executes them.
    """

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self._entries: "OrderedDict[int, List[Envelope]]" = OrderedDict()
        self.hits = 0  # observability: replays served from cache

    def get(self, req_id: int) -> Optional[List[Envelope]]:
        if req_id == 0:  # unstamped traffic opts out of dedup
            return None
        replies = self._entries.get(req_id)
        if replies is None:
            return None
        self._entries.move_to_end(req_id)
        self.hits += 1
        return replies

    def put(self, req_id: int, replies: List[Envelope]) -> None:
        if req_id == 0:
            return
        self._entries[req_id] = replies
        self._entries.move_to_end(req_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class SuspicionTracker:
    """Per-group consecutive-miss counter behind the heartbeat probes.

    Phi-accrual-lite: a missed PONG increments the group's suspicion, a
    received one clears it, and ``miss_threshold`` consecutive misses
    (each separated by the coordinator's grace sleep) declare the
    endpoint dead.  One slow probe therefore never kills a group — only
    sustained silence does.
    """

    def __init__(self, miss_threshold: int = 3):
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.miss_threshold = miss_threshold
        self._misses: Dict[int, int] = {}
        self.declared: List[int] = []

    def record_miss(self, gid: int) -> int:
        self._misses[gid] = self._misses.get(gid, 0) + 1
        return self._misses[gid]

    def record_pong(self, gid: int) -> None:
        self._misses.pop(gid, None)

    def suspected(self, gid: int) -> bool:
        return self._misses.get(gid, 0) >= self.miss_threshold

    def declare(self, gid: int) -> None:
        """The group is dead as far as this detector is concerned; the
        caller surfaces it as ``GroupStalled`` and recovery takes over."""
        self.declared.append(gid)
        self._misses.pop(gid, None)
