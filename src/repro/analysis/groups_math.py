"""Group-size mathematics (paper §4.1 and Appendix B).

Anytrust groups need at least one honest member; many-trust groups need
at least ``h`` honest members so that ``h - 1`` failures still leave an
honest participant among any ``k - (h - 1)`` members.

With adversarial fraction ``f`` and ``G`` groups:

    Pr[a group of k has fewer than h honest] = sum_{i<h} C(k,i) (1-f)^i f^(k-i)
    Pr[any of G groups bad]                 <= G * (the above)

The paper's worked examples, which these functions must reproduce:

- f = 0.2, G = 1024, h = 1  ->  k = 32   (since G * f^k < 2^-64)
- f = 0.2, G = 1024, h = 2  ->  k = 33
"""

from __future__ import annotations

import math
from typing import List


def anytrust_failure_probability(k: int, f: float, num_groups: int = 1) -> float:
    """Probability that any of ``num_groups`` groups of size ``k`` is
    all-malicious (union bound), paper §4.1."""
    if not 0 <= f < 1:
        raise ValueError("adversarial fraction must be in [0, 1)")
    if k < 1:
        raise ValueError("group size must be positive")
    return min(1.0, num_groups * f ** k)


def manytrust_failure_probability(
    k: int, f: float, h: int, num_groups: int = 1
) -> float:
    """Probability that any group has fewer than ``h`` honest members
    (union bound), paper Appendix B."""
    if h < 1:
        raise ValueError("h must be >= 1")
    if k < h:
        return 1.0
    single = sum(
        math.comb(k, i) * (1 - f) ** i * f ** (k - i) for i in range(h)
    )
    return min(1.0, num_groups * single)


def minimum_group_size(
    f: float,
    num_groups: int,
    h: int = 1,
    security_exponent: int = 64,
    max_k: int = 4096,
) -> int:
    """Smallest ``k`` with failure probability below ``2^-security_exponent``.

    ``h = 1`` gives the anytrust sizes of §4.1; larger ``h`` gives the
    many-trust sizes of Appendix B (Figure 13).
    """
    target = 2.0 ** (-security_exponent)
    for k in range(h, max_k + 1):
        if manytrust_failure_probability(k, f, h, num_groups) < target:
            return k
    raise ValueError(
        f"no group size up to {max_k} meets 2^-{security_exponent} "
        f"for f={f}, G={num_groups}, h={h}"
    )


def group_size_curve(
    f: float, num_groups: int, h_values: List[int], security_exponent: int = 64
) -> List[int]:
    """Figure 13: required ``k`` as a function of ``h``."""
    return [
        minimum_group_size(f, num_groups, h, security_exponent) for h in h_values
    ]


def expected_dummy_messages(mu: float, group_size: int) -> float:
    """Expected dummies for the dialing application (§6.2).

    Each server of an anytrust group contributes Poisson-ish noise with
    mean ``mu``; the paper quotes 32 * mu = 410k dummies network-wide
    for mu = 13,000 and 32 active servers.
    """
    return mu * group_size
