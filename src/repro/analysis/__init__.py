"""Analytical companions to the protocol.

- :mod:`repro.analysis.groups_math` — anytrust / many-trust group-size
  bounds (§4.1, Appendix B, Figure 13).
- :mod:`repro.analysis.anonymity` — permutation-uniformity metrics used
  to validate the mixing topologies empirically.
- :mod:`repro.analysis.costs` — deployment cost estimates (§7).
"""

from repro.analysis.groups_math import (
    anytrust_failure_probability,
    manytrust_failure_probability,
    minimum_group_size,
)

__all__ = [
    "anytrust_failure_probability",
    "manytrust_failure_probability",
    "minimum_group_size",
]
