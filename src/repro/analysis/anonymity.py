"""Anonymity metrics: how close is the network's output permutation to
uniform? (validates the §3 random-permutation-network claim).

For small message counts we can estimate the distribution of output
positions per input message over many protocol runs and test uniformity
with a chi-squared statistic; we also compute the anonymity-set size
under trap-variant tampering (§4.4: each successful tampering removes
one honest message from the set).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple


def position_histogram(permutations: Sequence[Sequence[int]]) -> List[Counter]:
    """``hist[i][p]`` counts how often input i landed at output p."""
    if not permutations:
        return []
    n = len(permutations[0])
    hist = [Counter() for _ in range(n)]
    for perm in permutations:
        if len(perm) != n:
            raise ValueError("inconsistent permutation sizes")
        for inp, out in enumerate(perm):
            hist[inp][out] += 1
    return hist


def chi_squared_uniformity(permutations: Sequence[Sequence[int]]) -> Tuple[float, int]:
    """Chi-squared statistic of output positions against uniform.

    Returns (statistic, degrees of freedom); a statistic near the dof
    indicates uniformity.  Tests compare against a generous threshold
    rather than an exact p-value (scipy is available for finer work).
    """
    hist = position_histogram(permutations)
    n = len(hist)
    trials = len(permutations)
    expected = trials / n
    stat = 0.0
    for counter in hist:
        for position in range(n):
            observed = counter.get(position, 0)
            stat += (observed - expected) ** 2 / expected
    dof = n * (n - 1)
    return stat, dof


def shannon_anonymity_bits(anonymity_set_size: int) -> float:
    """Entropy of a uniform anonymity set."""
    if anonymity_set_size < 1:
        raise ValueError("anonymity set must be non-empty")
    return math.log2(anonymity_set_size)


def tampering_anonymity_loss(
    num_honest: int, kappa: int
) -> Tuple[int, float, float]:
    """§4.4's trade-off: removing ``kappa`` messages succeeds with
    probability 2^-kappa and shrinks the set by ``kappa``.

    Returns (remaining set size, success probability, remaining bits).
    """
    if kappa < 0 or kappa > num_honest:
        raise ValueError("0 <= kappa <= num_honest required")
    remaining = num_honest - kappa
    probability = 2.0 ** (-kappa)
    bits = shannon_anonymity_bits(max(1, remaining))
    return remaining, probability, bits
