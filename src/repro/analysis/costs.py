"""Deployment cost estimates (paper §7).

The paper works out what volunteering a server costs on AWS as of
September 2017: compute is a fixed hourly rate; bandwidth is bounded by
rate-matching the server's crypto throughput (a four-core trap-variant
server reencrypts ~2,700 msg/s and shuffles ~9,200 msg/s at 32 bytes,
i.e. ~90 KB/s and ~300 KB/s of traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.costmodel import PrimitiveCosts

#: §7's quoted AWS prices (September 2017).
COMPUTE_USD_PER_MONTH = {4: 146.0, 36: 1165.0}
#: AWS egress pricing used for the §7 upper bound (~$0.09/GB blended
#: down to the paper's $7.20/month at 300 KB/s).
USD_PER_GB = 7.20 / (300e3 * 86400 * 30 / 1e9)


@dataclass(frozen=True)
class ServerCostEstimate:
    cores: int
    reencrypt_msgs_per_s: float
    shuffle_msgs_per_s: float
    bandwidth_bytes_per_s: float
    compute_usd_month: float
    bandwidth_usd_month: float

    @property
    def total_usd_month(self) -> float:
        return self.compute_usd_month + self.bandwidth_usd_month


def estimate_server_cost(
    cores: int,
    costs: PrimitiveCosts = None,
    message_bytes: int = 32,
) -> ServerCostEstimate:
    """Reproduce §7's estimate for a ``cores``-core trap-variant server."""
    costs = costs or PrimitiveCosts.paper_table3()
    scale = cores / 4  # §7 scales the 4-core figures linearly
    reenc_rate = (1.0 / costs.reenc) * scale
    shuffle_rate = (1.0 / costs.shuffle_per_msg) * scale
    bandwidth = shuffle_rate * message_bytes  # rate-matching upper bound
    gb_per_month = bandwidth * 86400 * 30 / 1e9
    compute = COMPUTE_USD_PER_MONTH.get(cores)
    if compute is None:
        compute = COMPUTE_USD_PER_MONTH[4] * cores / 4
    return ServerCostEstimate(
        cores=cores,
        reencrypt_msgs_per_s=reenc_rate,
        shuffle_msgs_per_s=shuffle_rate,
        bandwidth_bytes_per_s=bandwidth,
        compute_usd_month=compute,
        bandwidth_usd_month=gb_per_month * USD_PER_GB,
    )
