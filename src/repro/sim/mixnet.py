"""Single-group mixing-iteration model (paper §6.1, Figures 5–7, Table 4).

One mixing iteration of a ``k``-server group over ``n`` ciphertexts is
a sequential chain (Algorithm 1): each server shuffles the full set,
then each server re-encrypts every batch.  Wall time is therefore

    sum over servers of (per-server compute / effective cores)
    + (k - 1) intra-group network hops + batch transfer times.

The per-server compute depends on the variant:

- **trap**: shuffle + ReEnc per ciphertext (and the trap variant routes
  2x ciphertexts for a given user count — accounted by the caller).
- **nizk**: adds ShufProof proving, peer verification of the previous
  server's ShufProof (on the critical path: a server cannot mix inputs
  it has not verified), ReEncProof proving and verification.

Table 4's group-setup latency is the DVSS cost, quadratic in ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.costmodel import PrimitiveCosts
from repro.sim.machines import MachineSpec
from repro.sim.network import NetworkModel


@dataclass
class GroupMixModel:
    """Latency model of one group for one mixing iteration."""

    costs: PrimitiveCosts
    network: NetworkModel
    machines: Sequence[MachineSpec]
    variant: str = "trap"
    #: group elements per message (1 for 32-byte messages)
    elements_per_message: int = 1
    #: bytes per ciphertext element on the wire (R, c, Y triple)
    element_bytes: int = 3 * 33

    @property
    def k(self) -> int:
        return len(self.machines)

    def per_server_compute(self, num_messages: int) -> float:
        """Single-core seconds of work for one server, one iteration."""
        per_msg = (
            self.costs.nizk_mix_per_message()
            if self.variant == "nizk"
            else self.costs.trap_mix_per_message()
        )
        return num_messages * self.elements_per_message * per_msg

    def server_step_time(self, machine: MachineSpec, num_messages: int) -> float:
        """Wall time of one server's step in the chain."""
        return self.per_server_compute(num_messages) / machine.effective_cores(
            self.variant
        )

    def batch_bytes(self, num_messages: int) -> float:
        return num_messages * self.elements_per_message * self.element_bytes

    def iteration_time(self, num_messages: int) -> float:
        """Wall time of one full mixing iteration (Figures 5 and 6)."""
        total = 0.0
        hop = self.network.intra_cluster_latency_s
        for index, machine in enumerate(self.machines):
            total += self.server_step_time(machine, num_messages)
            total += self.network.transfer_time(self.batch_bytes(num_messages), machine)
            if index < self.k - 1:
                total += hop
        return total

    def iteration_time_with_cores(self, cores: int, num_messages: int) -> float:
        """Homogeneous-cores variant (Figure 7's sweep)."""
        machine = MachineSpec(cores=cores, bandwidth_mbps=self.machines[0].bandwidth_mbps)
        clone = GroupMixModel(
            costs=self.costs,
            network=self.network,
            machines=[machine] * self.k,
            variant=self.variant,
            elements_per_message=self.elements_per_message,
            element_bytes=self.element_bytes,
        )
        return clone.iteration_time(num_messages)


def group_setup_latency(k: int, costs: Optional[PrimitiveCosts] = None) -> float:
    """Anytrust/many-trust group setup (Table 4): DVSS dominates.

    Each of ``k`` members deals ``k`` verifiable shares and verifies
    ``k`` dealings — Θ(k²) pairings, matching the published quadrupling
    per size doubling (7.4 ms at k=4 up to 1.43 s at k=64).
    """
    costs = costs or PrimitiveCosts.paper_table3()
    return costs.dvss_pair * k * k
