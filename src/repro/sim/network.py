"""Network model: latencies, bandwidth, TLS setup (paper §6, Figure 8).

The paper injects 40–160 ms of pairwise latency with `tc`, arranged as
clusters: ~40 ms within a cluster, 80–160 ms across clusters.  Transfer
time adds serialization at the sender's bandwidth.  Every (ordered)
server pair communicating for the first time in a round pays a TLS
connection-setup cost — negligible at 1,024 servers, the source of the
sub-linear scaling at 2^15 servers (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.machines import MachineSpec


@dataclass(frozen=True)
class NetworkModel:
    """Deterministic latency/bandwidth model."""

    num_clusters: int = 4
    intra_cluster_latency_s: float = 0.040
    min_inter_latency_s: float = 0.080
    max_inter_latency_s: float = 0.160
    tls_setup_s: float = 5.0e-3

    def cluster_of(self, server_id: int, num_servers: int) -> int:
        per = max(1, num_servers // self.num_clusters)
        return min(self.num_clusters - 1, server_id // per)

    def latency(self, src: int, dst: int, num_servers: int) -> float:
        """One-way latency between two servers."""
        if src == dst:
            return 0.0
        a = self.cluster_of(src, num_servers)
        b = self.cluster_of(dst, num_servers)
        if a == b:
            return self.intra_cluster_latency_s
        # deterministic spread over [min, max] by cluster distance
        span = self.max_inter_latency_s - self.min_inter_latency_s
        distance = abs(a - b) / max(1, self.num_clusters - 1)
        return self.min_inter_latency_s + span * distance

    def mean_latency(self) -> float:
        """Average pairwise latency over the cluster structure."""
        total, count = 0.0, 0
        for a in range(self.num_clusters):
            for b in range(self.num_clusters):
                if a == b:
                    total += self.intra_cluster_latency_s
                else:
                    span = self.max_inter_latency_s - self.min_inter_latency_s
                    distance = abs(a - b) / max(1, self.num_clusters - 1)
                    total += self.min_inter_latency_s + span * distance
                count += 1
        return total / count

    def transfer_time(self, num_bytes: float, sender: MachineSpec) -> float:
        """Serialization time at the sender's bandwidth (latency added
        separately)."""
        return num_bytes / sender.bandwidth_bytes_per_s
