"""Calibrated performance simulator (paper §6).

The paper's evaluation runs on 1,024 EC2 machines with `tc`-injected
latencies; beyond 1,024 servers the *paper itself* switches to a
simulation that replaces crypto operations with the measured costs of
Table 3 (Figure 11).  This package applies that methodology to every
large-scale experiment:

- :mod:`repro.sim.costmodel` — per-primitive CPU costs.  Defaults are
  the paper's Table 3 numbers; :func:`measure_costs` re-calibrates from
  the local pure-Python implementation so that simulated experiments
  can be driven by *our* substrate too.
- :mod:`repro.sim.machines` — heterogeneous fleets (the §6.2 core and
  bandwidth mixes) and an Amdahl parallelism model (Figure 7).
- :mod:`repro.sim.network` — pairwise latencies (40–160 ms clustered
  topology of Figure 8), bandwidth-limited transfer times, and TLS
  connection-setup overhead (the Figure 11 sub-linearity).
- :mod:`repro.sim.mixnet` — single-group iteration model (Figures 5–7,
  Table 4).
- :mod:`repro.sim.events` — a small discrete-event engine.
- :mod:`repro.sim.runner` — end-to-end round simulation over the full
  topology (Figures 9–11, Table 12, bandwidth accounting).
- :mod:`repro.sim.pipeline` — §4.7 pipelined scheduling: the analytic
  throughput model, plus :func:`reconcile_with_engine` checking it
  against the real stream engine's measured intake/mix overlap.
- :mod:`repro.sim.scenario` — :func:`reconcile_with_traffic` replaying
  a scenario's traffic model analytically against the measured
  :class:`~repro.scenarios.metrics.ScenarioMetrics`.
"""

from repro.sim.costmodel import PrimitiveCosts, measure_costs
from repro.sim.pipeline import (
    PipelinedAtomSimulator,
    PipelineResult,
    reconcile_with_engine,
)
from repro.sim.machines import Fleet, MachineSpec, amdahl_speedup
from repro.sim.network import NetworkModel
from repro.sim.mixnet import GroupMixModel, group_setup_latency
from repro.sim.runner import AtomSimulator, SimConfig, SimResult
from repro.sim.scenario import reconcile_with_traffic

__all__ = [
    "PrimitiveCosts",
    "measure_costs",
    "Fleet",
    "MachineSpec",
    "amdahl_speedup",
    "NetworkModel",
    "GroupMixModel",
    "group_setup_latency",
    "AtomSimulator",
    "SimConfig",
    "SimResult",
    "PipelinedAtomSimulator",
    "PipelineResult",
    "reconcile_with_engine",
    "reconcile_with_traffic",
]
