"""Machine specs, fleet mixes, and the parallelism model (paper §6.2).

The paper's fleet: 80% c4.xlarge (4 cores), 10% c4.2xlarge (8), 5%
c4.4xlarge (16), 5% c4.8xlarge (32/36), with a Tor-statistics bandwidth
mix.  Parallel speed-up follows Amdahl's law with a variant-dependent
parallel fraction: the trap variant's mixing is embarrassingly parallel
(Figure 7 shows near-linear speed-up), while the NIZK variant's proof
chain is partly sequential (sub-linear speed-up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Parallelizable work fraction per variant (fit to Figure 7's curves).
PARALLEL_FRACTION = {"trap": 0.995, "nizk": 0.93, "basic": 0.995}


def amdahl_speedup(cores: int, parallel_fraction: float) -> float:
    """Classic Amdahl speed-up over one core."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if not 0 <= parallel_fraction <= 1:
        raise ValueError("parallel fraction must be in [0, 1]")
    return 1.0 / ((1 - parallel_fraction) + parallel_fraction / cores)


@dataclass(frozen=True)
class MachineSpec:
    """One server's hardware."""

    cores: int
    bandwidth_mbps: float

    def effective_cores(self, variant: str) -> float:
        return amdahl_speedup(self.cores, PARALLEL_FRACTION[variant])

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_mbps * 1e6 / 8


#: (fraction, cores, bandwidth Mbps) — §6.2 fleet mix.
PAPER_FLEET_MIX: Tuple[Tuple[float, int, float], ...] = (
    (0.80, 4, 100.0),
    (0.10, 8, 150.0),
    (0.05, 16, 250.0),
    (0.05, 32, 350.0),
)

#: The three 36-core machines used by the Riposte/Vuvuzela baselines.
C4_8XLARGE = MachineSpec(cores=36, bandwidth_mbps=10_000.0)


class Fleet:
    """A population of machines with deterministic mix assignment."""

    def __init__(self, machines: Sequence[MachineSpec]):
        if not machines:
            raise ValueError("fleet must not be empty")
        self.machines = list(machines)

    @classmethod
    def paper_mix(cls, num_servers: int) -> "Fleet":
        """The §6.2 heterogeneous fleet."""
        machines = []
        boundaries = []
        acc = 0.0
        for fraction, cores, bw in PAPER_FLEET_MIX:
            acc += fraction
            boundaries.append((acc, cores, bw))
        for i in range(num_servers):
            u = (i + 0.5) / num_servers
            for bound, cores, bw in boundaries:
                if u <= bound + 1e-9:
                    machines.append(MachineSpec(cores, bw))
                    break
            else:
                _, cores, bw = PAPER_FLEET_MIX[-1][0], PAPER_FLEET_MIX[-1][1], PAPER_FLEET_MIX[-1][2]
                machines.append(MachineSpec(cores, bw))
        return cls(machines)

    @classmethod
    def homogeneous(cls, num_servers: int, cores: int = 4, bandwidth_mbps: float = 100.0) -> "Fleet":
        return cls([MachineSpec(cores, bandwidth_mbps)] * num_servers)

    def __len__(self) -> int:
        return len(self.machines)

    def total_effective_cores(self, variant: str) -> float:
        return sum(m.effective_cores(variant) for m in self.machines)

    def mean_effective_cores(self, variant: str) -> float:
        return self.total_effective_cores(variant) / len(self.machines)

    def percentile_machine(self, fraction: float) -> MachineSpec:
        """The machine at the given population fraction (0 = weakest)."""
        ordered = sorted(self.machines, key=lambda m: (m.cores, m.bandwidth_mbps))
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]
