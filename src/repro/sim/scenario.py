"""Reconcile a measured scenario run against its traffic model.

The scenario engine *measures* a workload (``ScenarioMetrics``); the
traffic model *predicts* one.  :func:`reconcile_with_traffic` replays
the model analytically — fresh state, same seed — and checks that the
engine carried exactly the modeled load: per-round arrivals equal the
model's clamped rate, churn equals the model's departures, and the
delivery ledger balances.  The analytic rate curve is also reported so
a diurnal or bursty scenario can be plotted model-vs-measured.

Duck-typed like :func:`repro.sim.pipeline.reconcile_with_engine`: only
the metrics' per-round fields are read.
"""

from __future__ import annotations

from typing import Dict, List


def reconcile_with_traffic(metrics, traffic) -> Dict[str, object]:
    """Replay ``traffic`` (a :class:`~repro.scenarios.traffic.TrafficModel`
    spec donor — its ``describe()`` is re-parsed so the caller's state
    is untouched) under ``metrics.seed`` and compare round by round.

    Returns ``{"rounds": [...], "matched": bool, "mean_abs_error": ...,
    "delivery_rate": ...}`` where each round row carries the model's
    analytic rate, its exact modeled arrivals, and the measured ones.
    """
    from repro.scenarios.traffic import parse_traffic

    model = parse_traffic(traffic.describe())
    model.bind(metrics.seed.encode())
    rows: List[Dict[str, object]] = []
    matched = True
    abs_error = 0.0
    for measured in metrics.rounds:
        r = measured.round_id
        batch = model.batch(r)
        row = {
            "round_id": r,
            "analytic_rate": model.expected_rate(r),
            "modeled_arrivals": batch.offered,
            "measured_arrivals": measured.arrivals,
            "modeled_departed": len(batch.departed),
            "measured_departed": len(measured.departed),
            "modeled_active": batch.active,
            "measured_active": measured.active,
            "match": (
                batch.offered == measured.arrivals
                and batch.departed == measured.departed
                and batch.rejoined == measured.rejoined
                and batch.active == measured.active
            ),
        }
        matched = matched and row["match"]
        abs_error += abs(model.expected_rate(r) - measured.arrivals)
        rows.append(row)
    total_arrivals = sum(m.arrivals for m in metrics.rounds)
    total_delivered = sum(m.delivered for m in metrics.rounds)
    return {
        "rounds": rows,
        # the engine ran exactly the modeled workload (arrivals, churn,
        # and reabsorption all byte-equal to an analytic replay)
        "matched": matched,
        # |analytic rate - measured arrivals| averaged over rounds:
        # rounding + population clamping, not drift, when matched
        "mean_abs_error": abs_error / max(1, len(rows)),
        "delivery_rate": (
            total_delivered / total_arrivals if total_arrivals else 1.0
        ),
    }
