"""Per-primitive CPU cost model (paper Table 3).

``PrimitiveCosts.paper_table3()`` returns the published numbers
(seconds per operation on one c4.xlarge core, 32-byte messages, with
per-message shuffle/proof costs derived from the 1,024-message batch
timings).  ``measure_costs()`` times the local pure-Python substrate so
every simulated experiment can also be run with *our* constants; both
are reported side by side in EXPERIMENTS.md.

Costs scale linearly with the number of group elements per message
("the latency increases linearly with the message size, as we use more
points to embed larger messages" — §6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PrimitiveCosts:
    """Seconds per operation per group element (one core)."""

    enc: float
    reenc: float
    shuffle_per_msg: float
    encproof_prove: float
    encproof_verify: float
    reencproof_prove: float
    reencproof_verify: float
    shufproof_prove_per_msg: float
    shufproof_verify_per_msg: float
    #: DVSS pairwise cost: setup time ~ c * k^2 (Table 4 shape)
    dvss_pair: float = 3.5e-4
    #: TLS connection establishment (Figure 11 sub-linearity)
    tls_setup: float = 5.0e-3
    #: trustee connection-queueing coefficient: handling C = G*k report
    #: connections costs trustee_report * C^1.5 seconds — negligible at
    #: 32k connections (G=1024), hours at 1M connections (G=2^15),
    #: reproducing Figure 11's "TLS overhead became non-negligible at
    #: this scale" while keeping Figure 10 linear.
    trustee_report: float = 1.8e-5

    @classmethod
    def paper_table3(cls) -> "PrimitiveCosts":
        """The published Table 3 numbers (P-256, Go, c4.xlarge)."""
        return cls(
            enc=1.40e-4,
            reenc=3.35e-4,
            shuffle_per_msg=1.07e-1 / 1024,
            encproof_prove=1.62e-4,
            encproof_verify=1.39e-4,
            reencproof_prove=6.55e-4,
            reencproof_verify=4.46e-4,
            shufproof_prove_per_msg=7.57e-1 / 1024,
            shufproof_verify_per_msg=1.41e0 / 1024,
        )

    # -- derived per-message figures ------------------------------------

    def trap_mix_per_message(self) -> float:
        """One server's work per ciphertext per iteration, trap variant."""
        return self.shuffle_per_msg + self.reenc

    def nizk_mix_per_message(self) -> float:
        """One server's work per ciphertext per iteration, NIZK variant:
        mixing plus proving its own steps plus verifying a peer's."""
        return (
            self.shuffle_per_msg
            + self.reenc
            + self.shufproof_prove_per_msg
            + self.shufproof_verify_per_msg
            + self.reencproof_prove
            + self.reencproof_verify
        )

    def nizk_over_trap_ratio(self, trap_doubling: bool = True) -> float:
        """The paper's "four times slower" claim (§6.1, Figure 5).

        The trap variant routes 2x the ciphertexts (trap doubling), so
        the per-user-message comparison divides that back out.
        """
        trap = self.trap_mix_per_message() * (2 if trap_doubling else 1)
        return self.nizk_mix_per_message() / trap

    def scaled(self, factor: float) -> "PrimitiveCosts":
        """Uniformly scale CPU costs (e.g. slower/faster hardware)."""
        return replace(
            self,
            enc=self.enc * factor,
            reenc=self.reenc * factor,
            shuffle_per_msg=self.shuffle_per_msg * factor,
            encproof_prove=self.encproof_prove * factor,
            encproof_verify=self.encproof_verify * factor,
            reencproof_prove=self.reencproof_prove * factor,
            reencproof_verify=self.reencproof_verify * factor,
            shufproof_prove_per_msg=self.shufproof_prove_per_msg * factor,
            shufproof_verify_per_msg=self.shufproof_verify_per_msg * factor,
        )


def _time_it(fn, repeat: int) -> float:
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return (time.perf_counter() - start) / repeat


def measure_costs(group_name: str = "P256ISH", batch: int = 64, repeat: int = 3) -> PrimitiveCosts:
    """Calibrate a :class:`PrimitiveCosts` from the local substrate.

    Times the pure-Python primitives on ``batch``-element vectors; the
    shuffle-proof costs use the cut-and-choose argument with 16 rounds
    (our deployment default), amortized per message.
    """
    from repro.crypto.elgamal import AtomElGamal
    from repro.crypto.groups import get_group
    from repro.crypto.nizk import (
        prove_encryption,
        prove_reencryption,
        verify_encryption,
        verify_reencryption,
    )
    from repro.crypto.shuffle_proof import prove_shuffle, verify_shuffle

    group = get_group(group_name)
    scheme = AtomElGamal(group)
    kp = scheme.keygen()
    nxt = scheme.keygen()
    message = group.encode(b"cal")

    enc = _time_it(lambda: scheme.encrypt(kp.public, message), repeat * 8)

    ct, r = scheme.encrypt(kp.public, message)
    reenc = _time_it(lambda: scheme.reencrypt(kp.secret, nxt.public, ct), repeat * 8)

    cts = [scheme.encrypt(kp.public, message)[0] for _ in range(batch)]
    shuffle_total = _time_it(lambda: scheme.shuffle(kp.public, cts), repeat)
    shuffle_per_msg = shuffle_total / batch

    proof = prove_encryption(group, ct, r, kp.public, 0)
    encproof_prove = _time_it(lambda: prove_encryption(group, ct, r, kp.public, 0), repeat * 4)
    encproof_verify = _time_it(
        lambda: verify_encryption(group, ct, proof, kp.public, 0), repeat * 4
    )

    rr = group.random_scalar()
    out = scheme.reencrypt(kp.secret, nxt.public, ct, randomness=rr)
    rp = prove_reencryption(group, kp.secret, rr, nxt.public, ct, out)
    reencproof_prove = _time_it(
        lambda: prove_reencryption(group, kp.secret, rr, nxt.public, ct, out), repeat * 4
    )
    reencproof_verify = _time_it(
        lambda: verify_reencryption(group, kp.public, nxt.public, ct, out, rp), repeat * 4
    )

    shuffled, perm, rands = scheme.shuffle(kp.public, cts)
    rounds = 16
    sp = prove_shuffle(group, kp.public, cts, shuffled, perm, rands, rounds)
    shufproof_prove = _time_it(
        lambda: prove_shuffle(group, kp.public, cts, shuffled, perm, rands, rounds),
        max(1, repeat // 2),
    )
    # batched=False: the simulator's calibration baseline is the
    # paper's element-wise per-member verification cost; the batched
    # fast path is benchmarked separately (BENCH_fastexp.json) and
    # would silently shift every derived table by ~14x here.
    shufproof_verify = _time_it(
        lambda: verify_shuffle(group, kp.public, cts, shuffled, sp, rounds, batched=False),
        max(1, repeat // 2),
    )

    return PrimitiveCosts(
        enc=enc,
        reenc=reenc,
        shuffle_per_msg=shuffle_per_msg,
        encproof_prove=encproof_prove,
        encproof_verify=encproof_verify,
        reencproof_prove=reencproof_prove,
        reencproof_verify=reencproof_verify,
        shufproof_prove_per_msg=shufproof_prove / batch,
        shufproof_verify_per_msg=shufproof_verify / batch,
    )
