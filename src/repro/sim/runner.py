"""End-to-end Atom round simulation (paper §6.2, Figures 9–11, Table 12).

The simulator follows the paper's own Figure 11 methodology — replace
cryptographic work with measured per-primitive costs — extended with
the round structure, fleet heterogeneity, staggering, network latency,
bandwidth, and the connection-setup overheads that cause the sub-linear
scaling beyond 1,024 servers.

Model summary (derivation and calibration in EXPERIMENTS.md):

- G groups of k servers on a width-G square network, T iterations.
- Per iteration, a group is a sequential chain of k steps; each step is
  per-server compute (Amdahl-scaled by cores), batch serialization at
  the sender's bandwidth, and an intra-group network hop.
- With staggered placement (§4.7) the chains of the ~G·k/N groups each
  server serves interleave, so the iteration wall-clock is
  ``max(slowest chain, aggregate-capacity bound)``; without staggering
  the effective capacity drops by ~k (idle-time, the §4.7 motivation).
- The trap variant doubles the ciphertext count; dialing adds the
  differential-privacy dummies (µ per trustee-group server, §6.2).
- Sub-linear terms (Figure 11): per-round trustee connection handling
  (G·k reports into one group) and per-server inter-group connection
  setup (~G²/N).
- ``calibration``: a single multiplicative systems-overhead factor
  (serialization, GC, stragglers, TLS record overhead) fit once so the
  1M-message/1,024-server microblogging point matches the paper's 28
  minutes, then held fixed for every other experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.costmodel import PrimitiveCosts
from repro.sim.machines import Fleet, MachineSpec
from repro.sim.mixnet import GroupMixModel, group_setup_latency
from repro.sim.network import NetworkModel

#: Group-element payload capacity used for sizing (31 bytes/element,
#: matching P-256 point embedding).
ELEMENT_PAYLOAD_BYTES = 31
#: Wire size of one (R, c, Y) ciphertext element.
ELEMENT_WIRE_BYTES = 3 * 33
#: IND-CCA2 envelope overhead for trap-variant inner ciphertexts.
CCA2_OVERHEAD_BYTES = 48
#: Calibration factor: systems overhead over the analytic model, fit to
#: the paper's 1M-message / 1,024-server / 28-minute point (§6.2).
DEFAULT_CALIBRATION = 3.156


@dataclass
class SimConfig:
    """Configuration of one simulated deployment."""

    num_servers: int = 1024
    num_groups: int = 1024
    group_size: int = 32
    iterations: int = 10
    variant: str = "trap"
    message_size: int = 160  # bytes (microblogging: 160, dialing: 80)
    application: str = "microblog"  # or "dialing"
    dialing_dummies: int = 13_000 * 32  # µ = 13k per server, 32 servers (§6.2)
    staggered: bool = True
    calibration: float = DEFAULT_CALIBRATION
    costs: PrimitiveCosts = field(default_factory=PrimitiveCosts.paper_table3)
    network: NetworkModel = field(default_factory=NetworkModel)
    fleet: Optional[Fleet] = None

    def resolved_fleet(self) -> Fleet:
        return self.fleet if self.fleet is not None else Fleet.paper_mix(self.num_servers)

    def elements_per_message(self) -> int:
        """Group elements per mixed ciphertext."""
        payload = self.message_size
        if self.variant == "trap":
            payload += CCA2_OVERHEAD_BYTES  # inner-ciphertext envelope
        return max(1, math.ceil(payload / ELEMENT_PAYLOAD_BYTES))


@dataclass
class SimResult:
    """Timing breakdown of one simulated round."""

    total_s: float
    per_iteration_s: float
    entry_s: float
    exit_s: float
    overhead_s: float
    setup_s: float
    ciphertexts_routed: int
    per_server_bandwidth_bytes_s: float

    @property
    def total_minutes(self) -> float:
        return self.total_s / 60

    @property
    def total_hours(self) -> float:
        return self.total_s / 3600


class AtomSimulator:
    """Simulate the latency of one Atom round."""

    def __init__(self, config: SimConfig):
        self.config = config
        self.fleet = config.resolved_fleet()

    # -- workload ---------------------------------------------------------

    def total_ciphertexts(self, num_messages: int) -> int:
        """Mixnet load: trap doubling plus dialing dummies."""
        cfg = self.config
        total = num_messages
        if cfg.application == "dialing":
            total += cfg.dialing_dummies
        if cfg.variant == "trap":
            total *= 2
        return total

    def load_per_group(self, num_messages: int) -> float:
        return self.total_ciphertexts(num_messages) / self.config.num_groups

    # -- building blocks -----------------------------------------------------

    def _chain_time(self, load: float) -> float:
        """Wall time of one group's mixing chain for one iteration,
        assuming its servers are free when their step arrives
        (perfect staggering)."""
        cfg = self.config
        elements = cfg.elements_per_message()
        per_msg = (
            cfg.costs.nizk_mix_per_message()
            if cfg.variant == "nizk"
            else cfg.costs.trap_mix_per_message()
        )
        compute_per_server = load * elements * per_msg
        batch_bytes = load * elements * ELEMENT_WIRE_BYTES

        # A chain samples the fleet mix: weight step times by population.
        total = 0.0
        hop = self.config.network.mean_latency()
        for machine in self._representative_chain():
            total += compute_per_server / machine.effective_cores(cfg.variant)
            total += cfg.network.transfer_time(batch_bytes, machine)
            total += hop
        return total - hop  # k-1 hops, not k

    def _representative_chain(self) -> List[MachineSpec]:
        """k machines sampled deterministically from the fleet mix."""
        k = self.config.group_size
        n = len(self.fleet)
        return [self.fleet.machines[(i * max(1, n // k) + i) % n] for i in range(k)]

    def _capacity_bound(self, load: float) -> float:
        """Aggregate-compute lower bound on the iteration wall time."""
        cfg = self.config
        elements = cfg.elements_per_message()
        per_msg = (
            cfg.costs.nizk_mix_per_message()
            if cfg.variant == "nizk"
            else cfg.costs.trap_mix_per_message()
        )
        work = cfg.num_groups * cfg.group_size * load * elements * per_msg
        capacity = self.fleet.total_effective_cores(cfg.variant)
        if not cfg.staggered:
            # Naive placement: only ~1/k of the fleet active at a time.
            capacity /= cfg.group_size
        return work / capacity

    def iteration_time(self, num_messages: int) -> float:
        load = self.load_per_group(num_messages)
        return max(self._chain_time(load), self._capacity_bound(load))

    # -- entry / exit / overheads ----------------------------------------------

    def entry_time(self, num_messages: int) -> float:
        """EncProof verification of submissions at entry groups."""
        cfg = self.config
        load = self.load_per_group(num_messages)
        elements = cfg.elements_per_message()
        machine = self.fleet.percentile_machine(0.4)  # a typical 4-core box
        return (
            load
            * elements
            * cfg.costs.encproof_verify
            / machine.effective_cores(cfg.variant)
        )

    def exit_time(self, num_messages: int) -> float:
        """Trap checks, key release, inner-ciphertext decryption; or
        plain parsing for the basic/NIZK variants."""
        cfg = self.config
        if cfg.variant != "trap":
            return 0.0
        load = self.load_per_group(num_messages) / 2  # inner ciphertexts only
        machine = self.fleet.percentile_machine(0.4)
        decrypt = load * cfg.costs.enc  # KEM decap ~ one exponentiation
        return decrypt / machine.effective_cores(cfg.variant) + cfg.network.mean_latency() * 4

    def overhead_time(self) -> float:
        """Connection-scaling terms (Figure 11 sub-linearity)."""
        cfg = self.config
        connections = cfg.num_groups * cfg.group_size
        trustee = (
            cfg.costs.trustee_report * connections ** 1.5
            if cfg.variant == "trap"
            else 0.0
        )
        # Per-server inter-group connections: width-G square networking
        # gives each server ~G^2/N sessions, amortized over the round.
        conns_per_server = cfg.num_groups * cfg.num_groups / max(1, cfg.num_servers)
        conn_setup = cfg.costs.tls_setup * conns_per_server / 1000.0
        return trustee + conn_setup

    def setup_time(self) -> float:
        """Per-round group formation (DVSS), done in the background in
        steady state (§4.1) — reported separately, not added to the
        round latency."""
        return group_setup_latency(self.config.group_size, self.config.costs)

    # -- top level -------------------------------------------------------------

    def simulate_round(self, num_messages: int) -> SimResult:
        cfg = self.config
        per_iter = self.iteration_time(num_messages)
        entry = self.entry_time(num_messages)
        exit_ = self.exit_time(num_messages)
        overhead = self.overhead_time()
        mixing = per_iter * cfg.iterations
        total = (entry + mixing + exit_) * cfg.calibration + overhead

        elements = cfg.elements_per_message()
        bytes_per_server = (
            self.total_ciphertexts(num_messages)
            * elements
            * ELEMENT_WIRE_BYTES
            * cfg.group_size  # every member of the chain forwards the batch
            * cfg.iterations
            / max(1, cfg.num_servers)
        )
        return SimResult(
            total_s=total,
            per_iteration_s=per_iter * cfg.calibration,
            entry_s=entry * cfg.calibration,
            exit_s=exit_ * cfg.calibration,
            overhead_s=overhead,
            setup_s=self.setup_time(),
            ciphertexts_routed=self.total_ciphertexts(num_messages),
            per_server_bandwidth_bytes_s=bytes_per_server / max(total, 1e-9),
        )

    def latency_minutes(self, num_messages: int) -> float:
        return self.simulate_round(num_messages).total_minutes
