"""A minimal discrete-event engine for the round simulator.

The Atom round is a DAG of (layer, group) tasks: a group's mixing task
at layer ``t`` starts when the batches from all its predecessor groups
have arrived.  The engine is a classic time-ordered event queue;
:class:`TaskGraph` layers task-dependency tracking on top of it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple


class EventQueue:
    """Time-ordered callback queue."""

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def run(self) -> float:
        """Drain the queue; returns the final clock value."""
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback()
        return self.now


@dataclass
class _TaskState:
    pending_inputs: int
    ready_time: float = 0.0
    duration: float = 0.0
    finish: Optional[float] = None


class TaskGraph:
    """Dependency-driven task scheduling over an :class:`EventQueue`.

    Each task fires once all its declared inputs have arrived; its
    finish time is ``max(arrival times) + duration``.  Edges carry
    per-edge delays (network transfer + latency).
    """

    def __init__(self):
        self.queue = EventQueue()
        self._tasks: Dict[Hashable, _TaskState] = {}
        self._edges: Dict[Hashable, List[Tuple[Hashable, float]]] = {}
        self.finish_times: Dict[Hashable, float] = {}

    def add_task(self, key: Hashable, duration: float, num_inputs: int) -> None:
        if key in self._tasks:
            raise ValueError(f"duplicate task {key!r}")
        self._tasks[key] = _TaskState(pending_inputs=num_inputs, duration=duration)

    def add_edge(self, src: Hashable, dst: Hashable, delay: float) -> None:
        self._edges.setdefault(src, []).append((dst, delay))

    def start(self, key: Hashable, time: float = 0.0) -> None:
        """Mark a source task (no inputs) ready at ``time``."""
        state = self._tasks[key]
        state.ready_time = max(state.ready_time, time)
        if state.pending_inputs == 0:
            self.queue.schedule(time, lambda: self._finish(key))

    def _deliver(self, key: Hashable, time: float) -> None:
        state = self._tasks[key]
        state.ready_time = max(state.ready_time, time)
        state.pending_inputs -= 1
        if state.pending_inputs == 0:
            self.queue.schedule(state.ready_time, lambda: self._finish(key))

    def _finish(self, key: Hashable) -> None:
        state = self._tasks[key]
        finish = self.queue.now + state.duration
        state.finish = finish
        self.finish_times[key] = finish
        for dst, delay in self._edges.get(key, []):
            self._deliver(dst, finish + delay)

    def run(self) -> Dict[Hashable, float]:
        self.queue.run()
        return self.finish_times
