"""Pipelined Atom scheduling (paper §4.7, "Pipelining").

When throughput matters more than latency, different server sets are
assigned to different *layers* of the network, and the network is
pipelined layer by layer: round ``r+1``'s batch enters layer 0 while
round ``r``'s is in layer 1, so the system outputs one round's worth of
messages every *one group's* latency instead of every ``T`` groups'.

The paper does not evaluate this mode ("we do not explore this
trade-off in this paper, as latency is more important for the
applications we consider"); we implement the model as the natural
extension and expose it as an ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.runner import AtomSimulator, SimConfig


@dataclass(frozen=True)
class PipelineResult:
    """Steady-state behaviour of a pipelined deployment."""

    round_latency_s: float       # time for one batch to cross all T layers
    output_period_s: float       # steady-state time between output batches
    throughput_msgs_per_s: float
    stages: int


class PipelinedAtomSimulator:
    """Throughput-oriented scheduling over the latency simulator.

    With dedicated per-layer server sets, each of the ``T`` layers
    holds ``num_servers / T`` servers, so a single stage is slower than
    in the latency-optimal layout — but stages overlap, so steady-state
    throughput is one batch per stage time rather than per round.
    """

    def __init__(self, config: SimConfig):
        self.config = config

    def simulate(self, num_messages: int) -> PipelineResult:
        cfg = self.config
        stages = cfg.iterations
        per_layer_servers = max(1, cfg.num_servers // stages)
        # Each layer is a width-G network slice with its own servers.
        stage_config = SimConfig(
            num_servers=per_layer_servers,
            num_groups=cfg.num_groups,
            group_size=cfg.group_size,
            iterations=1,
            variant=cfg.variant,
            message_size=cfg.message_size,
            application=cfg.application,
            dialing_dummies=cfg.dialing_dummies,
            staggered=cfg.staggered,
            calibration=cfg.calibration,
            costs=cfg.costs,
            network=cfg.network,
        )
        stage_sim = AtomSimulator(stage_config)
        stage_result = stage_sim.simulate_round(num_messages)
        stage_time = stage_result.total_s

        round_latency = stage_time * stages
        output_period = stage_time
        return PipelineResult(
            round_latency_s=round_latency,
            output_period_s=output_period,
            throughput_msgs_per_s=num_messages / output_period,
            stages=stages,
        )

    def compare_with_latency_mode(self, num_messages: int) -> dict:
        """Side-by-side with the latency-optimized (§6) scheduling."""
        latency_mode = AtomSimulator(self.config).simulate_round(num_messages)
        pipelined = self.simulate(num_messages)
        return {
            "latency_mode_round_s": latency_mode.total_s,
            "latency_mode_throughput": num_messages / latency_mode.total_s,
            "pipelined_round_s": pipelined.round_latency_s,
            "pipelined_throughput": pipelined.throughput_msgs_per_s,
            "throughput_gain": (
                pipelined.throughput_msgs_per_s
                / (num_messages / latency_mode.total_s)
            ),
        }


def reconcile_with_engine(report) -> dict:
    """Reconcile this analytic model against a measured stream.

    ``report`` is a :class:`repro.core.pipeline.StreamReport` from the
    real round-pipeline engine (duck-typed: only its per-round timing
    fields are read).  The engine pipelines *intake* against *mixing* —
    a two-stage pipeline, so the analytic steady-state period is
    ``max(intake, mix)`` with dedicated resources, versus
    ``intake + mix`` fully serial.  On a single core the engine's
    cooperative interleave cannot shrink wall clock below the serial
    sum; what the measurement must show instead is the *overlap*: how
    much of each round's intake rode inside the previous round's mix
    window, which is exactly the work a second core would take off the
    critical path.

    Returns a dict with the model's and the engine's numbers:

    - ``mean_intake_s`` / ``mean_mix_s`` — measured per-stage cost;
    - ``serial_period_s`` — analytic no-pipelining round period;
    - ``analytic_period_s`` / ``analytic_speedup`` — the model's ideal
      two-stage steady state on dedicated resources;
    - ``measured_period_s`` / ``measured_speedup`` — the engine's
      actual steady-state round period;
    - ``mean_overlap_s`` / ``overlap_utilization`` — how much of the
      smaller stage the engine actually moved inside the larger one
      (1.0 = the full analytic overlap was realized in schedule).
    """
    rounds = list(report.rounds)
    if not rounds:
        raise ValueError("cannot reconcile an empty stream report")
    # The first round's intake has no previous mix to hide inside;
    # steady-state figures come from the rest when available.  All
    # means are over the same steady population (the measured period
    # uses each round's own wall footprint — its non-overlapped intake
    # plus its mix window, retries included — rather than wall_s /
    # len(rounds), which would fold in round 0 and bookkeeping the
    # serial model excludes).
    steady = rounds[1:] or rounds
    mean_intake = sum(s.intake_s for s in steady) / len(steady)
    mean_mix = sum(s.pure_mix_s for s in steady) / len(steady)
    mean_overlap = sum(s.overlap_s for s in steady) / len(steady)
    serial_period = mean_intake + mean_mix
    analytic_period = max(mean_intake, mean_mix)
    measured_period = sum(
        s.mix_wall_s + s.intake_s - s.overlap_s for s in steady
    ) / len(steady)
    smaller_stage = min(mean_intake, mean_mix)
    return {
        "mean_intake_s": mean_intake,
        "mean_mix_s": mean_mix,
        "serial_period_s": serial_period,
        "analytic_period_s": analytic_period,
        "analytic_speedup": (
            serial_period / analytic_period if analytic_period > 0 else 1.0
        ),
        "measured_period_s": measured_period,
        "measured_speedup": (
            serial_period / measured_period if measured_period > 0 else 0.0
        ),
        "mean_overlap_s": mean_overlap,
        "overlap_utilization": (
            mean_overlap / smaller_stage if smaller_stage > 0 else 0.0
        ),
    }
