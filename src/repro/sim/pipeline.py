"""Pipelined Atom scheduling (paper §4.7, "Pipelining").

When throughput matters more than latency, different server sets are
assigned to different *layers* of the network, and the network is
pipelined layer by layer: round ``r+1``'s batch enters layer 0 while
round ``r``'s is in layer 1, so the system outputs one round's worth of
messages every *one group's* latency instead of every ``T`` groups'.

The paper does not evaluate this mode ("we do not explore this
trade-off in this paper, as latency is more important for the
applications we consider"); we implement the model as the natural
extension and expose it as an ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.runner import AtomSimulator, SimConfig


@dataclass(frozen=True)
class PipelineResult:
    """Steady-state behaviour of a pipelined deployment."""

    round_latency_s: float       # time for one batch to cross all T layers
    output_period_s: float       # steady-state time between output batches
    throughput_msgs_per_s: float
    stages: int


class PipelinedAtomSimulator:
    """Throughput-oriented scheduling over the latency simulator.

    With dedicated per-layer server sets, each of the ``T`` layers
    holds ``num_servers / T`` servers, so a single stage is slower than
    in the latency-optimal layout — but stages overlap, so steady-state
    throughput is one batch per stage time rather than per round.
    """

    def __init__(self, config: SimConfig):
        self.config = config

    def simulate(self, num_messages: int) -> PipelineResult:
        cfg = self.config
        stages = cfg.iterations
        per_layer_servers = max(1, cfg.num_servers // stages)
        # Each layer is a width-G network slice with its own servers.
        stage_config = SimConfig(
            num_servers=per_layer_servers,
            num_groups=cfg.num_groups,
            group_size=cfg.group_size,
            iterations=1,
            variant=cfg.variant,
            message_size=cfg.message_size,
            application=cfg.application,
            dialing_dummies=cfg.dialing_dummies,
            staggered=cfg.staggered,
            calibration=cfg.calibration,
            costs=cfg.costs,
            network=cfg.network,
        )
        stage_sim = AtomSimulator(stage_config)
        stage_result = stage_sim.simulate_round(num_messages)
        stage_time = stage_result.total_s

        round_latency = stage_time * stages
        output_period = stage_time
        return PipelineResult(
            round_latency_s=round_latency,
            output_period_s=output_period,
            throughput_msgs_per_s=num_messages / output_period,
            stages=stages,
        )

    def compare_with_latency_mode(self, num_messages: int) -> dict:
        """Side-by-side with the latency-optimized (§6) scheduling."""
        latency_mode = AtomSimulator(self.config).simulate_round(num_messages)
        pipelined = self.simulate(num_messages)
        return {
            "latency_mode_round_s": latency_mode.total_s,
            "latency_mode_throughput": num_messages / latency_mode.total_s,
            "pipelined_round_s": pipelined.round_latency_s,
            "pipelined_throughput": pipelined.throughput_msgs_per_s,
            "throughput_gain": (
                pipelined.throughput_msgs_per_s
                / (num_messages / latency_mode.total_s)
            ),
        }
