"""Authenticated symmetric encryption (stand-in for NaCl, paper §5).

The paper uses NaCl's secretbox for the authenticated symmetric layer
of the IND-CCA2 inner-ciphertext scheme.  With no external dependencies
available we build an encrypt-then-MAC AEAD from hashlib primitives:

- keystream: SHA3-256 in counter mode, keyed by ``enc_key || nonce``;
- tag: HMAC-SHA256 over ``nonce || ciphertext`` with an independent key.

Key separation uses domain-tagged SHA3 derivations from the 32-byte
master key.  This offers the properties the protocol relies on:
confidentiality plus ciphertext integrity (attempted tampering is
detected, which is what makes the outer scheme non-malleable).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

TAG_BYTES = 32
NONCE_BYTES = 16
KEY_BYTES = 32


class AuthenticationError(ValueError):
    """Raised when an AEAD tag does not verify (tampered ciphertext)."""


def _derive(master_key: bytes, label: bytes) -> bytes:
    return hashlib.sha3_256(b"repro.aead.v1|" + label + b"|" + master_key).digest()


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + 31) // 32):
        h = hashlib.sha3_256()
        h.update(enc_key)
        h.update(nonce)
        h.update(counter.to_bytes(8, "big"))
        blocks.append(h.digest())
    return b"".join(blocks)[:length]


@dataclass(frozen=True)
class AeadCiphertext:
    """Nonce, body, and authentication tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AeadCiphertext":
        if len(raw) < NONCE_BYTES + TAG_BYTES:
            raise ValueError("AEAD ciphertext too short")
        return cls(
            nonce=raw[:NONCE_BYTES],
            tag=raw[NONCE_BYTES: NONCE_BYTES + TAG_BYTES],
            body=raw[NONCE_BYTES + TAG_BYTES:],
        )

    @property
    def size_bytes(self) -> int:
        return NONCE_BYTES + TAG_BYTES + len(self.body)


def aead_encrypt(key: bytes, plaintext: bytes, nonce: bytes = None) -> AeadCiphertext:
    """Encrypt-then-MAC; ``key`` must be 32 bytes."""
    if len(key) != KEY_BYTES:
        raise ValueError("AEAD key must be 32 bytes")
    if nonce is None:
        nonce = secrets.token_bytes(NONCE_BYTES)
    if len(nonce) != NONCE_BYTES:
        raise ValueError("nonce must be 16 bytes")
    enc_key = _derive(key, b"enc")
    mac_key = _derive(key, b"mac")
    body = bytes(
        p ^ k for p, k in zip(plaintext, _keystream(enc_key, nonce, len(plaintext)))
    )
    tag = hmac.new(mac_key, nonce + body, hashlib.sha256).digest()
    return AeadCiphertext(nonce=nonce, body=body, tag=tag)


def aead_decrypt(key: bytes, ciphertext: AeadCiphertext) -> bytes:
    """Verify the tag (constant-time) and decrypt; raises on tampering."""
    if len(key) != KEY_BYTES:
        raise ValueError("AEAD key must be 32 bytes")
    enc_key = _derive(key, b"enc")
    mac_key = _derive(key, b"mac")
    expected = hmac.new(mac_key, ciphertext.nonce + ciphertext.body, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, ciphertext.tag):
        raise AuthenticationError("AEAD tag mismatch")
    return bytes(
        c ^ k
        for c, k in zip(
            ciphertext.body,
            _keystream(enc_key, ciphertext.nonce, len(ciphertext.body)),
        )
    )
