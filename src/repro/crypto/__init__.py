"""Cryptographic substrate for the Atom reproduction.

This package implements, from scratch, every primitive Atom depends on
(paper §2.3 and Appendix A):

- :mod:`repro.crypto.groups` — the abstract prime-order group interface
  (:class:`~repro.crypto.groups.GroupBackend`), its backend registry, and
  Schnorr groups over safe primes with message encoding into the
  quadratic-residue subgroup.
- :mod:`repro.crypto.ec` — the NIST P-256 elliptic-curve backend (registry
  name ``P256``) the paper's evaluation actually runs on.
- :mod:`repro.crypto.elgamal` — Atom's rerandomizable ElGamal variant with
  the extra ``Y`` component enabling *out-of-order* decrypt-and-reencrypt.
- :mod:`repro.crypto.sigma` — a generalized Schnorr sigma-protocol framework
  (Fiat-Shamir NIZKs for AND-compositions of discrete-log relations).
- :mod:`repro.crypto.nizk` — ``EncProof`` and ``ReEncProof`` built on it.
- :mod:`repro.crypto.shuffle_proof` — a statistically sound cut-and-choose
  verifiable-shuffle NIZK standing in for Neff's shuffle (see DESIGN.md).
- :mod:`repro.crypto.aead` / :mod:`repro.crypto.kem` — authenticated
  symmetric encryption and the IND-CCA2 hybrid KEM for inner ciphertexts.
- :mod:`repro.crypto.secret_sharing` — Shamir, Feldman VSS, and dealer-less
  DVSS used for many-trust group keys.
- :mod:`repro.crypto.threshold` — threshold ElGamal key generation and
  share-based decryption/reencryption.
- :mod:`repro.crypto.commit` — SHA3-based commitments for trap messages.
- :mod:`repro.crypto.beacon` — a deterministic public randomness beacon.
"""

from repro.crypto.groups import (
    Group,
    GroupBackend,
    GroupElement,
    GroupParams,
    available_groups,
    get_group,
    register_backend,
)
from repro.crypto.elgamal import AtomCiphertext, ElGamalKeyPair, AtomElGamal
from repro.crypto.nizk import EncProof, ReEncProof
from repro.crypto.shuffle_proof import ShuffleProof, prove_shuffle, verify_shuffle
from repro.crypto.kem import Cca2Ciphertext, cca2_encrypt, cca2_decrypt
from repro.crypto.commit import commit, verify_commitment
from repro.crypto.beacon import RandomnessBeacon

__all__ = [
    "Group",
    "GroupBackend",
    "GroupElement",
    "GroupParams",
    "available_groups",
    "get_group",
    "register_backend",
    "AtomCiphertext",
    "ElGamalKeyPair",
    "AtomElGamal",
    "EncProof",
    "ReEncProof",
    "ShuffleProof",
    "prove_shuffle",
    "verify_shuffle",
    "Cca2Ciphertext",
    "cca2_encrypt",
    "cca2_decrypt",
    "commit",
    "verify_commitment",
    "RandomnessBeacon",
]
