"""IND-CCA2 hybrid encryption for Atom's inner ciphertexts (App. A).

The trap variant double-envelopes each message: the *inner* layer is an
IND-CCA2-secure hybrid scheme under the trustees' key, so that no mix
server can produce a related ciphertext (mauling is detected by the
AEAD tag).  As in the paper, it is an ElGamal key-encapsulation:

- ``Enc(X, m)``: sample ``r``; ``R = g^r``; shared secret ``k =
  H(X^r)``; body ``AEnc(k, m)``.
- ``Dec(x, (R, body))``: ``k = H(R^x)``; ``ADec(k, body)``.

The KDF hash binds ``R`` so that reusing an encapsulation under a
different ``R`` yields an unrelated key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.crypto.aead import AeadCiphertext, aead_decrypt, aead_encrypt
from repro.crypto.groups import DeterministicRng, GroupBackend as Group, GroupElement


@dataclass(frozen=True)
class Cca2Ciphertext:
    """Encapsulation ``R`` plus the AEAD body."""

    R: GroupElement
    body: AeadCiphertext

    def to_bytes(self) -> bytes:
        return self.R.to_bytes() + self.body.to_bytes()

    @property
    def size_bytes(self) -> int:
        return len(self.R.to_bytes()) + self.body.size_bytes

    def __hash__(self) -> int:
        return hash(self.to_bytes())


def _kdf(group: Group, R: GroupElement, shared: GroupElement) -> bytes:
    h = hashlib.sha3_256()
    h.update(b"repro.kem.v1")
    h.update(group.params.name.encode())
    h.update(R.to_bytes())
    h.update(shared.to_bytes())
    return h.digest()


def cca2_encrypt(
    group: Group,
    public_key: GroupElement,
    message: bytes,
    rng: Optional[DeterministicRng] = None,
) -> Cca2Ciphertext:
    """Hybrid-encrypt ``message`` under ``public_key``."""
    r = group.random_scalar(rng)
    R = group.g ** r
    key = _kdf(group, R, public_key ** r)
    nonce = rng.randbytes(16) if rng is not None else None
    return Cca2Ciphertext(R=R, body=aead_encrypt(key, message, nonce))


def cca2_decrypt(group: Group, secret: int, ciphertext: Cca2Ciphertext) -> bytes:
    """Decrypt; raises :class:`repro.crypto.aead.AuthenticationError`
    if the ciphertext was tampered with."""
    key = _kdf(group, ciphertext.R, ciphertext.R ** secret)
    return aead_decrypt(key, ciphertext.body)
