"""Generalized Schnorr sigma protocols with Fiat-Shamir.

Atom needs several NIZK proofs of knowledge over discrete-log relations
(Appendix A): proof of plaintext knowledge (``EncProof``), proof of
correct decrypt-and-reencrypt (``ReEncProof``, a Chaum-Pedersen
generalization), and the share-consistency proofs inside DVSS.  All of
them are instances of one pattern:

    prove knowledge of a witness vector (w_1, ..., w_k) such that for
    every statement j:   P_j  =  prod_i  B_{j,i} ^ w_i

(an "AND of linear discrete-log relations").  This module implements
that pattern once — commitment, Fiat-Shamir challenge with domain
separation and statement binding, response, verification — and the
concrete NIZKs are thin wrappers.

Non-malleability: the challenge hashes the full statement (all bases,
all targets) plus a caller-supplied context string (e.g. the entry-group
id), so a proof cannot be replayed for a different statement or group,
matching the paper's requirement that "the same proof cannot be used
for two different public keys".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.groups import GroupBackend as Group, GroupElement

# A statement row: (target P_j, bases [B_j1 ... B_jk]).  A base of None
# means the corresponding witness does not appear in this row (exponent
# fixed to 0); we encode that by using the group identity as base.
StatementRow = Tuple[GroupElement, Sequence[GroupElement]]


@dataclass(frozen=True)
class SigmaProof:
    """A Fiat-Shamir transformed sigma-protocol transcript."""

    commitments: Tuple[int, ...]  # t_j values (group element ints)
    challenge: int
    responses: Tuple[int, ...]  # z_i values (scalars)

    @property
    def size_bytes(self) -> int:
        """Approximate wire size (for the simulator's byte accounting)."""
        return 32 * (len(self.commitments) + 1 + len(self.responses))


def _challenge(
    group: Group,
    rows: Sequence[StatementRow],
    commitments: Sequence[GroupElement],
    context: bytes,
) -> int:
    parts: List[bytes] = [b"repro.sigma.v1", context]
    for target, bases in rows:
        parts.append(target.to_bytes())
        for base in bases:
            parts.append(base.to_bytes())
    for t in commitments:
        parts.append(t.to_bytes())
    return group.hash_to_scalar(*parts)


def prove(
    group: Group,
    rows: Sequence[StatementRow],
    witness: Sequence[int],
    context: bytes = b"",
) -> SigmaProof:
    """Prove knowledge of ``witness`` satisfying every statement row.

    Rows must be consistent: each row's base list has one entry per
    witness component.
    """
    num_witness = len(witness)
    for _, bases in rows:
        if len(bases) != num_witness:
            raise ValueError("statement row arity does not match witness length")

    nonces = [group.random_scalar() for _ in range(num_witness)]
    commitments = []
    for _, bases in rows:
        t = group.identity
        for base, nonce in zip(bases, nonces):
            # ``**`` is cache-aware: bases with fixed-base tables (g,
            # promoted keys) use them; per-ciphertext bases like the
            # re-encryption statement's Y must NOT feed the promotion
            # counter — a table built for a base with two uses left is
            # a net slowdown plus LRU churn.
            t = t * (base ** nonce)
        commitments.append(t)

    e = _challenge(group, rows, commitments, context)
    responses = tuple(
        (nonce + e * w) % group.q for nonce, w in zip(nonces, witness)
    )
    return SigmaProof(
        commitments=tuple(t.value for t in commitments),
        challenge=e,
        responses=responses,
    )


def verify(
    group: Group,
    rows: Sequence[StatementRow],
    proof: SigmaProof,
    context: bytes = b"",
) -> bool:
    """Verify a :class:`SigmaProof` against the statement rows."""
    if len(proof.commitments) != len(rows):
        return False
    try:
        commitments = [group.element(t) for t in proof.commitments]
    except ValueError:
        return False
    e = _challenge(group, rows, commitments, context)
    if e != proof.challenge:
        return False
    for (target, bases), t in zip(rows, commitments):
        if len(bases) != len(proof.responses):
            return False
        lhs = group.identity
        for base, z in zip(bases, proof.responses):
            lhs = lhs * (base ** z)  # cache-aware, no promotion
        if lhs != t * (target ** e):
            return False
    return True
