"""Shamir secret sharing, Feldman VSS, and dealer-less DVSS (paper §4.5).

Atom's many-trust groups need a *threshold* group key such that any
``k - (h - 1)`` of the ``k`` members can decrypt, generated without a
trusted dealer.  The paper uses the Stinson–Strobl DVSS [67]; we
implement the standard joint-Feldman construction that underlies it:

1. Every member ``i`` acts as a dealer of a random secret ``a_i0`` via
   Feldman VSS: it samples a degree-``t-1`` polynomial ``f_i``, sends
   ``f_i(j)`` to member ``j``, and broadcasts commitments
   ``g^{a_i0}, ..., g^{a_i,t-1}``.
2. Every member verifies its received shares against the commitments
   and files complaints about bad dealers (who are then excluded).
3. The group secret is ``x = sum_i f_i(0)`` (never materialized); the
   group public key is the product of the constant-term commitments;
   member ``j``'s share is ``s_j = sum_i f_i(j)``.

Any ``t`` members can then reconstruct ``x`` — or, more usefully,
perform *share-based* threshold decryption (see
:mod:`repro.crypto.threshold`) without ever reconstructing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.groups import DeterministicRng, GroupBackend as Group, GroupElement


def _eval_poly(coeffs: Sequence[int], x: int, q: int) -> int:
    """Evaluate a polynomial (coeffs[0] is the constant term) mod q."""
    acc = 0
    for coeff in reversed(coeffs):
        acc = (acc * x + coeff) % q
    return acc


def lagrange_coefficient(q: int, xs: Sequence[int], j: int, at: int = 0) -> int:
    """Lagrange coefficient for interpolation point ``xs[j]`` at ``at``."""
    num, den = 1, 1
    for m, xm in enumerate(xs):
        if m == j:
            continue
        num = num * ((at - xm) % q) % q
        den = den * ((xs[j] - xm) % q) % q
    return num * pow(den, q - 2, q) % q


@dataclass(frozen=True)
class Share:
    """One Shamir share: evaluation point ``index`` and value."""

    index: int  # 1-based evaluation point
    value: int


def shamir_share(
    group: Group,
    secret: int,
    threshold: int,
    num_shares: int,
    rng: Optional[DeterministicRng] = None,
) -> List[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it."""
    if not 1 <= threshold <= num_shares:
        raise ValueError("need 1 <= threshold <= num_shares")
    coeffs = [secret % group.q] + [
        group.random_scalar(rng) for _ in range(threshold - 1)
    ]
    return [Share(i, _eval_poly(coeffs, i, group.q)) for i in range(1, num_shares + 1)]


def shamir_reconstruct(group: Group, shares: Sequence[Share], at: int = 0) -> int:
    """Interpolate the sharing polynomial at ``at`` (default: the secret)."""
    xs = [s.index for s in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share indices")
    acc = 0
    for j, share in enumerate(shares):
        acc = (acc + share.value * lagrange_coefficient(group.q, xs, j, at)) % group.q
    return acc


@dataclass(frozen=True)
class FeldmanDealing:
    """A Feldman VSS dealing: per-member shares plus public commitments."""

    shares: Tuple[Share, ...]
    commitments: Tuple[GroupElement, ...]  # g^{a_0}, ..., g^{a_{t-1}}

    @property
    def public(self) -> GroupElement:
        """The dealt secret's public image ``g^{a_0}``."""
        return self.commitments[0]


def feldman_deal(
    group: Group,
    secret: int,
    threshold: int,
    num_shares: int,
    rng: Optional[DeterministicRng] = None,
) -> FeldmanDealing:
    """Deal ``secret`` with Feldman verifiability."""
    coeffs = [secret % group.q] + [
        group.random_scalar(rng) for _ in range(threshold - 1)
    ]
    shares = tuple(
        Share(i, _eval_poly(coeffs, i, group.q)) for i in range(1, num_shares + 1)
    )
    commitments = tuple(group.g ** c for c in coeffs)
    return FeldmanDealing(shares=shares, commitments=commitments)


def feldman_verify(group: Group, share: Share, commitments: Sequence[GroupElement]) -> bool:
    """Check ``g^{share.value} == prod_t commitments[t]^{index^t}``."""
    lhs = group.g ** share.value
    rhs = group.identity
    power = 1
    for commitment in commitments:
        rhs = rhs * (commitment ** power)
        power = power * share.index % group.q
    return lhs == rhs


@dataclass
class DvssResult:
    """Outcome of a dealer-less DVSS run.

    ``shares[j]`` is member ``j``'s (0-based) share of the group secret;
    its evaluation point is ``j + 1``.  ``qualified`` lists the dealers
    whose dealings were accepted (all members, absent misbehaviour).
    """

    group_public: GroupElement
    shares: List[Share]
    threshold: int
    qualified: List[int]
    share_publics: List[GroupElement] = field(default_factory=list)


class DvssProtocol:
    """Dealer-less distributed verifiable secret sharing (joint Feldman).

    ``run`` simulates the full message exchange among ``k`` members and
    returns every member's view.  ``corrupt_dealers`` can be given bad
    dealings to exercise the complaint path.
    """

    def __init__(self, group: Group, num_members: int, threshold: int):
        if not 1 <= threshold <= num_members:
            raise ValueError("need 1 <= threshold <= num_members")
        self.group = group
        self.k = num_members
        self.t = threshold

    def run(
        self,
        rng: Optional[DeterministicRng] = None,
        corrupt_dealers: Optional[Dict[int, int]] = None,
    ) -> DvssResult:
        """Execute DVSS.  ``corrupt_dealers`` maps a dealer index to a
        member index to whom it sends a corrupted share; such dealers
        are detected and disqualified."""
        corrupt_dealers = corrupt_dealers or {}
        dealings: List[FeldmanDealing] = []
        for dealer in range(self.k):
            secret = self.group.random_scalar(rng)
            dealing = feldman_deal(self.group, secret, self.t, self.k, rng)
            if dealer in corrupt_dealers:
                victim = corrupt_dealers[dealer]
                shares = list(dealing.shares)
                bad = Share(shares[victim].index, (shares[victim].value + 1) % self.group.q)
                shares[victim] = bad
                dealing = FeldmanDealing(tuple(shares), dealing.commitments)
            dealings.append(dealing)

        # Complaint round: every member verifies every received share.
        qualified = []
        for dealer, dealing in enumerate(dealings):
            complaints = [
                member
                for member in range(self.k)
                if not feldman_verify(
                    self.group, dealing.shares[member], dealing.commitments
                )
            ]
            if not complaints:
                qualified.append(dealer)

        if len(qualified) < 1:
            raise RuntimeError("all dealers disqualified")

        group_public = self.group.identity
        for dealer in qualified:
            group_public = group_public * dealings[dealer].public

        shares = []
        for member in range(self.k):
            value = sum(
                dealings[dealer].shares[member].value for dealer in qualified
            ) % self.group.q
            shares.append(Share(member + 1, value))

        # Public per-member share images g^{s_j}, used to verify partial
        # decryptions: product over qualified dealers of the Feldman
        # evaluation at j+1.
        share_publics = []
        for member in range(self.k):
            acc = self.group.identity
            for dealer in qualified:
                power = 1
                for commitment in dealings[dealer].commitments:
                    acc = acc * (commitment ** power)
                    power = power * (member + 1) % self.group.q
            share_publics.append(acc)

        return DvssResult(
            group_public=group_public,
            shares=shares,
            threshold=self.t,
            qualified=qualified,
            share_publics=share_publics,
        )
