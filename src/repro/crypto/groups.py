"""Prime-order cyclic groups for Atom's cryptography.

The protocol layer is written against one abstract group interface,
:class:`GroupBackend`, with two interchangeable implementations behind
the :func:`get_group` registry:

- **Schnorr groups** (:class:`Group`): the subgroup of quadratic
  residues of Z_p^* for a safe prime p = 2q + 1.  The subgroup has
  prime order q, the Decision Diffie-Hellman assumption is standard
  there, and Python's native big-integer ``pow`` makes it fast enough
  to run the full protocol in-process.  Parameter sets: ``TOY``
  (64-bit, unit tests), ``TEST`` (128-bit, integration tests),
  ``P256ISH`` (256-bit), ``MODP2048`` (RFC 3526 group 14, realistic
  cost microbenchmarks).

- **NIST P-256** (``repro.crypto.ec.EcGroup``, registry name
  ``P256``): the elliptic curve the paper's evaluation actually runs
  on, with constant-size 256-bit scalars — roughly an order of
  magnitude faster per exponentiation than MODP2048 in pure Python.

Backends are registered by name via :func:`register_backend`;
``P256`` is registered lazily so importing this module never pays for
the curve arithmetic module unless it is used.

Messages are encoded into the QR subgroup with the classic safe-prime
trick: m in [1, q] maps to m if m is a QR mod p, else to p - m; both
are invertible because exactly one of {m, p - m} is a QR when
p = 3 mod 4.  (The curve backend instead uses Koblitz embedding into
the x-coordinate; see ``repro.crypto.ec``.)
"""

from __future__ import annotations

import hashlib
import importlib
import secrets
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.crypto.fastexp import FixedBaseExp, jacobi, multiexp_ints


class EncodingError(ValueError):
    """Raised when a value cannot be encoded into / decoded from the group."""


@dataclass(frozen=True)
class GroupParams:
    """Parameters of a Schnorr group over a safe prime ``p = 2q + 1``."""

    name: str
    p: int  # safe prime
    g: int  # generator of the order-q QR subgroup

    @property
    def q(self) -> int:
        """Order of the prime-order subgroup."""
        return (self.p - 1) // 2

    @property
    def message_bytes(self) -> int:
        """Safely encodable payload bytes per group element.

        One byte below ``q``'s byte length, minus one length byte used by
        the padding scheme.
        """
        return max(1, (self.q.bit_length() - 1) // 8 - 1)


# Safe primes found deterministically (seeded search, see DESIGN.md).
_TOY_P = 0xA1C71AA2E828476B
_TEST_P = 0xEB93F78CC415E2B0BA5B209EF18B20E7
_P256ISH_P = 0x9F9B41D4CD3CC3DB42914B1DF5F84DA30C82ED1E4728E754FDA103B8924619F3

# RFC 3526, 2048-bit MODP group (group 14); p is a safe prime.
_MODP2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)


def _find_qr_generator(p: int) -> int:
    """Return a generator of the QR subgroup (any QR != 1 works, q prime)."""
    for candidate in (4, 9, 16, 25):
        if candidate % p not in (0, 1):
            return candidate % p
    raise AssertionError("no generator found (p too small)")


_PARAM_SETS = {
    "TOY": GroupParams("TOY", _TOY_P, _find_qr_generator(_TOY_P)),
    "TEST": GroupParams("TEST", _TEST_P, _find_qr_generator(_TEST_P)),
    "P256ISH": GroupParams("P256ISH", _P256ISH_P, _find_qr_generator(_P256ISH_P)),
    "MODP2048": GroupParams("MODP2048", _MODP2048_P, 4),
}


@dataclass(frozen=True)
class GroupElement:
    """An element of a Schnorr :class:`Group`.

    Elements are immutable and hashable; arithmetic uses operator
    overloading (``*``, ``/``, ``**``) matching the multiplicative
    notation of the paper's Appendix A.
    """

    value: int
    group: "Group"

    def __post_init__(self) -> None:
        if not 0 < self.value < self.group.p:
            raise ValueError(f"element {self.value} outside Z_p^*")

    def __mul__(self, other: "GroupElement") -> "GroupElement":
        return GroupElement(self.value * other.value % self.group.p, self.group)

    def __truediv__(self, other: "GroupElement") -> "GroupElement":
        inv = pow(other.value, self.group.p - 2, self.group.p)
        return GroupElement(self.value * inv % self.group.p, self.group)

    def __pow__(self, exponent: int) -> "GroupElement":
        # Hot bases (g, group public keys) have a fixed-base table on
        # the Group; everything else takes the generic pow path.
        table = self.group._table_hit(self.value)
        if table is not None:
            return GroupElement(table.pow(exponent), self.group)
        return GroupElement(
            pow(self.value, exponent % self.group.q, self.group.p), self.group
        )

    def inverse(self) -> "GroupElement":
        return GroupElement(pow(self.value, self.group.p - 2, self.group.p), self.group)

    def is_identity(self) -> bool:
        return self.value == 1

    def to_bytes(self) -> bytes:
        return self.value.to_bytes((self.group.p.bit_length() + 7) // 8, "big")

    def __repr__(self) -> str:
        return f"GroupElement({self.value})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GroupElement)
            and self.value == other.value
            and self.group.params.name == other.group.params.name
        )

    def __hash__(self) -> int:
        return hash((self.value, self.group.params.name))


class GroupBackend:
    """Abstract prime-order group with message encoding.

    Everything above this module — ElGamal, the sigma protocols, the
    shuffle proof, DVSS/threshold decryption, the protocol engine —
    talks to a group exclusively through this interface, so backends
    are interchangeable per deployment (``DeploymentConfig.crypto_group``
    / the CLI's ``--group``).

    A backend must provide, in ``__init__``:

    - ``params`` with at least ``name`` and ``message_bytes``,
    - ``q`` (prime group order), ``g`` (generator element),
      ``identity``,

    and implement the abstract hooks at the bottom of this class:
    ``element`` (deserialize an integer), ``encode`` / ``decode``
    (reversible message embedding), ``is_prime_order`` (subgroup
    membership of an element), ``multiexp`` (Straus chain in the
    backend's native representation), ``element_bytes`` (serialized
    width), plus the two fixed-base-cache hooks ``_build_table`` /
    ``_wrap_raw``.

    Elements expose ``*``, ``/``, ``**``, ``inverse``, ``is_identity``,
    ``to_bytes`` and an integer ``value`` that round-trips through
    ``element`` — the proof transcripts serialize elements as those
    integers.

    This base class supplies the shared machinery: scalar sampling,
    Fiat-Shamir hashing, chunked message encoding, and the fixed-base
    table cache with its LRU/promotion policy.
    """

    #: fixed-base tables kept at most this many per group (a MODP2048
    #: table is ~3.5 MB, so the worst case stays a few hundred MB even
    #: in a long-running deployment churning per-round keys)
    FIXED_CACHE_LIMIT = 64
    #: plain-pow uses of a base before it is promoted to a table
    FIXED_PROMOTE_AFTER = 2

    def __init__(self) -> None:
        #: base value -> fixed-base table (hot bases: g, public keys)
        self._fixed_cache: dict = {}
        #: base value -> times seen by pow_cached (promotion counter)
        self._fixed_counts: dict = {}

    # -- fast exponentiation ------------------------------------------

    def _table_hit(self, value: int):
        """Cache lookup with an LRU touch on hit, so hot bases used
        through ``__pow__``/``pow_cached`` are not evicted in favor of
        dead per-round keys that merely got inserted later."""
        table = self._fixed_cache.get(value)
        if table is not None:
            del self._fixed_cache[value]
            self._fixed_cache[value] = table
        return table

    def fixed_base(self, base):
        """Return (building and caching if needed) the fixed-base comb
        table for ``base`` (an element, or its integer ``value``).
        Call this for bases known to be hot — the generator and
        per-round group public keys."""
        value = base if isinstance(base, int) else base.value
        table = self._table_hit(value)
        if table is None:
            gen_key = self.g.value
            if len(self._fixed_cache) >= self.FIXED_CACHE_LIMIT:
                # Evict least-recently-used, but never the generator:
                # dead per-round keys go first, g stays hot forever.
                for stale in self._fixed_cache:
                    if stale != gen_key:
                        self._fixed_cache.pop(stale)
                        break
            table = self._build_table(value)
            self._fixed_cache[value] = table
        return table

    def g_pow(self, exponent: int):
        """``g^exponent`` via the generator's fixed-base table."""
        gen_key = self.g.value
        if gen_key not in self._fixed_cache:
            self.fixed_base(self.g)
        return self._wrap_raw(self._fixed_cache[gen_key].pow(exponent))

    def pow_cached(self, base, exponent: int):
        """``base^exponent`` that promotes recurring bases to tables.

        A base already backed by a table uses it immediately; otherwise
        a use-counter promotes the base after ``FIXED_PROMOTE_AFTER``
        plain exponentiations, so per-round public keys (and derived
        values like ``pk^-1`` in sigma statements) get fast after their
        first couple of appearances while one-shot bases never pay the
        table-build cost.
        """
        value = base.value
        table = self._table_hit(value)
        if table is not None:
            return self._wrap_raw(table.pow(exponent))
        if base.is_identity():
            return self.identity
        seen = self._fixed_counts.get(value, 0) + 1
        if seen > self.FIXED_PROMOTE_AFTER:
            self._fixed_counts.pop(value, None)
            return self._wrap_raw(self.fixed_base(base).pow(exponent))
        if len(self._fixed_counts) > 8192:  # bound the counter map
            self._fixed_counts.clear()
        self._fixed_counts[value] = seen
        return base ** exponent

    # -- randomness ---------------------------------------------------

    def random_scalar(self, rng: Optional["DeterministicRng"] = None) -> int:
        """Sample a uniform scalar in [1, q-1]."""
        if rng is not None:
            return rng.randint(1, self.q - 1)
        return secrets.randbelow(self.q - 1) + 1

    def random_element(self, rng: Optional["DeterministicRng"] = None):
        """Sample a uniform group element (as g^r)."""
        return self.g_pow(self.random_scalar(rng))

    # -- hashing ------------------------------------------------------

    def hash_to_scalar(self, *parts: bytes) -> int:
        """Hash byte strings to a scalar mod q (Fiat-Shamir challenge)."""
        h = hashlib.sha3_256()
        h.update(self.params.name.encode())
        for part in parts:
            h.update(len(part).to_bytes(8, "big"))
            h.update(part)
        return int.from_bytes(h.digest(), "big") % self.q

    # -- shared message-payload layout --------------------------------

    def _payload_to_int(self, message: bytes) -> int:
        """Fixed-width layout shared by both backends: message, zero
        padding, trailing length byte, as an integer ``m >= 1``.  The
        fixed width makes the int <-> bytes conversion unambiguous even
        when the message has leading zero bytes."""
        capacity = self.params.message_bytes
        if len(message) > capacity:
            raise EncodingError(
                f"message of {len(message)} bytes exceeds capacity {capacity}"
            )
        data = message + b"\x00" * (capacity - len(message)) + bytes([len(message)])
        return int.from_bytes(data, "big") + 1  # ensure m >= 1

    def _int_to_payload(self, m: int) -> bytes:
        """Invert :meth:`_payload_to_int`."""
        m -= 1
        try:
            raw = m.to_bytes(self.params.message_bytes + 1, "big")
        except OverflowError as exc:
            raise EncodingError("element does not carry an encoded message") from exc
        length = raw[-1]
        if length > self.params.message_bytes:
            raise EncodingError(f"invalid length byte {length}")
        return raw[:length]

    # -- chunked message encoding -------------------------------------

    def encode_chunks(self, message: bytes) -> List:
        """Encode an arbitrary-length message as a vector of elements.

        The paper embeds larger messages as multiple curve points
        ("a 64-byte message is two elliptic curve points"); the same
        scheme applies to Schnorr-group elements.
        """
        capacity = self.params.message_bytes
        chunks = [message[i: i + capacity] for i in range(0, len(message), capacity)]
        if not chunks:
            chunks = [b""]
        return [self.encode(chunk) for chunk in chunks]

    def decode_chunks(self, elements: Iterable) -> bytes:
        """Invert :meth:`encode_chunks`."""
        return b"".join(self.decode(el) for el in elements)

    def elements_for_size(self, num_bytes: int) -> int:
        """Number of group elements needed to carry ``num_bytes`` bytes."""
        capacity = self.params.message_bytes
        return max(1, -(-num_bytes // capacity))

    # -- backend hooks -------------------------------------------------

    @property
    def element_bytes(self) -> int:
        """Serialized width of one element (``element.to_bytes()``)."""
        raise NotImplementedError

    def element(self, value: int):
        """Deserialize an integer ``value`` back into an element
        (raises ``ValueError`` on values outside the group)."""
        raise NotImplementedError

    def encode(self, message: bytes):
        """Reversibly embed up to ``params.message_bytes`` bytes."""
        raise NotImplementedError

    def decode(self, element) -> bytes:
        """Invert :meth:`encode`."""
        raise NotImplementedError

    def is_prime_order(self, element) -> bool:
        """Whether ``element`` lies in the prime-order subgroup (the
        batched shuffle verifier rejects order-2 stowaways with this)."""
        raise NotImplementedError

    def multiexp(self, bases, exponents, window: int = 0):
        """``prod_i bases[i]^exponents[i]`` via a Straus chain."""
        raise NotImplementedError

    def _build_table(self, value: int):
        """Build a fixed-base table (with ``.pow(e) -> raw``) for the
        element serialized as ``value``."""
        raise NotImplementedError

    def _wrap_raw(self, raw):
        """Wrap a table/multiexp result in an element."""
        raise NotImplementedError


class Group(GroupBackend):
    """A prime-order Schnorr group with message encoding.

    Exposes the generator ``g``, subgroup order ``q``, scalar sampling,
    hashing to scalars (for Fiat-Shamir), and reversible message
    encoding into the subgroup.
    """

    def __init__(self, params: GroupParams):
        super().__init__()
        self.params = params
        self.p = params.p
        self.q = params.q
        self.g = GroupElement(params.g, self)
        self.identity = GroupElement(1, self)

    def __reduce__(self):
        # Registry groups unpickle back through get_group, restoring
        # singleton identity: worker processes (parallel mixing) keep
        # one warm fixed-base cache across tasks instead of shipping
        # tables in every payload and rebuilding them per task, and
        # results returned to the parent reuse its warm group.
        if _PARAM_SETS.get(self.params.name) == self.params:
            return (get_group, (self.params.name,))
        return (Group, (self.params,))

    # -- fast exponentiation hooks ------------------------------------

    def _build_table(self, value: int) -> FixedBaseExp:
        return FixedBaseExp(self.p, self.q, value)

    def _wrap_raw(self, raw: int) -> GroupElement:
        return GroupElement(raw, self)

    def fixed_base(self, base: Union[GroupElement, int]) -> FixedBaseExp:
        if isinstance(base, int):
            base = base % self.p
        return super().fixed_base(base)

    def multiexp(self, bases, exponents, window: int = 0) -> GroupElement:
        """Straus multi-exponentiation over plain integer residues."""
        values = [getattr(b, "value", b) for b in bases]
        return GroupElement(
            multiexp_ints(self.p, self.q, values, exponents, window), self
        )

    # -- construction -------------------------------------------------

    @property
    def element_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8

    def element(self, value: int) -> GroupElement:
        """Wrap an integer as a group element (must lie in Z_p^*)."""
        return GroupElement(value % self.p, self)

    # -- message encoding ---------------------------------------------

    def encode(self, message: bytes) -> GroupElement:
        """Encode up to ``message_bytes`` bytes as a subgroup element.

        The padded message (``_payload_to_int``) is interpreted as an
        integer m in [1, q] and mapped to the QR subgroup via m -> m or
        p - m.
        """
        m = self._payload_to_int(message)
        if m > self.q:
            raise EncodingError("encoded integer exceeds subgroup order")
        if self._is_qr(m):
            return GroupElement(m, self)
        return GroupElement(self.p - m, self)

    def decode(self, element: GroupElement) -> bytes:
        """Invert :meth:`encode`."""
        m = element.value
        if m > self.q:
            m = self.p - m
        return self._int_to_payload(m)

    # -- internals ----------------------------------------------------

    def is_prime_order(self, element: GroupElement) -> bool:
        """QR-subgroup membership (order q) via the Jacobi symbol."""
        return jacobi(element.value, self.p) == 1

    def _is_qr(self, value: int) -> bool:
        """Quadratic-residue test via the Jacobi symbol.

        For prime ``p`` the Jacobi symbol equals the Legendre symbol,
        so this is equivalent to Euler's criterion (kept below as the
        property-test oracle) at O(log^2) bit cost instead of a full
        modular exponentiation per ``encode``.
        """
        return jacobi(value, self.p) == 1

    def _is_qr_euler(self, value: int) -> bool:
        """Euler's criterion: value^q == 1 mod p iff value is a QR."""
        return pow(value, self.q, self.p) == 1

    def __repr__(self) -> str:
        return f"Group({self.params.name}, |p|={self.p.bit_length()} bits)"


class DeterministicRng:
    """Deterministic randomness expander (SHA3-based) for reproducibility.

    Used wherever the protocol needs *public* or replayable randomness:
    the beacon, simulations, and tests.  Secret keys default to
    ``secrets`` unless a DeterministicRng is passed explicitly.
    """

    def __init__(self, seed: bytes):
        self._seed = seed
        self._counter = 0

    # -- replayable state (the durable store journals these) ----------

    @property
    def seed(self) -> bytes:
        return self._seed

    @property
    def counter(self) -> int:
        """Blocks drawn so far.  (seed, counter) is the complete rng
        state: the write-ahead log records it at layer commits and
        round boundaries so crash recovery resumes the exact stream."""
        return self._counter

    def seek(self, counter: int) -> None:
        """Jump to an absolute position previously read off ``counter``."""
        if counter < 0:
            raise ValueError("rng counter cannot be negative")
        self._counter = counter

    @classmethod
    def at(cls, seed: bytes, counter: int) -> "DeterministicRng":
        """An rng positioned at a journaled (seed, counter) state."""
        rng = cls(seed)
        rng.seek(counter)
        return rng

    def _next_block(self) -> bytes:
        h = hashlib.sha3_256()
        h.update(self._seed)
        h.update(self._counter.to_bytes(8, "big"))
        self._counter += 1
        return h.digest()

    def randbits(self, bits: int) -> int:
        out = b""
        while len(out) * 8 < bits:
            out += self._next_block()
        return int.from_bytes(out, "big") >> (len(out) * 8 - bits)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] via rejection sampling."""
        span = high - low + 1
        bits = span.bit_length()
        while True:
            candidate = self.randbits(bits)
            if candidate < span:
                return low + candidate

    def randbytes(self, n: int) -> bytes:
        out = b""
        while len(out) < n:
            out += self._next_block()
        return out[:n]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def choice(self, items: list):
        return items[self.randint(0, len(items) - 1)]


# -- the backend registry ---------------------------------------------------

_GROUP_CACHE: Dict[str, GroupBackend] = {}

#: name -> zero-arg factory, for backends registered at runtime
_BACKEND_FACTORIES: Dict[str, Callable[[], GroupBackend]] = {}

#: built-in backends resolved on first use ("pay for what you touch":
#: importing the crypto package never loads the curve arithmetic)
_LAZY_BACKENDS = {
    "P256": ("repro.crypto.ec", "make_p256_group"),
}


def register_backend(name: str, factory: Callable[[], GroupBackend]) -> None:
    """Register a group backend under ``name`` (case-insensitive).

    ``factory`` takes no arguments and returns a fresh
    :class:`GroupBackend`; the instance is cached by :func:`get_group`,
    so one warm fixed-base cache is shared process-wide per name.
    """
    key = name.upper()
    if key in _PARAM_SETS or key in _LAZY_BACKENDS:
        raise ValueError(f"{name!r} is a reserved built-in backend name")
    _BACKEND_FACTORIES[key] = factory
    _GROUP_CACHE.pop(key, None)


def available_groups() -> List[str]:
    """All registry names accepted by :func:`get_group` (and the CLI's
    ``--group``)."""
    return sorted(set(_PARAM_SETS) | set(_BACKEND_FACTORIES) | set(_LAZY_BACKENDS))


def get_group(name: str = "TEST") -> GroupBackend:
    """Return (and cache) a named group backend.

    Built-ins: the Schnorr sets ``TOY``, ``TEST``, ``P256ISH``,
    ``MODP2048`` and the elliptic-curve backend ``P256``.
    """
    key = name.upper()
    if key in _GROUP_CACHE:
        return _GROUP_CACHE[key]
    if key in _PARAM_SETS:
        group: GroupBackend = Group(_PARAM_SETS[key])
    else:
        factory = _BACKEND_FACTORIES.get(key)
        if factory is None and key in _LAZY_BACKENDS:
            module, attr = _LAZY_BACKENDS[key]
            factory = getattr(importlib.import_module(module), attr)
        if factory is None:
            raise KeyError(
                f"unknown group {name!r}; choose from {available_groups()}"
            )
        group = factory()
    _GROUP_CACHE[key] = group
    return group
