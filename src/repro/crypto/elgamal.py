"""Atom's rerandomizable ElGamal variant (paper Appendix A).

A ciphertext is a triple ``(R, c, Y)``:

- ``R`` carries the randomness used to encrypt for the *next* group,
- ``c`` is the blinded message,
- ``Y`` carries the randomness used to encrypt for the *current* group
  (``None`` plays the paper's ``⊥``).

Keeping both ``R`` and ``Y`` is what enables *out-of-order* decryption
and re-encryption: a server can strip one layer of the current group's
encryption (using ``Y``) while adding a layer for the next group's key
(accumulating randomness into ``R``), even though the layers were added
in a different order.

Group public keys are products of member public keys (anytrust groups)
or DVSS outputs (many-trust groups); in both cases the ciphertext
algebra below is identical — only the secret used in ``reencrypt``
differs (a raw key vs. a Lagrange-weighted share).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.groups import DeterministicRng, GroupBackend as Group, GroupElement


@dataclass(frozen=True)
class ElGamalKeyPair:
    """A secret scalar and the matching public element ``X = g^x``."""

    secret: int
    public: GroupElement

    @classmethod
    def generate(cls, group: Group, rng: Optional[DeterministicRng] = None) -> "ElGamalKeyPair":
        x = group.random_scalar(rng)
        return cls(secret=x, public=group.g_pow(x))


@dataclass(frozen=True)
class AtomCiphertext:
    """The ``(R, c, Y)`` triple of Appendix A. ``Y is None`` means ⊥."""

    R: GroupElement
    c: GroupElement
    Y: Optional[GroupElement] = None

    def with_y_bot(self) -> "AtomCiphertext":
        """Drop ``Y`` (the last server of a group does this before
        forwarding: all of the current group's layers are peeled off)."""
        return AtomCiphertext(self.R, self.c, None)

    def to_bytes(self) -> bytes:
        y_bytes = self.Y.to_bytes() if self.Y is not None else b"\x00"
        return self.R.to_bytes() + self.c.to_bytes() + y_bytes

    @property
    def size_bytes(self) -> int:
        return len(self.to_bytes())


class AtomElGamal:
    """Stateless algorithms over :class:`AtomCiphertext` for one group."""

    def __init__(self, group: Group):
        self.group = group

    # -- KeyGen ---------------------------------------------------------

    def keygen(self, rng: Optional[DeterministicRng] = None) -> ElGamalKeyPair:
        return ElGamalKeyPair.generate(self.group, rng)

    def combine_public_keys(self, publics: Sequence[GroupElement]) -> GroupElement:
        """Anytrust group key: the product of all member public keys."""
        combined = self.group.identity
        for pk in publics:
            combined = combined * pk
        return combined

    # -- Enc / Dec --------------------------------------------------------

    def encrypt(
        self,
        public_key: GroupElement,
        message: GroupElement,
        rng: Optional[DeterministicRng] = None,
        randomness: Optional[int] = None,
    ) -> Tuple[AtomCiphertext, int]:
        """``Enc(X, m)``: returns the ciphertext and the randomness ``r``
        (needed by :class:`~repro.crypto.nizk.EncProof`)."""
        r = randomness if randomness is not None else self.group.random_scalar(rng)
        R = self.group.g_pow(r)
        c = message * self.group.pow_cached(public_key, r)
        return AtomCiphertext(R=R, c=c, Y=None), r

    def decrypt(self, secret: int, ciphertext: AtomCiphertext) -> GroupElement:
        """``Dec(x, (R, c, Y))``; fails if ``Y != ⊥``."""
        if ciphertext.Y is not None:
            raise ValueError("Dec requires Y = ⊥ (ciphertext mid-reencryption)")
        return ciphertext.c / (ciphertext.R ** secret)

    # -- Shuffle (rerandomize + permute) ----------------------------------

    def rerandomize(
        self,
        public_key: GroupElement,
        ciphertext: AtomCiphertext,
        rng: Optional[DeterministicRng] = None,
        randomness: Optional[int] = None,
    ) -> AtomCiphertext:
        """Rerandomize ``(R, c, ⊥)`` under ``X``; fails if ``Y != ⊥``."""
        if ciphertext.Y is not None:
            raise ValueError("Shuffle requires Y = ⊥")
        r = randomness if randomness is not None else self.group.random_scalar(rng)
        return AtomCiphertext(
            R=self.group.g_pow(r) * ciphertext.R,
            c=ciphertext.c * self.group.pow_cached(public_key, r),
            Y=None,
        )

    def shuffle(
        self,
        public_key: GroupElement,
        ciphertexts: Sequence[AtomCiphertext],
        rng: Optional[DeterministicRng] = None,
    ) -> Tuple[List[AtomCiphertext], List[int], List[int]]:
        """``Shuffle(X, C)``: rerandomize all and permute.

        Returns ``(C', perm, rands)`` where ``C'[i] =
        Rerand(C[perm[i]], rands[i])``.  The permutation and randomness
        are the prover's witness for the shuffle NIZK.
        """
        n = len(ciphertexts)
        perm = list(range(n))
        if rng is not None:
            rng.shuffle(perm)
        else:
            import secrets as _secrets

            for i in range(n - 1, 0, -1):
                j = _secrets.randbelow(i + 1)
                perm[i], perm[j] = perm[j], perm[i]
        rands = [self.group.random_scalar(rng) for _ in range(n)]
        shuffled = [
            self.rerandomize(public_key, ciphertexts[perm[i]], randomness=rands[i])
            for i in range(n)
        ]
        return shuffled, perm, rands

    # -- ReEnc (out-of-order decrypt-and-reencrypt) ------------------------

    def reencrypt(
        self,
        secret: int,
        next_public_key: Optional[GroupElement],
        ciphertext: AtomCiphertext,
        rng: Optional[DeterministicRng] = None,
        randomness: Optional[int] = None,
    ) -> AtomCiphertext:
        """``ReEnc(x, X', (R, c, Y))`` from Appendix A.

        Strips this server's layer (via ``Y``) and, unless
        ``next_public_key is None`` (the paper's ``X' = ⊥``, i.e. final
        decryption), adds a layer under the next group's key (via ``R``).
        """
        R, c, Y = ciphertext.R, ciphertext.c, ciphertext.Y
        if Y is None:
            Y, R = R, self.group.identity
        c_tmp = c / (Y ** secret)
        if next_public_key is None:
            return AtomCiphertext(R=R, c=c_tmp, Y=Y)
        r = randomness if randomness is not None else self.group.random_scalar(rng)
        return AtomCiphertext(
            R=self.group.g_pow(r) * R,
            c=c_tmp * self.group.pow_cached(next_public_key, r),
            Y=Y,
        )

    def reencrypt_batch(
        self,
        secret: int,
        next_public_key: Optional[GroupElement],
        batch: Sequence[AtomCiphertext],
        rng: Optional[DeterministicRng] = None,
    ) -> List[AtomCiphertext]:
        return [self.reencrypt(secret, next_public_key, ct, rng) for ct in batch]

    # -- Convenience for tests / apps --------------------------------------

    def encrypt_bytes(
        self,
        public_key: GroupElement,
        message: bytes,
        rng: Optional[DeterministicRng] = None,
    ) -> Tuple[List[AtomCiphertext], List[int]]:
        """Encrypt an arbitrary-length byte string as a ciphertext vector."""
        elements = self.group.encode_chunks(message)
        pairs = [self.encrypt(public_key, el, rng) for el in elements]
        return [ct for ct, _ in pairs], [r for _, r in pairs]

    def decrypt_bytes(self, secret: int, ciphertexts: Sequence[AtomCiphertext]) -> bytes:
        return self.group.decode_chunks(
            self.decrypt(secret, ct) for ct in ciphertexts
        )
