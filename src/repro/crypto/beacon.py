"""Public unbiased randomness beacon (paper §4.1).

Atom forms its anytrust groups from "a public unbiased randomness
source" (e.g. RandHound [68] or Bitcoin-based beacons [14]).  This
module provides the same interface as such a beacon: per-round public
randomness that every participant can derive identically, with no party
able to bias it.  In the reproduction the beacon is a seeded SHA3
expander — deterministic given the seed, which makes every experiment
replayable.
"""

from __future__ import annotations

from typing import List

from repro.crypto.groups import DeterministicRng


class RandomnessBeacon:
    """Deterministic per-round public randomness."""

    def __init__(self, seed: bytes = b"repro.beacon.seed"):
        self._seed = seed

    def for_round(self, round_id: int) -> DeterministicRng:
        """Randomness stream for protocol round ``round_id``."""
        return DeterministicRng(self._seed + b"|round|" + round_id.to_bytes(8, "big"))

    def sample_groups(
        self, round_id: int, num_servers: int, num_groups: int, group_size: int
    ) -> List[List[int]]:
        """Sample ``num_groups`` groups of ``group_size`` server indices.

        Sampling is with replacement across groups (a server serves in
        many groups — this is how N servers fill G*k group slots) but
        without replacement within a group, exactly as required for the
        anytrust analysis of §4.1.
        """
        if group_size > num_servers:
            raise ValueError("group size exceeds number of servers")
        rng = self.for_round(round_id)
        groups = []
        for _ in range(num_groups):
            pool = list(range(num_servers))
            rng.shuffle(pool)
            groups.append(sorted(pool[:group_size]))
        return groups
