"""SHA-3 commitments for trap messages (paper §4.4).

Trap messages contain a high-entropy random nonce, so — as the paper
notes — a plain cryptographic hash is binding *and* hiding enough to
serve as the commitment ``CT = H(cT)``.
"""

from __future__ import annotations

import hashlib
import hmac


def commit(payload: bytes) -> bytes:
    """Commit to ``payload`` (which must be high-entropy to be hiding)."""
    return hashlib.sha3_256(b"repro.commit.v1|" + payload).digest()


def verify_commitment(commitment: bytes, payload: bytes) -> bool:
    """Constant-time check that ``commitment`` opens to ``payload``."""
    return hmac.compare_digest(commitment, commit(payload))
