"""``EncProof`` and ``ReEncProof`` NIZKs (paper §2.3 and Appendix A).

``EncProof`` is a Schnorr proof of knowledge of the encryption
randomness ``r`` with ``R = g^r``, bound (via the Fiat-Shamir hash) to
the ciphertext, the group public key, and the entry-group id.  This is
what stops a malicious user from (a) submitting a rerandomized copy of
an honest user's ciphertext — she would need to know the combined
randomness — and (b) replaying an exact (ciphertext, proof) pair to a
*different* entry group, because the gid is hashed into the challenge.

``ReEncProof`` is the Chaum-Pedersen generalization proving that a
server's ``ReEnc(x, X', ·)`` output is correct with respect to its
registered public key ``X_s = g^x``: knowledge of ``(x, r')`` with

    X_s      = g^x
    R' / R~  = g^r'            (R~ is R after the Y=⊥ normalization)
    c / c'   = Y^x · X'^(-r')

For the final-layer case (``X' = ⊥``) the third row degenerates to the
classic Chaum-Pedersen equality ``c / c' = Y^x`` and ``r'`` is absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto import sigma
from repro.crypto.elgamal import AtomCiphertext, AtomElGamal
from repro.crypto.groups import GroupBackend as Group, GroupElement
from repro.crypto.sigma import SigmaProof


@dataclass(frozen=True)
class EncProof:
    """Proof of plaintext knowledge for a fresh Atom ciphertext."""

    proof: SigmaProof

    @property
    def size_bytes(self) -> int:
        return self.proof.size_bytes


def prove_encryption(
    group: Group,
    ciphertext: AtomCiphertext,
    randomness: int,
    public_key: GroupElement,
    gid: int,
) -> EncProof:
    """Generate the ``EncProof`` NIZK for ``(c, pi) <- EncProof(pk, m)``.

    The statement binds the full ciphertext, the group key, and the
    entry-group id ``gid``.
    """
    rows = [(ciphertext.R, [group.g])]
    context = _enc_context(ciphertext, public_key, gid)
    return EncProof(sigma.prove(group, rows, [randomness], context))


def verify_encryption(
    group: Group,
    ciphertext: AtomCiphertext,
    proof: EncProof,
    public_key: GroupElement,
    gid: int,
) -> bool:
    """Verify an ``EncProof`` (all servers of the entry group run this)."""
    if ciphertext.Y is not None:
        return False
    rows = [(ciphertext.R, [group.g])]
    context = _enc_context(ciphertext, public_key, gid)
    return sigma.verify(group, rows, proof.proof, context)


def _enc_context(ct: AtomCiphertext, public_key: GroupElement, gid: int) -> bytes:
    return b"repro.encproof.v1|" + ct.to_bytes() + public_key.to_bytes() + gid.to_bytes(8, "big")


@dataclass(frozen=True)
class ReEncProof:
    """Proof of correct out-of-order decrypt-and-reencrypt."""

    proof: SigmaProof
    final_layer: bool

    @property
    def size_bytes(self) -> int:
        return self.proof.size_bytes + 1


def _reenc_rows(
    group: Group,
    server_public: GroupElement,
    next_public_key: Optional[GroupElement],
    before: AtomCiphertext,
    after: AtomCiphertext,
) -> Tuple[list, bool]:
    """Build the sigma-protocol statement rows for ReEnc correctness."""
    # Normalize the input exactly the way `reencrypt` does.
    if before.Y is None:
        y_eff = before.R
        r_eff = group.identity
    else:
        y_eff = before.Y
        r_eff = before.R
    if after.Y != y_eff:
        raise ValueError("output Y does not match normalized input")

    if next_public_key is None:
        # Final layer: c' = c / Y^x  and  R' = R~.
        if after.R != r_eff:
            raise ValueError("final-layer ReEnc must not touch R")
        rows = [
            (server_public, [group.g]),
            (before.c / after.c, [y_eff]),
        ]
        return rows, True

    rows = [
        (server_public, [group.g, group.identity]),
        (after.R / r_eff, [group.identity, group.g]),
        (before.c / after.c, [y_eff, next_public_key.inverse()]),
    ]
    return rows, False


def prove_reencryption(
    group: Group,
    secret: int,
    randomness: Optional[int],
    next_public_key: Optional[GroupElement],
    before: AtomCiphertext,
    after: AtomCiphertext,
) -> ReEncProof:
    """Prove that ``after == ReEnc(secret, next_public_key, before)``.

    ``randomness`` is the ``r'`` used (``None`` for the final layer).
    """
    server_public = group.g_pow(secret)
    rows, final = _reenc_rows(group, server_public, next_public_key, before, after)
    witness = [secret] if final else [secret, randomness]
    context = _reenc_context(before, after, next_public_key)
    return ReEncProof(sigma.prove(group, rows, witness, context), final)


def verify_reencryption(
    group: Group,
    server_public: GroupElement,
    next_public_key: Optional[GroupElement],
    before: AtomCiphertext,
    after: AtomCiphertext,
    proof: ReEncProof,
) -> bool:
    """Verify a ``ReEncProof`` against the server's registered key."""
    try:
        rows, final = _reenc_rows(group, server_public, next_public_key, before, after)
    except ValueError:
        return False
    if final != proof.final_layer:
        return False
    context = _reenc_context(before, after, next_public_key)
    return sigma.verify(group, rows, proof.proof, context)


def _reenc_context(
    before: AtomCiphertext,
    after: AtomCiphertext,
    next_public_key: Optional[GroupElement],
) -> bytes:
    next_bytes = next_public_key.to_bytes() if next_public_key is not None else b"\x00"
    return b"repro.reencproof.v1|" + before.to_bytes() + after.to_bytes() + next_bytes


class ReEncryptor:
    """Convenience bundle: perform ReEnc on a batch and prove each step.

    Used by the NIZK variant of the group protocol (Algorithm 2,
    step 3a): ``(B'_i, pi_i) = ReEncProof(sk_s, pk_i, B_i)``.
    """

    def __init__(self, group: Group):
        self.group = group
        self.scheme = AtomElGamal(group)

    def reencrypt_and_prove(
        self,
        secret: int,
        next_public_key: Optional[GroupElement],
        batch: list,
    ) -> Tuple[list, list]:
        outputs = []
        proofs = []
        for ct in batch:
            r = None if next_public_key is None else self.group.random_scalar()
            out = self.scheme.reencrypt(secret, next_public_key, ct, randomness=r)
            proof = prove_reencryption(self.group, secret, r, next_public_key, ct, out)
            outputs.append(out)
            proofs.append(proof)
        return outputs, proofs

    def verify_batch(
        self,
        server_public: GroupElement,
        next_public_key: Optional[GroupElement],
        before: list,
        after: list,
        proofs: list,
    ) -> bool:
        if not (len(before) == len(after) == len(proofs)):
            return False
        return all(
            verify_reencryption(self.group, server_public, next_public_key, b, a, p)
            for b, a, p in zip(before, after, proofs)
        )
