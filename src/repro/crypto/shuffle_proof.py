"""Verifiable shuffle NIZK (``ShufProof`` of paper §2.3).

The paper uses Neff's verifiable shuffle [59].  We substitute a
*cut-and-choose* shuffle argument (DESIGN.md substitution #2), which is
simpler and robustly implementable while remaining a real verifiable
shuffle:

- **Completeness** — an honest shuffle always verifies.
- **Statistical soundness** — a prover who did not apply a permutation-
  plus-rerandomization passes with probability at most ``2^-rounds``.
- **Zero knowledge** — each revealed branch is a fresh uniform shuffle
  of either side, independent of the secret permutation.

Protocol: to prove ``C' = Shuffle(pk, C)`` with secret witness
``(perm, rands)`` (meaning ``C'[i] = Rerand(C[perm[i]], rands[i])``),
the prover samples, for each round, an *intermediate* shuffle ``D`` of
``C`` with fresh ``(sigma, tau)``.  The Fiat-Shamir challenge bit then
selects which link to open:

- bit 0: reveal ``(sigma, tau)`` — verifier recomputes ``D`` from ``C``.
- bit 1: reveal the *composition* linking ``D`` to ``C'``:
  ``perm2[i] = sigma^-1(perm[i])`` and ``rand2[i] = rands[i] -
  tau[perm2[i]]`` — verifier checks ``C'[i] == Rerand(D[perm2[i]],
  rand2[i])``.

Rerandomization randomness composes additively, which is what makes the
bit-1 opening possible without revealing the witness.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.elgamal import AtomCiphertext, AtomElGamal
from repro.crypto.fastexp import multiexp
from repro.crypto.groups import DeterministicRng, GroupBackend

#: Default number of cut-and-choose rounds (soundness 2^-16 for tests;
#: a deployment would use 64+).  Benchmarks sweep this as an ablation.
DEFAULT_ROUNDS = 16

#: Bit length of the random weights in batched verification; a cheating
#: round survives the random-linear-combination check with probability
#: at most 2^-(WEIGHT_BITS-1).
WEIGHT_BITS = 128


def _batch_weights(n: int, rng: Optional[DeterministicRng] = None) -> List[int]:
    """Verifier-chosen random weights in ``[1, 2^WEIGHT_BITS)``."""
    if rng is not None:
        return [rng.randint(1, (1 << WEIGHT_BITS) - 1) for _ in range(n)]
    return [secrets.randbits(WEIGHT_BITS) | 1 for _ in range(n)]


def batch_rerand_check(
    group: GroupBackend,
    public_key,
    sources: Sequence[AtomCiphertext],
    targets: Sequence[AtomCiphertext],
    rands: Sequence[int],
    rng: Optional[DeterministicRng] = None,
) -> bool:
    """Batched check that ``targets[i] == Rerand(sources[i], rands[i])``.

    Folds the ``2n`` per-element equations into two multi-exponentiation
    identities with random ~128-bit weights ``w_i`` (the small-exponent
    batching test; see DESIGN.md):

        prod_i targets[i].R^{w_i} == g^{sum w_i r_i} * prod_i sources[i].R^{w_i}
        prod_i targets[i].c^{w_i} == pk^{sum w_i r_i} * prod_i sources[i].c^{w_i}

    Any violated element equation makes the identities fail except with
    probability ~2^-WEIGHT_BITS over the weights.

    Every component must lie in the prime-order subgroup, enforced
    below via ``group.is_prime_order``.  A Schnorr ``GroupElement``
    only guarantees membership in ``Z_p^* = QR x {±1}``, and an
    order-2 factor (a sign-flipped component, ``x -> p - x``) would
    survive the linear combination whenever its weight is even —
    degrading soundness to ~1/2 per round — while the element-wise
    reference path rejects it always.  Restricting to the prime-order
    subgroup restores the Schwartz-Zippel bound.  (On P-256 the check
    is structural: the curve has prime order, so every representable
    point qualifies.)
    """
    for src, tgt in zip(sources, targets):
        if src.Y is not None or tgt.Y is not None:
            return False
        for component in (src.R, src.c, tgt.R, tgt.c):
            if not group.is_prime_order(component):
                return False
    weights = _batch_weights(len(sources), rng)
    s = sum(w * r for w, r in zip(weights, rands)) % group.q
    lhs_r = multiexp(group, [t.R for t in targets], weights)
    rhs_r = group.g_pow(s) * multiexp(group, [c.R for c in sources], weights)
    if lhs_r != rhs_r:
        return False
    lhs_c = multiexp(group, [t.c for t in targets], weights)
    rhs_c = group.pow_cached(public_key, s) * multiexp(
        group, [c.c for c in sources], weights
    )
    return lhs_c == rhs_c


@dataclass(frozen=True)
class ShuffleRound:
    """One cut-and-choose round: the intermediate vector and the opening."""

    intermediate: Tuple[AtomCiphertext, ...]
    opened_perm: Tuple[int, ...]
    opened_rands: Tuple[int, ...]


@dataclass(frozen=True)
class ShuffleProof:
    """Fiat-Shamir cut-and-choose shuffle proof."""

    rounds: Tuple[ShuffleRound, ...]
    challenge_bits: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        if not self.rounds:
            return 8
        n = len(self.rounds[0].intermediate)
        per_round = n * (3 * 32) + n * (8 + 32)
        return len(self.rounds) * per_round + 8


def _challenge_bits(
    group: GroupBackend,
    public_key,
    inputs: Sequence[AtomCiphertext],
    outputs: Sequence[AtomCiphertext],
    intermediates: Sequence[Sequence[AtomCiphertext]],
    rounds: int,
) -> List[int]:
    parts: List[bytes] = [b"repro.shufproof.v1", public_key.to_bytes()]
    for ct in inputs:
        parts.append(ct.to_bytes())
    for ct in outputs:
        parts.append(ct.to_bytes())
    for vec in intermediates:
        for ct in vec:
            parts.append(ct.to_bytes())
    seed = group.hash_to_scalar(*parts)
    rng = DeterministicRng(seed.to_bytes(32, "big", signed=False))
    return [rng.randint(0, 1) for _ in range(rounds)]


def prove_shuffle(
    group: GroupBackend,
    public_key,
    inputs: Sequence[AtomCiphertext],
    outputs: Sequence[AtomCiphertext],
    perm: Sequence[int],
    rands: Sequence[int],
    rounds: int = DEFAULT_ROUNDS,
    rng: Optional[DeterministicRng] = None,
) -> ShuffleProof:
    """Produce a :class:`ShuffleProof` for ``outputs = Shuffle(inputs)``.

    ``perm``/``rands`` are the witness returned by
    :meth:`repro.crypto.elgamal.AtomElGamal.shuffle`.
    """
    scheme = AtomElGamal(group)
    n = len(inputs)
    if len(outputs) != n or len(perm) != n or len(rands) != n:
        raise ValueError("shuffle witness does not match vector sizes")

    intermediates: List[List[AtomCiphertext]] = []
    witnesses: List[Tuple[List[int], List[int]]] = []
    for _ in range(rounds):
        vec, sigma_perm, tau = scheme.shuffle(public_key, inputs, rng)
        intermediates.append(vec)
        witnesses.append((sigma_perm, tau))

    bits = _challenge_bits(group, public_key, inputs, outputs, intermediates, rounds)

    proof_rounds: List[ShuffleRound] = []
    for (sigma_perm, tau), intermediate, bit in zip(witnesses, intermediates, bits):
        if bit == 0:
            opened_perm, opened_rands = list(sigma_perm), list(tau)
        else:
            sigma_inv = [0] * n
            for i, s in enumerate(sigma_perm):
                sigma_inv[s] = i
            opened_perm = [sigma_inv[perm[i]] for i in range(n)]
            opened_rands = [
                (rands[i] - tau[opened_perm[i]]) % group.q for i in range(n)
            ]
        proof_rounds.append(
            ShuffleRound(
                intermediate=tuple(intermediate),
                opened_perm=tuple(opened_perm),
                opened_rands=tuple(opened_rands),
            )
        )
    return ShuffleProof(rounds=tuple(proof_rounds), challenge_bits=tuple(bits))


def verify_shuffle(
    group: GroupBackend,
    public_key,
    inputs: Sequence[AtomCiphertext],
    outputs: Sequence[AtomCiphertext],
    proof: ShuffleProof,
    rounds: int = DEFAULT_ROUNDS,
    batched: bool = True,
    weight_rng: Optional[DeterministicRng] = None,
) -> bool:
    """Verify a :class:`ShuffleProof`.

    The default path batch-verifies each round's ``2n`` rerandomization
    equations as two random-linear-combination multi-exponentiations
    (collapsing ``2 * rounds * n`` full exponentiations into a handful
    of multi-exps); ``batched=False`` keeps the element-wise reference
    path used by benchmarks and differential tests.
    """
    scheme = AtomElGamal(group)
    n = len(inputs)
    if len(outputs) != n:
        return False
    if len(proof.rounds) != rounds or len(proof.challenge_bits) != rounds:
        return False

    intermediates = [r.intermediate for r in proof.rounds]
    expected_bits = _challenge_bits(
        group, public_key, inputs, outputs, intermediates, rounds
    )
    if list(proof.challenge_bits) != expected_bits:
        return False

    for rnd, bit in zip(proof.rounds, expected_bits):
        if len(rnd.intermediate) != n or len(rnd.opened_perm) != n:
            return False
        if len(rnd.opened_rands) != n:
            return False
        if sorted(rnd.opened_perm) != list(range(n)):
            return False
        source = inputs if bit == 0 else rnd.intermediate
        target = rnd.intermediate if bit == 0 else outputs
        if batched:
            if not batch_rerand_check(
                group,
                public_key,
                [source[rnd.opened_perm[i]] for i in range(n)],
                target,
                rnd.opened_rands,
                weight_rng,
            ):
                return False
            continue
        for i in range(n):
            src = source[rnd.opened_perm[i]]
            if src.Y is not None:
                return False
            expect = scheme.rerandomize(
                public_key, src, randomness=rnd.opened_rands[i]
            )
            if expect != target[i]:
                return False
    return True
