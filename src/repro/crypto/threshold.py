"""Threshold ElGamal over DVSS shares (paper §4.5).

A many-trust group of ``k`` servers holds a DVSS-generated key where
any ``t = k - (h - 1)`` members can jointly decrypt.  Two operations
are needed:

- **Threshold decryption** of a standard ElGamal ciphertext (used by
  the trustees in the trap variant: "release decryption key" amounts to
  publishing shares, after which anyone can finish decryption).

- **Share-weighted out-of-order ReEnc** for the mixing pipeline: each
  participating server uses its *Lagrange-weighted* share as the secret
  in :meth:`repro.crypto.elgamal.AtomElGamal.reencrypt`; summed over
  any qualifying subset the weights reconstruct the group secret, so
  after all participants have run ReEnc the group's layer is fully
  peeled — exactly as with plain anytrust keys, but tolerant of
  ``h - 1`` absent members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.crypto.elgamal import AtomCiphertext
from repro.crypto.groups import GroupBackend as Group, GroupElement
from repro.crypto.secret_sharing import DvssResult, Share, lagrange_coefficient


@dataclass(frozen=True)
class PartialDecryption:
    """One member's contribution ``Y^{lambda_j * s_j}`` to a decryption."""

    member: int  # 0-based member id
    value: GroupElement


class ThresholdElGamal:
    """Threshold operations for one many-trust group key."""

    def __init__(self, group: Group, dvss: DvssResult):
        self.group = group
        self.dvss = dvss
        self.threshold = dvss.threshold
        self.public_key = dvss.group_public

    # -- participation sets ---------------------------------------------

    def weighted_secret(self, member: int, participants: Sequence[int]) -> int:
        """Member's Lagrange-weighted share for this participant set.

        ``participants`` are 0-based member ids; evaluation points are
        ``id + 1``.  The weighted secrets of all participants sum to the
        group secret mod q.
        """
        if member not in participants:
            raise ValueError("member not in the participant set")
        if len(participants) < self.threshold:
            raise ValueError(
                f"need >= {self.threshold} participants, got {len(participants)}"
            )
        xs = [p + 1 for p in participants]
        j = participants.index(member)
        lam = lagrange_coefficient(self.group.q, xs, j)
        return lam * self.dvss.shares[member].value % self.group.q

    # -- plain threshold decryption ---------------------------------------

    def partial_decrypt(
        self, member: int, participants: Sequence[int], ciphertext: AtomCiphertext
    ) -> PartialDecryption:
        """Compute ``R^{lambda_j s_j}`` for a ciphertext with ``Y = ⊥``."""
        if ciphertext.Y is not None:
            raise ValueError("threshold decryption requires Y = ⊥")
        w = self.weighted_secret(member, participants)
        return PartialDecryption(member=member, value=ciphertext.R ** w)

    def combine(
        self, ciphertext: AtomCiphertext, partials: Sequence[PartialDecryption]
    ) -> GroupElement:
        """Finish decryption: ``m = c / prod_j partial_j``."""
        denom = self.group.identity
        for partial in partials:
            denom = denom * partial.value
        return ciphertext.c / denom

    def decrypt_with(
        self, participants: Sequence[int], ciphertext: AtomCiphertext
    ) -> GroupElement:
        """Convenience: run partial decryption for a participant set."""
        partials = [
            self.partial_decrypt(member, participants, ciphertext)
            for member in participants
        ]
        return self.combine(ciphertext, partials)

    # -- key release (trap variant, trustees) ------------------------------

    def reconstruct_secret(self, released: Dict[int, int]) -> int:
        """Reconstruct the group secret from released raw shares.

        ``released`` maps 0-based member ids to their share values, as
        published by trustees when all trap checks pass.
        """
        shares = [Share(member + 1, value) for member, value in sorted(released.items())]
        if len(shares) < self.threshold:
            raise ValueError("not enough released shares")
        from repro.crypto.secret_sharing import shamir_reconstruct

        return shamir_reconstruct(self.group, shares[: self.threshold])

    def prove_partial(
        self,
        member: int,
        participants: Sequence[int],
        ciphertext: AtomCiphertext,
        partial: PartialDecryption,
    ):
        """Chaum-Pedersen DLEQ: the partial decryption used the member's
        DVSS share, i.e. ``log_R(partial) == log_g(g^{lambda s_j})``.

        ``g^{s_j}`` is the Feldman share image published by DVSS, so the
        weighted public image is computable by every verifier.
        """
        from repro.crypto import sigma as _sigma

        w = self.weighted_secret(member, participants)
        rows = [
            (partial.value, [ciphertext.R]),
            (self._weighted_public(member, participants), [self.group.g]),
        ]
        return _sigma.prove(self.group, rows, [w], b"repro.threshold.dleq")

    def verify_partial(
        self,
        member: int,
        participants: Sequence[int],
        ciphertext: AtomCiphertext,
        partial: PartialDecryption,
        proof,
    ) -> bool:
        """Verify the DLEQ proof for a partial decryption."""
        from repro.crypto import sigma as _sigma

        rows = [
            (partial.value, [ciphertext.R]),
            (self._weighted_public(member, participants), [self.group.g]),
        ]
        return _sigma.verify(self.group, rows, proof, b"repro.threshold.dleq")

    def _weighted_public(self, member: int, participants: Sequence[int]) -> GroupElement:
        """Public image ``g^{lambda_j s_j}`` from the Feldman commitments."""
        xs = [p + 1 for p in participants]
        j = participants.index(member)
        lam = lagrange_coefficient(self.group.q, xs, j)
        # Share images recur across partial-decryption verifications;
        # pow_cached promotes them to tables after a couple of uses.
        return self.group.pow_cached(self.dvss.share_publics[member], lam)


def release_and_decrypt(
    group: Group,
    scheme: ThresholdElGamal,
    released: Dict[int, int],
    ciphertext: AtomCiphertext,
) -> GroupElement:
    """Decrypt after trustees release >= threshold raw shares."""
    secret = scheme.reconstruct_secret(released)
    if ciphertext.Y is not None:
        raise ValueError("decryption requires Y = ⊥")
    return ciphertext.c / (ciphertext.R ** secret)
