"""Fast modular exponentiation: fixed-base combs and multi-exponentiation.

Atom's cost profile is dominated by modular exponentiation (paper §6,
Tables 3-4): every encrypt / rerandomize / re-encrypt performs two
exponentiations, and the cut-and-choose shuffle proof multiplies that
by ``rounds x n`` for the prover and every verifying group member.  The
overwhelming majority of those exponentiations use one of two *fixed*
bases — the group generator ``g`` or a group public key — which is the
textbook setting for fixed-base windowed precomputation, and the batch
verifier reduces many same-base checks to a handful of Straus
multi-exponentiations.

This module is deliberately free of any dependency on
:mod:`repro.crypto.groups`: everything operates on plain integers, so
:class:`~repro.crypto.groups.Group` can build on it without an import
cycle, and the algorithms are directly property-testable against
``pow``.

Algorithms (see DESIGN.md, "Fast-exponentiation layer"):

- :class:`FixedBaseExp` — radix-``2^w`` fixed-base precomputation.  For
  a ``b``-bit exponent split into ``ceil(b/w)`` windows, table row ``j``
  stores ``base^(d * 2^(w*j))`` for every digit ``d``; an
  exponentiation is then at most ``ceil(b/w)`` modular multiplications
  and **zero** squarings, roughly a ``5-15x`` win over generic ``pow``
  once the table is amortized.
- :func:`multiexp` — Straus/Shamir interleaved multi-exponentiation
  ``prod_i base_i^{e_i}``: one shared squaring chain for all bases plus
  per-base digit tables.  With the short (128-bit) weights used by
  batch proof verification the shared chain is only 128 squarings no
  matter how many bases are combined.
"""

from __future__ import annotations

from typing import List, Sequence


def auto_window(exponent_bits: int) -> int:
    """Window width minimizing table-build plus per-exp multiply cost."""
    if exponent_bits <= 96:
        return 3
    if exponent_bits <= 512:
        return 4
    return 5


class FixedBaseExp:
    """Windowed fixed-base exponentiation table for ``base^e mod p``.

    Exponents are reduced modulo ``order`` (the subgroup order ``q``),
    matching :meth:`repro.crypto.groups.GroupElement.__pow__`.  Table
    size is ``ceil(bits(order)/w) * 2^w`` residues; building it costs
    about the same as six generic exponentiations, so it pays for
    itself almost immediately on a hot base.
    """

    __slots__ = ("modulus", "order", "base", "window", "_table")

    def __init__(self, modulus: int, order: int, base: int, window: int = 0):
        if not 0 < base < modulus:
            raise ValueError("base outside Z_p^*")
        self.modulus = modulus
        self.order = order
        self.base = base
        self.window = window or auto_window(order.bit_length())
        w = self.window
        radix = 1 << w
        blocks = (order.bit_length() + w - 1) // w
        table: List[List[int]] = []
        b = base
        for _ in range(blocks):
            row = [1] * radix
            row[1] = b
            for d in range(2, radix):
                row[d] = row[d - 1] * b % modulus
            table.append(row)
            b = row[radix - 1] * b % modulus  # b^(2^w): next window's base
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` with exponent reduced mod order."""
        e = exponent % self.order
        acc = 1
        w = self.window
        mask = (1 << w) - 1
        modulus = self.modulus
        table = self._table
        block = 0
        while e:
            digit = e & mask
            if digit:
                acc = acc * table[block][digit] % modulus
            e >>= w
            block += 1
        return acc


def multiexp_ints(
    modulus: int,
    order: int,
    bases: Sequence[int],
    exponents: Sequence[int],
    window: int = 0,
) -> int:
    """Straus interleaved multi-exponentiation over plain integers.

    Computes ``prod_i bases[i]^(exponents[i] % order) mod modulus``
    with one shared squaring chain (``max-bits`` squarings total) and a
    small odd-digit table per base.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents length mismatch")
    exps = [e % order for e in exponents]
    if not bases:
        return 1
    maxbits = max(e.bit_length() for e in exps)
    if maxbits == 0:
        return 1
    w = window or (4 if maxbits <= 512 else 5)
    radix = 1 << w
    mask = radix - 1
    tables: List[List[int]] = []
    for base in bases:
        if not 0 < base < modulus:
            raise ValueError("base outside Z_p^*")
        row = [1] * radix
        row[1] = base
        for d in range(2, radix):
            row[d] = row[d - 1] * base % modulus
        tables.append(row)
    blocks = (maxbits + w - 1) // w
    acc = 1
    for block in range(blocks - 1, -1, -1):
        if acc != 1:
            for _ in range(w):
                acc = acc * acc % modulus
        shift = block * w
        for row, e in zip(tables, exps):
            digit = (e >> shift) & mask
            if digit:
                acc = acc * row[digit] % modulus
    return acc


def multiexp(group, bases: Sequence, exponents: Sequence[int], window: int = 0):
    """``prod_i bases[i]^exponents[i]`` as a group element.

    ``bases`` may be :class:`~repro.crypto.groups.GroupElement`s or raw
    integers; the result is returned through ``group.element`` so the
    usual subgroup checks apply.
    """
    values = [getattr(b, "value", b) for b in bases]
    return group.element(multiexp_ints(group.p, group.q, values, exponents, window))


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0`` (O(log^2) bit ops).

    For prime ``n`` this equals the Legendre symbol, so it replaces the
    Euler-criterion quadratic-residue test (a full modular
    exponentiation) in ``Group.encode``.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires odd n > 0")
    a %= n
    result = 1
    while a:
        # Strip all factors of two at once: (2/n) = -1 iff n = ±3 mod 8,
        # applied tz times, flips the sign only when tz is odd.
        tz = (a & -a).bit_length() - 1
        if tz:
            a >>= tz
            if tz & 1 and n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0
