"""Fast exponentiation: fixed-base combs and multi-exponentiation.

Atom's cost profile is dominated by group exponentiation (paper §6,
Tables 3-4): every encrypt / rerandomize / re-encrypt performs two
exponentiations, and the cut-and-choose shuffle proof multiplies that
by ``rounds x n`` for the prover and every verifying group member.  The
overwhelming majority of those exponentiations use one of two *fixed*
bases — the group generator ``g`` or a group public key — which is the
textbook setting for fixed-base windowed precomputation, and the batch
verifier reduces many same-base checks to a handful of Straus
multi-exponentiations.

The algorithms are *backend-generic*: they only ever combine elements
with an associative operation, so one implementation serves both group
backends (see ``repro.crypto.groups``).  A backend supplies a tiny
"ops" object:

- ``ops.one`` — the neutral element of the representation,
- ``ops.mul(a, b)`` — the group operation,
- ``ops.sqr(a)`` (optional) — ``mul(a, a)``, for backends with a
  cheaper doubling (elliptic-curve points),
- ``ops.finish_tables(rows)`` (optional) — post-process freshly built
  precomputation rows (the curve backend batch-normalizes Jacobian
  entries to affine here so the hot loops use cheap mixed additions).

The Schnorr-group backend works on plain integers mod p
(:class:`ModIntOps`); the P-256 backend works on Jacobian-coordinate
points (``repro.crypto.ec.JacobianOps``).  This module stays free of
any dependency on :mod:`repro.crypto.groups`, so both backends can
build on it without an import cycle, and the algorithms are directly
property-testable against ``pow``.

Algorithms (see DESIGN.md, "Fast-exponentiation layer"):

- :class:`FixedBaseComb` — radix-``2^w`` fixed-base precomputation.
  For a ``b``-bit exponent split into ``ceil(b/w)`` windows, table row
  ``j`` stores ``base^(d * 2^(w*j))`` for every digit ``d``; an
  exponentiation is then at most ``ceil(b/w)`` group operations and
  **zero** squarings, roughly a ``5-15x`` win over generic ``pow``
  once the table is amortized.  :class:`FixedBaseExp` is its integer
  specialization with the modular multiply inlined.
- :func:`multiexp_ops` — Straus/Shamir interleaved multi-exponentiation
  ``prod_i base_i^{e_i}``: one shared squaring chain for all bases plus
  per-base digit tables.  With the short (128-bit) weights used by
  batch proof verification the shared chain is only 128 squarings no
  matter how many bases are combined.  :func:`multiexp_ints` is the
  integer wrapper, :func:`multiexp` the group-element front end.
"""

from __future__ import annotations

from typing import List, Sequence


def auto_window(exponent_bits: int) -> int:
    """Window width minimizing table-build plus per-exp multiply cost."""
    if exponent_bits <= 96:
        return 3
    if exponent_bits <= 512:
        return 4
    return 5


class ModIntOps:
    """Group operations on integer residues mod an odd prime."""

    __slots__ = ("modulus",)

    one = 1

    def __init__(self, modulus: int):
        self.modulus = modulus

    def mul(self, a: int, b: int) -> int:
        return a * b % self.modulus


class FixedBaseComb:
    """Windowed fixed-base exponentiation table over abstract group ops.

    Exponents are reduced modulo ``order`` (the group order ``q``),
    matching ``GroupElement.__pow__``.  Table size is
    ``ceil(bits(order)/w) * 2^w`` elements; building it costs about the
    same as six generic exponentiations, so it pays for itself almost
    immediately on a hot base.
    """

    __slots__ = ("ops", "order", "base", "window", "_table")

    def __init__(self, ops, order: int, base, window: int = 0):
        self.ops = ops
        self.order = order
        self.base = base
        self.window = window or auto_window(order.bit_length())
        w = self.window
        radix = 1 << w
        blocks = (order.bit_length() + w - 1) // w
        mul = ops.mul
        one = ops.one
        table: List[list] = []
        b = base
        for _ in range(blocks):
            row = [one] * radix
            row[1] = b
            for d in range(2, radix):
                row[d] = mul(row[d - 1], b)
            table.append(row)
            b = mul(row[radix - 1], b)  # b^(2^w): next window's base
        finish = getattr(ops, "finish_tables", None)
        if finish is not None:
            table = finish(table)
        self._table = table

    def pow(self, exponent: int):
        """``base^exponent`` with the exponent reduced mod ``order``."""
        e = exponent % self.order
        mul = self.ops.mul
        acc = self.ops.one
        w = self.window
        mask = (1 << w) - 1
        table = self._table
        block = 0
        while e:
            digit = e & mask
            if digit:
                acc = mul(acc, table[block][digit])
            e >>= w
            block += 1
        return acc


class FixedBaseExp(FixedBaseComb):
    """Integer specialization of :class:`FixedBaseComb` for ``mod p``.

    Keeps the historical ``(modulus, order, base)`` constructor and
    inlines the modular multiply in :meth:`pow` — the per-operation
    dispatch through ``ops.mul`` is measurable on the very hot
    ``g^r`` path of protocol rounds.
    """

    __slots__ = ("modulus",)

    def __init__(self, modulus: int, order: int, base: int, window: int = 0):
        if not 0 < base < modulus:
            raise ValueError("base outside Z_p^*")
        self.modulus = modulus
        super().__init__(ModIntOps(modulus), order, base, window)

    def pow(self, exponent: int) -> int:
        """``base^exponent mod modulus`` with exponent reduced mod order."""
        e = exponent % self.order
        acc = 1
        w = self.window
        mask = (1 << w) - 1
        modulus = self.modulus
        table = self._table
        block = 0
        while e:
            digit = e & mask
            if digit:
                acc = acc * table[block][digit] % modulus
            e >>= w
            block += 1
        return acc


def multiexp_ops(
    ops,
    order: int,
    bases: Sequence,
    exponents: Sequence[int],
    window: int = 0,
):
    """Straus interleaved multi-exponentiation over abstract group ops.

    Computes ``prod_i bases[i]^(exponents[i] % order)`` with one shared
    squaring chain (``max-bits`` squarings total) and a small digit
    table per base.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents length mismatch")
    exps = [e % order for e in exponents]
    one = ops.one
    if not bases:
        return one
    maxbits = max(e.bit_length() for e in exps)
    if maxbits == 0:
        return one
    w = window or (4 if maxbits <= 512 else 5)
    radix = 1 << w
    mask = radix - 1
    mul = ops.mul
    sqr = getattr(ops, "sqr", None) or (lambda a: mul(a, a))
    tables: List[list] = []
    for base in bases:
        row = [one] * radix
        row[1] = base
        for d in range(2, radix):
            row[d] = mul(row[d - 1], base)
        tables.append(row)
    finish = getattr(ops, "finish_tables", None)
    if finish is not None:
        tables = finish(tables)
    blocks = (maxbits + w - 1) // w
    acc = one
    for block in range(blocks - 1, -1, -1):
        if acc is not one:
            for _ in range(w):
                acc = sqr(acc)
        shift = block * w
        for row, e in zip(tables, exps):
            digit = (e >> shift) & mask
            if digit:
                acc = mul(acc, row[digit])
    return acc


def multiexp_ints(
    modulus: int,
    order: int,
    bases: Sequence[int],
    exponents: Sequence[int],
    window: int = 0,
) -> int:
    """Straus multi-exponentiation over plain integers mod ``modulus``."""
    for base in bases:
        if not 0 < base < modulus:
            raise ValueError("base outside Z_p^*")
    return multiexp_ops(ModIntOps(modulus), order, bases, exponents, window)


def multiexp(group, bases: Sequence, exponents: Sequence[int], window: int = 0):
    """``prod_i bases[i]^exponents[i]`` as a group element.

    Dispatches to ``group.multiexp`` so each backend runs the Straus
    chain in its native representation (integers mod p, Jacobian
    points); kept as a module-level helper because the proof code reads
    better calling a function on the group *argument*.
    """
    return group.multiexp(bases, exponents, window)


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd ``n > 0`` (O(log^2) bit ops).

    For prime ``n`` this equals the Legendre symbol, so it replaces the
    Euler-criterion quadratic-residue test (a full modular
    exponentiation) in ``Group.encode``, and serves as the curve
    backend's pre-check that ``x^3 - 3x + b`` has a square root.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires odd n > 0")
    a %= n
    result = 1
    while a:
        # Strip all factors of two at once: (2/n) = -1 iff n = ±3 mod 8,
        # applied tz times, flips the sign only when tz is odd.
        tz = (a & -a).bit_length() - 1
        if tz:
            a >>= tz
            if tz & 1 and n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0
