"""NIST P-256 elliptic-curve group backend (registry name ``P256``).

The paper's evaluation runs the entire protocol over NIST P-256; this
backend implements that group in pure Python behind the
:class:`~repro.crypto.groups.GroupBackend` interface, so every layer —
ElGamal, the sigma protocols, the shuffle proof, DVSS, the stream
engine — runs unchanged on the curve via ``get_group("P256")`` (CLI:
``--group p256``).

Why it is fast enough: a MODP2048 exponentiation multiplies 2048-bit
residues ~2048 times, while a P-256 scalar multiplication performs a
few hundred field operations on 256-bit integers — roughly an order of
magnitude cheaper in pure Python even before precomputation.  The
fixed-base comb and Straus multi-exponentiation are the *same*
algorithms as the Schnorr backend, instantiated through the
ops-abstraction of :mod:`repro.crypto.fastexp` with Jacobian point
arithmetic:

- **Jacobian coordinates** ``(X, Y, Z)`` with ``x = X/Z^2``,
  ``y = Y/Z^3`` make doubling and addition inversion-free; one modular
  inversion is paid only when a result is normalized back to affine.
- **Mixed addition**: precomputation tables are batch-normalized to
  affine (one shared inversion via the Montgomery trick,
  ``JacobianOps.finish_tables``), so the hot comb/Straus loops use the
  cheaper Jacobian+affine formulas.
- ``a = -3`` doubling shortcut (standard for the NIST curves).

Element serialization is SEC1 compressed: 33 bytes (``02``/``03`` ‖
x-coordinate); the integer ``value`` of a point is that byte string as
a big-endian integer (``0`` for the identity), which is what proof
transcripts carry and :meth:`EcGroup.element` parses back.

Messages are embedded as curve points by Koblitz's method: the padded
message integer ``m`` is shifted left one byte and the low byte scans
``i = 0, 1, ...`` until ``x = m*256 + i`` hits a valid x-coordinate
(each try succeeds with probability ~1/2, so 256 tries fail with
probability ~2^-256); decoding is just ``m = x >> 8``.  The curve has
prime order (cofactor 1), so every on-curve point is already in the
prime-order group and :meth:`EcGroup.is_prime_order` is structural.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.fastexp import FixedBaseComb, jacobi, multiexp_ops
from repro.crypto.groups import EncodingError, GroupBackend

# -- curve constants (SEC2 / FIPS 186-4, secp256r1) -------------------------

P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3  # a = -3 mod p
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5

_SQRT_EXP = (P + 1) // 4  # p = 3 mod 4: sqrt(a) = a^((p+1)/4)
_XMASK = (1 << 256) - 1

#: Jacobian point at infinity (Z = 0).  Kept as a singleton so the
#: generic loops' ``acc is one`` fast path works.
_INF: Tuple[int, int, int] = (1, 1, 0)


# -- Jacobian field/point arithmetic ----------------------------------------


def _jdbl(pt: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Point doubling, dbl-2001-b formulas for ``a = -3``."""
    X1, Y1, Z1 = pt
    if not Z1:
        return _INF
    delta = Z1 * Z1 % P
    gamma = Y1 * Y1 % P
    beta = X1 * gamma % P
    alpha = 3 * (X1 - delta) * (X1 + delta) % P
    X3 = (alpha * alpha - 8 * beta) % P
    Z3 = ((Y1 + Z1) * (Y1 + Z1) - gamma - delta) % P
    Y3 = (alpha * (4 * beta - X3) - 8 * gamma * gamma) % P
    return (X3, Y3, Z3)


def _jadd(p1: Tuple[int, int, int], p2: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """General Jacobian addition (add-2007-bl)."""
    X1, Y1, Z1 = p1
    X2, Y2, Z2 = p2
    Z1Z1 = Z1 * Z1 % P
    Z2Z2 = Z2 * Z2 % P
    U1 = X1 * Z2Z2 % P
    U2 = X2 * Z1Z1 % P
    S1 = Y1 * Z2 * Z2Z2 % P
    S2 = Y2 * Z1 * Z1Z1 % P
    H = (U2 - U1) % P
    if not H:
        if S1 == S2:
            return _jdbl(p1)
        return _INF
    I = 4 * H * H % P
    J = H * I % P
    r = 2 * (S2 - S1) % P
    V = U1 * I % P
    X3 = (r * r - J - 2 * V) % P
    Y3 = (r * (V - X3) - 2 * S1 * J) % P
    Z3 = ((Z1 + Z2) * (Z1 + Z2) - Z1Z1 - Z2Z2) * H % P
    return (X3, Y3, Z3)


def _madd(p1: Tuple[int, int, int], p2: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Mixed addition: ``p1`` Jacobian + ``p2`` affine (Z2 = 1),
    madd-2007-bl — 3 field multiplications cheaper than :func:`_jadd`."""
    X1, Y1, Z1 = p1
    X2, Y2, _ = p2
    Z1Z1 = Z1 * Z1 % P
    U2 = X2 * Z1Z1 % P
    S2 = Y2 * Z1 * Z1Z1 % P
    H = (U2 - X1) % P
    if not H:
        if S2 == Y1:
            return _jdbl(p1)
        return _INF
    HH = H * H % P
    I = 4 * HH % P
    J = H * I % P
    r = 2 * (S2 - Y1) % P
    V = X1 * I % P
    X3 = (r * r - J - 2 * V) % P
    Y3 = (r * (V - X3) - 2 * Y1 * J) % P
    Z3 = ((Z1 + H) * (Z1 + H) - Z1Z1 - HH) % P
    return (X3, Y3, Z3)


def _jmul(a: Tuple[int, int, int], b: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Dispatching group operation: identity short-circuits, mixed
    addition whenever one side is affine-normalized."""
    if not a[2]:
        return b
    if not b[2]:
        return a
    if b[2] == 1:
        return _madd(a, b)
    if a[2] == 1:
        return _madd(b, a)
    return _jadd(a, b)


def _batch_to_affine(points: Sequence[Tuple[int, int, int]]) -> List[Tuple[int, int, int]]:
    """Normalize Jacobian points to ``Z = 1`` with ONE field inversion
    (Montgomery's trick); infinities pass through as :data:`_INF`."""
    zs = [pt[2] for pt in points if pt[2] not in (0, 1)]
    if not zs:
        return [pt if pt[2] else _INF for pt in points]
    prefix = [1] * (len(zs) + 1)
    for i, z in enumerate(zs):
        prefix[i + 1] = prefix[i] * z % P
    inv = pow(prefix[-1], -1, P)
    out: List[Tuple[int, int, int]] = []
    invs = [0] * len(zs)
    for i in range(len(zs) - 1, -1, -1):
        invs[i] = prefix[i] * inv % P
        inv = inv * zs[i] % P
    k = 0
    for pt in points:
        X, Y, Z = pt
        if Z == 0:
            out.append(_INF)
        elif Z == 1:
            out.append(pt)
        else:
            zi = invs[k]
            k += 1
            zi2 = zi * zi % P
            out.append((X * zi2 % P, Y * zi2 * zi % P, 1))
    return out


def _to_affine(pt: Tuple[int, int, int]) -> Optional[Tuple[int, int]]:
    """Jacobian -> affine ``(x, y)``; ``None`` for the identity."""
    X, Y, Z = pt
    if not Z:
        return None
    if Z == 1:
        return (X, Y)
    zi = pow(Z, -1, P)
    zi2 = zi * zi % P
    return (X * zi2 % P, Y * zi2 * zi % P)


class JacobianOps:
    """The :mod:`repro.crypto.fastexp` ops-object for P-256 points."""

    __slots__ = ()

    one = _INF
    mul = staticmethod(_jmul)
    sqr = staticmethod(_jdbl)

    @staticmethod
    def finish_tables(rows: List[list]) -> List[list]:
        """Batch-normalize freshly built precomputation rows to affine
        so the evaluation loops hit the mixed-addition fast path."""
        flat = [pt for row in rows for pt in row]
        flat = _batch_to_affine(flat)
        radix = len(rows[0]) if rows else 0
        return [flat[i: i + radix] for i in range(0, len(flat), radix)]


JAC_OPS = JacobianOps()


def _scalar_mult(point: Tuple[int, int, int], scalar: int) -> Tuple[int, int, int]:
    """Generic 4-bit windowed scalar multiplication (uncached bases)."""
    e = scalar % N
    if not e or not point[2]:
        return _INF
    # Digit table 1..15; built with mixed adds when the base is affine.
    table = [_INF, point]
    for _ in range(14):
        table.append(_jmul(table[-1], point))
    acc = _INF
    for shift in range(e.bit_length() - e.bit_length() % 4, -4, -4):
        if acc is not _INF:
            acc = _jdbl(_jdbl(_jdbl(_jdbl(acc))))
        digit = (e >> shift) & 0xF
        if digit:
            acc = _jmul(acc, table[digit])
    return acc


# -- the element and group classes ------------------------------------------


@dataclass(frozen=True)
class EcParams:
    """P-256 parameters exposed alongside the Schnorr ``GroupParams``."""

    name: str
    p: int
    a: int
    b: int
    n: int
    gx: int
    gy: int

    @property
    def q(self) -> int:
        """Prime group order (the scalar field)."""
        return self.n

    @property
    def message_bytes(self) -> int:
        """Safely embeddable payload bytes per point: the Koblitz shift
        spends one byte of x-coordinate space, the padding scheme one
        length byte, and one byte of headroom keeps ``x < p``."""
        return (self.p.bit_length() - 9) // 8 - 1


P256_PARAMS = EcParams("P256", P, A, B, N, GX, GY)


class EcPoint:
    """A point on P-256 (multiplicative notation, like ``GroupElement``).

    ``x is None`` encodes the identity (point at infinity).  Points are
    immutable and hashable; ``*`` is point addition, ``**`` scalar
    multiplication, matching the paper's multiplicative notation so the
    proof code is backend-blind.
    """

    __slots__ = ("group", "x", "y")

    def __init__(self, group: "EcGroup", x: Optional[int], y: Optional[int]):
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, name, value):
        raise AttributeError("EcPoint is immutable")

    # -- serialization ------------------------------------------------

    @property
    def value(self) -> int:
        """SEC1-compressed encoding as a big-endian integer (0 = identity)."""
        if self.x is None:
            return 0
        return ((2 | (self.y & 1)) << 256) | self.x

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(33, "big")

    # -- group operations ---------------------------------------------

    def _jac(self) -> Tuple[int, int, int]:
        if self.x is None:
            return _INF
        return (self.x, self.y, 1)

    def __mul__(self, other: "EcPoint") -> "EcPoint":
        if self.x is None:
            return other
        if other.x is None:
            return self
        x1, y1, x2, y2 = self.x, self.y, other.x, other.y
        if x1 == x2:
            if (y1 + y2) % P == 0:
                return self.group.identity
            lam = 3 * (x1 * x1 - 1) * pow(2 * y1, -1, P) % P  # a = -3
        else:
            lam = (y2 - y1) * pow(x2 - x1, -1, P) % P
        x3 = (lam * lam - x1 - x2) % P
        y3 = (lam * (x1 - x3) - y1) % P
        return EcPoint(self.group, x3, y3)

    def __truediv__(self, other: "EcPoint") -> "EcPoint":
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "EcPoint":
        # Hot bases (g, group public keys) have a comb table on the
        # group; everything else takes the generic windowed path.
        table = self.group._table_hit(self.value)
        if table is not None:
            return self.group._wrap_raw(table.pow(exponent))
        return self.group._wrap_raw(_scalar_mult(self._jac(), exponent))

    def inverse(self) -> "EcPoint":
        if self.x is None:
            return self
        return EcPoint(self.group, self.x, P - self.y)

    def is_identity(self) -> bool:
        return self.x is None

    # -- protocol plumbing --------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EcPoint)
            and self.x == other.x
            and self.y == other.y
            and self.group.params.name == other.group.params.name
        )

    def __hash__(self) -> int:
        return hash((self.value, self.group.params.name))

    def __repr__(self) -> str:
        if self.x is None:
            return "EcPoint(identity)"
        return f"EcPoint(x={self.x:#x})"

    def __reduce__(self):
        # Same singleton-restoring scheme as Schnorr groups: the group
        # rides along as get_group("P256"), keeping worker-process
        # fixed-base caches warm across parallel-mixing tasks.
        return (_point_from_value, (self.group, self.value))


def _point_from_value(group: "EcGroup", value: int) -> EcPoint:
    return group.element(value)


class EcGroup(GroupBackend):
    """P-256 as a :class:`~repro.crypto.groups.GroupBackend`."""

    def __init__(self, params: EcParams = P256_PARAMS):
        super().__init__()
        self.params = params
        self.q = params.n
        self.g = EcPoint(self, params.gx, params.gy)
        self.identity = EcPoint(self, None, None)

    def __reduce__(self):
        from repro.crypto.groups import get_group

        return (get_group, (self.params.name,))

    # -- fast exponentiation hooks ------------------------------------

    def _build_table(self, value: int) -> FixedBaseComb:
        point = self.element(value)
        return FixedBaseComb(JAC_OPS, N, point._jac())

    def _wrap_raw(self, raw: Tuple[int, int, int]) -> EcPoint:
        affine = _to_affine(raw)
        if affine is None:
            return self.identity
        return EcPoint(self, affine[0], affine[1])

    def multiexp(self, bases, exponents, window: int = 0) -> EcPoint:
        """Straus multi-exponentiation in Jacobian coordinates."""
        jbases = [
            b._jac() if isinstance(b, EcPoint) else self.element(b)._jac()
            for b in bases
        ]
        return self._wrap_raw(multiexp_ops(JAC_OPS, N, jbases, exponents, window))

    # -- construction -------------------------------------------------

    @property
    def element_bytes(self) -> int:
        return 33

    def element(self, value: int) -> EcPoint:
        """Decompress an integer-serialized point (validates on-curve)."""
        if value == 0:
            return self.identity
        prefix = value >> 256
        x = value & _XMASK
        if prefix not in (2, 3) or not 0 <= x < P:
            raise ValueError(f"invalid compressed point {value:#x}")
        rhs = (x * x * x - 3 * x + B) % P
        y = pow(rhs, _SQRT_EXP, P)
        if y * y % P != rhs:
            raise ValueError("x is not on the curve")
        if (y & 1) != (prefix & 1):
            y = P - y
        return EcPoint(self, x, y)

    def element_from_affine(self, x: int, y: int) -> EcPoint:
        """Wrap affine coordinates, validating the curve equation."""
        if not (0 <= x < P and 0 < y < P):
            raise ValueError("coordinates outside the field")
        if (y * y - (x * x * x - 3 * x + B)) % P != 0:
            raise ValueError("point is not on the curve")
        return EcPoint(self, x, y)

    # -- message encoding (Koblitz embedding) -------------------------

    def encode(self, message: bytes) -> EcPoint:
        """Embed up to ``message_bytes`` bytes into an x-coordinate.

        Uses the backends' shared fixed-width layout
        (``GroupBackend._payload_to_int``), then scans the low byte for
        a valid x; the even-y root is chosen so encoding is
        deterministic.
        """
        base = self._payload_to_int(message) << 8
        for i in range(256):
            x = base + i
            if x >= P:
                break
            rhs = (x * x * x - 3 * x + B) % P
            if jacobi(rhs, P) != 1:
                continue
            y = pow(rhs, _SQRT_EXP, P)
            if y & 1:
                y = P - y
            return EcPoint(self, x, y)
        raise EncodingError("no curve point found for message")  # ~2^-256

    def decode(self, element: EcPoint) -> bytes:
        """Invert :meth:`encode` (the y-coordinate carries no data)."""
        if element.x is None:
            raise EncodingError("identity does not carry an encoded message")
        return self._int_to_payload(element.x >> 8)

    # -- membership ----------------------------------------------------

    def is_prime_order(self, element: EcPoint) -> bool:
        """Curve-equation check (4 field multiplications).

        P-256 has prime order (cofactor 1), so on-curve membership IS
        prime-order membership — but an ``EcPoint`` built directly from
        raw coordinates (tamper instrumentation does this on the
        Schnorr backend) could lie on the *twist*, whose small-order
        subgroups are exactly what the batched shuffle verifier's
        subgroup gate exists to reject.  Deserialization paths
        (``element`` / ``element_from_affine``) already validate."""
        if not isinstance(element, EcPoint):
            return False
        if element.x is None:
            return True
        x, y = element.x, element.y
        return (y * y - (x * x * x - 3 * x + B)) % P == 0

    def __repr__(self) -> str:
        return f"EcGroup({self.params.name})"


def make_p256_group() -> EcGroup:
    """Factory used by the lazy registry entry in ``repro.crypto.groups``."""
    return EcGroup()
