"""Vector ciphertexts: multi-element messages mixed as one unit.

The paper embeds a message larger than one group element as several
elliptic-curve points ("a 64-byte message is two elliptic curve
points"), and all mixing operations treat the point-vector as a single
logical message: the same permutation moves all parts together, while
rerandomization and re-encryption act element-wise.

This module lifts :mod:`repro.crypto.elgamal` and
:mod:`repro.crypto.shuffle_proof` to vectors:

- :class:`CiphertextVector` — an immutable tuple of
  :class:`~repro.crypto.elgamal.AtomCiphertext` parts.
- element-wise ``encrypt_vector`` / ``reencrypt_vector`` /
  ``rerandomize_vector`` / ``decrypt_vector``;
- ``shuffle_vectors`` — one shared permutation, independent per-part
  randomness;
- ``prove_vector_shuffle`` / ``verify_vector_shuffle`` — the same
  cut-and-choose argument as the scalar proof, with the *whole vector*
  as the unit of permutation (so a cheating mixer cannot even permute
  parts across messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.elgamal import AtomCiphertext, AtomElGamal
from repro.crypto.groups import DeterministicRng, GroupBackend as Group, GroupElement
from repro.crypto.shuffle_proof import batch_rerand_check


@dataclass(frozen=True)
class CiphertextVector:
    """A logical message: a tuple of Atom ciphertext parts."""

    parts: Tuple[AtomCiphertext, ...]

    def __len__(self) -> int:
        return len(self.parts)

    def with_y_bot(self) -> "CiphertextVector":
        return CiphertextVector(tuple(p.with_y_bot() for p in self.parts))

    def to_bytes(self) -> bytes:
        return b"".join(p.to_bytes() for p in self.parts)

    @property
    def size_bytes(self) -> int:
        return sum(p.size_bytes for p in self.parts)


def encrypt_vector(
    scheme: AtomElGamal,
    public_key: GroupElement,
    message: bytes,
    rng: Optional[DeterministicRng] = None,
) -> Tuple[CiphertextVector, List[int]]:
    """Encrypt a byte string as a vector; returns (vector, randomness)."""
    elements = scheme.group.encode_chunks(message)
    cts, rands = [], []
    for el in elements:
        ct, r = scheme.encrypt(public_key, el, rng)
        cts.append(ct)
        rands.append(r)
    return CiphertextVector(tuple(cts)), rands


def decrypt_vector(scheme: AtomElGamal, secret: int, vector: CiphertextVector) -> bytes:
    """Decrypt a fully-peeled vector back to bytes."""
    return scheme.group.decode_chunks(scheme.decrypt(secret, p) for p in vector.parts)


def plaintext_of(scheme: AtomElGamal, vector: CiphertextVector) -> bytes:
    """Read the plaintext out of a vector whose layers are all peeled
    (the exit groups' final state: each part's ``c`` is the message)."""
    return scheme.group.decode_chunks(p.c for p in vector.parts)


def reencrypt_vector(
    scheme: AtomElGamal,
    secret: int,
    next_public_key: Optional[GroupElement],
    vector: CiphertextVector,
    rng: Optional[DeterministicRng] = None,
) -> CiphertextVector:
    """Element-wise out-of-order ReEnc."""
    return CiphertextVector(
        tuple(scheme.reencrypt(secret, next_public_key, p, rng) for p in vector.parts)
    )


def rerandomize_vector(
    scheme: AtomElGamal,
    public_key: GroupElement,
    vector: CiphertextVector,
    randomness: Optional[Sequence[int]] = None,
    rng: Optional[DeterministicRng] = None,
) -> CiphertextVector:
    """Element-wise rerandomization (used by vector shuffles)."""
    if randomness is None:
        randomness = [scheme.group.random_scalar(rng) for _ in vector.parts]
    if len(randomness) != len(vector.parts):
        raise ValueError("randomness arity mismatch")
    return CiphertextVector(
        tuple(
            scheme.rerandomize(public_key, p, randomness=r)
            for p, r in zip(vector.parts, randomness)
        )
    )


def shuffle_vectors(
    scheme: AtomElGamal,
    public_key: GroupElement,
    vectors: Sequence[CiphertextVector],
    rng: Optional[DeterministicRng] = None,
) -> Tuple[List[CiphertextVector], List[int], List[List[int]]]:
    """Shuffle vectors as units: ``out[i] = Rerand(in[perm[i]], rands[i])``."""
    n = len(vectors)
    perm = list(range(n))
    if rng is not None:
        rng.shuffle(perm)
    else:
        import secrets as _secrets

        for i in range(n - 1, 0, -1):
            j = _secrets.randbelow(i + 1)
            perm[i], perm[j] = perm[j], perm[i]
    rands = [
        [scheme.group.random_scalar(rng) for _ in vectors[perm[i]].parts]
        for i in range(n)
    ]
    shuffled = [
        rerandomize_vector(scheme, public_key, vectors[perm[i]], rands[i])
        for i in range(n)
    ]
    return shuffled, perm, rands


# ---------------------------------------------------------------------------
# Vector cut-and-choose shuffle proof (same structure as the scalar one).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VectorShuffleRound:
    intermediate: Tuple[CiphertextVector, ...]
    opened_perm: Tuple[int, ...]
    opened_rands: Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class VectorShuffleProof:
    rounds: Tuple[VectorShuffleRound, ...]
    challenge_bits: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        if not self.rounds:
            return 8
        per_round = sum(v.size_bytes for v in self.rounds[0].intermediate)
        per_round += sum(8 + 32 * len(r) for r in self.rounds[0].opened_rands)
        return len(self.rounds) * per_round + 8


def _vector_challenge_bits(
    group: Group,
    public_key: GroupElement,
    inputs: Sequence[CiphertextVector],
    outputs: Sequence[CiphertextVector],
    intermediates: Sequence[Sequence[CiphertextVector]],
    rounds: int,
) -> List[int]:
    parts: List[bytes] = [b"repro.vecshufproof.v1", public_key.to_bytes()]
    for vec in inputs:
        parts.append(vec.to_bytes())
    for vec in outputs:
        parts.append(vec.to_bytes())
    for vecs in intermediates:
        for vec in vecs:
            parts.append(vec.to_bytes())
    seed = group.hash_to_scalar(*parts)
    rng = DeterministicRng(seed.to_bytes(32, "big"))
    return [rng.randint(0, 1) for _ in range(rounds)]


def prove_vector_shuffle(
    scheme: AtomElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextVector],
    outputs: Sequence[CiphertextVector],
    perm: Sequence[int],
    rands: Sequence[Sequence[int]],
    rounds: int = 16,
    rng: Optional[DeterministicRng] = None,
) -> VectorShuffleProof:
    """Prove ``outputs`` is a vector shuffle of ``inputs``."""
    group = scheme.group
    n = len(inputs)
    if len(outputs) != n or len(perm) != n or len(rands) != n:
        raise ValueError("vector shuffle witness does not match sizes")

    intermediates: List[List[CiphertextVector]] = []
    witnesses = []
    for _ in range(rounds):
        vecs, sigma_perm, tau = shuffle_vectors(scheme, public_key, inputs, rng)
        intermediates.append(vecs)
        witnesses.append((sigma_perm, tau))

    bits = _vector_challenge_bits(
        group, public_key, inputs, outputs, intermediates, rounds
    )

    proof_rounds: List[VectorShuffleRound] = []
    for (sigma_perm, tau), intermediate, bit in zip(witnesses, intermediates, bits):
        if bit == 0:
            opened_perm = list(sigma_perm)
            opened_rands = [tuple(t) for t in tau]
        else:
            sigma_inv = [0] * n
            for i, s in enumerate(sigma_perm):
                sigma_inv[s] = i
            opened_perm = [sigma_inv[perm[i]] for i in range(n)]
            opened_rands = [
                tuple(
                    (rands[i][j] - tau[opened_perm[i]][j]) % group.q
                    for j in range(len(rands[i]))
                )
                for i in range(n)
            ]
        proof_rounds.append(
            VectorShuffleRound(
                intermediate=tuple(intermediate),
                opened_perm=tuple(opened_perm),
                opened_rands=tuple(opened_rands),
            )
        )
    return VectorShuffleProof(rounds=tuple(proof_rounds), challenge_bits=tuple(bits))


def verify_vector_shuffle(
    scheme: AtomElGamal,
    public_key: GroupElement,
    inputs: Sequence[CiphertextVector],
    outputs: Sequence[CiphertextVector],
    proof: VectorShuffleProof,
    rounds: int = 16,
    batched: bool = True,
    weight_rng: Optional[DeterministicRng] = None,
) -> bool:
    """Verify a :class:`VectorShuffleProof`.

    By default each round's per-part rerandomization equations (over
    all ``n * parts`` ciphertext parts) are folded into one batched
    random-linear-combination check (two multi-exponentiations); pass
    ``batched=False`` for the element-wise reference path.
    """
    group = scheme.group
    n = len(inputs)
    if len(outputs) != n:
        return False
    if len(proof.rounds) != rounds or len(proof.challenge_bits) != rounds:
        return False

    intermediates = [r.intermediate for r in proof.rounds]
    expected = _vector_challenge_bits(
        group, public_key, inputs, outputs, intermediates, rounds
    )
    if list(proof.challenge_bits) != expected:
        return False

    for rnd, bit in zip(proof.rounds, expected):
        if len(rnd.intermediate) != n or len(rnd.opened_perm) != n:
            return False
        if len(rnd.opened_rands) != n:
            return False
        if sorted(rnd.opened_perm) != list(range(n)):
            return False
        source = inputs if bit == 0 else rnd.intermediate
        target = rnd.intermediate if bit == 0 else outputs
        for i in range(n):
            src = source[rnd.opened_perm[i]]
            if len(rnd.opened_rands[i]) != len(src.parts) or len(
                target[i].parts
            ) != len(src.parts):
                return False
        if batched:
            flat_sources, flat_targets, flat_rands = [], [], []
            for i in range(n):
                flat_sources.extend(source[rnd.opened_perm[i]].parts)
                flat_targets.extend(target[i].parts)
                flat_rands.extend(rnd.opened_rands[i])
            if not batch_rerand_check(
                group, public_key, flat_sources, flat_targets, flat_rands, weight_rng
            ):
                return False
            continue
        for i in range(n):
            src = source[rnd.opened_perm[i]]
            if any(p.Y is not None for p in src.parts):
                return False
            try:
                expect = rerandomize_vector(
                    scheme, public_key, src, randomness=rnd.opened_rands[i]
                )
            except ValueError:
                return False
            if expect != target[i]:
                return False
    return True
