"""Iterated butterfly permutation network (paper §3).

A butterfly network on ``W = 2^d`` nodes has ``d`` stages; in stage
``s``, node ``v`` exchanges with node ``v XOR 2^s``.  Czumaj and
Vöcking [26] showed that O(log M) *repetitions* of the full butterfly
produce an almost-uniform random permutation (on a constant fraction of
elements — dummy traffic covers the rest), for a total depth of
O(log^2 M).

Here each node forwards beta = 2 batches per iteration: one to itself
("straight" edge) and one to its butterfly partner ("cross" edge).
"""

from __future__ import annotations

import math
from typing import List

from repro.topology.base import PermutationNetwork


class IteratedButterflyNetwork(PermutationNetwork):
    """``repetitions`` full butterflies over ``2^log_width`` nodes."""

    def __init__(self, log_width: int, repetitions: int = 0):
        if log_width < 1:
            raise ValueError("log_width must be >= 1")
        self.log_width = log_width
        self.width = 1 << log_width
        # Paper: O(log M) repetitions; default to log2(width) repetitions.
        self.repetitions = repetitions if repetitions > 0 else log_width
        # depth counts mixing iterations: one per butterfly stage.
        self.depth = self.repetitions * log_width + 1
        self.beta = 2

    def stage_of_layer(self, layer: int) -> int:
        """Which butterfly stage (0..log_width-1) runs at this layer."""
        return layer % self.log_width

    def successors(self, layer: int, node: int) -> List[int]:
        if not 0 <= layer < self.depth - 1:
            raise IndexError(f"layer {layer} has no successors (depth {self.depth})")
        if not 0 <= node < self.width:
            raise IndexError(f"node {node} out of range")
        partner = node ^ (1 << self.stage_of_layer(layer))
        return [node, partner]

    @classmethod
    def for_messages(cls, num_messages: int) -> "IteratedButterflyNetwork":
        """Sized so each node handles O(1) messages."""
        log_width = max(1, math.ceil(math.log2(max(2, num_messages))))
        return cls(log_width=log_width)

    def __repr__(self) -> str:
        return (
            f"IteratedButterflyNetwork(width={self.width}, "
            f"repetitions={self.repetitions}, depth={self.depth})"
        )
