"""Abstract interface for Atom's layered permutation networks.

A topology is a layered DAG.  Every layer has the same number of nodes
(``width``); node ``v`` in layer ``t < depth - 1`` forwards one batch to
each of its ``beta`` successors in layer ``t + 1``.  The protocol engine
only needs three things from a topology:

- ``width`` / ``depth`` / ``beta``,
- ``successors(t, v)``: the next-layer node ids fed by node ``v``,
- how a node's shuffled ciphertext set is divided into batches
  (:func:`route_batches`).

Message-count bookkeeping: with ``M`` messages and width ``W``, each
node holds ``M / W`` ciphertexts per iteration; the division into
``beta`` even batches is exact when ``beta`` divides the node load
(callers pad with dummies otherwise, as the paper does for the
butterfly analysis).
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


class PermutationNetwork(abc.ABC):
    """A layered mixing topology with uniform branching factor."""

    #: nodes per layer
    width: int
    #: number of mixing iterations (layers of edges = depth; layers of
    #: nodes = depth + 1 conceptually, but the last layer only decrypts)
    depth: int
    #: branching factor: batches forwarded per node per iteration
    beta: int

    @abc.abstractmethod
    def successors(self, layer: int, node: int) -> List[int]:
        """Next-layer node ids that ``node`` in ``layer`` forwards to."""

    def predecessors(self, layer: int, node: int) -> List[int]:
        """Previous-layer node ids feeding ``node`` in ``layer`` (>=1)."""
        return [
            prev
            for prev in range(self.width)
            if node in self.successors(layer - 1, prev)
        ]

    def validate(self) -> None:
        """Sanity-check the wiring: every node has ``beta`` successors
        and total in-degree equals total out-degree per layer."""
        for layer in range(self.depth - 1):
            out_edges = 0
            for node in range(self.width):
                succ = self.successors(layer, node)
                if len(succ) != self.beta:
                    raise ValueError(
                        f"node {node} layer {layer} has {len(succ)} successors, "
                        f"expected beta={self.beta}"
                    )
                if any(not 0 <= s < self.width for s in succ):
                    raise ValueError("successor out of range")
                out_edges += len(succ)
            in_degrees = [0] * self.width
            for node in range(self.width):
                for s in self.successors(layer, node):
                    in_degrees[s] += 1
            if sum(in_degrees) != out_edges:
                raise ValueError("edge count mismatch")

    def node_load(self, num_messages: int) -> int:
        """Ciphertexts per node per iteration (requires even division)."""
        if num_messages % self.width:
            raise ValueError(
                f"{num_messages} messages do not divide evenly over "
                f"width {self.width}; pad with dummies first"
            )
        return num_messages // self.width

    def padded_message_count(self, num_messages: int) -> int:
        """Smallest count >= num_messages divisible by width * beta.

        Divisibility by ``width * beta`` guarantees both the per-node
        load and the per-batch split are exact at every iteration.
        """
        unit = self.width * self.beta
        return -(-num_messages // unit) * unit


def route_batches(items: Sequence[T], beta: int) -> List[List[T]]:
    """Divide a shuffled ciphertext set into ``beta`` evenly sized batches.

    Algorithm 1, step 2 ("Divide").  The set must already be shuffled;
    slicing contiguous runs is then a uniform split.
    """
    if len(items) % beta:
        raise ValueError(f"{len(items)} items do not divide into {beta} batches")
    per = len(items) // beta
    return [list(items[i * per: (i + 1) * per]) for i in range(beta)]
