"""Random permutation networks (paper §3).

Atom arranges its (logical) mixing nodes in a layered graph with
branching factor ``beta``; after ``T`` iterations of
shuffle-split-and-forward the output is a near-uniform random
permutation of the inputs.  Two topologies from the paper:

- :class:`repro.topology.square.SquareNetwork` — Håstad's square
  lattice shuffle: sqrt(M) nodes per layer, each connected to all
  nodes of the next layer, ``T ∈ O(1)`` iterations.  This is the
  topology used in all of the paper's experiments (T = 10).
- :class:`repro.topology.butterfly.IteratedButterflyNetwork` —
  O(log^2 M)-depth iterated butterfly with beta = 2.

Both subclass :class:`repro.topology.base.PermutationNetwork`, which
fixes the interface the protocol engine uses: layers of node ids,
per-node successor lists, and batch routing.
"""

from repro.topology.base import PermutationNetwork, route_batches
from repro.topology.square import SquareNetwork
from repro.topology.butterfly import IteratedButterflyNetwork

__all__ = [
    "PermutationNetwork",
    "SquareNetwork",
    "IteratedButterflyNetwork",
    "route_batches",
]
