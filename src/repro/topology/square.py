"""Håstad's square-lattice shuffle topology (paper §3, Figure 1).

Håstad [40] showed that repeatedly permuting the rows and columns of a
square matrix of M elements yields a near-uniform permutation after
O(1) iterations.  Viewed as a network: sqrt(M) nodes per layer, each
node shuffles sqrt(M) ciphertexts and forwards one batch to *every*
node of the next layer (beta = width).  Transposing the matrix between
iterations is exactly "send the i-th batch to the i-th node".

The paper runs this topology with T = 10 iterations for all end-to-end
experiments.  When there are fewer servers than nodes, multiple nodes
are emulated by one server (handled by the assignment layer, §4.7).
"""

from __future__ import annotations

from typing import List

from repro.topology.base import PermutationNetwork

#: Number of mixing iterations used in the paper's evaluation (§6.2).
PAPER_ITERATIONS = 10


class SquareNetwork(PermutationNetwork):
    """Fully connected layered topology: beta == width."""

    def __init__(self, width: int, depth: int = PAPER_ITERATIONS):
        if width < 1:
            raise ValueError("width must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.width = width
        self.depth = depth
        self.beta = width

    def successors(self, layer: int, node: int) -> List[int]:
        if not 0 <= layer < self.depth - 1:
            raise IndexError(f"layer {layer} has no successors (depth {self.depth})")
        if not 0 <= node < self.width:
            raise IndexError(f"node {node} out of range")
        return list(range(self.width))

    @classmethod
    def for_messages(cls, num_messages: int, depth: int = PAPER_ITERATIONS) -> "SquareNetwork":
        """Width ~ sqrt(M), the natural square-lattice sizing."""
        width = max(1, round(num_messages ** 0.5))
        return cls(width=width, depth=depth)

    def __repr__(self) -> str:
        return f"SquareNetwork(width={self.width}, depth={self.depth})"
