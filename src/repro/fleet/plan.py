"""Declarative fleet deployment plans.

A :class:`DeploymentPlan` is the single source of truth a fleet shares:
the protocol :class:`~repro.core.protocol.DeploymentConfig`, one
:class:`ProcessSpec` per server OS process (name, loopback port, the
group ids it hosts, an optional per-process state dir for the intake
write-ahead log), and the :class:`HealthCheck` policy the controller
gates readiness on.  Plans serialize to JSON so ``repro serve`` and
``repro fleet`` invocations in different processes agree byte-for-byte
on the deployment.

Groups *not* assigned to any process stay hosted inside the
coordinator process (as does the trustee), so a plan can shard any
subset of the mixnet.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import DeploymentConfig


class PlanError(ValueError):
    """Raised on malformed or inconsistent deployment plans."""


@dataclass(frozen=True)
class HealthCheck:
    """Readiness gating policy (named per the deploy-state idiom:
    Deployment/DeploymentPhase/DeploymentStatus/HealthCheck)."""

    #: poll cadence while waiting for a process to become ready
    interval_s: float = 0.1
    #: per-process readiness deadline; exceeding it fails the rollout
    timeout_s: float = 15.0
    #: socket deadline of one STATUS probe RPC
    probe_timeout_s: float = 2.0


@dataclass(frozen=True)
class ProcessSpec:
    """One server OS process: which groups it hosts and where."""

    name: str
    port: int
    gids: Tuple[int, ...]
    host: str = "127.0.0.1"
    #: directory for the process's intake WAL; None = volatile process
    state_dir: Optional[str] = None


@dataclass
class DeploymentPlan:
    config: DeploymentConfig
    processes: List[ProcessSpec]
    health: HealthCheck = field(default_factory=HealthCheck)
    #: where this plan was loaded from / saved to (for engine_config)
    path: Optional[str] = None

    def __post_init__(self) -> None:
        self.validate()

    # -- consistency ---------------------------------------------------

    def validate(self) -> None:
        if not self.processes:
            raise PlanError("a fleet plan needs at least one process")
        names = [p.name for p in self.processes]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate process names in plan: {names}")
        if any(not name for name in names):
            raise PlanError("process names must be non-empty")
        ports = [(p.host, p.port) for p in self.processes]
        if len(set(ports)) != len(ports):
            raise PlanError(f"duplicate (host, port) pairs in plan: {ports}")
        seen: Dict[int, str] = {}
        for proc in self.processes:
            if not proc.gids:
                raise PlanError(f"process {proc.name!r} hosts no groups")
            for gid in proc.gids:
                if not 0 <= gid < self.config.num_groups:
                    raise PlanError(
                        f"process {proc.name!r} hosts gid {gid}, outside "
                        f"0..{self.config.num_groups - 1}"
                    )
                if gid in seen:
                    raise PlanError(
                        f"gid {gid} assigned to both {seen[gid]!r} "
                        f"and {proc.name!r}"
                    )
                seen[gid] = proc.name

    # -- lookups -------------------------------------------------------

    @property
    def placement(self) -> Dict[int, str]:
        """gid -> owning process name (unassigned gids are absent)."""
        return {
            gid: proc.name for proc in self.processes for gid in proc.gids
        }

    def process(self, name: str) -> ProcessSpec:
        for proc in self.processes:
            if proc.name == name:
                return proc
        raise PlanError(
            f"no process {name!r} in plan "
            f"(have {[p.name for p in self.processes]})"
        )

    def engine_config(self) -> DeploymentConfig:
        """The coordinator-side config driving this plan: identical
        protocol parameters, transport switched to the fleet."""
        if self.path is None:
            raise PlanError("plan must be saved before engine_config()")
        return dataclasses.replace(
            self.config, transport="fleet", fleet_plan=str(self.path)
        )

    def serve_config(self) -> DeploymentConfig:
        """The config a ``repro serve`` process instantiates: the same
        protocol parameters with all coordinator-side runtime wiring
        (fleet transport, durable store, chaos plans, process pools)
        stripped — the serve process journals its own intake WAL."""
        return dataclasses.replace(
            self.config,
            transport="inproc",
            fleet_plan=None,
            state_dir=None,
            net_faults=None,
            parallelism=1,
            heartbeat=False,
        )

    # -- JSON ----------------------------------------------------------

    def to_json(self) -> str:
        cfg = {}
        for f in dataclasses.fields(DeploymentConfig):
            value = getattr(self.config, f.name)
            if isinstance(value, bytes):
                value = {"__bytes__": value.hex()}
            cfg[f.name] = value
        obj = {
            "config": cfg,
            "health": dataclasses.asdict(self.health),
            "processes": [dataclasses.asdict(p) for p in self.processes],
        }
        return json.dumps(obj, indent=2)

    def save(self, path) -> "DeploymentPlan":
        Path(path).write_text(self.to_json())
        self.path = str(path)
        return self

    @classmethod
    def from_json(cls, text: str, path: Optional[str] = None):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"plan is not valid JSON: {exc}") from exc
        known = {f.name for f in dataclasses.fields(DeploymentConfig)}
        cfg = {}
        for name, value in obj.get("config", {}).items():
            if name not in known:
                raise PlanError(f"unknown config field {name!r} in plan")
            if isinstance(value, dict) and "__bytes__" in value:
                value = bytes.fromhex(value["__bytes__"])
            cfg[name] = value
        try:
            config = DeploymentConfig(**cfg)
            processes = [
                ProcessSpec(
                    name=p["name"],
                    port=p["port"],
                    gids=tuple(p["gids"]),
                    host=p.get("host", "127.0.0.1"),
                    state_dir=p.get("state_dir"),
                )
                for p in obj.get("processes", [])
            ]
            health = HealthCheck(**obj.get("health", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanError(f"malformed plan: {exc}") from exc
        return cls(
            config=config, processes=processes, health=health, path=path
        )

    @classmethod
    def load(cls, path) -> "DeploymentPlan":
        return cls.from_json(Path(path).read_text(), path=str(path))

    # -- construction helper -------------------------------------------

    @classmethod
    def build(
        cls,
        config: DeploymentConfig,
        num_processes: int,
        base_port: int = 9500,
        ports: Optional[List[int]] = None,
        state_root: Optional[str] = None,
        health: Optional[HealthCheck] = None,
    ) -> "DeploymentPlan":
        """Split ``num_groups`` round-robin over ``num_processes``
        loopback processes — the shape the scaling benchmark and the
        smoke scripts use."""
        if not 1 <= num_processes <= config.num_groups:
            raise PlanError(
                f"need 1..{config.num_groups} processes for "
                f"{config.num_groups} groups, got {num_processes}"
            )
        assignments: List[List[int]] = [[] for _ in range(num_processes)]
        for gid in range(config.num_groups):
            assignments[gid % num_processes].append(gid)
        processes = []
        for i, gids in enumerate(assignments):
            state_dir = (
                str(Path(state_root) / f"p{i}") if state_root else None
            )
            port = ports[i] if ports else base_port + i
            processes.append(
                ProcessSpec(
                    name=f"p{i}", port=port, gids=tuple(gids),
                    state_dir=state_dir,
                )
            )
        return cls(
            config=config,
            processes=processes,
            health=health or HealthCheck(),
        )
