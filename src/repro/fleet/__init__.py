"""Multi-process fleet deployments (ROADMAP item 1).

The paper's headline claim is *horizontal* scaling: throughput grows
with the number of real servers.  This package turns the single-process
deployment into a fleet of OS processes:

- :mod:`repro.fleet.plan` — the declarative :class:`DeploymentPlan`
  (which groups live in which process, on which port, under which
  health-check policy), JSON on disk.
- :mod:`repro.fleet.server` — the ``repro serve`` process: hosts the
  ServerNodes for its assigned groups behind a TCP socket, re-deriving
  their GroupContexts from the round's deterministic-rng epoch mark and
  journaling intake to a per-process write-ahead log so a respawn
  rejoins mid-stream.
- :mod:`repro.fleet.transport` — the coordinator-side
  :class:`FleetTransport`: routes envelopes to the owning process (or
  to in-coordinator nodes for unassigned groups / the trustee).
- :mod:`repro.fleet.controller` — the :class:`FleetController` behind
  ``repro fleet up|status|roll|down``: spawns processes, gates on
  readiness, and performs rolling restarts.
"""

from repro.fleet.controller import (
    DeploymentPhase,
    DeploymentStatus,
    FleetController,
    FleetError,
    ProcessStatus,
)
from repro.fleet.plan import DeploymentPlan, HealthCheck, ProcessSpec
from repro.fleet.transport import FleetTransport

__all__ = [
    "DeploymentPhase",
    "DeploymentPlan",
    "DeploymentStatus",
    "FleetController",
    "FleetError",
    "FleetTransport",
    "HealthCheck",
    "ProcessSpec",
    "ProcessStatus",
]
