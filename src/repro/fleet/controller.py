"""Spawn, probe, roll, and stop a fleet of ``repro serve`` processes.

The :class:`FleetController` is the operational half of the fleet
layer (state-model naming follows the deploy idiom:
Deployment/DeploymentPhase/DeploymentStatus/HealthCheck):

- ``up()`` — spawn one OS process per :class:`ProcessSpec` and gate on
  readiness: poll a FLEET_STATUS RPC under the plan's
  :class:`~repro.fleet.plan.HealthCheck` policy, failing loudly (with
  the child's log tail) if a child exits during spawn, its port is
  taken, or the health check never turns ready.
- ``roll()`` — rolling restart, one process at a time: drain
  (FLEET_SHUTDOWN + SIGTERM) → wait for exit → respawn → wait ready.
  With per-process state dirs the respawned process replays its WAL
  and rejoins the stream where it left off.
- ``replace()`` — node replacement via checkpoint shipping: build a
  bundle from the dead process's journal (live suffix only), archive
  the old layout, respawn, BUNDLE_INSTALL the bundle — O(state)
  restore instead of O(history) replay.
- ``status()`` / ``down()`` — probe or terminate the fleet.  Runtime
  state (pids, log paths) is kept in ``fleet.json`` next to the logs so
  a later CLI invocation can status/down a fleet it did not spawn.
"""

from __future__ import annotations

import enum
import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.crypto.groups import get_group
from repro.fleet.plan import DeploymentPlan, ProcessSpec
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope
from repro.net.transport import _LEN


class FleetError(RuntimeError):
    """A fleet operation failed (spawn, readiness, roll, ...)."""


class DeploymentPhase(str, enum.Enum):
    PENDING = "pending"
    STARTING = "starting"
    READY = "ready"
    DRAINING = "draining"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass
class ProcessStatus:
    name: str
    phase: DeploymentPhase
    pid: Optional[int] = None
    detail: str = ""


@dataclass
class DeploymentStatus:
    phase: DeploymentPhase
    processes: List[ProcessStatus] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"fleet: {self.phase.value}"]
        for proc in self.processes:
            pid = f" pid={proc.pid}" if proc.pid else ""
            detail = f" ({proc.detail})" if proc.detail else ""
            lines.append(
                f"  {proc.name}: {proc.phase.value}{pid}{detail}"
            )
        return "\n".join(lines)


class FleetController:
    def __init__(
        self,
        plan: DeploymentPlan,
        runtime_dir: Optional[str] = None,
    ):
        if plan.path is None:
            raise FleetError(
                "the plan must be saved to disk (serve processes load "
                "it by path)"
            )
        self.plan = plan
        self.group = get_group(plan.config.crypto_group)
        base = runtime_dir or str(Path(plan.path).parent / "fleet-run")
        self.runtime_dir = Path(base)
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        self._children: Dict[str, subprocess.Popen] = {}

    # -- spawn hooks (overridable in tests) ----------------------------

    def _command(self, spec: ProcessSpec) -> List[str]:
        return [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--plan",
            str(self.plan.path),
            "--name",
            spec.name,
        ]

    def _log_path(self, name: str) -> Path:
        return self.runtime_dir / f"{name}.log"

    def _spawn(self, spec: ProcessSpec) -> subprocess.Popen:
        log = open(self._log_path(spec.name), "ab")
        try:
            child = subprocess.Popen(
                self._command(spec),
                stdout=log,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
            )
        finally:
            log.close()
        self._children[spec.name] = child
        return child

    def _log_tail(self, name: str, lines: int = 6) -> str:
        try:
            text = self._log_path(name).read_text(errors="replace")
        except OSError:
            return "<no log>"
        tail = text.strip().splitlines()[-lines:]
        return "\n".join(tail) if tail else "<empty log>"

    # -- runtime state file --------------------------------------------

    @property
    def _state_path(self) -> Path:
        return self.runtime_dir / "fleet.json"

    def _save_state(self) -> None:
        state = {
            name: child.pid for name, child in self._children.items()
        }
        self._state_path.write_text(json.dumps(state, indent=2))

    def _load_pids(self) -> Dict[str, int]:
        pids = {
            name: child.pid for name, child in self._children.items()
        }
        if not pids and self._state_path.exists():
            pids = json.loads(self._state_path.read_text())
        return pids

    # -- probes --------------------------------------------------------

    def _rpc(
        self,
        spec: ProcessSpec,
        payload,
        expect: "ev.Kind",
        timeout: Optional[float] = None,
    ):
        """One control RPC on a throwaway connection; returns the reply
        payload, raising on the wrong reply kind (a Fault's message is
        surfaced verbatim)."""
        env = ev.wrap(payload, 0, ev.COORDINATOR, ev.CONTROL)
        frame = env.to_bytes(self.group)
        if timeout is None:
            timeout = self.plan.health.probe_timeout_s
        with socket.create_connection(
            (spec.host, spec.port), timeout=timeout
        ) as conn:
            conn.sendall(_LEN.pack(len(frame)) + frame)
            (count,) = _LEN.unpack(_recv_exact(conn, _LEN.size))
            replies = []
            for _ in range(count):
                (length,) = _LEN.unpack(_recv_exact(conn, _LEN.size))
                replies.append(
                    Envelope.from_bytes(
                        _recv_exact(conn, length), self.group
                    )
                )
        if not replies or replies[0].kind is not expect:
            got = replies[0] if replies else None
            detail = (
                got.payload.message
                if got is not None and got.kind is ev.Kind.FAULT
                else (got.kind.name if got is not None else "nothing")
            )
            raise FleetError(
                f"process {spec.name!r} answered {payload.kind.name} "
                f"with {detail}"
            )
        return replies[0].payload

    def _probe(self, spec: ProcessSpec):
        """One FLEET_STATUS RPC; returns the FleetStatusReply payload
        or raises OSError-family errors."""
        return self._rpc(spec, ev.FleetStatus(), ev.Kind.FLEET_STATUS_REPLY)

    def _wait_ready(self, spec: ProcessSpec) -> None:
        """Poll until ready or fail loudly: child exit and deadline
        overrun both name the process and quote its log tail."""
        health = self.plan.health
        deadline = time.monotonic() + health.timeout_s
        while True:
            child = self._children.get(spec.name)
            if child is not None and child.poll() is not None:
                raise FleetError(
                    f"fleet process {spec.name!r} exited with code "
                    f"{child.returncode} during startup; log tail:\n"
                    f"{self._log_tail(spec.name)}"
                )
            try:
                status = self._probe(spec)
                if status.ready:
                    if status.name != spec.name:
                        raise FleetError(
                            f"port {spec.port} answered as "
                            f"{status.name!r}, expected {spec.name!r} — "
                            "is another fleet using this port?"
                        )
                    return
            except (OSError, ev.WireFormatError):
                pass  # not up yet (conn refused / partial) — keep polling
            if time.monotonic() > deadline:
                raise FleetError(
                    f"fleet process {spec.name!r} never became ready "
                    f"within {health.timeout_s:.1f}s; log tail:\n"
                    f"{self._log_tail(spec.name)}"
                )
            time.sleep(health.interval_s)

    # -- operations ----------------------------------------------------

    def up(self) -> DeploymentStatus:
        """Spawn every process, then gate on readiness.  Any failure
        tears the partial fleet down before raising."""
        for spec in self.plan.processes:
            self._spawn(spec)
        self._save_state()
        try:
            for spec in self.plan.processes:
                self._wait_ready(spec)
        except FleetError:
            self.down()
            raise
        return self.status()

    def status(self) -> DeploymentStatus:
        pids = self._load_pids()
        procs: List[ProcessStatus] = []
        worst = DeploymentPhase.READY
        for spec in self.plan.processes:
            pid = pids.get(spec.name)
            try:
                reply = self._probe(spec)
                phase = (
                    DeploymentPhase.READY
                    if reply.ready
                    else DeploymentPhase.STARTING
                )
                procs.append(
                    ProcessStatus(
                        spec.name,
                        phase,
                        pid=reply.pid,
                        detail=(
                            f"gids={list(reply.gids)} "
                            f"open_rounds={list(reply.open_rounds)}"
                        ),
                    )
                )
            except (OSError, ev.WireFormatError) as exc:
                procs.append(
                    ProcessStatus(
                        spec.name,
                        DeploymentPhase.STOPPED,
                        pid=pid,
                        detail=str(exc),
                    )
                )
                worst = DeploymentPhase.STOPPED
            else:
                if procs[-1].phase is not DeploymentPhase.READY:
                    worst = DeploymentPhase.STARTING
        return DeploymentStatus(phase=worst, processes=procs)

    def roll(self) -> None:
        """Rolling restart: one process (= one slice of groups) at a
        time, so a stream driving the fleet keeps making progress."""
        for spec in self.plan.processes:
            self._stop_process(spec)
            self._spawn(spec)
            self._save_state()
            self._wait_ready(spec)

    def replace(self, name: str) -> int:
        """Replace one (typically dead) process via checkpoint
        shipping: distill its state dir's journal into a bundle —
        O(state): the compaction liveness rules keep only what a
        restore can need — archive the old layout, respawn, and ship
        the bundle to the fresh process (BUNDLE_INSTALL), which
        replays it and rejoins the stream.  Returns the number of
        shipped records (0 when the process had no state dir: plain
        respawn, mid-round healing stays the heartbeat+buddy path).
        """
        from repro.fleet.server import fleet_log_root, fleet_shipper
        from repro.store.segments import LogDir

        spec = self.plan.process(name)
        self._stop_process(spec)  # no-op beyond probing when already dead
        bundle = None
        if spec.state_dir is not None:
            root = fleet_log_root(spec.state_dir)
            if LogDir.present(root, "fleet.wal"):
                bundle = fleet_shipper().build(root)
                # Archive the dead layout: the fresh process must start
                # empty (restoring from the bundle, never from a full
                # history replay) and the old segments stay inspectable.
                n = 0
                while True:
                    suffix = f"-replaced{n}" if n else "-replaced"
                    backup = root.with_name(root.name + suffix)
                    if not backup.exists():
                        break
                    n += 1
                root.rename(backup)
        self._spawn(spec)
        self._save_state()
        self._wait_ready(spec)
        if bundle is None:
            return 0
        reply = self._rpc(
            spec,
            ev.BundleInstall(data=bundle.to_bytes()),
            ev.Kind.CONTROL_OK,
            timeout=max(30.0, self.plan.health.timeout_s),
        )
        assert reply is not None
        return len(bundle.records)

    def _stop_process(self, spec: ProcessSpec, timeout_s: float = 10.0):
        pid = self._load_pids().get(spec.name)
        child = self._children.get(spec.name)
        # Socket-level drain first (portable flush of in-flight work),
        # then SIGTERM for processes we cannot reach.
        try:
            env = ev.wrap(
                ev.FleetShutdown(), 0, ev.COORDINATOR, ev.CONTROL
            )
            frame = env.to_bytes(self.group)
            with socket.create_connection(
                (spec.host, spec.port),
                timeout=self.plan.health.probe_timeout_s,
            ) as conn:
                conn.sendall(_LEN.pack(len(frame)) + frame)
                _recv_exact(conn, _LEN.size)  # wait for the ack count
        except OSError:
            pass
        if pid is not None:
            try:
                os.kill(pid, signal.SIGTERM)
            except (OSError, ProcessLookupError):
                pass
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if child is not None:
                if child.poll() is not None:
                    return
            elif pid is None or not _pid_alive(pid):
                return
            time.sleep(0.05)
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        if child is not None:
            child.wait(timeout=5)

    def kill(self, name: str) -> None:
        """SIGKILL one process (failure injection for tests): the
        heartbeat detector + buddy recovery must heal the stream."""
        spec = self.plan.process(name)
        pid = self._load_pids().get(spec.name)
        if pid is None:
            raise FleetError(f"no running pid recorded for {name!r}")
        os.kill(pid, signal.SIGKILL)
        child = self._children.get(name)
        if child is not None:
            child.wait(timeout=5)

    def down(self) -> None:
        for spec in self.plan.processes:
            self._stop_process(spec)
        self._children.clear()
        if self._state_path.exists():
            self._state_path.unlink()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def _recv_exact(conn: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = conn.recv(n - len(chunks))
        if not chunk:
            raise OSError("connection closed mid-frame")
        chunks += chunk
    return bytes(chunks)
