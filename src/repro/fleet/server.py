"""The ``repro serve`` process: one fleet member, behind one socket.

A serve process hosts the :class:`~repro.net.nodes.ServerNode` objects
for the group ids its :class:`~repro.fleet.plan.ProcessSpec` assigns,
all multiplexed behind a single listening TCP socket (framing identical
to :class:`~repro.net.transport.TcpTransport`: ``u32 length ||
envelope``, replies as ``u32 count`` + frames).  Envelopes addressed to
:data:`~repro.net.envelopes.CONTROL` drive the process itself; every
other destination dispatches to the node registered under
``(round_id, dest)``.

**Determinism.** The process never receives key material: a ROUND_OPEN
carries the coordinator's pre-draw :class:`DeterministicRng` mark
``(epoch_round, seed, counter)`` and the process re-runs
``Directory.form_groups`` from that mark, yielding byte-identical
:class:`~repro.core.group.GroupContext` objects (group formation is a
pure function of the mark — server identity keys never enter round
crypto).  A repeated ROUND_OPEN for a round id means the coordinator
rebuilt the round (abort retry / rekey): the old per-round state is
discarded.

**Durability.** With a ``state_dir`` the process journals ROUND_OPEN /
ROUND_CLOSE and every *accepted* intake envelope to a write-ahead log
(fleet-local record types, ignored by the coordinator-side store's
scanner).  A respawned process replays the log — re-deriving contexts
from the journaled mark and re-handling the intake envelopes under
their original request ids, which also repopulates the idempotency
dedup cache — and rejoins the stream mid-flight.  This is what makes
``repro fleet roll`` (drain → SIGTERM → respawn → recover → rejoin)
safe between rounds.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import AtomDeployment
from repro.crypto.groups import DeterministicRng
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope
from repro.net.nodes import ServerNode
from repro.net.transport import _LEN
from repro.store.store import Store
from repro.store.wal import WriteAheadLog

logger = logging.getLogger(__name__)

#: fleet-local WAL record types — deliberately disjoint from
#: repro.store.checkpoint.RecordType (1..12); unknown types survive
#: either side's scanner, so the framing layer is shared verbatim.
REC_OPEN = 21
REC_CLOSE = 22
REC_ENVELOPE = 23


class _IntakeStore(Store):
    """Per-process store: journal accepted intake envelopes (the only
    hook :class:`ServerNode` calls) to the process WAL."""

    enabled = True

    def __init__(self, wal: Optional[WriteAheadLog]):
        self.wal = wal

    def envelope_accepted(self, env, group) -> None:
        if self.wal is not None and not self.replaying:
            self.wal.append(REC_ENVELOPE, env.to_bytes(group))


class FleetServer:
    """One plan-named fleet process; :meth:`serve_forever` is main()."""

    def __init__(self, plan, name: str):
        self.plan = plan
        self.spec = plan.process(name)
        self.config = plan.serve_config()
        # The deployment supplies the directory (fleet/beacon wiring
        # identical to the coordinator's) and the group backend; its
        # transport/store are never touched in serve mode.
        self.deployment = AtomDeployment(self.config)
        self.group = self.deployment.group
        #: serializes dispatch: the protocol relies on strict request
        #: ordering, and controller probes may arrive concurrently
        self.lock = threading.Lock()
        #: one worker: MIX returns MIX_PENDING fast so *other processes*
        #: mix concurrently; within a process, layers serialize anyway
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"atom-fleet-{name}-mix"
        )
        self.nodes: Dict[Tuple[int, int], ServerNode] = {}
        self.contexts = None
        #: (epoch_round, seed, counter) the current contexts derive from
        self.epoch: Optional[Tuple[int, bytes, int]] = None
        self.wal: Optional[WriteAheadLog] = None
        self.store = _IntakeStore(None)
        self.ready = False
        self.draining = threading.Event()
        self._listener: Optional[socket.socket] = None

    # -- round lifecycle ----------------------------------------------

    def _derive_contexts(self, epoch_round: int, seed: bytes, counter: int):
        mark = (epoch_round, seed, counter)
        if self.epoch != mark:
            rng = DeterministicRng.at(seed, counter)
            self.contexts = self.deployment.directory.form_groups(
                epoch_round, self.config.num_groups, rng
            )
            self.epoch = mark
            logger.info(
                "%s: derived %d contexts from epoch (round=%d, counter=%d)",
                self.spec.name, len(self.contexts), epoch_round, counter,
            )

    def _open_round(
        self,
        round_id: int,
        fresh: bool,
        epoch_round: int,
        seed: bytes,
        counter: int,
    ) -> None:
        self._derive_contexts(epoch_round, seed, counter)
        # Drop any earlier generation of this round (abort retry/rekey
        # rebuilds the Round object; stale intake must not survive).
        self._drop_round(round_id)
        for gid in self.spec.gids:
            self.nodes[(round_id, gid)] = ServerNode(
                self.contexts[gid],
                round_id,
                self.config.variant,
                pool=self.pool,
                store=self.store,
                data_plane=self.config.data_plane,
                spill_threshold=self.config.spill_threshold,
                spill_dir=self._spill_dir(),
            )

    def _spill_dir(self) -> Optional[str]:
        """Scratch spill directory for this process's nodes: under the
        process state dir when one exists, else the deployment's temp
        fallback (serve_config strips the coordinator's state_dir)."""
        if self.config.spill_threshold <= 0:
            return None
        if self.spec.state_dir is not None:
            path = Path(self.spec.state_dir) / "spill"
            path.mkdir(parents=True, exist_ok=True)
            return str(path)
        return self.deployment.spill_dir()

    def _drop_round(self, round_id: int) -> None:
        for key in [k for k in self.nodes if k[0] == round_id]:
            del self.nodes[key]

    # -- WAL -----------------------------------------------------------

    def _open_wal(self) -> None:
        if self.spec.state_dir is None:
            return
        state_dir = Path(self.spec.state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        path = state_dir / "fleet.wal"
        existed = path.exists() and path.stat().st_size > 0
        if existed:
            self._replay(WriteAheadLog.read(path))
        self.wal = WriteAheadLog(
            path, fsync_every=self.config.wal_fsync_every, fresh=not existed
        )
        self.store.wal = self.wal

    def _replay(self, scan) -> None:
        """Rebuild per-round state from the journal: for every round
        still open, re-derive contexts from its (latest) journaled mark
        and re-handle the accepted intake envelopes under their
        original request ids."""
        rounds: Dict[int, dict] = {}
        for rec in scan.records:
            if rec.type == REC_OPEN:
                meta = json.loads(rec.payload)
                rid = meta["round_id"]
                # a re-open supersedes all earlier state for the round
                rounds.pop(rid, None)
                rounds[rid] = {"meta": meta, "envs": []}
            elif rec.type == REC_CLOSE:
                rounds.pop(json.loads(rec.payload)["round_id"], None)
            elif rec.type == REC_ENVELOPE:
                env = Envelope.from_bytes(rec.payload, self.group)
                if env.round_id in rounds:
                    rounds[env.round_id]["envs"].append(env)
        self.store.replaying = True
        try:
            for rid, info in rounds.items():
                meta = info["meta"]
                self._open_round(
                    rid,
                    meta["fresh"],
                    meta["epoch_round"],
                    bytes.fromhex(meta["seed"]),
                    meta["counter"],
                )
                for env in info["envs"]:
                    node = self.nodes.get((rid, env.dest))
                    if node is not None:
                        node.handle(env)
                logger.info(
                    "%s: replayed round %d (%d intake envelopes)",
                    self.spec.name, rid, len(info["envs"]),
                )
        finally:
            self.store.replaying = False

    # -- dispatch ------------------------------------------------------

    def _fault(self, request: Envelope, message: str) -> Envelope:
        return ev.wrap(
            ev.Fault(code="transport-error", message=message),
            request.round_id,
            request.dest,
            ev.COORDINATOR,
        )

    def _handle_control(self, env: Envelope) -> List[Envelope]:
        kind = env.kind
        if kind is ev.Kind.ROUND_OPEN:
            p = env.payload
            if self.wal is not None:
                self.wal.append(
                    REC_OPEN,
                    json.dumps(
                        {
                            "round_id": env.round_id,
                            "fresh": p.fresh,
                            "epoch_round": p.epoch_round,
                            "seed": p.seed.hex(),
                            "counter": p.counter,
                        }
                    ).encode(),
                )
                self.wal.sync()
            self._open_round(
                env.round_id, p.fresh, p.epoch_round, p.seed, p.counter
            )
            return [self._ok(env)]
        if kind is ev.Kind.ROUND_CLOSE:
            if self.wal is not None:
                self.wal.append(
                    REC_CLOSE, json.dumps({"round_id": env.round_id}).encode()
                )
                self.wal.sync()
            self._drop_round(env.round_id)
            return [self._ok(env)]
        if kind is ev.Kind.FLEET_STATUS:
            reply = ev.FleetStatusReply(
                name=self.spec.name,
                ready=self.ready,
                pid=os.getpid(),
                gids=tuple(self.spec.gids),
                open_rounds=tuple(sorted({rid for rid, _ in self.nodes})),
            )
            return [ev.wrap(reply, env.round_id, ev.CONTROL, env.sender)]
        if kind is ev.Kind.FLEET_SHUTDOWN:
            self._start_drain("FLEET_SHUTDOWN")
            return [self._ok(env)]
        return [self._fault(env, f"unexpected control kind {kind.name}")]

    @staticmethod
    def _ok(env: Envelope) -> Envelope:
        return ev.wrap(ev.ControlOk(), env.round_id, ev.CONTROL, env.sender)

    def _dispatch(self, env: Envelope) -> List[Envelope]:
        if env.dest == ev.CONTROL:
            return self._handle_control(env)
        node = self.nodes.get((env.round_id, env.dest))
        if node is None:
            return [
                self._fault(
                    env,
                    f"no node {env.dest} open for round {env.round_id} "
                    f"on process {self.spec.name!r}",
                )
            ]
        try:
            return node.handle(env)
        except Exception as exc:  # crossed-wire: no raising back
            return [self._fault(env, repr(exc))]

    # -- socket loop ---------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self.draining.is_set():
                head = _recv_exact(conn, _LEN.size)
                if head is None:
                    return
                (length,) = _LEN.unpack(head)
                raw = _recv_exact(conn, length)
                if raw is None:
                    return
                env = Envelope.from_bytes(raw, self.group)
                with self.lock:
                    replies = self._dispatch(env)
                out = [r.to_bytes(self.group) for r in replies]
                conn.sendall(
                    _LEN.pack(len(out))
                    + b"".join(_LEN.pack(len(f)) + f for f in out)
                )
        except OSError:
            pass  # peer vanished; nothing to clean beyond the socket
        finally:
            conn.close()

    def _start_drain(self, why: str) -> None:
        if not self.draining.is_set():
            logger.info("%s: draining (%s)", self.spec.name, why)
            self.draining.set()
            listener = self._listener
            if listener is not None:
                try:
                    listener.close()
                except OSError:
                    pass

    def serve_forever(self) -> int:
        try:
            self._open_wal()
        except Exception as exc:
            print(
                f"[serve:{self.spec.name}] state-dir unusable: {exc!r}",
                flush=True,
            )
            return 2
        try:
            listener = socket.create_server(
                (self.spec.host, self.spec.port), reuse_port=False
            )
        except OSError as exc:
            print(
                f"[serve:{self.spec.name}] cannot bind "
                f"{self.spec.host}:{self.spec.port}: {exc}",
                flush=True,
            )
            return 3
        self._listener = listener
        signal.signal(
            signal.SIGTERM, lambda *_: self._start_drain("SIGTERM")
        )
        self.ready = True
        print(
            f"[serve:{self.spec.name}] ready on "
            f"{self.spec.host}:{self.spec.port} gids={list(self.spec.gids)} "
            f"pid={os.getpid()}",
            flush=True,
        )
        while not self.draining.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                break  # listener closed by drain
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()
        # Let any in-flight request finish, then seal the journal.
        with self.lock:
            if self.wal is not None:
                self.wal.close()
        self.pool.shutdown(wait=False, cancel_futures=True)
        print(f"[serve:{self.spec.name}] drained, exiting", flush=True)
        return 0


def _recv_exact(conn: socket.socket, n: int) -> Optional[bytes]:
    """Blocking exact read; None on clean EOF (peer closed)."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = conn.recv(n - len(chunks))
        if not chunk:
            return None
        chunks += chunk
    return bytes(chunks)


def run_server(plan_path: str, name: str) -> int:
    from repro.fleet.plan import DeploymentPlan

    plan = DeploymentPlan.load(plan_path)
    return FleetServer(plan, name).serve_forever()
