"""The ``repro serve`` process: one fleet member, behind one socket.

A serve process hosts the :class:`~repro.net.nodes.ServerNode` objects
for the group ids its :class:`~repro.fleet.plan.ProcessSpec` assigns,
all multiplexed behind a single listening TCP socket (framing identical
to :class:`~repro.net.transport.TcpTransport`: ``u32 length ||
envelope``, replies as ``u32 count`` + frames).  Envelopes addressed to
:data:`~repro.net.envelopes.CONTROL` drive the process itself; every
other destination dispatches to the node registered under
``(round_id, dest)``.

**Determinism.** The process never receives key material: a ROUND_OPEN
carries the coordinator's pre-draw :class:`DeterministicRng` mark
``(epoch_round, seed, counter)`` and the process re-runs
``Directory.form_groups`` from that mark, yielding byte-identical
:class:`~repro.core.group.GroupContext` objects (group formation is a
pure function of the mark — server identity keys never enter round
crypto).  A repeated ROUND_OPEN for a round id means the coordinator
rebuilt the round (abort retry / rekey): the old per-round state is
discarded.

**Durability.** With a ``state_dir`` the process journals ROUND_OPEN /
ROUND_CLOSE and every *accepted* intake envelope to its own segmented
log under ``<state_dir>/fleet-log/`` (fleet-local record types,
ignored by the coordinator-side store's scanner; a pre-sharding
``fleet.wal`` migrates in on first open).  A respawned process replays
the log — re-deriving contexts from the journaled mark and re-handling
the intake envelopes under their original request ids, which also
repopulates the idempotency dedup cache — and rejoins the stream
mid-flight.  This is what makes ``repro fleet roll`` (drain → SIGTERM
→ respawn → recover → rejoin) safe between rounds.

The journal stays bounded: every ROUND_CLOSE seals the active segment
and compacts — a closed round's OPEN/ENVELOPE/CLOSE records are all
dead (restart replays open rounds only), so long streams carry just
the open rounds' intake on disk.  And a replacement process restores
from a shipped checkpoint bundle (BUNDLE_INSTALL) instead of a full
history replay: O(state), not O(history).
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.protocol import AtomDeployment
from repro.crypto.groups import DeterministicRng
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope
from repro.net.nodes import ServerNode
from repro.net.transport import _LEN
from repro.store.compact import Compactor, fleet_liveness
from repro.store.segments import LogDir
from repro.store.ship import CheckpointShipper
from repro.store.store import Store

logger = logging.getLogger(__name__)

#: fleet-local WAL record types — deliberately disjoint from
#: repro.store.checkpoint.RecordType (1..13); unknown types survive
#: either side's scanner, so the framing layer is shared verbatim.
#: (repro.store.compact mirrors these values for its liveness policy.)
REC_OPEN = 21
REC_CLOSE = 22
REC_ENVELOPE = 23

#: legacy single-file journal name (pre-sharding process dirs)
FLEET_WAL = "fleet.wal"


def fleet_log_root(state_dir) -> Path:
    """The process journal's segmented log directory,
    ``<state_dir>/fleet-log/`` — its own directory so it can never
    collide with a coordinator store sharing the state dir.  A legacy
    top-level ``fleet.wal`` is moved inside (where :class:`LogDir`
    migrates it to segment 1 on open)."""
    state_dir = Path(state_dir)
    root = state_dir / "fleet-log"
    root.mkdir(parents=True, exist_ok=True)
    legacy = state_dir / FLEET_WAL
    if legacy.exists() and not LogDir.present(root, FLEET_WAL):
        legacy.replace(root / FLEET_WAL)
    return root


def fleet_shipper() -> CheckpointShipper:
    """The bundle builder/installer for fleet intake journals."""
    return CheckpointShipper(
        liveness=fleet_liveness, legacy_name=FLEET_WAL, kind="fleet"
    )


class _IntakeStore(Store):
    """Per-process store: journal accepted intake envelopes (the only
    hook :class:`ServerNode` calls) to the process journal."""

    enabled = True

    def __init__(self, wal: Optional[LogDir]):
        self.wal = wal

    def envelope_accepted(self, env, group) -> None:
        if self.wal is not None and not self.replaying:
            self.wal.append(REC_ENVELOPE, env.to_bytes(group))


class FleetServer:
    """One plan-named fleet process; :meth:`serve_forever` is main()."""

    def __init__(self, plan, name: str):
        self.plan = plan
        self.spec = plan.process(name)
        self.config = plan.serve_config()
        # The deployment supplies the directory (fleet/beacon wiring
        # identical to the coordinator's) and the group backend; its
        # transport/store are never touched in serve mode.
        self.deployment = AtomDeployment(self.config)
        self.group = self.deployment.group
        #: serializes dispatch: the protocol relies on strict request
        #: ordering, and controller probes may arrive concurrently
        self.lock = threading.Lock()
        #: one worker: MIX returns MIX_PENDING fast so *other processes*
        #: mix concurrently; within a process, layers serialize anyway
        self.pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"atom-fleet-{name}-mix"
        )
        self.nodes: Dict[Tuple[int, int], ServerNode] = {}
        self.contexts = None
        #: (epoch_round, seed, counter) the current contexts derive from
        self.epoch: Optional[Tuple[int, bytes, int]] = None
        self.wal: Optional[LogDir] = None
        self.store = _IntakeStore(None)
        self.ready = False
        self.draining = threading.Event()
        self._listener: Optional[socket.socket] = None

    # -- round lifecycle ----------------------------------------------

    def _derive_contexts(self, epoch_round: int, seed: bytes, counter: int):
        mark = (epoch_round, seed, counter)
        if self.epoch != mark:
            rng = DeterministicRng.at(seed, counter)
            self.contexts = self.deployment.directory.form_groups(
                epoch_round, self.config.num_groups, rng
            )
            self.epoch = mark
            logger.info(
                "%s: derived %d contexts from epoch (round=%d, counter=%d)",
                self.spec.name, len(self.contexts), epoch_round, counter,
            )

    def _open_round(
        self,
        round_id: int,
        fresh: bool,
        epoch_round: int,
        seed: bytes,
        counter: int,
    ) -> None:
        self._derive_contexts(epoch_round, seed, counter)
        # Drop any earlier generation of this round (abort retry/rekey
        # rebuilds the Round object; stale intake must not survive).
        self._drop_round(round_id)
        for gid in self.spec.gids:
            self.nodes[(round_id, gid)] = ServerNode(
                self.contexts[gid],
                round_id,
                self.config.variant,
                pool=self.pool,
                store=self.store,
                data_plane=self.config.data_plane,
                spill_threshold=self.config.spill_threshold,
                spill_dir=self._spill_dir(),
            )

    def _spill_dir(self) -> Optional[str]:
        """Scratch spill directory for this process's nodes: under the
        process state dir when one exists, else the deployment's temp
        fallback (serve_config strips the coordinator's state_dir)."""
        if self.config.spill_threshold <= 0:
            return None
        if self.spec.state_dir is not None:
            path = Path(self.spec.state_dir) / "spill"
            path.mkdir(parents=True, exist_ok=True)
            return str(path)
        return self.deployment.spill_dir()

    def _drop_round(self, round_id: int) -> None:
        for key in [k for k in self.nodes if k[0] == round_id]:
            del self.nodes[key]

    # -- WAL -----------------------------------------------------------

    def _open_wal(self) -> None:
        if self.spec.state_dir is None:
            return
        root = fleet_log_root(self.spec.state_dir)
        existed = LogDir.present(root, FLEET_WAL)
        if existed:
            self._replay(LogDir.scan_dir(root, FLEET_WAL))
        self.wal = LogDir(
            root,
            fsync_every=self.config.wal_fsync_every,
            fresh=not existed,
            segment_bytes=self.config.wal_segment_bytes,
            segment_records=self.config.wal_segment_records,
            legacy_name=FLEET_WAL,
        )
        self.store.wal = self.wal

    def _truncate_closed(self) -> None:
        """ROUND_CLOSE made a round's journal records dead: seal the
        active segment and compact, so the disk footprint tracks the
        *open* rounds (bounded) rather than the stream length."""
        if self.wal is None:
            return
        try:
            self.wal.rotate()
            Compactor(fleet_liveness).compact(self.wal)
        except Exception:
            # Compaction is a disk-footprint optimization; a failure
            # must not fail the ROUND_CLOSE that triggered it.
            logger.exception("%s: journal truncation failed", self.spec.name)

    def _install_bundle(self, data: bytes) -> int:
        """BUNDLE_INSTALL: replace whatever journal this (fresh)
        process holds with the shipped live suffix, then replay it.
        Returns the number of restored records."""
        shipper = fleet_shipper()
        if self.spec.state_dir is None:
            # no disk: restore in memory only (still byte-identical —
            # replay is a pure function of the records)
            from repro.store.ship import Bundle

            bundle = data if isinstance(data, Bundle) else Bundle.from_bytes(data)
            if bundle.kind != "fleet":
                raise ValueError(f"bundle kind {bundle.kind!r} is not 'fleet'")
            scan_records = bundle.records
            self._replay_records(scan_records)
            return len(scan_records)
        if self.wal is not None:
            self.wal.close()
            self.wal = None
            self.store.wal = None
        root = fleet_log_root(self.spec.state_dir)
        # wipe the fresh (empty or superseded) layout: the bundle is
        # the authoritative state now
        for name in ("wal.manifest", "wal.manifest.tmp", FLEET_WAL):
            path = root / name
            if path.exists():
                path.unlink()
        for seg in root.glob("wal-*.seg"):
            seg.unlink()
        bundle = shipper.install(root, data)
        self.nodes.clear()
        self.epoch = None
        self._replay(LogDir.scan_dir(root, FLEET_WAL))
        self.wal = LogDir(
            root,
            fsync_every=self.config.wal_fsync_every,
            fresh=False,
            segment_bytes=self.config.wal_segment_bytes,
            segment_records=self.config.wal_segment_records,
            legacy_name=FLEET_WAL,
        )
        self.store.wal = self.wal
        return len(bundle.records)

    def _build_bundle(self) -> Tuple[bytes, int]:
        """BUNDLE_FETCH: distill this process's live suffix."""
        if self.spec.state_dir is None or self.wal is None:
            raise ValueError("process has no state dir; nothing to bundle")
        self.wal.sync()
        bundle = fleet_shipper().build(fleet_log_root(self.spec.state_dir))
        return bundle.to_bytes(), len(bundle.records)

    def _replay(self, scan) -> None:
        self._replay_records(scan.records)

    def _replay_records(self, records) -> None:
        """Rebuild per-round state from the journal: for every round
        still open, re-derive contexts from its (latest) journaled mark
        and re-handle the accepted intake envelopes under their
        original request ids."""
        rounds: Dict[int, dict] = {}
        for rec in records:
            if rec.type == REC_OPEN:
                meta = json.loads(rec.payload)
                rid = meta["round_id"]
                # a re-open supersedes all earlier state for the round
                rounds.pop(rid, None)
                rounds[rid] = {"meta": meta, "envs": []}
            elif rec.type == REC_CLOSE:
                rounds.pop(json.loads(rec.payload)["round_id"], None)
            elif rec.type == REC_ENVELOPE:
                env = Envelope.from_bytes(rec.payload, self.group)
                if env.round_id in rounds:
                    rounds[env.round_id]["envs"].append(env)
        self.store.replaying = True
        try:
            for rid, info in rounds.items():
                meta = info["meta"]
                self._open_round(
                    rid,
                    meta["fresh"],
                    meta["epoch_round"],
                    bytes.fromhex(meta["seed"]),
                    meta["counter"],
                )
                for env in info["envs"]:
                    node = self.nodes.get((rid, env.dest))
                    if node is not None:
                        node.handle(env)
                logger.info(
                    "%s: replayed round %d (%d intake envelopes)",
                    self.spec.name, rid, len(info["envs"]),
                )
        finally:
            self.store.replaying = False

    # -- dispatch ------------------------------------------------------

    def _fault(self, request: Envelope, message: str) -> Envelope:
        return ev.wrap(
            ev.Fault(code="transport-error", message=message),
            request.round_id,
            request.dest,
            ev.COORDINATOR,
        )

    def _handle_control(self, env: Envelope) -> List[Envelope]:
        kind = env.kind
        if kind is ev.Kind.ROUND_OPEN:
            p = env.payload
            if self.wal is not None:
                self.wal.append(
                    REC_OPEN,
                    json.dumps(
                        {
                            "round_id": env.round_id,
                            "fresh": p.fresh,
                            "epoch_round": p.epoch_round,
                            "seed": p.seed.hex(),
                            "counter": p.counter,
                        }
                    ).encode(),
                )
                self.wal.sync()
            self._open_round(
                env.round_id, p.fresh, p.epoch_round, p.seed, p.counter
            )
            return [self._ok(env)]
        if kind is ev.Kind.ROUND_CLOSE:
            if self.wal is not None:
                self.wal.append(
                    REC_CLOSE, json.dumps({"round_id": env.round_id}).encode()
                )
                self.wal.sync()
            self._drop_round(env.round_id)
            self._truncate_closed()
            return [self._ok(env)]
        if kind is ev.Kind.BUNDLE_INSTALL:
            try:
                count = self._install_bundle(env.payload.data)
            except Exception as exc:
                return [self._fault(env, f"bundle install failed: {exc!r}")]
            logger.info(
                "%s: installed checkpoint bundle (%d live records)",
                self.spec.name, count,
            )
            return [self._ok(env)]
        if kind is ev.Kind.BUNDLE_FETCH:
            try:
                data, records = self._build_bundle()
            except Exception as exc:
                return [self._fault(env, f"bundle build failed: {exc!r}")]
            return [
                ev.wrap(
                    ev.BundleData(data=data, records=records),
                    env.round_id, ev.CONTROL, env.sender,
                )
            ]
        if kind is ev.Kind.FLEET_STATUS:
            reply = ev.FleetStatusReply(
                name=self.spec.name,
                ready=self.ready,
                pid=os.getpid(),
                gids=tuple(self.spec.gids),
                open_rounds=tuple(sorted({rid for rid, _ in self.nodes})),
            )
            return [ev.wrap(reply, env.round_id, ev.CONTROL, env.sender)]
        if kind is ev.Kind.FLEET_SHUTDOWN:
            self._start_drain("FLEET_SHUTDOWN")
            return [self._ok(env)]
        return [self._fault(env, f"unexpected control kind {kind.name}")]

    @staticmethod
    def _ok(env: Envelope) -> Envelope:
        return ev.wrap(ev.ControlOk(), env.round_id, ev.CONTROL, env.sender)

    def _dispatch(self, env: Envelope) -> List[Envelope]:
        if env.dest == ev.CONTROL:
            return self._handle_control(env)
        node = self.nodes.get((env.round_id, env.dest))
        if node is None:
            return [
                self._fault(
                    env,
                    f"no node {env.dest} open for round {env.round_id} "
                    f"on process {self.spec.name!r}",
                )
            ]
        try:
            return node.handle(env)
        except Exception as exc:  # crossed-wire: no raising back
            return [self._fault(env, repr(exc))]

    # -- socket loop ---------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self.draining.is_set():
                head = _recv_exact(conn, _LEN.size)
                if head is None:
                    return
                (length,) = _LEN.unpack(head)
                raw = _recv_exact(conn, length)
                if raw is None:
                    return
                env = Envelope.from_bytes(raw, self.group)
                with self.lock:
                    replies = self._dispatch(env)
                out = [r.to_bytes(self.group) for r in replies]
                conn.sendall(
                    _LEN.pack(len(out))
                    + b"".join(_LEN.pack(len(f)) + f for f in out)
                )
        except OSError:
            pass  # peer vanished; nothing to clean beyond the socket
        finally:
            conn.close()

    def _start_drain(self, why: str) -> None:
        if not self.draining.is_set():
            logger.info("%s: draining (%s)", self.spec.name, why)
            self.draining.set()
            listener = self._listener
            if listener is not None:
                try:
                    listener.close()
                except OSError:
                    pass

    def serve_forever(self) -> int:
        try:
            self._open_wal()
        except Exception as exc:
            print(
                f"[serve:{self.spec.name}] state-dir unusable: {exc!r}",
                flush=True,
            )
            return 2
        try:
            listener = socket.create_server(
                (self.spec.host, self.spec.port), reuse_port=False
            )
        except OSError as exc:
            print(
                f"[serve:{self.spec.name}] cannot bind "
                f"{self.spec.host}:{self.spec.port}: {exc}",
                flush=True,
            )
            return 3
        self._listener = listener
        signal.signal(
            signal.SIGTERM, lambda *_: self._start_drain("SIGTERM")
        )
        self.ready = True
        print(
            f"[serve:{self.spec.name}] ready on "
            f"{self.spec.host}:{self.spec.port} gids={list(self.spec.gids)} "
            f"pid={os.getpid()}",
            flush=True,
        )
        while not self.draining.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                break  # listener closed by drain
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()
        # Let any in-flight request finish, then seal the journal.
        with self.lock:
            if self.wal is not None:
                self.wal.close()
        self.pool.shutdown(wait=False, cancel_futures=True)
        print(f"[serve:{self.spec.name}] drained, exiting", flush=True)
        return 0


def _recv_exact(conn: socket.socket, n: int) -> Optional[bytes]:
    """Blocking exact read; None on clean EOF (peer closed)."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = conn.recv(n - len(chunks))
        if not chunk:
            return None
        chunks += chunk
    return bytes(chunks)


def run_server(plan_path: str, name: str) -> int:
    from repro.fleet.plan import DeploymentPlan

    plan = DeploymentPlan.load(plan_path)
    return FleetServer(plan, name).serve_forever()
