"""Coordinator-side transport for a multi-process fleet.

:class:`FleetTransport` routes each envelope by destination: group ids
assigned in the :class:`~repro.fleet.plan.DeploymentPlan` go over a
persistent TCP connection to the owning ``repro serve`` process (same
``u32 length || envelope`` framing and error taxonomy as
:class:`~repro.net.transport.TcpTransport`), everything else — the
trustee, unassigned groups, buddy-recovered groups re-homed into the
coordinator — dispatches to locally registered nodes, zero-copy.

The control plane rides the same connection (strict request ordering
is what keeps rounds deterministic): ``open_round`` broadcasts a
ROUND_OPEN carrying the deterministic-rng epoch mark so every process
re-derives byte-identical GroupContexts, and ``unregister_round``
broadcasts ROUND_CLOSE so settled rounds are dropped (and not replayed
after a restart).

Connection failures surface as
:class:`~repro.net.transport.RetryableTransportError`, so the standard
:class:`~repro.net.resilience.ResilientTransport` wrapper transparently
re-dials a process that was restarted (rolling restart) between
requests.
"""

from __future__ import annotations

import logging
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.crypto.groups import GroupBackend as Group
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope
from repro.net.transport import (
    _LEN,
    _is_error_reply,
    RetryableTransportError,
    RpcTimeout,
    Transport,
    TransportError,
)

logger = logging.getLogger(__name__)

NodeKey = Tuple[int, int]


def _send_frames(conn: socket.socket, parts: List[bytes]) -> None:
    """Gathered send (``writev``) of a header + body frame list,
    tolerating short writes — avoids concatenating a large envelope
    just to prepend its length prefix."""
    views = [memoryview(p) for p in parts if p]
    while views:
        sent = conn.sendmsg(views)
        while views and sent >= len(views[0]):
            sent -= len(views[0])
            views.pop(0)
        if sent:
            views[0] = views[0][sent:]


class FleetTransport(Transport):
    name = "fleet"

    #: attempts/backoff for control-plane broadcasts (they bypass the
    #: ResilientTransport wrapper, which only sees node-addressed RPCs)
    _CONTROL_ATTEMPTS = 5
    _CONTROL_BACKOFF_S = 0.2
    _CONTROL_TIMEOUT_S = 30.0

    def __init__(self, group: Group, plan):
        self.group = group
        self.plan = plan
        #: gid -> owning process name
        self.placement: Dict[int, str] = plan.placement
        self._specs = {p.name: p for p in plan.processes}
        #: gids taken over by the coordinator after buddy recovery of a
        #: dead process — later rounds host them locally from the start
        self.rehomed: set = set()
        self._local: Dict[NodeKey, object] = {}
        self._conns: Dict[str, socket.socket] = {}
        #: (epoch_round, seed, counter) — the rng mark remote processes
        #: re-derive the current contexts from; refreshed on fresh opens
        self._epoch: Optional[Tuple[int, bytes, int]] = None
        self._closed = False

    # -- registry ------------------------------------------------------

    def register(self, round_id: int, node_id: int, node) -> None:
        if node_id in self.placement:
            # Remote-homed: the serve process builds this node itself
            # on ROUND_OPEN; a local registration would shadow it.
            return
        self._local[(round_id, node_id)] = node

    def rehome(self, round_id: int, gid: int, node) -> None:
        """Route ``gid`` to an in-coordinator node from now on: buddy
        recovery rebuilt the group locally after its process died."""
        self.rehomed.add(gid)
        self._local[(round_id, gid)] = node

    def unregister_round(self, round_id: int) -> None:
        for key in [k for k in self._local if k[0] == round_id]:
            del self._local[key]
        close = ev.wrap(
            ev.RoundClose(), round_id, ev.COORDINATOR, ev.CONTROL
        )
        for name in self._specs:
            try:
                self._control(name, close)
            except TransportError as exc:
                # Best-effort: a process that is down right now will
                # drop the round when its WAL replays the next OPEN.
                logger.warning(
                    "fleet: ROUND_CLOSE(%d) to %s failed: %s",
                    round_id, name, exc,
                )

    # -- round lifecycle (duck-typed hook, see AtomDeployment) ---------

    def open_round(self, round_id: int, fresh: bool, rng) -> None:
        """Broadcast the round's rng epoch mark to every process.

        Every call re-announces (even for an already-seen round id):
        a repeated open means the coordinator rebuilt the Round object
        (abort retry, §4.6 rekey) and the processes must reset their
        per-round state to match.
        """
        if rng is None:
            raise TransportError(
                "fleet transport needs a seeded run: remote processes "
                "derive group contexts from the DeterministicRng mark"
            )
        if fresh or self._epoch is None:
            self._epoch = (round_id, rng.seed, rng.counter)
        epoch_round, seed, counter = self._epoch
        payload = ev.RoundOpen(
            fresh=fresh, epoch_round=epoch_round, seed=seed, counter=counter
        )
        for name in self._specs:
            env = ev.wrap(payload, round_id, ev.COORDINATOR, ev.CONTROL)
            try:
                self._control(name, env)
            except TransportError as exc:
                # Best-effort: a dead process cannot open the round, but
                # its groups stall on first contact and buddy recovery
                # re-homes them into the coordinator; failing here would
                # kill the whole stream instead.
                logger.warning(
                    "fleet: ROUND_OPEN(%d) to %s failed: %s",
                    round_id, name, exc,
                )

    def revive(self, gid: int) -> None:
        """Buddy recovery revived ``gid``: drop the cached connection
        to its (dead) owner so nothing reuses the stale socket."""
        name = self.placement.get(gid)
        if name is not None:
            self._drop_connection(name)

    # -- request path --------------------------------------------------

    def request(self, env: Envelope, timeout=None) -> List[Envelope]:
        node = self._local.get((env.round_id, env.dest))
        if node is not None:
            return node.handle(env)
        name = (
            self.placement.get(env.dest)
            if env.dest not in self.rehomed
            else None
        )
        if name is None:
            raise TransportError(
                f"no node {env.dest} registered for round {env.round_id}"
            )
        return self._rpc(name, env, timeout)

    def _connection(self, name: str) -> socket.socket:
        conn = self._conns.get(name)
        if conn is None:
            spec = self._specs[name]
            try:
                conn = socket.create_connection((spec.host, spec.port))
            except OSError as exc:
                raise RetryableTransportError(
                    f"cannot reach fleet process {name!r} at "
                    f"{spec.host}:{spec.port}: {exc}"
                ) from exc
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conns[name] = conn
        return conn

    def _drop_connection(self, name: str) -> None:
        conn = self._conns.pop(name, None)
        if conn is not None:
            conn.close()

    def _rpc(self, name: str, env: Envelope, timeout=None) -> List[Envelope]:
        conn = self._connection(name)
        conn.settimeout(timeout)
        frame = env.to_bytes(self.group)
        replies: List[Envelope] = []
        try:
            # writev: a multi-megabyte MIX_BATCH frame ships without
            # being copied once more just to prepend its 4-byte length
            _send_frames(conn, [_LEN.pack(len(frame)), frame])
            (count,) = _LEN.unpack(self._recv_exact(conn, _LEN.size))
            for _ in range(count):
                (length,) = _LEN.unpack(self._recv_exact(conn, _LEN.size))
                replies.append(
                    Envelope.from_bytes(
                        self._recv_exact(conn, length), self.group
                    )
                )
        except socket.timeout as exc:
            self._drop_connection(name)
            raise RpcTimeout(
                f"request to fleet process {name!r} timed out "
                f"after {timeout}s"
            ) from exc
        except (OSError, ev.WireFormatError, TransportError) as exc:
            self._drop_connection(name)
            raise RetryableTransportError(
                f"request to fleet process {name!r} failed: {exc}"
            ) from exc
        for reply in replies:
            if _is_error_reply(reply):
                raise TransportError(
                    f"fleet process {name!r} failed: {reply.payload.message}"
                )
        return replies

    @staticmethod
    def _recv_exact(conn: socket.socket, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = conn.recv(n - len(chunks))
            if not chunk:
                raise RetryableTransportError("connection closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    # -- control plane -------------------------------------------------

    def _control(self, name: str, env: Envelope) -> List[Envelope]:
        """Send a control envelope with a built-in retry budget (these
        bypass the ResilientTransport wrapper, which only decorates the
        coordinator's node-addressed RPCs)."""
        last: Optional[Exception] = None
        for attempt in range(self._CONTROL_ATTEMPTS):
            if attempt:
                time.sleep(self._CONTROL_BACKOFF_S * attempt)
            try:
                return self._rpc(name, env, timeout=self._CONTROL_TIMEOUT_S)
            except (RetryableTransportError, RpcTimeout) as exc:
                last = exc
        raise TransportError(
            f"control RPC {env.kind.name} to fleet process {name!r} "
            f"failed after {self._CONTROL_ATTEMPTS} attempts: {last}"
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        for name in list(self._conns):
            self._drop_connection(name)
        self._local.clear()
        self._closed = True
