"""repro — a pure-Python reproduction of *Atom: Horizontally Scaling
Strong Anonymity* (Kwon, Corrigan-Gibbs, Devadas, Ford — SOSP 2017).

Package map:

- :mod:`repro.crypto` — rerandomizable ElGamal with out-of-order
  re-encryption, NIZKs, verifiable shuffles, DVSS/threshold keys.
- :mod:`repro.topology` — square and iterated-butterfly permutation
  networks.
- :mod:`repro.core` — the Atom protocol: group mixing (Algorithms 1
  and 2), trap variant with trustees, fault tolerance, blame.
- :mod:`repro.sim` — the calibrated performance simulator behind the
  paper's evaluation figures.
- :mod:`repro.apps` — microblogging and dialing.
- :mod:`repro.baselines` — Riposte (with real DPFs), Vuvuzela,
  Alpenhorn.
- :mod:`repro.analysis` — group-size math, anonymity metrics, cost
  estimates.

Quickstart::

    from repro.core import AtomDeployment, DeploymentConfig

    dep = AtomDeployment(DeploymentConfig(num_groups=2, variant="trap"))
    rnd = dep.start_round(0)
    for i in range(4):
        dep.submit_trap(rnd, f"hello {i}".encode(), entry_gid=i % 2)
    result = dep.run_round(rnd)
    print(result.messages)
"""

__version__ = "1.0.0"
