"""Anonymous microblogging over Atom (paper §5).

Users broadcast fixed-size short messages (the paper evaluates 160-byte
"tweets"); the exit servers publish the anonymized plaintexts to a
public bulletin board that anyone can read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core import AtomDeployment, DeploymentConfig
from repro.core.protocol import RoundResult

#: The paper's microblogging message size (§5).
TWEET_BYTES = 160


def check_post(post: bytes, limit: int) -> bytes:
    """Client-side size validation shared by the service and the
    scenario runner's workload builder."""
    if len(post) > limit:
        raise ValueError(
            f"post of {len(post)} bytes exceeds the {limit}-byte limit"
        )
    return post


@dataclass
class BulletinBoard:
    """Public append-only board of anonymized posts, by round."""

    posts_by_round: dict = field(default_factory=dict)

    def publish(self, round_id: int, messages: Sequence[bytes]) -> None:
        self.posts_by_round.setdefault(round_id, []).extend(messages)

    def read(self, round_id: int) -> List[bytes]:
        return list(self.posts_by_round.get(round_id, []))

    def all_posts(self) -> List[bytes]:
        return [m for msgs in self.posts_by_round.values() for m in msgs]


class MicroblogService:
    """Glue between an Atom deployment and a bulletin board."""

    def __init__(
        self,
        deployment: Optional[AtomDeployment] = None,
        config: Optional[DeploymentConfig] = None,
    ):
        if deployment is None:
            deployment = AtomDeployment(config or DeploymentConfig())
        self.deployment = deployment
        self.board = BulletinBoard()

    def run_round(self, round_id: int, posts: Sequence[bytes]) -> RoundResult:
        """Route one round of posts and publish the outputs.

        Posts are distributed round-robin over entry groups (the
        paper's untrusted load balancer); counts must divide evenly.
        """
        for post in posts:
            check_post(post, self.deployment.config.message_size)
        rnd = self.deployment.start_round(round_id)
        groups = self.deployment.config.num_groups
        for index, post in enumerate(posts):
            gid = index % groups
            if self.deployment.config.variant == "trap":
                self.deployment.submit_trap(rnd, post, gid)
            else:
                self.deployment.submit_plain(rnd, post, gid)
        result = self.deployment.run_round(rnd)
        if result.ok:
            self.board.publish(round_id, result.messages)
        return result
