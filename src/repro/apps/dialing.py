"""The dialing application (paper §5).

To dial Bob, Alice encrypts her public key to Bob's public key and
sends ``(Bob's identifier, encrypted key)`` through Atom.  Exit servers
place each dialing message into mailbox ``id mod m``; Bob downloads his
mailbox, tries to decrypt each entry, and learns who is dialing him.

To hide how many calls a user receives, one anytrust group injects
dummy dialing messages per mailbox, with counts drawn from a Laplace
mechanism as in Vuvuzela [72] — implemented here exactly as the paper
prescribes (µ = 13,000 per server in the §6.2 configuration).

The simple 80-byte wire format of the paper's prototype:
recipient id (8 bytes) ‖ ephemeral public key + AEAD box (72 bytes).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import AtomDeployment, DeploymentConfig
from repro.core.protocol import RoundResult
from repro.crypto.aead import aead_decrypt, aead_encrypt
from repro.crypto.elgamal import AtomElGamal, ElGamalKeyPair
from repro.crypto.groups import DeterministicRng, GroupBackend as Group
from repro.crypto.kem import Cca2Ciphertext, _kdf

#: The paper's smallest dialing message (§5): "as small as 80 bytes".
DIAL_MESSAGE_BYTES = 80


@dataclass(frozen=True)
class DialRequest:
    """One dialing message: recipient id plus the sealed sender key."""

    recipient_id: int
    sealed: bytes  # encapsulation || AEAD box

    def to_bytes(self) -> bytes:
        return struct.pack(">Q", self.recipient_id) + self.sealed

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DialRequest":
        if len(raw) < 8:
            raise ValueError("dial message too short")
        (rid,) = struct.unpack(">Q", raw[:8])
        return cls(recipient_id=rid, sealed=raw[8:])


@dataclass
class Mailbox:
    """One of the m dialing mailboxes at the exit."""

    index: int
    entries: List[bytes] = field(default_factory=list)


def seal_dial(
    group: Group,
    sender_public_bytes: bytes,
    recipient_key: "ElGamalKeyPair",
    rng: Optional[DeterministicRng] = None,
) -> bytes:
    """ECIES-style sealing of the sender's public key to the recipient."""
    scheme = AtomElGamal(group)
    r = group.random_scalar(rng)
    R = group.g ** r
    key = _kdf(group, R, recipient_key.public ** r)
    nonce = rng.randbytes(16) if rng is not None else None
    box = aead_encrypt(key, sender_public_bytes, nonce)
    return R.to_bytes() + box.to_bytes()


def open_dial(group: Group, recipient_key: "ElGamalKeyPair", sealed: bytes) -> bytes:
    """Invert :func:`seal_dial` (raises if not addressed to us)."""
    from repro.crypto.aead import AeadCiphertext

    width = group.element_bytes
    R = group.element(int.from_bytes(sealed[:width], "big"))
    key = _kdf(group, R, R ** recipient_key.secret)
    return aead_decrypt(key, AeadCiphertext.from_bytes(sealed[width:]))


def fill_mailboxes(messages: Sequence[bytes], num_mailboxes: int) -> List[Mailbox]:
    """Exit-side mailbox placement: each anonymized output that parses
    as a :class:`DialRequest` lands in mailbox ``recipient_id mod m``.

    Shared by :meth:`DialingService.run_round` and the scenario
    runner, which delivers a mixed stream's dialing share through the
    same code path."""
    boxes = [Mailbox(i) for i in range(num_mailboxes)]
    for message in messages:
        try:
            request = DialRequest.from_bytes(message)
        except ValueError:
            continue
        boxes[request.recipient_id % num_mailboxes].entries.append(request.sealed)
    return boxes


def laplace_noise_count(mu: float, scale: float, rng: DeterministicRng) -> int:
    """Non-negative dummy count ~ max(0, round(Laplace(mu, scale))).

    Inverse-CDF sampling from the deterministic RNG (Vuvuzela's noise
    mechanism [72]; the paper uses the same approach, §5)."""
    u = rng.randint(0, 2 ** 32 - 1) / 2 ** 32 - 0.5
    sample = mu - scale * math.copysign(1.0, u) * math.log(1 - 2 * abs(u) + 1e-12)
    return max(0, round(sample))


class DialingService:
    """Dialing over an Atom deployment with mailboxes and dummies."""

    def __init__(
        self,
        deployment: Optional[AtomDeployment] = None,
        config: Optional[DeploymentConfig] = None,
        num_mailboxes: int = 8,
        dummy_mu: float = 0.0,
        dummy_scale: float = 1.0,
    ):
        if deployment is None:
            config = config or DeploymentConfig(message_size=DIAL_MESSAGE_BYTES)
            deployment = AtomDeployment(config)
        self.deployment = deployment
        self.group = deployment.group
        self.num_mailboxes = num_mailboxes
        self.dummy_mu = dummy_mu
        self.dummy_scale = dummy_scale
        self.mailboxes: Dict[int, List[Mailbox]] = {}

    # -- client side -------------------------------------------------------

    def make_request(
        self,
        sender_public_bytes: bytes,
        recipient_id: int,
        recipient_key: "ElGamalKeyPair",
        rng: Optional[DeterministicRng] = None,
    ) -> DialRequest:
        sealed = seal_dial(self.group, sender_public_bytes, recipient_key, rng)
        return DialRequest(recipient_id=recipient_id, sealed=sealed)

    def dummy_requests(self, round_id: int) -> List[DialRequest]:
        """Anytrust-generated dummies, Laplace-distributed per mailbox."""
        if self.dummy_mu <= 0:
            return []
        rng = DeterministicRng(b"dialing-dummies|%d" % round_id)
        dummies = []
        for mailbox in range(self.num_mailboxes):
            count = laplace_noise_count(self.dummy_mu, self.dummy_scale, rng)
            for i in range(count):
                filler = rng.randbytes(40)
                dummies.append(
                    DialRequest(recipient_id=mailbox, sealed=b"\x00" + filler)
                )
        return dummies

    # -- round -----------------------------------------------------------------

    def run_round(self, round_id: int, requests: Sequence[DialRequest]) -> RoundResult:
        """Route dialing messages (plus dummies) and fill mailboxes."""
        all_requests = list(requests) + self.dummy_requests(round_id)
        unit = self.deployment.required_user_multiple()
        while len(all_requests) % unit:
            # pad to an even entry split with extra dummies
            rng = DeterministicRng(b"pad|%d|%d" % (round_id, len(all_requests)))
            all_requests.append(
                DialRequest(recipient_id=0, sealed=b"\x00" + rng.randbytes(40))
            )

        rnd = self.deployment.start_round(round_id)
        groups = self.deployment.config.num_groups
        for index, request in enumerate(all_requests):
            payload = request.to_bytes()
            gid = index % groups
            if self.deployment.config.variant == "trap":
                self.deployment.submit_trap(rnd, payload, gid)
            else:
                self.deployment.submit_plain(rnd, payload, gid)
        result = self.deployment.run_round(rnd)
        if result.ok:
            self.mailboxes[round_id] = fill_mailboxes(
                result.messages, self.num_mailboxes
            )
        return result

    # -- recipient side -------------------------------------------------------------

    def download(self, round_id: int, recipient_id: int) -> List[bytes]:
        """Bob downloads the full contents of his mailbox."""
        boxes = self.mailboxes.get(round_id)
        if boxes is None:
            raise KeyError(f"no mailboxes for round {round_id}")
        return list(boxes[recipient_id % self.num_mailboxes].entries)

    def receive(
        self, round_id: int, recipient_id: int, recipient_key: "ElGamalKeyPair"
    ) -> List[bytes]:
        """Open everything in the mailbox addressed to this key."""
        opened = []
        for sealed in self.download(round_id, recipient_id):
            try:
                opened.append(open_dial(self.group, recipient_key, sealed))
            except Exception:
                continue  # dummy or someone else's call
        return opened
