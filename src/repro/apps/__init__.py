"""Atom's two target applications (paper §5).

- :mod:`repro.apps.microblog` — anonymous microblogging: short
  broadcast messages published to a public bulletin board.
- :mod:`repro.apps.dialing` — the dialing protocol: establish shared
  secrets via per-recipient mailboxes, with Vuvuzela-style differential
  privacy dummy traffic.
"""

from repro.apps.microblog import BulletinBoard, MicroblogService
from repro.apps.dialing import DialingService, Mailbox, DialRequest

__all__ = [
    "BulletinBoard",
    "MicroblogService",
    "DialingService",
    "Mailbox",
    "DialRequest",
]
