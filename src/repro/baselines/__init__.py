"""Baseline systems Atom is compared against (paper §6.2, Table 12).

Functional mini-implementations validate that each baseline does what
the comparison claims; calibrated cost models anchored to the papers'
published numbers regenerate Table 12.

- :mod:`repro.baselines.dpf` — 2-server distributed point functions
  (naive and sqrt-compressed), Riposte's write primitive.
- :mod:`repro.baselines.riposte` — Riposte: anonymous microblogging
  with a DPF-written shared database; quadratic server work.
- :mod:`repro.baselines.vuvuzela` — Vuvuzela: centralized anytrust
  onion chain with differential-privacy noise; dialing support.
- :mod:`repro.baselines.alpenhorn` — Alpenhorn: dialing latency model.
"""

from repro.baselines.dpf import NaiveDpf, SqrtDpf
from repro.baselines.riposte import RiposteServerPair, riposte_latency_minutes
from repro.baselines.vuvuzela import VuvuzelaChain, vuvuzela_dial_latency_minutes
from repro.baselines.alpenhorn import alpenhorn_dial_latency_minutes


def same_workload_comparison(
    microblog_messages: int, dialing_users: int
) -> dict:
    """Table 12 cost models evaluated at a *measured* workload.

    The paper's Table 12 compares systems at fixed round sizes; the
    scenario engine instead generates a workload and asks what each
    baseline would charge for exactly it: Riposte priced per microblog
    message actually offered, Vuvuzela/Alpenhorn per dialing user in
    the population.  ``benchmarks/test_table12_comparison.py`` records
    the result next to Atom's simulated latency for the same workload.
    """
    return {
        "riposte_minutes": riposte_latency_minutes(microblog_messages),
        "vuvuzela_minutes": vuvuzela_dial_latency_minutes(dialing_users),
        "alpenhorn_minutes": alpenhorn_dial_latency_minutes(dialing_users),
    }


__all__ = [
    "NaiveDpf",
    "SqrtDpf",
    "RiposteServerPair",
    "riposte_latency_minutes",
    "VuvuzelaChain",
    "vuvuzela_dial_latency_minutes",
    "alpenhorn_dial_latency_minutes",
    "same_workload_comparison",
]
