"""Riposte baseline (paper §6.2, Table 12).

Riposte [22] is a centralized anonymous microblogging system: clients
write into a shared database via DPF keys split across an anytrust
server pair; the combined table reveals the anonymized messages.  Each
server's per-write work is linear in the table size, and the table must
grow with the number of writers, so *total* server work is quadratic in
the number of messages — the scaling wall Atom's comparison highlights
("Riposte requires each server to perform work quadratic in the number
of messages").

:class:`RiposteServerPair` is a functional mini-implementation (real
DPF writes, real table combination).  :func:`riposte_latency_minutes`
is the Table 12 cost model: quadratic scaling anchored at the published
1M-message / 669.2-minute point on three c4.8xlarge machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.baselines.dpf import SqrtDpf, SqrtDpfKey

#: Table 12: Riposte anonymizes one million messages in 669.2 minutes.
PAPER_RIPOSTE_MILLION_MINUTES = 669.2


class RiposteServerPair:
    """Two anytrust Riposte servers accumulating DPF writes."""

    def __init__(self, num_slots: int, slot_bytes: int):
        self.dpf = SqrtDpf(num_slots, slot_bytes)
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        zero = b"\x00" * slot_bytes
        self._table_a = [zero] * num_slots
        self._table_b = [zero] * num_slots
        self.writes = 0

    def write(self, target: int, message: bytes) -> Tuple[SqrtDpfKey, SqrtDpfKey]:
        """A client writes ``message`` into slot ``target`` anonymously."""
        key_a, key_b = self.dpf.generate(target, message)
        self._apply(self._table_a, self.dpf.expand(key_a))
        self._apply(self._table_b, self.dpf.expand(key_b))
        self.writes += 1
        return key_a, key_b

    def _apply(self, table: List[bytes], expansion: List[bytes]) -> None:
        for i, chunk in enumerate(expansion):
            table[i] = bytes(x ^ y for x, y in zip(table[i], chunk))

    def reveal(self) -> List[bytes]:
        """Combine the two servers' tables into the plaintext board."""
        return SqrtDpf.combine(self._table_a, self._table_b)

    def read_slot(self, index: int) -> bytes:
        return self.reveal()[index].rstrip(b"\x00")


def riposte_latency_minutes(num_messages: int) -> float:
    """Table 12 cost model: quadratic in the message count.

    Server work per write is O(table size) and the table size grows
    linearly with the writer count, anchored at 1M messages = 669.2
    minutes on the paper's three-c4.8xlarge configuration.
    """
    if num_messages < 0:
        raise ValueError("message count must be non-negative")
    scale = num_messages / 1_000_000
    return PAPER_RIPOSTE_MILLION_MINUTES * scale * scale


def riposte_cannot_scale_out(extra_servers: int) -> str:
    """The comparison's qualitative point (§6.2): replacing each logical
    Riposte server with a cluster does not raise the compromise bar —
    one compromised server per cluster still breaks the system."""
    return (
        f"adding {extra_servers} servers leaves the anytrust assumption at "
        "one honest server per logical role; an adversary compromising one "
        "server per cluster breaks anonymity regardless of cluster size"
    )
