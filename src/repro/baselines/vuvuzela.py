"""Vuvuzela baseline (paper §6.2, Table 12).

Vuvuzela [72] chains all traffic through a *fixed* set of anytrust
servers: each server onion-decrypts, shuffles, adds Laplace-noise cover
traffic, and forwards.  Dialing deposits messages into invitation
mailboxes ("dead drops").  It scales only vertically — Table 12 runs it
on three c4.8xlarge boxes with 10 Gbps links, where a 1M-user dialing
round takes ~0.5 minutes.

:class:`VuvuzelaChain` implements the onion chain functionally (layered
ElGamal-KEM onions, per-hop shuffle, Laplace dummies).
:func:`vuvuzela_dial_latency_minutes` is the Table 12 anchor model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.elgamal import AtomElGamal, ElGamalKeyPair
from repro.crypto.groups import DeterministicRng, GroupBackend as Group
from repro.crypto.kem import cca2_decrypt, cca2_encrypt

#: Table 12: Vuvuzela dials a million users in ~0.5 minutes.
PAPER_VUVUZELA_MILLION_MINUTES = 0.5


class VuvuzelaChain:
    """A 3-server anytrust onion chain with dialing mailboxes."""

    def __init__(
        self,
        group: Group,
        num_servers: int = 3,
        noise_mu: float = 0.0,
        rng: Optional[DeterministicRng] = None,
    ):
        self.group = group
        self.scheme = AtomElGamal(group)
        self.servers = [ElGamalKeyPair.generate(group, rng) for _ in range(num_servers)]
        self.noise_mu = noise_mu
        self.rng = rng

    def wrap(self, message: bytes) -> bytes:
        """Client-side onion: encrypt to the chain back-to-front."""
        onion = message
        for server in reversed(self.servers):
            onion = cca2_encrypt(self.group, server.public, onion, self.rng).to_bytes()
        return onion

    def _parse(self, raw: bytes):
        from repro.core.messages import deserialize_cca2

        return deserialize_cca2(self.group, raw)

    def run_round(self, onions: Sequence[bytes]) -> List[bytes]:
        """Each server peels a layer, injects noise, and shuffles."""
        import secrets as _secrets

        current = list(onions)
        for depth, server in enumerate(self.servers):
            peeled = []
            for onion in current:
                try:
                    peeled.append(
                        cca2_decrypt(self.group, server.secret, self._parse(onion))
                    )
                except Exception:
                    continue  # drop malformed (noise from previous hops)
            noise = self._noise_onions(depth)
            peeled.extend(noise)
            for i in range(len(peeled) - 1, 0, -1):
                j = (
                    self.rng.randint(0, i)
                    if self.rng is not None
                    else _secrets.randbelow(i + 1)
                )
                peeled[i], peeled[j] = peeled[j], peeled[i]
            current = peeled
        return current

    def _noise_onions(self, depth: int) -> List[bytes]:
        """Cover-traffic onions for the remaining hops."""
        if self.noise_mu <= 0:
            return []
        import secrets as _secrets

        count = max(0, round(self.noise_mu))
        noise = []
        for _ in range(count):
            body = b"\x00" + _secrets.token_bytes(15)
            onion = body
            for server in reversed(self.servers[depth + 1:]):
                onion = cca2_encrypt(self.group, server.public, onion).to_bytes()
            noise.append(onion)
        return noise

    def dial_round(
        self, requests: Sequence[Tuple[int, bytes]], num_mailboxes: int
    ) -> Dict[int, List[bytes]]:
        """Dialing: route (recipient, payload) pairs into dead drops.

        Real messages carry a 0x01 tag byte; noise onions (whose
        innermost plaintext starts with 0x00) are filtered out.
        """
        import struct

        onions = [
            self.wrap(b"\x01" + struct.pack(">Q", rid) + payload)
            for rid, payload in requests
        ]
        outputs = self.run_round(onions)
        mailboxes: Dict[int, List[bytes]] = {i: [] for i in range(num_mailboxes)}
        for message in outputs:
            if len(message) < 9 or message[0] != 1:
                continue  # noise
            (rid,) = struct.unpack(">Q", message[1:9])
            mailboxes[rid % num_mailboxes].append(message[9:])
        return mailboxes


def vuvuzela_dial_latency_minutes(num_users: int) -> float:
    """Table 12 model: linear scaling through the fixed 3-server chain,
    anchored at 1M users = 0.5 minutes (hybrid crypto on c4.8xlarge)."""
    if num_users < 0:
        raise ValueError("user count must be non-negative")
    return PAPER_VUVUZELA_MILLION_MINUTES * num_users / 1_000_000


#: §6.2: Vuvuzela servers need 166 MB/s; Atom servers less than 1 MB/s.
PAPER_VUVUZELA_SERVER_BANDWIDTH_MB_S = 166.0
