"""Alpenhorn baseline (paper §6.2, Table 12).

Alpenhorn [50] bootstraps private communication: its dialing protocol
uses identity-based encryption with ~300-byte messages through the same
centralized anytrust topology as Vuvuzela.  Table 12 reports ~0.5
minutes for a million dialing users on three c4.8xlarge machines, and
the paper notes Alpenhorn suggests dialing rounds every few hours due
to client bandwidth — the window within which Atom's 28 minutes also
comfortably fits (§6.2).
"""

from __future__ import annotations

#: Table 12 anchor: 1M dialing users in ~0.5 minutes.
PAPER_ALPENHORN_MILLION_MINUTES = 0.5
#: Alpenhorn's IBE-based dialing message size (§5).
ALPENHORN_MESSAGE_BYTES = 300
#: Suggested dialing cadence (§6.2): once every few hours.
SUGGESTED_ROUND_INTERVAL_HOURS = 2.0


def alpenhorn_dial_latency_minutes(num_users: int) -> float:
    """Linear model anchored at the published 1M-user point."""
    if num_users < 0:
        raise ValueError("user count must be non-negative")
    return PAPER_ALPENHORN_MILLION_MINUTES * num_users / 1_000_000


def atom_fits_dialing_cadence(atom_latency_minutes: float) -> bool:
    """§6.2's qualitative claim: Atom supports dialing at Alpenhorn's
    suggested round cadence despite its higher latency."""
    return atom_latency_minutes <= SUGGESTED_ROUND_INTERVAL_HOURS * 60
