"""Two-server distributed point functions (Riposte's write primitive).

A DPF splits the point function ``f(x) = m if x == target else 0``
into two keys, one per server, such that neither key alone reveals
``target`` or ``m``, but the XOR of the two expanded tables is exactly
the point function.

Two constructions:

- :class:`NaiveDpf` — full-length random vector and its correction:
  O(n) key size, the conceptual baseline.
- :class:`SqrtDpf` — Riposte's sqrt-compression: view the table as a
  sqrt(n) x sqrt(n) matrix; keys hold one PRG seed per row (equal on
  all rows except the target's) plus one correction word, giving
  O(sqrt(n)) key size.
"""

from __future__ import annotations

import hashlib
import math
import secrets
from dataclasses import dataclass
from typing import List, Tuple


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _prg(seed: bytes, length: int) -> bytes:
    """SHA3-CTR pseudorandom generator."""
    out = []
    for counter in range((length + 31) // 32):
        out.append(
            hashlib.sha3_256(b"repro.dpf.prg|" + seed + counter.to_bytes(4, "big")).digest()
        )
    return b"".join(out)[:length]


@dataclass(frozen=True)
class NaiveDpfKey:
    share: Tuple[bytes, ...]


class NaiveDpf:
    """O(n)-size XOR-sharing of a point function."""

    def __init__(self, num_slots: int, slot_bytes: int):
        if num_slots < 1 or slot_bytes < 1:
            raise ValueError("need positive table dimensions")
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes

    def generate(self, target: int, message: bytes) -> Tuple[NaiveDpfKey, NaiveDpfKey]:
        if not 0 <= target < self.num_slots:
            raise IndexError("target out of range")
        message = message.ljust(self.slot_bytes, b"\x00")
        if len(message) != self.slot_bytes:
            raise ValueError("message exceeds slot size")
        share_a = [secrets.token_bytes(self.slot_bytes) for _ in range(self.num_slots)]
        share_b = list(share_a)
        share_b[target] = _xor(share_a[target], message)
        return NaiveDpfKey(tuple(share_a)), NaiveDpfKey(tuple(share_b))

    def expand(self, key: NaiveDpfKey) -> List[bytes]:
        return list(key.share)

    @staticmethod
    def combine(table_a: List[bytes], table_b: List[bytes]) -> List[bytes]:
        return [_xor(a, b) for a, b in zip(table_a, table_b)]


@dataclass(frozen=True)
class SqrtDpfKey:
    """One server's key: per-row (flag, seed) plus the correction word."""

    rows: Tuple[Tuple[int, bytes], ...]
    correction: bytes


class SqrtDpf:
    """Riposte's O(sqrt(n))-size two-server DPF."""

    SEED_BYTES = 16

    def __init__(self, num_slots: int, slot_bytes: int):
        if num_slots < 1 or slot_bytes < 1:
            raise ValueError("need positive table dimensions")
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        self.side = math.ceil(math.sqrt(num_slots))
        self.row_bytes = self.side * slot_bytes

    def _coords(self, index: int) -> Tuple[int, int]:
        return divmod(index, self.side)

    def generate(self, target: int, message: bytes) -> Tuple[SqrtDpfKey, SqrtDpfKey]:
        if not 0 <= target < self.num_slots:
            raise IndexError("target out of range")
        message = message.ljust(self.slot_bytes, b"\x00")
        if len(message) != self.slot_bytes:
            raise ValueError("message exceeds slot size")
        row, col = self._coords(target)

        rows_a, rows_b = [], []
        seed_a_target = secrets.token_bytes(self.SEED_BYTES)
        seed_b_target = secrets.token_bytes(self.SEED_BYTES)
        for r in range(self.side):
            if r == row:
                # Flags differ on the target row (their XOR selects the
                # correction word); which side carries 1 is random, so a
                # single key reveals nothing about the target row.
                flip = secrets.randbelow(2)
                rows_a.append((flip, seed_a_target))
                rows_b.append((1 - flip, seed_b_target))
            else:
                # Identical flags and seeds: contributions cancel.
                shared = secrets.token_bytes(self.SEED_BYTES)
                flag = secrets.randbelow(2)
                rows_a.append((flag, shared))
                rows_b.append((flag, shared))

        point_row = bytearray(self.row_bytes)
        point_row[col * self.slot_bytes: (col + 1) * self.slot_bytes] = message
        correction = _xor(
            _xor(_prg(seed_a_target, self.row_bytes), _prg(seed_b_target, self.row_bytes)),
            bytes(point_row),
        )
        return (
            SqrtDpfKey(tuple(rows_a), correction),
            SqrtDpfKey(tuple(rows_b), correction),
        )

    def expand(self, key: SqrtDpfKey) -> List[bytes]:
        """Expand a key to a full table of ``side * side`` slots."""
        table: List[bytes] = []
        for flag, seed in key.rows:
            row = _prg(seed, self.row_bytes)
            if flag:
                row = _xor(row, key.correction)
            for c in range(self.side):
                table.append(row[c * self.slot_bytes: (c + 1) * self.slot_bytes])
        return table[: self.num_slots]

    @staticmethod
    def combine(table_a: List[bytes], table_b: List[bytes]) -> List[bytes]:
        return [_xor(a, b) for a, b in zip(table_a, table_b)]

    def key_size_bytes(self, key: SqrtDpfKey) -> int:
        return len(key.rows) * (1 + self.SEED_BYTES) + len(key.correction)
