"""Drive the real applications over the modern stack from a spec.

:class:`ScenarioRunner` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into a live run: the traffic model's arrival batches become per-round
intake for a :class:`~repro.core.pipeline.StreamEngine` (batch data
plane, any transport including fleet), microblog arrivals are published
to an :class:`~repro.apps.microblog.BulletinBoard`, dialing arrivals are
sealed with :func:`~repro.apps.dialing.seal_dial` and land in mailboxes
via :func:`~repro.apps.dialing.fill_mailboxes` — the same delivery code
paths the standalone services use — and every round's ledger is checked
for conservation (arrivals == delivered + dropped + trapped).

Determinism: the scenario seed derives every random choice — the
traffic model's churn and sampling, per-user dialing keys, dial
recipients and sealing, the stream's own rng, and (via the deployment
seed) the beacon and any chaos plan.  Rerunning the same spec and seed
reproduces the identical :class:`~repro.scenarios.metrics.ScenarioMetrics`
digest on every transport.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Tuple

from repro.apps.dialing import DialRequest, Mailbox, fill_mailboxes, seal_dial
from repro.apps.microblog import BulletinBoard, check_post
from repro.core.pipeline import RoundStats, StreamConfig, StreamEngine
from repro.crypto.elgamal import ElGamalKeyPair
from repro.crypto.groups import DeterministicRng
from repro.scenarios.metrics import RoundMetrics, ScenarioMetrics
from repro.scenarios.spec import ScenarioError, ScenarioSpec
from repro.scenarios.traffic import Arrival

#: substrings identifying a §4.4 trap-catch abort in an abort reason
#: (the trustees' KeyWithheld message)
_TRAP_MARKERS = ("withheld", "violation")


def is_trap_catch(reason: str) -> bool:
    return any(marker in reason for marker in _TRAP_MARKERS)


class ScenarioRunner:
    """One scenario run: build the workload, drive the stream, account.

    ``overrides`` take the spec's deployment spelling (``transport``,
    ``state_dir``, ``group``, ...) — the CLI forwards its flags here so
    a bundled scenario can be replayed over tcp or a fleet unchanged.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: Optional[str] = None,
        **overrides,
    ):
        self.spec = spec
        self.seed = seed if seed is not None else spec.seed
        self._seed_bytes = self.seed.encode()
        # A private clone: batch() caching mutates churn state, and one
        # spec object must support many concurrent runs.
        self.traffic = spec.traffic.__class__(
            **{k: v for k, v in spec.traffic.describe().items() if k != "model"}
        )
        self.traffic.bind(self._seed_bytes)
        self.config = spec.deployment_config(**overrides)
        self.engine = StreamEngine(
            self.config,
            spec.fault_schedule(),
            StreamConfig(
                rounds=spec.rounds,
                seed=self._seed_bytes + b"/stream",
            ),
            arrivals_fn=self._arrivals,
        )
        self.board = BulletinBoard()
        self.mailboxes: Dict[int, List[Mailbox]] = {}
        self.num_mailboxes = int(spec.dialing_knob("mailboxes"))
        self._keys: Dict[int, ElGamalKeyPair] = {}
        #: round -> [(payload, Arrival), ...] in intake order
        self._expected: Dict[int, List[Tuple[bytes, Arrival]]] = {}
        self._plans: Dict[int, List[Tuple[bytes, int]]] = {}

    # -- deterministic workload ----------------------------------------

    def user_key(self, user: int) -> ElGamalKeyPair:
        """The user's long-term dialing identity key (PKI stand-in),
        derived from the scenario seed alone — tests and recipients
        rebuild it without any shared state."""
        if user not in self._keys:
            rng = DeterministicRng(self._seed_bytes + b"|dialkey|u%d" % user)
            self._keys[user] = ElGamalKeyPair.generate(
                self.engine.deployment.group, rng
            )
        return self._keys[user]

    def dial_recipient(self, round_id: int, user: int) -> int:
        """Whom ``user`` dials this round (deterministic, never self)."""
        if self.traffic.users < 2:
            return user  # degenerate: dial yourself
        rng = DeterministicRng(
            self._seed_bytes + b"|dial|r%d|u%d" % (round_id, user)
        )
        others = [u for u in range(self.traffic.users) if u != user]
        return others[rng.randint(0, len(others) - 1)]

    def _build_payload(self, round_id: int, arrival: Arrival) -> bytes:
        size = self.config.message_size
        if arrival.app == "dialing":
            recipient = self.dial_recipient(round_id, arrival.user)
            rng = DeterministicRng(
                self._seed_bytes + b"|seal|r%d|u%d" % (round_id, arrival.user)
            )
            sealed = seal_dial(
                self.engine.deployment.group,
                b"u%d@r%d" % (arrival.user, round_id),
                self.user_key(recipient),
                rng,
            )
            payload = DialRequest(recipient_id=recipient, sealed=sealed).to_bytes()
            if len(payload) > size:
                raise ScenarioError(
                    f"dial request of {len(payload)} bytes exceeds "
                    f"message_size {size}; raise the deployment's "
                    f"message_size (96 is ample for TOY)"
                )
            return payload
        post = b"r%du%d says hi" % (round_id, arrival.user)
        return check_post(post[: size - 5], size)

    def _arrivals(self, round_id: int) -> List[Tuple[bytes, int]]:
        """The StreamEngine workload hook.  Cached: a blame-rekey
        re-plans the pipelined next round, and the replayed arrivals
        must be the identical objects."""
        if round_id not in self._plans:
            batch = self.traffic.batch(round_id)
            expected: List[Tuple[bytes, Arrival]] = []
            plan: List[Tuple[bytes, int]] = []
            for index, arrival in enumerate(batch.arrivals):
                payload = self._build_payload(round_id, arrival)
                expected.append((payload, arrival))
                plan.append((payload, index % self.config.num_groups))
            self._expected[round_id] = expected
            self._plans[round_id] = plan
        return self._plans[round_id]

    # -- the run -------------------------------------------------------

    def run(self, check: bool = True) -> ScenarioMetrics:
        """Drive the whole scenario; returns the metrics report.

        With ``check`` (the default) the conservation assert runs
        before returning — a report you get back always reconciles.
        """
        started = time.monotonic()
        with self.engine:
            stream_report = self.engine.run()
        metrics = ScenarioMetrics(
            scenario=self.spec.name,
            seed=self.seed,
            transport=self.config.transport,
        )
        for stats in stream_report.rounds:
            metrics.rounds.append(self._account(stats))
        metrics.wall_s = time.monotonic() - started
        metrics.baselines = self._baseline_comparison(metrics)
        if check:
            metrics.check_conservation()
        return metrics

    def _account(self, stats: RoundStats) -> RoundMetrics:
        """Reconcile one settled round against its expected workload,
        and deliver matched outputs through the real app code paths."""
        r = stats.round_id
        expected = self._expected.get(r, [])
        batch = self.traffic.batch(r)
        # Multiset-match expected payloads against the anonymized
        # outputs (exact bytes: the exit unpads to the original).
        remaining: Dict[bytes, int] = {}
        for message in stats.messages:
            remaining[message] = remaining.get(message, 0) + 1
        posts: List[bytes] = []
        dials: List[bytes] = []
        delivered = 0
        for payload, arrival in expected:
            if remaining.get(payload, 0) > 0:
                remaining[payload] -= 1
                delivered += 1
                (dials if arrival.app == "dialing" else posts).append(payload)
        undelivered = len(expected) - delivered
        trap_catches = sum(1 for why in stats.abort_reasons if is_trap_catch(why))
        # Undelivered arrivals were consumed by the abort that ended the
        # round: a trap catch if that's what the ledger shows, any other
        # failure is a plain drop.
        trapped = undelivered if (not stats.ok and trap_catches) else 0
        dropped = undelivered - trapped
        # Deliver through the applications themselves.
        if posts:
            self.board.publish(r, posts)
        self.mailboxes[r] = fill_mailboxes(dials, self.num_mailboxes)
        return RoundMetrics(
            round_id=r,
            arrivals=len(expected),
            microblog=sum(1 for _, a in expected if a.app == "microblog"),
            dialing=sum(1 for _, a in expected if a.app == "dialing"),
            delivered=delivered,
            dropped=dropped,
            trapped=trapped,
            departed=batch.departed,
            rejoined=batch.rejoined,
            active=batch.active,
            submitted=stats.submitted,
            dummies=stats.dummies,
            trap_catches=trap_catches,
            recovered_gids=tuple(stats.recovered_gids),
            blamed_users=tuple(stats.blamed_users),
            retries=stats.attempts - 1,
            ok=stats.ok,
            intake_s=stats.intake_s,
            mix_s=stats.mix_wall_s,
            delivered_digest=hashlib.sha256(
                b"\x00".join(sorted(posts + dials))
            ).hexdigest(),
        )

    def _baseline_comparison(self, metrics: ScenarioMetrics) -> Dict[str, float]:
        from repro.baselines import same_workload_comparison

        return same_workload_comparison(
            microblog_messages=sum(r.microblog for r in metrics.rounds),
            dialing_users=self.traffic.users,
        )

    # -- recipient-side convenience ------------------------------------

    def receive(self, round_id: int, user: int) -> List[bytes]:
        """Open everything in ``user``'s mailbox for the round (the
        sealed sender tokens of whoever dialed them)."""
        from repro.apps.dialing import open_dial

        boxes = self.mailboxes.get(round_id, [])
        if not boxes:
            return []
        opened = []
        for sealed in boxes[user % self.num_mailboxes].entries:
            try:
                opened.append(
                    open_dial(self.engine.deployment.group, self.user_key(user), sealed)
                )
            except Exception:
                continue  # someone else's call sharing the mailbox
        return opened
