"""Declarative scenario specs (dataclass + JSON/dict grammar).

A :class:`ScenarioSpec` composes the pieces PRs 2–8 built into one
declarative, file-able unit:

- a :mod:`~repro.scenarios.traffic` model (who sends what, when),
- a :class:`~repro.core.pipeline.FaultSchedule` (server/user faults),
- a :class:`~repro.net.chaos.NetFaultPlan` (network chaos rules),
- :class:`~repro.core.protocol.DeploymentConfig` knobs (group backend,
  transport, data plane, spilling, state dir, ...).

Like ``NetFaultPlan``, the grammar round-trips: ``parse(describe())``
is the identity on the canonical form, and every unknown key is an
error.  A scenario file is the JSON form of :meth:`describe`::

    {
      "name": "black-friday-tamper-churn",
      "rounds": 6,
      "traffic": {"model": "bursty", "base": 4, "spike": 12, ...},
      "faults": "r2:tamper-group:1:0:replace_one",
      "net_faults": "",
      "deployment": {"groups": 2, "group_size": 3, "variant": "trap",
                      "message_size": 96, "group": "TOY"},
      "dialing": {"mailboxes": 4, "dummy_mu": 0.0, "dummy_scale": 1.0}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.core.pipeline import FaultSchedule, FaultScheduleError
from repro.scenarios.traffic import TrafficError, TrafficModel, parse_traffic


class ScenarioError(ValueError):
    """A scenario spec could not be parsed or validated."""


#: spec key -> DeploymentConfig field for the deployment section
#: (the scenario grammar says "groups"/"group" like the CLI flags do)
_DEPLOY_FIELDS = {
    "groups": "num_groups",
    "group_size": "group_size",
    "variant": "variant",
    "mode": "mode",
    "h": "h",
    "iterations": "iterations",
    "message_size": "message_size",
    "group": "crypto_group",
    "transport": "transport",
    "fleet_plan": "fleet_plan",
    "data_plane": "data_plane",
    "spill_threshold": "spill_threshold",
    "parallelism": "parallelism",
    "heartbeat": "heartbeat",
    "rpc_timeout": "rpc_timeout",
    "state_dir": "state_dir",
    "wal_segment_bytes": "wal_segment_bytes",
    "wal_segment_records": "wal_segment_records",
    "wal_retain_segments": "wal_retain_segments",
}

_DIALING_DEFAULTS = {"mailboxes": 8, "dummy_mu": 0.0, "dummy_scale": 1.0}

_TOP_KEYS = {
    "name", "description", "rounds", "seed", "traffic", "faults",
    "net_faults", "deployment", "dialing",
}


@dataclass
class ScenarioSpec:
    """One declarative scenario: traffic x faults x chaos x deployment."""

    name: str
    traffic: TrafficModel
    description: str = ""
    rounds: int = 5
    #: default rng seed; `repro scenario run --seed` overrides it
    seed: str = "atom-rpc"
    #: FaultSchedule grammar ("" = fault-free)
    faults: str = ""
    #: NetFaultPlan grammar ("" = calm network)
    net_faults: str = ""
    #: deployment knobs, spec spelling (see _DEPLOY_FIELDS)
    deployment: Dict[str, object] = field(default_factory=dict)
    #: dialing-application knobs (mailbox count, DP dummy noise)
    dialing: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("a scenario needs a name")
        if self.rounds < 1:
            raise ScenarioError("rounds must be >= 1")
        unknown = set(self.deployment) - set(_DEPLOY_FIELDS)
        if unknown:
            raise ScenarioError(
                f"unknown deployment keys {sorted(unknown)} "
                f"(allowed: {sorted(_DEPLOY_FIELDS)})"
            )
        unknown = set(self.dialing) - set(_DIALING_DEFAULTS)
        if unknown:
            raise ScenarioError(
                f"unknown dialing keys {sorted(unknown)} "
                f"(allowed: {sorted(_DIALING_DEFAULTS)})"
            )
        # Parse eagerly so a bad schedule fails at spec time, like the
        # deployment's own NetFaultPlan validation.
        try:
            self.fault_schedule()
        except FaultScheduleError as exc:
            raise ScenarioError(f"bad fault schedule: {exc}") from exc
        if self.net_faults:
            from repro.net.chaos import NetFaultPlan, NetFaultPlanError

            try:
                NetFaultPlan.parse(self.net_faults)
            except NetFaultPlanError as exc:
                raise ScenarioError(f"bad net-fault plan: {exc}") from exc

    # -- derived objects -----------------------------------------------

    def fault_schedule(self) -> FaultSchedule:
        return FaultSchedule.parse(self.faults) if self.faults else FaultSchedule()

    def dialing_knob(self, key: str) -> float:
        return self.dialing.get(key, _DIALING_DEFAULTS[key])

    def deployment_config(self, **overrides):
        """Build the :class:`DeploymentConfig` this scenario runs on.

        ``overrides`` use the spec spelling (``groups``, ``group``,
        ``transport``, ...) and win over the file's deployment section —
        the CLI passes ``--transport``/``--state-dir`` through here.
        """
        from repro.core.protocol import DeploymentConfig

        spec = dict(self.deployment)
        for key, value in overrides.items():
            if key not in _DEPLOY_FIELDS:
                raise ScenarioError(f"unknown deployment override {key!r}")
            if value is not None:
                spec[key] = value
        fields = {_DEPLOY_FIELDS[k]: v for k, v in spec.items()}
        groups = fields.setdefault("num_groups", 2)
        group_size = fields.setdefault("group_size", 3)
        fields["num_servers"] = max(groups * group_size, 2 * group_size)
        fields.setdefault("variant", "trap")
        # The deployment seed feeds the beacon and the chaos/rpc rngs;
        # deriving it from the scenario seed makes *everything* —
        # including injected network faults — a function of one seed.
        fields["seed"] = (self.seed + "/deploy").encode()
        if self.net_faults:
            fields["net_faults"] = self.net_faults
        try:
            return DeploymentConfig(**fields)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"bad deployment section: {exc}") from exc

    # -- grammar -------------------------------------------------------

    @classmethod
    def parse(cls, obj) -> "ScenarioSpec":
        """Build a spec from a dict (or a JSON string)."""
        if isinstance(obj, (str, bytes)):
            try:
                obj = json.loads(obj)
            except ValueError as exc:
                raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise ScenarioError(
                f"scenario spec must be a dict, got {type(obj).__name__}"
            )
        unknown = set(obj) - _TOP_KEYS
        if unknown:
            raise ScenarioError(
                f"unknown scenario keys {sorted(unknown)} "
                f"(allowed: {sorted(_TOP_KEYS)})"
            )
        if "traffic" not in obj:
            raise ScenarioError("scenario needs a 'traffic' section")
        spec = dict(obj)
        try:
            traffic = parse_traffic(spec.pop("traffic"))
        except TrafficError as exc:
            raise ScenarioError(str(exc)) from exc
        try:
            return cls(traffic=traffic, **spec)
        except TypeError as exc:
            raise ScenarioError(f"bad scenario spec: {exc}") from exc

    def describe(self) -> Dict[str, object]:
        """Canonical dict form: ``parse(describe())`` round-trips."""
        return {
            "name": self.name,
            "description": self.description,
            "rounds": self.rounds,
            "seed": self.seed,
            "traffic": self.traffic.describe(),
            "faults": ";".join(
                ev.describe() for ev in self.fault_schedule().events
            ),
            "net_faults": self.net_faults,
            "deployment": {k: self.deployment[k] for k in sorted(self.deployment)},
            "dialing": {k: self.dialing[k] for k in sorted(self.dialing)},
        }

    def to_json(self) -> str:
        return json.dumps(self.describe(), indent=2) + "\n"

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        """Parse a scenario file."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
        return cls.parse(text)
