"""Named scenarios shipped with the package (``repro scenario list``).

Each bundled scenario is a plain scenario file under ``data/`` — the
exact format ``repro scenario run <path>`` accepts — so copying one out
is the supported way to start a custom scenario.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.scenarios.spec import ScenarioError, ScenarioSpec

DATA_DIR = Path(__file__).resolve().parent / "data"


def list_bundled() -> List[str]:
    """Names of the shipped scenarios."""
    return sorted(p.stem for p in DATA_DIR.glob("*.json"))


def bundled_path(name: str) -> Path:
    path = DATA_DIR / f"{name}.json"
    if not path.is_file():
        raise ScenarioError(
            f"no bundled scenario {name!r} (have: {', '.join(list_bundled())})"
        )
    return path


def load_scenario(name_or_path) -> ScenarioSpec:
    """Resolve a CLI argument: a bundled name, else a file path."""
    as_path = Path(name_or_path)
    if as_path.suffix == ".json" or as_path.is_file():
        return ScenarioSpec.load(as_path)
    return ScenarioSpec.load(bundled_path(str(name_or_path)))
