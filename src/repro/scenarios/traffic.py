"""Seed-deterministic traffic models (ROADMAP item 4).

A :class:`TrafficModel` turns ``(seed, round_id)`` into an
:class:`ArrivalBatch`: which users of a fixed population want to send
this round, and through which application (microblogging or dialing).
Every draw comes from a :class:`~repro.crypto.groups.DeterministicRng`
derived from the bound seed, so the same spec and seed always emit the
same workload — the scenario engine's byte-identical-rerun guarantee
starts here.

Three rate curves are registered (``constant``, ``diurnal``,
``bursty``); *churn* and the *dialing share* are dimensions of every
model rather than separate models, so "Black Friday with 5 % churn and
a quarter of traffic dialing" is one spec::

    {"model": "bursty", "users": 16, "base": 4, "spike": 12,
     "spike_rounds": [2, 3], "churn": 0.05, "rejoin": 2,
     "dialing_share": 0.25}

Churn semantics: each round, every active user departs with
probability ``churn`` (at least one user always stays); a departed
user is reabsorbed exactly ``rejoin`` rounds later.  The population is
conserved: at every round the active and departed sets partition
``range(users)`` — the Hypothesis suite asserts this.

Batches are computed in round order and cached, so churn state is
well-defined and repeated ``batch(r)`` calls (the stream engine
re-plans a round's intake after a blame-rekey) return the identical
object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.groups import DeterministicRng

APPS = ("microblog", "dialing")


class TrafficError(ValueError):
    """A traffic-model spec could not be parsed or is inconsistent."""


@dataclass(frozen=True)
class Arrival:
    """One user wanting to send one message this round."""

    user: int
    app: str  # "microblog" | "dialing"


@dataclass(frozen=True)
class ArrivalBatch:
    """Everything a traffic model decides for one round."""

    round_id: int
    arrivals: Tuple[Arrival, ...]
    #: users who churned out this round (silent until reabsorbed)
    departed: Tuple[int, ...]
    #: users reabsorbed this round after their churn-out
    rejoined: Tuple[int, ...]
    #: active population size *after* this round's churn
    active: int

    @property
    def offered(self) -> int:
        return len(self.arrivals)


class TrafficModel:
    """Base class: rate curve subclasses override :meth:`_rate`.

    Common knobs (every registered model accepts them):

    - ``users`` — population size (user ids ``0..users-1``)
    - ``churn`` — per-round, per-user departure probability
    - ``rejoin`` — rounds until a departed user is reabsorbed
    - ``dialing_share`` — probability an arrival dials instead of
      posting (0.0 = pure microblogging, 1.0 = pure dialing)
    """

    kind = "abstract"

    def __init__(
        self,
        users: int = 8,
        churn: float = 0.0,
        rejoin: int = 2,
        dialing_share: float = 0.0,
    ):
        if users < 1:
            raise TrafficError("users must be >= 1")
        if not 0.0 <= churn < 1.0:
            raise TrafficError("churn must be in [0, 1)")
        if rejoin < 1:
            raise TrafficError("rejoin must be >= 1 round")
        if not 0.0 <= dialing_share <= 1.0:
            raise TrafficError("dialing_share must be in [0, 1]")
        self.users = users
        self.churn = churn
        self.rejoin = rejoin
        self.dialing_share = dialing_share
        self._seed: bytes = b"traffic"
        self._batches: List[ArrivalBatch] = []
        #: user -> round at which they departed (churn state)
        self._away: Dict[int, int] = {}
        self._active: List[int] = list(range(users))

    # -- binding and determinism ---------------------------------------

    def bind(self, seed: bytes) -> "TrafficModel":
        """Set the rng seed and reset all churn state and caches."""
        self._seed = bytes(seed)
        self._batches = []
        self._away = {}
        self._active = list(range(self.users))
        return self

    def _round_rng(self, round_id: int) -> DeterministicRng:
        return DeterministicRng(self._seed + b"|traffic|r%d" % round_id)

    # -- the per-round batch -------------------------------------------

    def batch(self, round_id: int) -> ArrivalBatch:
        """The round's arrivals (computed in order, cached)."""
        if round_id < 0:
            raise TrafficError("round_id must be >= 0")
        while len(self._batches) <= round_id:
            self._batches.append(self._compute(len(self._batches)))
        return self._batches[round_id]

    def _compute(self, r: int) -> ArrivalBatch:
        rng = self._round_rng(r)
        # Reabsorb first: a user departed at round d returns at d+rejoin.
        rejoined = tuple(
            sorted(u for u, d in self._away.items() if r - d >= self.rejoin)
        )
        for user in rejoined:
            del self._away[user]
            self._active.append(user)
        self._active.sort()
        # Churn out: one biased coin per active user, in user order.
        departed: List[int] = []
        if self.churn > 0.0:
            for user in list(self._active):
                if len(self._active) - len(departed) <= 1:
                    break  # never empty the population
                if rng.randint(0, 2 ** 32 - 1) / 2 ** 32 < self.churn:
                    departed.append(user)
            for user in departed:
                self._active.remove(user)
                self._away[user] = r
        # Offered load: the curve, clamped to the live population.
        count = max(0, round(self._rate(r)))
        count = min(count, len(self._active))
        senders = self._sample(rng, self._active, count)
        arrivals = tuple(
            Arrival(
                user=user,
                app=(
                    "dialing"
                    if self.dialing_share > 0.0
                    and rng.randint(0, 2 ** 32 - 1) / 2 ** 32 < self.dialing_share
                    else "microblog"
                ),
            )
            for user in senders
        )
        return ArrivalBatch(
            round_id=r,
            arrivals=arrivals,
            departed=tuple(departed),
            rejoined=rejoined,
            active=len(self._active),
        )

    @staticmethod
    def _sample(rng: DeterministicRng, population: List[int], count: int) -> List[int]:
        """``count`` distinct users, drawn without replacement (partial
        Fisher-Yates over a copy, so the model's own state is untouched)."""
        pool = list(population)
        picked: List[int] = []
        for _ in range(count):
            picked.append(pool.pop(rng.randint(0, len(pool) - 1)))
        return sorted(picked)

    # -- the rate curve (subclass hook) --------------------------------

    def _rate(self, round_id: int) -> float:
        raise NotImplementedError

    def expected_rate(self, round_id: int) -> float:
        """Analytic mean offered load (before population clamping) —
        what ``sim.scenario`` reconciles the measured arrivals against."""
        return max(0.0, float(self._rate(round_id)))

    # -- spec grammar --------------------------------------------------

    def _params(self) -> Dict[str, object]:
        """Subclass hook: curve-specific parameters."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """Canonical dict spec: ``parse_traffic(describe())`` builds an
        equivalent model (and ``describe`` of that is identical)."""
        out: Dict[str, object] = {"model": self.kind, "users": self.users}
        out.update(self._params())
        out.update(
            churn=self.churn, rejoin=self.rejoin,
            dialing_share=self.dialing_share,
        )
        return out


class ConstantTraffic(TrafficModel):
    """A flat offered load: ``rate`` arrivals per round."""

    kind = "constant"

    def __init__(self, rate: float = 4, **common):
        super().__init__(**common)
        if rate < 0:
            raise TrafficError("rate must be >= 0")
        self.rate = float(rate)

    def _rate(self, round_id: int) -> float:
        return self.rate

    def _params(self) -> Dict[str, object]:
        return {"rate": self.rate}


class DiurnalTraffic(TrafficModel):
    """A day/night load curve: raised-cosine between ``base`` (trough,
    round 0) and ``peak``, with ``period`` rounds per "day"."""

    kind = "diurnal"

    def __init__(self, base: float = 2, peak: float = 8, period: int = 8, **common):
        super().__init__(**common)
        if base < 0 or peak < base:
            raise TrafficError("need 0 <= base <= peak")
        if period < 1:
            raise TrafficError("period must be >= 1 round")
        self.base = float(base)
        self.peak = float(peak)
        self.period = int(period)

    def _rate(self, round_id: int) -> float:
        phase = (1.0 - math.cos(2.0 * math.pi * round_id / self.period)) / 2.0
        return self.base + (self.peak - self.base) * phase

    def _params(self) -> Dict[str, object]:
        return {"base": self.base, "peak": self.peak, "period": self.period}


class BurstyTraffic(TrafficModel):
    """A hot-topic spike: ``base`` load except during the declared
    ``spike_rounds``, where the offered load jumps to ``spike``."""

    kind = "bursty"

    def __init__(
        self,
        base: float = 4,
        spike: float = 12,
        spike_rounds: Tuple[int, ...] = (2,),
        **common,
    ):
        super().__init__(**common)
        if base < 0 or spike < 0:
            raise TrafficError("rates must be >= 0")
        rounds = tuple(sorted(set(int(r) for r in spike_rounds)))
        if any(r < 0 for r in rounds):
            raise TrafficError("spike_rounds must be >= 0")
        self.base = float(base)
        self.spike = float(spike)
        self.spike_rounds = rounds

    def _rate(self, round_id: int) -> float:
        return self.spike if round_id in self.spike_rounds else self.base

    def _params(self) -> Dict[str, object]:
        return {
            "base": self.base,
            "spike": self.spike,
            "spike_rounds": list(self.spike_rounds),
        }


#: the registry behind ``{"model": <kind>, ...}`` specs
TRAFFIC_MODELS: Dict[str, type] = {
    model.kind: model
    for model in (ConstantTraffic, DiurnalTraffic, BurstyTraffic)
}

_COMMON_KEYS = ("users", "churn", "rejoin", "dialing_share")


def parse_traffic(obj: Dict[str, object]) -> TrafficModel:
    """Build a model from its dict spec (the ``traffic`` section of a
    scenario file).  Unknown models and unknown keys are errors —
    a typo must never silently run a different workload."""
    if not isinstance(obj, dict):
        raise TrafficError(f"traffic spec must be a dict, got {type(obj).__name__}")
    spec = dict(obj)
    kind = spec.pop("model", None)
    if kind not in TRAFFIC_MODELS:
        raise TrafficError(
            f"unknown traffic model {kind!r} (have: {sorted(TRAFFIC_MODELS)})"
        )
    cls = TRAFFIC_MODELS[kind]
    probe = cls()
    allowed = set(_COMMON_KEYS) | set(probe._params())
    unknown = set(spec) - allowed
    if unknown:
        raise TrafficError(
            f"unknown {kind!r} traffic keys {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )
    if kind == "bursty" and "spike_rounds" in spec:
        spec["spike_rounds"] = tuple(spec["spike_rounds"])
    try:
        return cls(**spec)
    except TypeError as exc:
        raise TrafficError(f"bad {kind!r} traffic spec: {exc}") from exc
