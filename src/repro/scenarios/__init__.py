"""Scenario engine: declarative workloads driving the real apps.

The subsystem behind ``repro scenario run|describe|list`` (ROADMAP
item 4): seed-deterministic :mod:`traffic <repro.scenarios.traffic>`
models, a declarative :mod:`spec <repro.scenarios.spec>` composing
traffic x faults x network chaos x deployment, a
:mod:`runner <repro.scenarios.runner>` that drives the microblogging
and dialing applications over the StreamEngine, and conservation-
checked :mod:`metrics <repro.scenarios.metrics>`.
"""

from repro.scenarios.bundled import list_bundled, load_scenario
from repro.scenarios.metrics import ConservationError, RoundMetrics, ScenarioMetrics
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioError, ScenarioSpec
from repro.scenarios.traffic import (
    Arrival,
    ArrivalBatch,
    BurstyTraffic,
    ConstantTraffic,
    DiurnalTraffic,
    TrafficError,
    TrafficModel,
    TRAFFIC_MODELS,
    parse_traffic,
)

__all__ = [
    "Arrival",
    "ArrivalBatch",
    "BurstyTraffic",
    "ConservationError",
    "ConstantTraffic",
    "DiurnalTraffic",
    "RoundMetrics",
    "ScenarioError",
    "ScenarioMetrics",
    "ScenarioRunner",
    "ScenarioSpec",
    "TrafficError",
    "TrafficModel",
    "TRAFFIC_MODELS",
    "list_bundled",
    "load_scenario",
    "parse_traffic",
]
