"""Per-round and whole-scenario accounting.

The scenario engine's contract is *conservation*: every arrival the
traffic model emitted is accounted for as delivered, dropped, or
trapped — nothing vanishes into the pipeline.  :class:`RoundMetrics`
carries that ledger per round (plus the churn and robustness events
that explain it), :class:`ScenarioMetrics` aggregates it, and
:meth:`ScenarioMetrics.digest` hashes exactly the deterministic fields
so a rerun with the same spec and seed is byte-identical — the e2e
suite asserts digest equality across transports and reruns.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class ConservationError(AssertionError):
    """A round's arrivals did not reconcile with its outcomes."""


@dataclass
class RoundMetrics:
    """The ledger of one scenario round."""

    round_id: int
    #: offered load (the traffic model's arrivals this round)
    arrivals: int = 0
    microblog: int = 0
    dialing: int = 0
    #: arrivals whose exact payload came out of the anonymity network
    delivered: int = 0
    #: arrivals lost to a non-trap failure (unhealed abort, missing output)
    dropped: int = 0
    #: arrivals consumed by a trap-catch abort that was not healed
    trapped: int = 0
    #: users who churned out / were reabsorbed this round
    departed: Tuple[int, ...] = ()
    rejoined: Tuple[int, ...] = ()
    active: int = 0
    #: per-sender submissions the engine recorded (batch-plane aware)
    submitted: int = 0
    #: cover dummies padded into the delivered attempt
    dummies: int = 0
    #: trap-catch aborts observed (a healed catch still counts: the
    #: round retried and delivered)
    trap_catches: int = 0
    recovered_gids: Tuple[int, ...] = ()
    blamed_users: Tuple[int, ...] = ()
    retries: int = 0
    ok: bool = False
    #: wall clock (excluded from the digest)
    intake_s: float = 0.0
    mix_s: float = 0.0
    #: sha256 over the round's sorted delivered payloads
    delivered_digest: str = ""

    def check_conservation(self) -> None:
        if self.arrivals != self.delivered + self.dropped + self.trapped:
            raise ConservationError(
                f"round {self.round_id}: {self.arrivals} arrivals != "
                f"{self.delivered} delivered + {self.dropped} dropped "
                f"+ {self.trapped} trapped"
            )
        if self.submitted != self.arrivals:
            raise ConservationError(
                f"round {self.round_id}: engine submitted {self.submitted} "
                f"senders for {self.arrivals} arrivals"
            )

    def deterministic_fields(self) -> Dict[str, object]:
        """Everything except wall clock — the digest's input."""
        return {
            "round_id": self.round_id,
            "arrivals": self.arrivals,
            "microblog": self.microblog,
            "dialing": self.dialing,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "trapped": self.trapped,
            "departed": list(self.departed),
            "rejoined": list(self.rejoined),
            "active": self.active,
            "submitted": self.submitted,
            "dummies": self.dummies,
            "trap_catches": self.trap_catches,
            "recovered_gids": list(self.recovered_gids),
            "blamed_users": list(self.blamed_users),
            "retries": self.retries,
            "ok": self.ok,
            "delivered_digest": self.delivered_digest,
        }

    def to_dict(self) -> Dict[str, object]:
        out = self.deterministic_fields()
        out["intake_s"] = self.intake_s
        out["mix_s"] = self.mix_s
        return out


@dataclass
class ScenarioMetrics:
    """The whole run's machine-readable report."""

    scenario: str
    seed: str
    transport: str
    rounds: List[RoundMetrics] = field(default_factory=list)
    wall_s: float = 0.0
    #: same-workload baseline latencies (repro.baselines hook)
    baselines: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rounds)

    @property
    def total_arrivals(self) -> int:
        return sum(r.arrivals for r in self.rounds)

    @property
    def total_delivered(self) -> int:
        return sum(r.delivered for r in self.rounds)

    @property
    def total_dropped(self) -> int:
        return sum(r.dropped for r in self.rounds)

    @property
    def total_trapped(self) -> int:
        return sum(r.trapped for r in self.rounds)

    @property
    def total_trap_catches(self) -> int:
        return sum(r.trap_catches for r in self.rounds)

    @property
    def total_churned(self) -> int:
        return sum(len(r.departed) for r in self.rounds)

    @property
    def total_rejoined(self) -> int:
        return sum(len(r.rejoined) for r in self.rounds)

    def check_conservation(self) -> None:
        """Raise :class:`ConservationError` unless every round's ledger
        balances (arrivals == delivered + dropped + trapped)."""
        for r in self.rounds:
            r.check_conservation()

    @property
    def digest(self) -> str:
        """sha256 over the deterministic fields only: equal digests mean
        byte-identical workload *and* outcomes, wall clock aside."""
        blob = json.dumps(
            {
                "scenario": self.scenario,
                "seed": self.seed,
                "rounds": [r.deterministic_fields() for r in self.rounds],
            },
            sort_keys=True,
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "transport": self.transport,
            "ok": self.ok,
            "digest": self.digest,
            "totals": {
                "arrivals": self.total_arrivals,
                "delivered": self.total_delivered,
                "dropped": self.total_dropped,
                "trapped": self.total_trapped,
                "trap_catches": self.total_trap_catches,
                "churned": self.total_churned,
                "rejoined": self.total_rejoined,
            },
            "wall_s": self.wall_s,
            "baselines": dict(self.baselines),
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def format_table(self) -> str:
        """Human-readable per-round report for the CLI."""
        lines = [
            "round  arriv  blog  dial  deliv  drop  trap  churn  back"
            "  active  dum  catches  events"
        ]
        for r in self.rounds:
            events = []
            if r.recovered_gids:
                events.append(
                    "recovered=" + ",".join(f"g{g}" for g in r.recovered_gids)
                )
            if r.blamed_users:
                events.append("blamed=" + ",".join(map(str, r.blamed_users)))
            if r.retries:
                events.append(f"retries={r.retries}")
            if not r.ok:
                events.append("ABORT")
            lines.append(
                f"{r.round_id:5d}  {r.arrivals:5d}  {r.microblog:4d}  "
                f"{r.dialing:4d}  {r.delivered:5d}  {r.dropped:4d}  "
                f"{r.trapped:4d}  {len(r.departed):5d}  {len(r.rejoined):4d}"
                f"  {r.active:6d}  {r.dummies:3d}  {r.trap_catches:7d}  "
                f"{' '.join(events) or '-'}"
            )
        lines.append(
            f"scenario {self.scenario!r} ({self.transport}, seed {self.seed}): "
            f"{self.total_arrivals} arrivals -> {self.total_delivered} "
            f"delivered, {self.total_dropped} dropped, "
            f"{self.total_trapped} trapped; {self.total_trap_catches} trap "
            f"catches, {self.total_churned} churned / {self.total_rejoined} "
            f"reabsorbed; {self.wall_s:.2f}s wall"
        )
        lines.append(f"digest: {self.digest}")
        return "\n".join(lines)
