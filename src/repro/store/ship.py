"""Checkpoint shipping: package a state directory's live suffix into a
self-contained bundle a replacement process restores from.

Buddy recovery (PR 5/7) replaces a dead server by replaying its log
from the beginning of history — O(history) work that grows with every
round a stream has run.  A *bundle* is the O(state) alternative: the
compaction liveness rules (:mod:`repro.store.compact`) already define
exactly which records a restore can ever need — the latest durable
checkpoint, the unsettled rounds' intake suffix, and the O(1) run
identity — so shipping precisely those records *is* shipping
"snapshot + minimal log suffix".

Bundle format (one blob, transport-agnostic — the fleet moves it
inside a BUNDLE_INSTALL envelope, tooling can write it to a file)::

    bundle := b"ATBL" u8(version) u32(header_len) header segment_image
    header := json { kind, records, source, disk_bytes }
    segment_image := a complete WAL segment file image (magic + frames)

Install materializes the image as ``wal-000001.seg`` plus a manifest,
i.e. a brand-new :class:`~repro.store.segments.LogDir` whose entire
history *is* the live suffix.  A restore that follows (fleet replay,
``RecoveryManager``) therefore provably never reads a pre-safe-point
segment — there is none on disk, and ``LogScan.segments_read`` lets
tests assert it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from repro.store.compact import LivenessFn, deployment_liveness
from repro.store.segments import (
    LogDir,
    MANIFEST_NAME,
    segment_name,
    write_segment_file,
)
from repro.store.wal import MAGIC as WAL_MAGIC
from repro.store.wal import WAL_VERSION, WalRecord, WriteAheadLog

BUNDLE_MAGIC = b"ATBL"
BUNDLE_VERSION = 1

_LEN = struct.Struct(">I")


class BundleError(RuntimeError):
    """The bundle bytes are not usable (bad magic, torn image)."""


@dataclass
class Bundle:
    """A parsed bundle: header fields plus the decoded live records."""

    kind: str
    records: List[WalRecord]
    source: str
    disk_bytes: int

    def to_bytes(self) -> bytes:
        image = bytearray(WAL_MAGIC + bytes([WAL_VERSION]))
        for rec in self.records:
            head = struct.pack(">BI", int(rec.type), len(rec.payload))
            crc = zlib.crc32(head + rec.payload) & 0xFFFFFFFF
            image += head + rec.payload + _LEN.pack(crc)
        header = json.dumps(
            {
                "kind": self.kind,
                "records": len(self.records),
                "source": self.source,
                "disk_bytes": self.disk_bytes,
            }
        ).encode()
        return (
            BUNDLE_MAGIC
            + bytes([BUNDLE_VERSION])
            + _LEN.pack(len(header))
            + header
            + bytes(image)
        )

    @staticmethod
    def from_bytes(raw: bytes) -> "Bundle":
        if len(raw) < 9 or raw[:4] != BUNDLE_MAGIC:
            raise BundleError("not a checkpoint bundle (bad magic)")
        if raw[4] != BUNDLE_VERSION:
            raise BundleError(
                f"bundle version {raw[4]}, expected {BUNDLE_VERSION}"
            )
        (hlen,) = _LEN.unpack_from(raw, 5)
        if 9 + hlen > len(raw):
            raise BundleError("torn bundle header")
        header = json.loads(raw[9: 9 + hlen])
        image = raw[9 + hlen:]
        tmp_scan = _scan_image(image)
        if len(tmp_scan) != header["records"]:
            raise BundleError(
                f"bundle names {header['records']} records but the "
                f"image holds {len(tmp_scan)} (torn in transit?)"
            )
        return Bundle(
            kind=header["kind"],
            records=tmp_scan,
            source=header.get("source", ""),
            disk_bytes=header.get("disk_bytes", len(image)),
        )


def _scan_image(image: bytes) -> List[WalRecord]:
    """Strict scan of an in-memory segment image: unlike the torn-tail
    tolerant file reader, a bundle image must be whole."""
    scan = WriteAheadLog.scan_bytes(image, what="bundle image")
    if scan.truncated:
        raise BundleError(f"damaged bundle image: {scan.reason}")
    return scan.records


class CheckpointShipper:
    """Builds and installs bundles for one log family (deployment by
    default; the fleet passes its own liveness policy and legacy
    name)."""

    def __init__(
        self,
        liveness: LivenessFn = deployment_liveness,
        legacy_name: str = "atom.wal",
        kind: str = "deployment",
    ):
        self.liveness = liveness
        self.legacy_name = legacy_name
        self.kind = kind

    # -- build ---------------------------------------------------------

    def build(self, state_dir: Union[str, Path]) -> Bundle:
        """Read a (possibly dead-process) state directory and distill
        the live suffix.  Works on segmented and legacy layouts; the
        source dir is only read, never modified."""
        state_dir = Path(state_dir)
        if not LogDir.present(state_dir, self.legacy_name):
            raise BundleError(f"no log under {state_dir}")
        scan = LogDir.scan_dir(state_dir, self.legacy_name)
        keep = self.liveness(scan.records)
        live = [rec for rec, k in zip(scan.records, keep) if k]
        return Bundle(
            kind=self.kind,
            records=live,
            source=str(state_dir),
            disk_bytes=scan.disk_bytes,
        )

    def build_bytes(self, state_dir: Union[str, Path]) -> bytes:
        return self.build(state_dir).to_bytes()

    # -- install -------------------------------------------------------

    def install(
        self, state_dir: Union[str, Path], raw: Union[bytes, Bundle]
    ) -> Bundle:
        """Materialize a bundle as a fresh one-segment ``LogDir`` under
        ``state_dir`` (which must not already hold a log — a replacement
        process starts from an empty directory).  Returns the parsed
        bundle so the caller can sanity-check ``kind``/record count."""
        bundle = raw if isinstance(raw, Bundle) else Bundle.from_bytes(raw)
        if bundle.kind != self.kind:
            raise BundleError(
                f"bundle kind {bundle.kind!r} does not fit a "
                f"{self.kind!r} restore"
            )
        state_dir = Path(state_dir)
        state_dir.mkdir(parents=True, exist_ok=True)
        if LogDir.present(state_dir, self.legacy_name):
            raise BundleError(
                f"{state_dir} already holds a log; refusing to overwrite"
            )
        name = segment_name(1)
        write_segment_file(state_dir / name, bundle.records)
        tmp = state_dir / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as fh:
            json.dump({"version": 1, "next_seq": 2, "segments": [name]}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, state_dir / MANIFEST_NAME)
        fd = os.open(state_dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        return bundle
