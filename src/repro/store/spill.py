"""Spill-to-disk intake holdings: bounded-RSS million-message rounds.

A :class:`SpillableHoldings` is a drop-in holdings container for
:class:`~repro.net.nodes.ServerNode`: it accumulates ciphertext records
in an in-memory :class:`~repro.core.batch.CiphertextBatch` and, every
``threshold`` vectors, journals the full buffer as one
``SPILL_SEGMENT`` record to a per-container scratch log (the PR 5 WAL
framing, CRC per segment) and resets the in-memory batch.  Intake of a
10^5–10^6-message round therefore holds at most ``threshold`` records
in RSS regardless of round size.

Spill logs are **scratch**, not durability: crash recovery rebuilds
intake by replaying the journaled SUBMIT envelopes from the deployment
WAL, so a container never re-reads a previous process's spill files —
each one opens a fresh uniquely-named log and unlinks it when the
container is released (or garbage-collected).

Iteration streams segments back one at a time (via
``WriteAheadLog.iter_records``), so walking spilled holdings is also
bounded; :meth:`as_batch` materializes the concatenated buffer for the
mixing phase, whose working set is inherently the whole batch.
"""

from __future__ import annotations

import itertools
import os
import weakref
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.core.batch import CiphertextBatch
from repro.crypto.vector import CiphertextVector
from repro.store.wal import RecordType, WriteAheadLog

#: process-wide spill-file sequence: containers re-created for the same
#: (round, gid) — one per committed layer — must never share a path,
#: or a late finalizer would unlink the successor's live file
_SEQ = itertools.count()


def _cleanup(wal: WriteAheadLog, path: Path) -> None:
    try:
        wal.close()
    except Exception:
        pass
    try:
        os.unlink(path)
    except OSError:
        pass


class SpillableHoldings:
    """List-like ciphertext holdings that overflow to disk."""

    def __init__(
        self,
        group,
        threshold: int,
        directory: Union[str, Path],
        tag: str = "holdings",
    ):
        self.group = group
        self.threshold = max(1, int(threshold))
        self.directory = Path(directory)
        self.tag = tag
        self._mem = CiphertextBatch(group)
        self._wal = None
        self._path = None
        self._spilled = 0  # vectors resident on disk
        self._segments = 0
        self._finalizer = None

    # -- spilling --------------------------------------------------------

    def _spill(self) -> None:
        if self._wal is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._path = self.directory / f"{self.tag}-{next(_SEQ)}.spill"
            # fsync never: segments are scratch — losing them in a
            # crash is fine, intake replays from the deployment WAL
            self._wal = WriteAheadLog(self._path, fsync_every=0, fresh=True)
            self._finalizer = weakref.finalize(
                self, _cleanup, self._wal, self._path
            )
        self._wal.append(RecordType.SPILL_SEGMENT, self._mem.to_bytes())
        self._spilled += len(self._mem)
        self._segments += 1
        self._mem = CiphertextBatch(self.group)

    def release(self) -> None:
        """Drop the container's disk footprint (idempotent)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._wal = None
        self._path = None
        self._spilled = 0
        self._segments = 0
        self._mem = CiphertextBatch(self.group)

    @property
    def spilled(self) -> int:
        """Vectors currently resident on disk (tests/benchmarks)."""
        return self._spilled

    @property
    def segments(self) -> int:
        return self._segments

    @property
    def path(self):
        return self._path

    # -- container protocol ------------------------------------------------

    def append(self, vec: CiphertextVector) -> None:
        self._mem.append(vec)
        if len(self._mem) >= self.threshold:
            self._spill()

    def extend(
        self, items: Union[CiphertextBatch, Iterable[CiphertextVector]]
    ) -> None:
        if isinstance(items, CiphertextBatch):
            # splice threshold-sized slices: no decode, bounded memory
            n = len(items)
            i = 0
            while i < n:
                take = min(self.threshold - len(self._mem), n - i)
                self._mem.extend_raw(items.slice(i, i + take))
                i += take
                if len(self._mem) >= self.threshold:
                    self._spill()
            return
        as_batch = getattr(items, "as_batch", None)
        if as_batch is not None:
            self.extend(as_batch())
            return
        for vec in items:
            self.append(vec)

    def __len__(self) -> int:
        return self._spilled + len(self._mem)

    def __bool__(self) -> bool:
        return len(self) > 0

    def _disk_segments(self) -> Iterator[CiphertextBatch]:
        if self._wal is None:
            return
        self._wal.sync()
        for rec in WriteAheadLog.iter_records(self._path):
            if rec.type == RecordType.SPILL_SEGMENT:
                yield CiphertextBatch.from_bytes(self.group, rec.payload)

    def __iter__(self) -> Iterator[CiphertextVector]:
        """Disk segments in spill order, then the in-memory tail —
        exactly the append order, so the container is order-transparent."""
        for segment in self._disk_segments():
            yield from segment
        yield from self._mem

    def as_batch(self) -> CiphertextBatch:
        """The full holdings as one contiguous batch (byte splices —
        no record is decoded)."""
        out = CiphertextBatch(self.group)
        for segment in self._disk_segments():
            out.extend_raw(segment)
        out.extend_raw(self._mem)
        return out

    def __eq__(self, other) -> bool:
        if isinstance(other, SpillableHoldings):
            return self.as_batch() == other.as_batch()
        if isinstance(other, (CiphertextBatch, list, tuple)):
            return self.as_batch() == other
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"SpillableHoldings({self.tag}, n={len(self)}, "
            f"{self._spilled} spilled/{self._segments} segments)"
        )
