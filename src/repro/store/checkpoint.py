"""Snapshot and store-local record codecs.

Binary records (layer commits, checkpoints) reuse the envelope layer's
group-bound writer/reader and crypto-object codecs, so the same bytes
work on every registered group backend — a checkpoint taken on P-256
serializes compressed points, one on MODP2048 fixed-width residues,
through the identical code path the wire already exercises.

Small bookkeeping records (rng marks, stream config, settled-round
stats) are JSON: they carry no group elements, and being greppable on
disk is worth more than the few bytes a binary layout would save.

Replay cost model: intake envelopes replay in O(submissions), and the
latest CHECKPOINT pins the mixing state, so recovery is
O(since-last-checkpoint) mixing work — with the default cadence of one
checkpoint per committed layer, zero re-mixing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.group import MixAudit
from repro.crypto.groups import GroupBackend as Group
# The envelope layer's binary substrate (shared on purpose: one codec
# path for wire and disk; see module docstring).
from repro.net.envelopes import (  # noqa: F401
    _Reader as Reader,
    _Writer as Writer,
    _read_audit,
    _read_vectors,
    _write_audit,
    _write_vectors,
)


# ---------------------------------------------------------------------------
# JSON bookkeeping records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RngMark:
    """An rng (seed, counter) state tied to a round event."""

    round_id: int
    fresh: bool  # ROUND_SETUP: did this setup form fresh contexts?
    seed: bytes  # b"": the run was not seeded and cannot be replayed
    counter: int


def encode_rng_mark(round_id: int, rng, fresh: bool = False) -> bytes:
    seed = rng.seed if rng is not None and hasattr(rng, "seed") else b""
    counter = rng.counter if seed else 0
    return json.dumps(
        {
            "round": round_id,
            "fresh": fresh,
            "seed": seed.hex(),
            "counter": counter,
        }
    ).encode()


def decode_rng_mark(payload: bytes) -> RngMark:
    obj = json.loads(payload)
    return RngMark(
        round_id=obj["round"],
        fresh=obj["fresh"],
        seed=bytes.fromhex(obj["seed"]),
        counter=obj["counter"],
    )


def encode_honest(round_id: int, gid: int, message: bytes) -> bytes:
    return json.dumps(
        {"round": round_id, "gid": gid, "message": message.hex()}
    ).encode()


def decode_honest(payload: bytes) -> Tuple[int, int, bytes]:
    obj = json.loads(payload)
    return obj["round"], obj["gid"], bytes.fromhex(obj["message"])


def encode_round_stats(stats, rng) -> bytes:
    """A settled stream round plus the rng position at settle time
    (which is *after* the next round's drained intake, the resume
    point for a crash that lands between rounds)."""
    return json.dumps(
        {
            "round_id": stats.round_id,
            "ok": stats.ok,
            "attempts": stats.attempts,
            "messages": [m.hex() for m in stats.messages],
            "abort_reasons": list(stats.abort_reasons),
            "recovered_gids": list(stats.recovered_gids),
            "blamed_users": list(stats.blamed_users),
            "rekeyed": stats.rekeyed,
            "submitted": stats.submitted,
            "dummies": stats.dummies,
            "intake_s": stats.intake_s,
            "overlap_s": stats.overlap_s,
            "foreign_intake_s": stats.foreign_intake_s,
            "mix_wall_s": stats.mix_wall_s,
            "rng_counter": rng.counter if rng is not None else 0,
        }
    ).encode()


def decode_round_stats(payload: bytes):
    """Returns (RoundStats, rng_counter)."""
    from repro.core.pipeline import RoundStats  # lazy: avoid an import cycle

    obj = json.loads(payload)
    stats = RoundStats(
        round_id=obj["round_id"],
        ok=obj["ok"],
        attempts=obj["attempts"],
        messages=[bytes.fromhex(m) for m in obj["messages"]],
        abort_reasons=list(obj["abort_reasons"]),
        recovered_gids=list(obj["recovered_gids"]),
        blamed_users=tuple(obj["blamed_users"]),
        rekeyed=obj["rekeyed"],
        # absent in pre-scenario-engine logs: default to 0 so old state
        # dirs stay resumable
        submitted=obj.get("submitted", 0),
        dummies=obj.get("dummies", 0),
        intake_s=obj["intake_s"],
        overlap_s=obj["overlap_s"],
        foreign_intake_s=obj["foreign_intake_s"],
        mix_wall_s=obj["mix_wall_s"],
    )
    return stats, obj["rng_counter"]


# ---------------------------------------------------------------------------
# binary records: layer commits and holdings checkpoints
# ---------------------------------------------------------------------------


@dataclass
class LayerCommit:
    """A committed mixing layer: where the rng stood afterwards, and
    the layer's audits (replayed into the resumed ``RoundResult`` so it
    stays byte-identical to an uninterrupted run)."""

    round_id: int
    layer: int  # layers committed so far (1-based: first commit -> 1)
    seed: bytes
    counter: int
    audits: List[MixAudit]


def encode_layer_commit(
    group: Group, round_id: int, layer: int, rng, audits: List[MixAudit]
) -> bytes:
    w = Writer(group)
    w.u32(round_id)
    w.u32(layer)
    seed = rng.seed if rng is not None and hasattr(rng, "seed") else b""
    w.blob(seed)
    w.u64(rng.counter if seed else 0)
    w.u32(len(audits))
    for audit in audits:
        _write_audit(w, audit)
    return bytes(w.buf)


def decode_layer_commit(group: Group, payload: bytes) -> LayerCommit:
    r = Reader(payload, group)
    round_id = r.u32()
    layer = r.u32()
    seed = r.blob()
    counter = r.u64()
    audits = [_read_audit(r) for _ in range(r.u32())]
    return LayerCommit(
        round_id=round_id, layer=layer, seed=seed, counter=counter,
        audits=audits,
    )


@dataclass
class Snapshot:
    """Per-node holdings at a committed layer — enough, with the intake
    envelopes and the rng mark, to re-enter the two-phase layer
    protocol at exactly this point."""

    round_id: int
    layer: int
    holdings: Dict[int, Tuple]  # gid -> tuple of CiphertextVector


def _write_holdings(w: "Writer", items) -> None:
    """``_write_vectors``-layout encoding of one group's holdings,
    polymorphic over the data-plane containers: a CiphertextBatch (or
    anything exposing ``as_batch``) splices its already-serialized
    records — byte-identical to encoding the decoded vectors — while a
    plain list takes the object codec path."""
    from repro.core.batch import CiphertextBatch

    as_batch = getattr(items, "as_batch", None)
    if as_batch is not None:
        items = as_batch()
    if isinstance(items, CiphertextBatch):
        w.u32(len(items))
        w.buf += items.raw_records()
        return
    _write_vectors(w, tuple(items))


def encode_checkpoint(
    group: Group, round_id: int, layer: int, holdings: Dict[int, list]
) -> bytes:
    w = Writer(group)
    w.u32(round_id)
    w.u32(layer)
    w.u32(len(holdings))
    for gid in sorted(holdings):
        w.u32(gid)
        _write_holdings(w, holdings[gid])
    return bytes(w.buf)


def decode_checkpoint(group: Group, payload: bytes) -> Snapshot:
    r = Reader(payload, group)
    round_id = r.u32()
    layer = r.u32()
    holdings: Dict[int, Tuple] = {}
    for _ in range(r.u32()):
        gid = r.u32()
        holdings[gid] = _read_vectors(r)
    return Snapshot(round_id=round_id, layer=layer, holdings=holdings)


# ---------------------------------------------------------------------------
# deployment / stream config records
# ---------------------------------------------------------------------------

#: DeploymentConfig fields persisted in META (state_dir deliberately
#: excluded: the recovered deployment gets its store injected).
_CONFIG_FIELDS = (
    "num_servers", "num_groups", "group_size", "variant", "mode", "h",
    "adversarial_fraction", "iterations", "message_size", "crypto_group",
    "topology", "nizk_rounds", "num_trustees", "parallelism", "transport",
    "wal_fsync_every", "checkpoint_every", "data_plane", "spill_threshold",
    "wal_segment_bytes", "wal_segment_records", "wal_retain_segments",
)


def encode_meta(config) -> bytes:
    obj = {name: getattr(config, name) for name in _CONFIG_FIELDS}
    obj["seed"] = config.seed.hex()
    return json.dumps(obj).encode()


def decode_meta(payload: bytes):
    from repro.core.protocol import DeploymentConfig  # lazy: import cycle

    obj = json.loads(payload)
    seed = bytes.fromhex(obj.pop("seed"))
    return DeploymentConfig(seed=seed, **obj)


def encode_stream_begin(stream, schedule_spec: str) -> bytes:
    return json.dumps(
        {
            "rounds": stream.rounds,
            "users_per_round": stream.users_per_round,
            "seed": stream.seed.hex(),
            "overlap_intake": stream.overlap_intake,
            "retry_aborted": stream.retry_aborted,
            "rekey_after_blame": stream.rekey_after_blame,
            "schedule": schedule_spec,
        }
    ).encode()


def decode_stream_begin(payload: bytes):
    """Returns (StreamConfig, schedule_spec)."""
    from repro.core.pipeline import StreamConfig  # lazy: import cycle

    obj = json.loads(payload)
    spec = obj.pop("schedule")
    seed = bytes.fromhex(obj.pop("seed"))
    return StreamConfig(seed=seed, **obj), spec


def encode_round_end(round_id: int, ok: bool) -> bytes:
    return json.dumps({"round": round_id, "ok": ok}).encode()


def decode_round_end(payload: bytes) -> Tuple[int, bool]:
    obj = json.loads(payload)
    return obj["round"], obj["ok"]
