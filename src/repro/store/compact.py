"""Log compaction: drop journal records superseded by durable round
boundaries, and rewrite sealed segments down to the live suffix.

The safe-point rule
-------------------

A record is *dead* once a later durable round boundary supersedes it.
For a deployment log the boundary is the round's fsynced ROUND_DONE
(stream) or ROUND_END (standalone) record — after it, recovery never
replays that round's intake, rng marks, layer commits, or checkpoints
(and a CLEAN tail settles everything).  What stays live forever is
deliberately tiny and O(state), not O(history):

- META and STREAM_BEGIN (the run's identity),
- every *fresh* ROUND_SETUP mark (epoch establishment: resume re-forms
  contexts and buddy escrows from the last fresh mark at-or-before the
  resume round),
- every ROUND_DONE / ROUND_END (stream resume derives "which round is
  next" and the between-rounds rng position from the settled list),
- the CLEAN marker,
- and **all** records of rounds not yet settled — including the
  pipelined next round whose intake journals before the current
  round's boundary.  Order among kept records is preserved verbatim,
  so replaying a compacted log is replaying the original.

For a fleet intake journal (REC_OPEN/REC_ENVELOPE/REC_CLOSE) the
boundary is REC_CLOSE: restart replays open rounds only, so a closed
round's records are dead in their entirety.

The mechanism
-------------

Compaction never touches the **active** segment (the appender owns
it).  It reads the sealed prefix, copies the live records into one
fresh *base* segment, atomically swaps the manifest from
``[s1..sk, active]`` to ``[base, active]``, and only then unlinks the
old sealed files.  The manifest swap is the commit point: a crash
before it leaves the old layout plus an orphan base (collected on the
next open); a crash after it leaves the new layout plus orphan old
segments (same collector).  No intermediate state loses a record.

Liveness is computed over the *whole* logical log — boundary records
in the active segment settle rounds whose bodies live in sealed
segments — but only sealed records are rewritten.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Sequence, Union

from repro.net import envelopes as ev
from repro.store.segments import LogDir, hit, segment_name, write_segment_file
from repro.store.wal import RecordType, WalRecord, WriteAheadLog

_U32 = struct.Struct(">I")

#: fleet intake-journal record types (mirrors repro.fleet.server; kept
#: numerically disjoint from RecordType so either scanner survives the
#: other's records)
REC_OPEN = 21
REC_CLOSE = 22
REC_ENVELOPE = 23

LivenessFn = Callable[[Sequence[WalRecord]], List[bool]]


def _record_round(rec: WalRecord) -> int:
    """The round a record belongs to, peeked without a group handle."""
    t = rec.type
    if t in (RecordType.LAYER_COMMIT, RecordType.CHECKPOINT):
        return _U32.unpack_from(rec.payload)[0]
    if t == RecordType.ENVELOPE:
        return ev._HEADER.unpack_from(rec.payload)[3]
    # JSON bookkeeping records all carry a "round" key
    return json.loads(rec.payload)["round"]


def deployment_liveness(records: Sequence[WalRecord]) -> List[bool]:
    """Keep-mask for a deployment log (see module docstring)."""
    # In a stream only ROUND_DONE settles: the engine journals
    # ROUND_END(r) *before* ROUND_DONE(r), so between the two the round
    # is still live — compaction runs inside exactly that window.
    is_stream = any(r.type == RecordType.STREAM_BEGIN for r in records)
    settled = set()
    for rec in records:
        if rec.type == RecordType.ROUND_DONE:
            settled.add(json.loads(rec.payload)["round_id"])
        elif rec.type == RecordType.ROUND_END and not is_stream:
            settled.add(json.loads(rec.payload)["round"])
    keep: List[bool] = []
    for rec in records:
        t = rec.type
        if t in (RecordType.META, RecordType.STREAM_BEGIN,
                 RecordType.ROUND_DONE, RecordType.ROUND_END,
                 RecordType.CLEAN):
            keep.append(True)
        elif t == RecordType.RESUME:
            keep.append(False)  # pure marker; replay ignores it
        elif t == RecordType.ROUND_SETUP:
            mark = json.loads(rec.payload)
            keep.append(bool(mark["fresh"]) or mark["round"] not in settled)
        elif t in (RecordType.ROUND_BEGIN, RecordType.ENVELOPE,
                   RecordType.HONEST, RecordType.LAYER_COMMIT,
                   RecordType.CHECKPOINT):
            try:
                keep.append(_record_round(rec) not in settled)
            except Exception:
                keep.append(True)  # unparseable: keep conservatively
        else:
            keep.append(True)  # unknown types survive compaction
    return keep


def fleet_liveness(records: Sequence[WalRecord]) -> List[bool]:
    """Keep-mask for a fleet intake journal: a round whose latest
    REC_OPEN was followed by REC_CLOSE is fully dead (restart replays
    open rounds only)."""
    open_rounds = set()
    for rec in records:
        try:
            if rec.type == REC_OPEN:
                open_rounds.add(json.loads(rec.payload)["round_id"])
            elif rec.type == REC_CLOSE:
                open_rounds.discard(json.loads(rec.payload)["round_id"])
        except Exception:
            pass  # unparseable boundary: the keep loop retains it
    keep: List[bool] = []
    for rec in records:
        if rec.type in (REC_OPEN, REC_CLOSE, REC_ENVELOPE):
            try:
                if rec.type == REC_ENVELOPE:
                    rid = ev._HEADER.unpack_from(rec.payload)[3]
                else:
                    rid = json.loads(rec.payload)["round_id"]
                keep.append(rid in open_rounds)
            except Exception:
                keep.append(True)
        else:
            keep.append(True)
    return keep


@dataclass
class CompactionStats:
    """What one compaction pass did (all byte counts manifest-accounted,
    so ``.spill`` scratch files never enter the arithmetic)."""

    examined: int = 0  # sealed records considered for rewrite
    kept: int = 0
    dropped: int = 0
    segments_removed: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def ran(self) -> bool:
        return self.segments_removed > 0


class Compactor:
    """Rewrites a :class:`LogDir`'s sealed prefix down to live records."""

    def __init__(self, liveness: LivenessFn = deployment_liveness):
        self.liveness = liveness

    def compact(self, log: LogDir) -> CompactionStats:
        """Online compaction of an open (single-writer-owned) log dir.

        The active segment is never read for rewrite and never
        replaced; with fewer than two manifest segments there is
        nothing to do."""
        stats = CompactionStats(bytes_before=log.disk_bytes())
        sealed = log.sealed_names()
        if not sealed:
            stats.bytes_after = stats.bytes_before
            return stats

        sealed_records: List[WalRecord] = []
        for name in sealed:
            inner = WriteAheadLog.read(log.root / name)
            if inner.truncated:
                # a damaged sealed segment cannot be safely rewritten
                # (records past the damage are unreachable anyway)
                stats.bytes_after = stats.bytes_before
                return stats
            sealed_records.extend(inner.records)
        active_records = WriteAheadLog.read(log.root / log.active_name).records

        keep = self.liveness(list(sealed_records) + list(active_records))
        keep = keep[: len(sealed_records)]
        stats.examined = len(sealed_records)
        stats.kept = sum(keep)
        stats.dropped = stats.examined - stats.kept
        if stats.dropped == 0:
            stats.bytes_after = stats.bytes_before
            return stats

        live = [rec for rec, k in zip(sealed_records, keep) if k]
        base = segment_name(log.next_seq)
        log.next_seq += 1
        write_segment_file(log.root / base, live)
        hit("compact:written")
        old = list(sealed)
        log.segments = [base, log.active_name]
        log._write_manifest()
        hit("compact:swapped")
        for name in old:
            path = log.root / name
            if path.exists():
                path.unlink()
        hit("compact:cleaned")
        stats.segments_removed = len(old)
        stats.bytes_after = log.disk_bytes()
        return stats


def compact_state_dir(
    root: Union[str, Path],
    liveness: LivenessFn = deployment_liveness,
    legacy_name: str = "atom.wal",
) -> CompactionStats:
    """Offline compaction (CLI / tooling): open the dir for append —
    which migrates a legacy single-file log in place — seal the current
    active segment, compact, and close.  Must only run when no server
    process owns the directory."""
    log = LogDir(root, fsync_every=0, fresh=False, legacy_name=legacy_name)
    try:
        log.rotate()
        return Compactor(liveness).compact(log)
    finally:
        log.close()
