"""Segmented log directories: the sharded WAL's on-disk layout.

PR 5's durability layer journaled a whole deployment into one unbounded
``atom.wal``.  A :class:`LogDir` keeps the same record framing (the
CRC-framed :mod:`repro.store.wal` format, verbatim) but rotates the
append stream across *segment files*::

    state-dir/
      wal.manifest        atomic JSON manifest (segment order + next seq)
      wal-000001.seg      sealed segment (never written again)
      wal-000002.seg      ...
      wal-000003.seg      the active segment (appends go here)

Rotation triggers on size (``segment_bytes``) or record count
(``segment_records``); the *logical* log is the concatenation of the
manifest's segments in manifest order — readers never glob the
directory, so scratch files (``spill/*.spill``, backups) and orphans
from interrupted rotations are invisible to replay.

Crash-safety invariants:

- The **manifest swap is the commit point** of every layout change
  (rotation, compaction).  It is written to a temp file, fsynced, and
  ``os.replace``d over the old one, then the directory entry is
  fsynced — a crash on either side of the swap leaves a fully
  consistent layout (the old one, or the new one).
- A crash *between* creating a new segment file and swapping the
  manifest leaves an orphan ``wal-*.seg``; the next open-for-append
  garbage-collects any ``wal-*.seg`` not named by the manifest.  Only
  that glob is eligible: ``.spill`` scratch segments, backups, and the
  legacy single-file log are never touched.
- Only the **active** (last) segment may carry a torn tail; a damaged
  record in a *sealed* segment conservatively ends the scan (replay
  must not skip holes — later records can depend on earlier ones),
  exactly like mid-file corruption in the single-file reader.

Legacy single-file state dirs stay readable and writable: opening one
for append migrates ``atom.wal`` in place (rename to segment 1, write
a manifest) so every pre-sharding state dir upgrades on first touch.

The module-level :data:`FAILPOINT` hook exists for crash testing: the
rotation/compaction code calls :func:`hit` at each named point between
filesystem operations, and tests install a hook that raises to
simulate a SIGKILL exactly there.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.store.wal import MAGIC, WAL_VERSION, WalRecord, WriteAheadLog

MANIFEST_NAME = "wal.manifest"
SEGMENT_GLOB = "wal-*.seg"
MANIFEST_VERSION = 1
#: rotate the active segment once it exceeds this many payload bytes
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: crash-test hook: called with a point name ("rotate:sealed",
#: "compact:swapped", ...) between the filesystem steps of every
#: layout change; a test hook that raises simulates dying right there
FAILPOINT: Optional[Callable[[str], None]] = None


def hit(point: str) -> None:
    if FAILPOINT is not None:
        FAILPOINT(point)


class LogDirError(RuntimeError):
    """The segmented layout is unusable (bad manifest, missing files)."""


def segment_name(seq: int) -> str:
    return f"wal-{seq:06d}.seg"


@dataclass
class LogScan:
    """The logical log read back across segments (WalScan, widened)."""

    records: List[WalRecord] = field(default_factory=list)
    truncated: bool = False
    reason: str = ""
    #: segment file names actually read, in order — test instrumentation
    #: for "restore never read pre-safe-point segments"
    segments_read: List[str] = field(default_factory=list)
    #: (segment name, record count) per segment read, manifest order
    counts: List[Tuple[str, int]] = field(default_factory=list)
    #: total manifest-accounted bytes on disk (scratch files excluded)
    disk_bytes: int = 0

    @property
    def clean_shutdown(self) -> bool:
        from repro.store.wal import RecordType

        return bool(self.records) and self.records[-1].type == RecordType.CLEAN


def _fsync_dir(root: Path) -> None:
    fd = os.open(root, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_manifest(root: Path) -> Optional[dict]:
    path = root / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        obj = json.loads(path.read_text())
    except (ValueError, OSError) as exc:
        raise LogDirError(f"unreadable manifest {path}: {exc}") from exc
    if obj.get("version") != MANIFEST_VERSION:
        raise LogDirError(
            f"{path} has manifest version {obj.get('version')}, "
            f"expected {MANIFEST_VERSION}"
        )
    if not isinstance(obj.get("segments"), list) or not obj["segments"]:
        raise LogDirError(f"{path} names no segments")
    return obj


class LogDir:
    """Appender for one segmented log (single writer per directory)."""

    def __init__(
        self,
        root: Union[str, Path],
        fsync_every: int = 8,
        fresh: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_records: int = 0,
        legacy_name: str = "atom.wal",
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync_every = fsync_every
        self.segment_bytes = max(0, int(segment_bytes))
        self.segment_records = max(0, int(segment_records))
        self.legacy_name = legacy_name
        self._closed = False
        self._active: Optional[WriteAheadLog] = None
        self._active_bytes = 0
        self._active_records = 0
        manifest = None if fresh else _read_manifest(self.root)
        if fresh:
            # Mirror the single-file writer's "wb" truncation: a fresh
            # log supersedes whatever segmented/legacy layout remained
            # (callers that must preserve it rotate aside first).
            for seg in self.root.glob(SEGMENT_GLOB):
                seg.unlink()
            for stale in (MANIFEST_NAME, MANIFEST_NAME + ".tmp", legacy_name):
                p = self.root / stale
                if p.exists():
                    p.unlink()
            self.segments: List[str] = []
            self.next_seq = 1
            self._open_next_segment()
        elif manifest is None:
            legacy = self.root / legacy_name
            if legacy.exists() and legacy.stat().st_size > 0:
                self._migrate_legacy(legacy)
            else:
                self.segments = []
                self.next_seq = 1
                self._open_next_segment()
        else:
            self.segments = list(manifest["segments"])
            self.next_seq = int(manifest["next_seq"])
            self._collect_orphans()
            active = self.root / self.segments[-1]
            if not active.exists():
                raise LogDirError(f"manifest names missing segment {active}")
            self._active = WriteAheadLog(
                active, fsync_every=fsync_every, fresh=False
            )
            self._active_bytes = active.stat().st_size
            self._active_records = len(WriteAheadLog.read(active).records)

    # -- layout plumbing ----------------------------------------------

    def _migrate_legacy(self, legacy: Path) -> None:
        """Upgrade a pre-sharding single-file dir in place: the old
        ``atom.wal`` becomes segment 1 (tail damage truncated exactly
        as the single-file reopen would) and appends continue into it."""
        scan = WriteAheadLog.read(legacy)
        if scan.truncated:
            with open(legacy, "r+b") as fh:
                fh.truncate(scan.end_offset)
        name = segment_name(1)
        legacy.replace(self.root / name)
        self.segments = [name]
        self.next_seq = 2
        self._write_manifest()
        self._active = WriteAheadLog(
            self.root / name, fsync_every=self.fsync_every, fresh=False
        )
        self._active_bytes = (self.root / name).stat().st_size
        self._active_records = len(scan.records)

    def _collect_orphans(self) -> None:
        """Unlink ``wal-*.seg`` files the manifest does not name (and a
        stale manifest temp file): leftovers of a rotation/compaction
        that died before its manifest swap.  Nothing else is eligible —
        ``.spill`` scratch segments in particular are a different
        subsystem's files and are never counted or collected."""
        named = set(self.segments)
        for seg in self.root.glob(SEGMENT_GLOB):
            if seg.name not in named:
                seg.unlink()
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        if tmp.exists():
            tmp.unlink()

    def _write_manifest(self) -> None:
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(
                {
                    "version": MANIFEST_VERSION,
                    "next_seq": self.next_seq,
                    "segments": self.segments,
                },
                fh,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.root / MANIFEST_NAME)
        _fsync_dir(self.root)

    def _open_next_segment(self) -> None:
        name = segment_name(self.next_seq)
        self.next_seq += 1
        wal = WriteAheadLog(
            self.root / name, fsync_every=self.fsync_every, fresh=True
        )
        wal.sync()  # the magic header is durable before the manifest names it
        hit("rotate:created")
        self.segments.append(name)
        self._write_manifest()
        hit("rotate:swapped")
        self._active = wal
        self._active_bytes = len(MAGIC) + 1
        self._active_records = 0

    # -- append API (WriteAheadLog-compatible) -------------------------

    def append(self, rtype: int, payload: bytes) -> None:
        if self._closed:
            raise LogDirError(f"log dir {self.root} is closed")
        self._active.append(rtype, payload)
        self._active_bytes += len(payload) + 9  # u8 type + u32 len + u32 crc
        self._active_records += 1
        if self._over_threshold():
            self.rotate()

    def _over_threshold(self) -> bool:
        if self.segment_bytes and self._active_bytes >= self.segment_bytes:
            return True
        if self.segment_records and self._active_records >= self.segment_records:
            return True
        return False

    def rotate(self) -> bool:
        """Seal the active segment and open the next one (no-op when
        the active segment holds no records yet).  The new segment is
        created and fsynced *before* the manifest swap publishes it —
        a crash between the two leaves a collectable orphan, never a
        manifest naming a missing file."""
        if self._closed or self._active_records == 0:
            return False
        self._active.close()
        hit("rotate:sealed")
        self._open_next_segment()
        return True

    def sync(self) -> None:
        if not self._closed:
            self._active.sync()

    def close(self) -> None:
        if not self._closed:
            self._active.close()
            self._closed = True

    # -- introspection -------------------------------------------------

    @property
    def active_name(self) -> str:
        return self.segments[-1]

    def sealed_names(self) -> List[str]:
        return self.segments[:-1]

    def disk_bytes(self) -> int:
        """Manifest-accounted bytes (scratch ``.spill`` files and
        orphans deliberately excluded from retention accounting)."""
        total = 0
        for name in self.segments:
            path = self.root / name
            if path.exists():
                total += path.stat().st_size
        return total

    # -- read side -----------------------------------------------------

    @staticmethod
    def present(root: Union[str, Path], legacy_name: str = "atom.wal") -> bool:
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            return True
        return (root / legacy_name).exists()

    @staticmethod
    def scan_dir(
        root: Union[str, Path], legacy_name: str = "atom.wal"
    ) -> LogScan:
        """Read the logical log: every manifest segment in order (or
        the legacy single file).  Only the last segment tolerates a
        torn tail; damage anywhere else conservatively ends the scan."""
        root = Path(root)
        manifest = _read_manifest(root)
        scan = LogScan()
        if manifest is None:
            legacy = root / legacy_name
            if not legacy.exists():
                raise LogDirError(f"no log (manifest or {legacy_name}) under {root}")
            inner = WriteAheadLog.read(legacy)
            scan.records = inner.records
            scan.truncated = inner.truncated
            scan.reason = inner.reason
            scan.segments_read = [legacy_name]
            scan.counts = [(legacy_name, len(inner.records))]
            scan.disk_bytes = legacy.stat().st_size
            return scan
        names = manifest["segments"]
        for i, name in enumerate(names):
            path = root / name
            last = i == len(names) - 1
            if not path.exists():
                scan.truncated = True
                scan.reason = f"manifest names missing segment {name}"
                break
            scan.disk_bytes += path.stat().st_size
            inner = WriteAheadLog.read(path)
            scan.segments_read.append(name)
            scan.counts.append((name, len(inner.records)))
            scan.records.extend(inner.records)
            if inner.truncated and not last:
                # a sealed segment must be whole: replay cannot skip a
                # hole, so everything after it is unreachable too
                scan.truncated = True
                scan.reason = f"{name}: {inner.reason}"
                break
            if inner.truncated:
                scan.truncated = True
                scan.reason = f"{name}: {inner.reason}"
        return scan

    # -- backup rotation (crashed-run protection) ----------------------

    @staticmethod
    def rotate_aside(
        root: Union[str, Path], legacy_name: str = "atom.wal"
    ) -> Optional[Path]:
        """Move a *resumable* log layout (segments + manifest, or the
        legacy single file) into a ``wal-bak``/``wal-bakN`` subdirectory
        instead of letting a fresh run truncate the only copy of the
        journaled state.  Returns the backup dir (None when there was
        nothing worth keeping)."""
        root = Path(root)
        if not LogDir.present(root, legacy_name):
            return None
        try:
            scan = LogDir.scan_dir(root, legacy_name)
        except Exception:
            return None  # not a log at all; overwriting loses nothing
        if not scan.records or scan.clean_shutdown:
            return None
        backup = root / "wal-bak"
        n = 1
        while backup.exists():  # never clobber an earlier backup
            backup = root / f"wal-bak{n}"
            n += 1
        backup.mkdir()
        for name in (MANIFEST_NAME, legacy_name):
            path = root / name
            if path.exists():
                path.replace(backup / name)
        for seg in sorted(root.glob(SEGMENT_GLOB)):
            seg.replace(backup / seg.name)
        return backup


def write_segment_file(path: Union[str, Path], records) -> int:
    """Write a standalone segment file holding ``records`` (an iterable
    of :class:`WalRecord`), fsynced; returns the record count.  Used by
    compaction (the rewritten base segment) and bundle install."""
    wal = WriteAheadLog(path, fsync_every=0, fresh=True)
    count = 0
    for rec in records:
        wal.append(rec.type, rec.payload)
        count += 1
    wal.close()  # close syncs
    return count
