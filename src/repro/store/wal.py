"""Append-only, CRC-framed write-ahead log.

The durability layer's single on-disk artifact is one log file per
state directory (``atom.wal``).  Everything the protocol needs to come
back from a crash is appended to it in arrival order: accepted intake
envelopes (PR 4's versioned wire bytes, reused verbatim as the
serialization substrate), store-local records (rng marks, layer
commits, checkpoints, round boundaries), and lifecycle markers.

Frame format::

    file   := magic record*
    magic  := b"ATWL" u8(version)
    record := u8(type) u32(length) payload u32(crc32)

where the CRC covers ``type || length || payload``.  The reader is
tolerant of a *torn tail*: a crash mid-append leaves a partial or
bit-damaged final record, which is detected (length overrun or CRC
mismatch) and dropped — every record before it replays normally.  A
corrupted record mid-file conservatively drops the rest of the log too
(replay must not skip over a hole: later records can depend on earlier
ones).

Durability knob: ``fsync_every`` batches fsyncs — every append flushes
the OS buffer, but the file is fsynced only every N appends (0: never,
except on :meth:`sync`/:meth:`close`).  Commit points call
:meth:`sync` explicitly, so a committed layer is always on disk
regardless of the batching setting.
"""

from __future__ import annotations

import enum
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

MAGIC = b"ATWL"
WAL_VERSION = 1

_FRAME_HEAD = struct.Struct(">BI")
_CRC = struct.Struct(">I")


class WalError(RuntimeError):
    """The log file cannot be used at all (bad magic, wrong version)."""


class RecordType(enum.IntEnum):
    """The record catalogue (see DESIGN.md "Durability & crash recovery")."""

    #: deployment config of the run that owns this log (json)
    META = 1
    #: stream-level config: StreamConfig + fault schedule + seed (json)
    STREAM_BEGIN = 2
    #: rng state at AtomDeployment.start_round entry (json)
    ROUND_SETUP = 3
    #: rng state when a round's first mixing layer starts (json)
    ROUND_BEGIN = 4
    #: one accepted intake envelope, verbatim wire bytes
    ENVELOPE = 5
    #: one honest (message, gid) intake unit of a stream round (json)
    HONEST = 6
    #: a committed mixing layer: rng state + the layer's audits (binary)
    LAYER_COMMIT = 7
    #: node holdings snapshot at a committed layer (binary)
    CHECKPOINT = 8
    #: a settled stream round: RoundStats + rng state (json)
    ROUND_DONE = 9
    #: a standalone round ran its exit protocol (json)
    ROUND_END = 10
    #: recovery replayed this log and the run continued after this point
    RESUME = 11
    #: clean shutdown — nothing to replay on the next start
    CLEAN = 12
    #: one spilled intake segment (a CiphertextBatch buffer).  Written
    #: to per-group *scratch* spill logs under the spill directory,
    #: never to the deployment WAL — crash recovery rebuilds intake
    #: from the journaled ENVELOPE records instead.
    SPILL_SEGMENT = 13


@dataclass(frozen=True)
class WalRecord:
    """One framed record as read back from disk."""

    type: int  # int, not RecordType: unknown types survive a scan
    payload: bytes


@dataclass
class WalScan:
    """Result of reading a log: the intact prefix plus tail diagnosis."""

    records: List[WalRecord] = field(default_factory=list)
    truncated: bool = False
    reason: str = ""
    #: file offset where the intact prefix ends (== file size when not
    #: truncated); reopening for append truncates damage back to here
    end_offset: int = 0

    @property
    def clean_shutdown(self) -> bool:
        """Whether the log ends in a CLEAN marker (no replay needed)."""
        return bool(self.records) and self.records[-1].type == RecordType.CLEAN


class WriteAheadLog:
    """Appender for one log file (single writer per state directory)."""

    def __init__(
        self,
        path: Union[str, Path],
        fsync_every: int = 8,
        fresh: bool = True,
    ):
        self.path = Path(path)
        self.fsync_every = max(0, fsync_every)
        self._pending = 0
        self._closed = False
        exists = self.path.exists() and self.path.stat().st_size > 0
        if fresh or not exists:
            self._fh = open(self.path, "wb")
            self._fh.write(MAGIC + bytes([WAL_VERSION]))
            self._fh.flush()
        else:
            # Appending after a torn tail would bury every new record
            # behind unreadable garbage (the reader stops at the first
            # bad frame); truncate the damage back to the intact
            # prefix first.
            scan = WriteAheadLog.read(self.path)
            if scan.truncated:
                with open(self.path, "r+b") as fh:
                    fh.truncate(scan.end_offset)
            self._fh = open(self.path, "ab")

    def append(self, rtype: int, payload: bytes) -> None:
        """Frame and append one record; flushes the user-space buffer
        always, fsyncs per the batching knob."""
        if self._closed:
            raise WalError(f"log {self.path} is closed")
        head = _FRAME_HEAD.pack(int(rtype), len(payload))
        crc = zlib.crc32(head + payload) & 0xFFFFFFFF
        self._fh.write(head + payload + _CRC.pack(crc))
        self._fh.flush()
        self._pending += 1
        if self.fsync_every and self._pending >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Force the log to stable storage (commit points call this)."""
        if not self._closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._pending = 0

    def close(self) -> None:
        if not self._closed:
            self.sync()
            self._fh.close()
            self._closed = True

    # -- reading -------------------------------------------------------

    @staticmethod
    def iter_records(path: Union[str, Path]):
        """Stream a log's intact records one at a time.

        Same framing and tail tolerance as :meth:`read`, but the file
        is consumed incrementally — a multi-gigabyte spill log never
        sits in memory whole.  Stops silently at the first damaged
        frame (spill logs are scratch; the WAL proper uses
        :meth:`read`, which also diagnoses the tear)."""
        with open(path, "rb") as fh:
            head = fh.read(len(MAGIC) + 1)
            if len(head) < len(MAGIC) + 1 or head[: len(MAGIC)] != MAGIC:
                raise WalError(f"{path} is not a write-ahead log (bad magic)")
            if head[len(MAGIC)] != WAL_VERSION:
                raise WalError(
                    f"{path} has log version {head[len(MAGIC)]}, "
                    f"expected {WAL_VERSION}"
                )
            while True:
                frame_head = fh.read(_FRAME_HEAD.size)
                if len(frame_head) < _FRAME_HEAD.size:
                    return
                rtype, length = _FRAME_HEAD.unpack(frame_head)
                body = fh.read(length + _CRC.size)
                if len(body) < length + _CRC.size:
                    return
                payload = body[:length]
                (crc,) = _CRC.unpack_from(body, length)
                if crc != (zlib.crc32(frame_head + payload) & 0xFFFFFFFF):
                    return
                yield WalRecord(type=rtype, payload=payload)

    @staticmethod
    def read(path: Union[str, Path]) -> WalScan:
        """Scan a log, returning every intact record.

        Torn or bit-flipped data truncates the scan at the first bad
        frame (``truncated``/``reason`` say so); it never raises for
        tail damage, only for a file that was never a log at all.
        """
        return WriteAheadLog.scan_bytes(Path(path).read_bytes(), what=path)

    @staticmethod
    def scan_bytes(raw: bytes, what: object = "<memory>") -> WalScan:
        """Scan an in-memory log image with :meth:`read` semantics
        (checkpoint bundles carry such images over the wire)."""
        if len(raw) < len(MAGIC) + 1 or raw[: len(MAGIC)] != MAGIC:
            raise WalError(f"{what} is not a write-ahead log (bad magic)")
        if raw[len(MAGIC)] != WAL_VERSION:
            raise WalError(
                f"{what} has log version {raw[len(MAGIC)]}, "
                f"expected {WAL_VERSION}"
            )
        scan = WalScan(end_offset=len(MAGIC) + 1)
        pos = len(MAGIC) + 1
        while pos < len(raw):
            if pos + _FRAME_HEAD.size > len(raw):
                scan.truncated = True
                scan.reason = f"torn frame header at offset {pos}"
                break
            rtype, length = _FRAME_HEAD.unpack_from(raw, pos)
            body_end = pos + _FRAME_HEAD.size + length
            if body_end + _CRC.size > len(raw):
                scan.truncated = True
                scan.reason = f"torn record body at offset {pos}"
                break
            payload = raw[pos + _FRAME_HEAD.size: body_end]
            (crc,) = _CRC.unpack_from(raw, body_end)
            expect = zlib.crc32(raw[pos: body_end]) & 0xFFFFFFFF
            if crc != expect:
                scan.truncated = True
                scan.reason = f"crc mismatch at offset {pos}"
                break
            scan.records.append(WalRecord(type=rtype, payload=payload))
            pos = body_end + _CRC.size
            scan.end_offset = pos
        return scan
