"""Durable state: write-ahead log, checkpoints, crash-restart recovery.

The fault story of the paper (§4.5 buddy recovery, §4.6 blame) assumes
servers can *rejoin*; this package makes the reproduction restartable:

- :mod:`repro.store.wal` — the append-only, CRC-framed log with a
  torn-tail-tolerant reader and an fsync-batching knob.
- :mod:`repro.store.checkpoint` — record codecs: snapshots of node
  holdings (via the group backends' element codecs), layer commits
  with audits, rng marks, settled-round stats.
- :mod:`repro.store.store` — the :class:`Store` interface the protocol
  journals through (no-op by default; :class:`DurableStore` when a
  deployment has a ``state_dir``).
- :mod:`repro.store.recovery` — :class:`RecoveryManager`: rebuilds a
  deployment/round/stream from the log and re-enters the coordinator's
  two-phase layer protocol at the exact committed layer.

Import :class:`~repro.store.recovery.RecoveryManager` from its module
(it pulls in the whole protocol stack; the store primitives here stay
light).
"""

from repro.store.store import DurableStore, NullStore, Store
from repro.store.wal import (
    RecordType,
    WalError,
    WalRecord,
    WalScan,
    WriteAheadLog,
)

__all__ = [
    "Store",
    "NullStore",
    "DurableStore",
    "WriteAheadLog",
    "WalRecord",
    "WalScan",
    "WalError",
    "RecordType",
]
