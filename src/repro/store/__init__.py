"""Durable state: write-ahead log, checkpoints, crash-restart recovery.

The fault story of the paper (§4.5 buddy recovery, §4.6 blame) assumes
servers can *rejoin*; this package makes the reproduction restartable:

- :mod:`repro.store.wal` — the append-only, CRC-framed record framing
  with a torn-tail-tolerant reader and an fsync-batching knob.
- :mod:`repro.store.segments` — :class:`LogDir`: the sharded on-disk
  layout (``wal-<seq>.seg`` rotation under an atomic manifest, legacy
  single-file migration, orphan collection, crash-test failpoints).
- :mod:`repro.store.compact` — :class:`Compactor`: rewrites sealed
  segments down to the records a restore can still need (safe-point =
  durable round boundaries).
- :mod:`repro.store.ship` — :class:`CheckpointShipper`: packages the
  live suffix into a self-contained bundle a replacement process
  restores from in O(state) instead of O(history).
- :mod:`repro.store.checkpoint` — record codecs: snapshots of node
  holdings (via the group backends' element codecs), layer commits
  with audits, rng marks, settled-round stats.
- :mod:`repro.store.store` — the :class:`Store` interface the protocol
  journals through (no-op by default; :class:`DurableStore` when a
  deployment has a ``state_dir``).
- :mod:`repro.store.recovery` — :class:`RecoveryManager`: rebuilds a
  deployment/round/stream from the log and re-enters the coordinator's
  two-phase layer protocol at the exact committed layer.

Import :class:`~repro.store.recovery.RecoveryManager` from its module
(it pulls in the whole protocol stack; the store primitives here stay
light).
"""

from repro.store.segments import LogDir, LogScan
from repro.store.store import DurableStore, NullStore, Store
from repro.store.wal import (
    RecordType,
    WalError,
    WalRecord,
    WalScan,
    WriteAheadLog,
)

__all__ = [
    "Store",
    "NullStore",
    "DurableStore",
    "LogDir",
    "LogScan",
    "WriteAheadLog",
    "WalRecord",
    "WalScan",
    "WalError",
    "RecordType",
]
