"""Crash-restart recovery: rebuild a deployment, round, or stream from
the write-ahead log and continue where the crash left off.

The recovery contract rests on the repo's determinism discipline: every
piece of round crypto derives from a :class:`DeterministicRng`, whose
complete state is ``(seed, counter)``.  The log therefore never stores
secret keys — it stores *rng marks* (ROUND_SETUP, ROUND_BEGIN,
LAYER_COMMIT) and replays the constructions:

- **Contexts and trustees**: seek the rng to the journaled
  ROUND_SETUP counter and re-run ``start_round`` — group formation,
  member/DVSS keys, the trustee threshold key, and buddy escrows come
  out bit-identical (server *identity* keys are random but never enter
  round crypto).
- **Intake**: the accepted SUBMIT envelopes replay verbatim through
  the node's ``handle`` path (proofs re-verified for free), rebuilding
  holdings, the duplicate filter, trap commitments, and the blame
  registry in original user-id order.
- **Mixing**: the latest CHECKPOINT pins per-node holdings at a
  committed layer; the matching LAYER_COMMIT's audits and rng counter
  are restored, and the coordinator re-enters the two-phase layer
  protocol at exactly that layer.  Remaining layers draw the same
  sub-seeds an uninterrupted run would have — the resumed
  ``RoundResult`` is byte-identical.

Idempotency rules (what makes recovery re-crashable):

- Journaling is suppressed while replaying, so recovery appends
  nothing until its RESUME marker — a crash mid-recovery leaves the
  log unchanged.
- Per round, the *latest* ROUND_SETUP wins and resets that round's
  intake/mixing records (a resumed run that rebuilds a round
  supersedes the stale epoch's records).
- Per layer, the latest LAYER_COMMIT/CHECKPOINT wins.
- A CLEAN marker at the tail means nothing to resume.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.pipeline import FaultSchedule, RoundStats, StreamEngine, StreamReport
from repro.core.protocol import AtomDeployment, Round, RoundResult
from repro.crypto.groups import DeterministicRng, get_group
from repro.net import envelopes as ev
from repro.net.envelopes import Envelope
from repro.store import checkpoint as ck
from repro.store.segments import LogDir, LogScan
from repro.store.store import DurableStore
from repro.store.wal import RecordType


class RecoveryError(RuntimeError):
    """The state directory cannot be resumed (clean, unseeded, spent)."""


def _journaled_wall_s(rounds) -> float:
    """Approximate wall clock of settled rounds from their journaled
    timings (overlap subtracted: it is counted inside the previous
    round's mix window already).  Both resume paths use this, so a
    resumed report's throughput stays comparable to a live run's."""
    return sum(max(0.0, s.mix_wall_s + s.intake_s - s.overlap_s) for s in rounds)


class RecoveryManager:
    """Reads one state directory and resumes what it finds."""

    def __init__(self, state_dir: Union[str, Path]):
        self.state_dir = Path(state_dir)
        if not LogDir.present(self.state_dir, DurableStore.WAL_NAME):
            raise RecoveryError(f"no write-ahead log under {self.state_dir}")
        self.scan: LogScan = LogDir.scan_dir(
            self.state_dir, DurableStore.WAL_NAME
        )
        #: segment files the restore actually read (test instrumentation
        #: for "a shipped restore never touches pre-safe-point history")
        self.segments_read = list(self.scan.segments_read)
        self.config = None
        self.group = None
        self._stream: Optional[Tuple[object, str]] = None
        self._setups: Dict[int, ck.RngMark] = {}
        self._fresh_setups: List[ck.RngMark] = []
        self._submissions: Dict[int, List[bytes]] = {}
        self._honest: Dict[int, List[Tuple[bytes, int]]] = {}
        self._mix_marks: Dict[int, List[ck.RngMark]] = {}
        self._commits: Dict[int, List[ck.LayerCommit]] = {}
        self._checkpoints: Dict[int, ck.Snapshot] = {}
        self._done: List[Tuple[RoundStats, int]] = []
        self._ended: Dict[int, bool] = {}
        self._index()

    # -- log indexing --------------------------------------------------

    def _index(self) -> None:
        for rec in self.scan.records:
            t = rec.type
            if t == RecordType.META:
                self.config = ck.decode_meta(rec.payload)
                self.group = get_group(self.config.crypto_group)
            elif t == RecordType.STREAM_BEGIN:
                self._stream = ck.decode_stream_begin(rec.payload)
            elif t == RecordType.ROUND_SETUP:
                mark = ck.decode_rng_mark(rec.payload)
                self._setups[mark.round_id] = mark
                if mark.fresh:
                    self._fresh_setups.append(mark)
                # latest setup wins: the round was (re)built, so its
                # older intake/mixing records are a stale epoch's
                self._submissions[mark.round_id] = []
                self._honest[mark.round_id] = []
                self._mix_marks[mark.round_id] = []
                self._commits[mark.round_id] = []
                self._checkpoints.pop(mark.round_id, None)
            elif t == RecordType.ROUND_BEGIN:
                mark = ck.decode_rng_mark(rec.payload)
                self._mix_marks.setdefault(mark.round_id, []).append(mark)
            elif t == RecordType.ENVELOPE:
                # Peek only the fixed header; full decode waits for the
                # round that actually replays.
                if len(rec.payload) >= ev._HEADER.size:
                    round_id = ev._HEADER.unpack_from(rec.payload)[3]
                    self._submissions.setdefault(round_id, []).append(rec.payload)
            elif t == RecordType.HONEST:
                # No value-level dedup: two users may legitimately send
                # identical (message, gid) pairs.  Rekey re-journals are
                # handled by the setup reset above instead.
                round_id, gid, message = ck.decode_honest(rec.payload)
                self._honest.setdefault(round_id, []).append((message, gid))
            elif t == RecordType.LAYER_COMMIT:
                self._require_group("LAYER_COMMIT")
                commit = ck.decode_layer_commit(self.group, rec.payload)
                self._commits.setdefault(commit.round_id, []).append(commit)
            elif t == RecordType.CHECKPOINT:
                self._require_group("CHECKPOINT")
                snap = ck.decode_checkpoint(self.group, rec.payload)
                self._checkpoints[snap.round_id] = snap
            elif t == RecordType.ROUND_DONE:
                self._done.append(ck.decode_round_stats(rec.payload))
            elif t == RecordType.ROUND_END:
                round_id, ok = ck.decode_round_end(rec.payload)
                self._ended[round_id] = ok
            # RESUME / CLEAN / unknown types: markers, nothing to index

    def _require_group(self, what: str) -> None:
        if self.group is None:
            raise RecoveryError(f"{what} record before META; log unusable")

    # -- diagnosis -----------------------------------------------------

    @property
    def clean_shutdown(self) -> bool:
        return self.scan.clean_shutdown

    @property
    def is_stream(self) -> bool:
        return self._stream is not None

    def needs_recovery(self) -> bool:
        return bool(self._setups) and not self.clean_shutdown

    def describe(self) -> str:
        """One-line state summary for the CLI."""
        if self.config is None:
            return "empty log (no META record)"
        kind = "stream" if self.is_stream else "round"
        tail = " (torn tail dropped)" if self.scan.truncated else ""
        if self.clean_shutdown:
            return f"{kind} run, clean shutdown{tail}"
        settled = len(self._done)
        committed = {
            rid: max((c.layer for c in commits), default=0)
            for rid, commits in self._commits.items()
            if commits
        }
        return (
            f"interrupted {kind} run: {settled} rounds settled, "
            f"committed layers {committed or '{}'}{tail}"
        )

    # -- shared replay helpers -----------------------------------------

    def _reopen_store(self) -> DurableStore:
        store = DurableStore(
            self.state_dir,
            self.group,
            fresh=False,
            fsync_every=self.config.wal_fsync_every,
            checkpoint_every=self.config.checkpoint_every,
            segment_bytes=self.config.wal_segment_bytes,
            segment_records=self.config.wal_segment_records,
            retain_segments=self.config.wal_retain_segments,
        )
        store.replaying = True
        return store

    def _recovered_config(self):
        # state_dir stays None: the recovered deployment gets the
        # reopened store injected instead of creating a fresh log.
        return dataclasses.replace(self.config, state_dir=None)

    @staticmethod
    def _replay_submission(rnd: Round, env: Envelope) -> None:
        """Re-admit one logged intake envelope: node state via the
        normal handle path, plus the deployment-side mirrors and the
        blame registry (user ids re-assigned in log order == original
        submission order)."""
        payload = env.payload
        if isinstance(payload, ev.SubmitTrap):
            sub = payload.submission
            gid = sub.gid
        else:
            sub = None
            gid = payload.gid
        # Replay under the envelope's *original* request id: the dedup
        # identity survives the crash, and the pre-crash session nonce
        # keeps it from colliding with the fresh session's ids.
        rnd.coordinator.submit(payload, gid, req_id=env.req_id)
        if sub is not None:
            for part in sub.pair:
                rnd.holdings[gid].append(part.vector)
            rnd.commitments[gid].append(sub.trap_commitment)
            rnd.trap_submissions[rnd._next_user_id] = (gid, sub)
        else:
            rnd.holdings[gid].append(payload.submission.vector)
        rnd._next_user_id += 1

    def _replay_intake(self, rnd: Round, round_id: int) -> int:
        count = 0
        for raw in self._submissions.get(round_id, []):
            self._replay_submission(rnd, Envelope.from_bytes(raw, self.group))
            count += 1
        return count

    def _latest_commits(self, round_id: int) -> Dict[int, ck.LayerCommit]:
        """Per layer, the last commit wins (a resumed run that re-mixed
        layers supersedes the first attempt's records)."""
        by_layer: Dict[int, ck.LayerCommit] = {}
        for commit in self._commits.get(round_id, []):
            by_layer[commit.layer] = commit
        return by_layer

    def _apply_checkpoint(self, rnd: Round, snap: ck.Snapshot) -> ck.LayerCommit:
        """Pin the coordinator at the checkpointed layer; returns the
        matching commit (whose rng counter is the resume point)."""
        commits = self._latest_commits(snap.round_id)
        if snap.layer not in commits:
            raise RecoveryError(
                f"checkpoint at layer {snap.layer} of round {snap.round_id} "
                f"has no matching layer commit"
            )
        coord = rnd.coordinator
        for gid, vectors in snap.holdings.items():
            coord.nodes[gid].holdings = list(vectors)
        coord.layer = snap.layer
        for layer in sorted(commits):
            if layer > snap.layer:
                continue
            for audit in commits[layer].audits:
                coord.result.audits.append(audit)
                coord.result.bytes_sent_total += audit.bytes_sent
        return commits[snap.layer]

    # -- standalone-round recovery -------------------------------------

    def resume_round(self):
        """Rebuild an interrupted standalone round at its last
        checkpoint.

        Returns ``(deployment, rnd, mix_rng)`` ready for
        ``deployment.run_round(rnd, mix_rng)`` — which re-enters the
        two-phase layer protocol at the committed layer and produces a
        result byte-identical to the uninterrupted run.
        """
        if self.config is None:
            raise RecoveryError("log holds no META record; nothing to resume")
        if self.is_stream:
            raise RecoveryError(
                "state dir holds a stream run; use resume_stream"
            )
        if self.clean_shutdown:
            raise RecoveryError("clean shutdown; nothing to resume")
        if not self._setups:
            raise RecoveryError("no round was set up; nothing to resume")
        round_id = max(self._setups)
        if round_id in self._ended:
            raise RecoveryError(
                f"round {round_id} already ran its exit protocol"
            )
        setup = self._setups[round_id]
        if not setup.seed:
            raise RecoveryError(
                "round was not driven by a DeterministicRng; its group "
                "keys cannot be replayed — rerun with a --seed"
            )
        snap = self._checkpoints.get(round_id)
        marks = self._mix_marks.get(round_id, [])
        if snap is None and not marks:
            raise RecoveryError(
                f"round {round_id} never started mixing; rerun it instead"
            )

        store = self._reopen_store()
        deployment = AtomDeployment(self._recovered_config(), store=store)
        rng = DeterministicRng.at(setup.seed, setup.counter)
        rnd = deployment.start_round(round_id, rng=rng)
        self._replay_intake(rnd, round_id)
        if snap is not None:
            commit = self._apply_checkpoint(rnd, snap)
            mix_rng = DeterministicRng.at(commit.seed, commit.counter)
        else:
            mark = marks[-1]
            mix_rng = (
                DeterministicRng.at(mark.seed, mark.counter)
                if mark.seed else None
            )
        store.replaying = False
        store.mark_resume()
        return deployment, rnd, mix_rng

    def complete_round(self) -> RoundResult:
        """Resume and drive the interrupted round to its exit; leaves
        a clean-shutdown marker on success."""
        deployment, rnd, mix_rng = self.resume_round()
        with deployment:
            return deployment.run_round(rnd, mix_rng)

    def finalize_round(self) -> Optional[Tuple[int, bool]]:
        """``(round_id, ok)`` when the standalone round already ran its
        exit protocol and the crash merely ate the clean marker — the
        missing marker is written so later starts see a clean dir.
        ``None`` when there is a round to actually resume."""
        if self.is_stream or self.clean_shutdown or not self._setups:
            return None
        round_id = max(self._setups)
        if round_id not in self._ended:
            return None
        store = self._reopen_store()
        store.replaying = False
        store.mark_clean()
        store.close()
        return round_id, self._ended[round_id]

    # -- stream recovery -----------------------------------------------

    def resume_stream(self, message_fn=None) -> StreamReport:
        """Resume an interrupted stream and run it to completion.

        Settled rounds keep their journaled stats; the interrupted
        round re-enters mixing at its last committed layer (its intake
        replayed from the log); later rounds run normally.  Streams
        with a custom ``message_fn`` must pass the same one again.
        """
        finished = self._finalize_if_complete()
        if finished is not None:
            return finished
        engine, report, rnd, stats, first = self._prepare_stream(message_fn)
        store = engine.deployment.store
        try:
            out = engine.resume_run(report, rnd, stats, first)
        except BaseException:
            store.close()
            raise
        store.mark_clean()
        store.close()
        return out

    def _finalize_if_complete(self) -> Optional[StreamReport]:
        """A crash in the window between the last round's (fsynced)
        ROUND_DONE and the clean-shutdown marker leaves a *complete*
        stream that merely looks interrupted: rebuild its report from
        the journaled stats and write the missing marker, instead of
        refusing."""
        if self._stream is None or self.clean_shutdown:
            return None
        stream_cfg, _ = self._stream
        if len(self._done) < stream_cfg.rounds:
            return None
        store = self._reopen_store()
        store.replaying = False
        store.mark_clean()
        store.close()
        report = StreamReport(rounds=[s for s, _ in self._done])
        report.wall_s = _journaled_wall_s(report.rounds)
        return report

    def _prepare_stream(self, message_fn=None):
        if self.config is None:
            raise RecoveryError("log holds no META record; nothing to resume")
        if not self.is_stream:
            raise RecoveryError(
                "state dir holds a standalone round; use complete_round"
            )
        if self.clean_shutdown:
            raise RecoveryError("clean shutdown; nothing to resume")
        stream_cfg, spec = self._stream
        done = list(self._done)
        first = len(done)
        if first >= stream_cfg.rounds:
            raise RecoveryError("stream already complete; nothing to resume")
        setup = self._setups.get(first)
        if setup is None:
            raise RecoveryError(f"no setup recorded for round {first}")
        if not setup.seed:
            raise RecoveryError("stream rng state missing; cannot replay")

        schedule = FaultSchedule.parse(spec) if spec else FaultSchedule()
        engine = StreamEngine(
            self._recovered_config(), schedule, stream_cfg,
            message_fn=message_fn,
        )
        store = self._reopen_store()
        engine.deployment.store = store
        # Pre-fill the settled rounds' wall clock so resume_run's `+=`
        # yields a total comparable to an uninterrupted run (otherwise
        # throughput divides all rounds' messages by resumed time only).
        report = StreamReport(rounds=[s for s, _ in done])
        report.wall_s = _journaled_wall_s(report.rounds)

        # Epoch replay: re-form the contexts (and buddy escrows) the
        # interrupted round was using.
        epochs = [m for m in self._fresh_setups if m.round_id <= first]
        if not epochs:
            raise RecoveryError("no epoch establishment recorded")
        epoch = epochs[-1]
        engine.rng.seek(epoch.counter)
        rnd = engine._establish_contexts(epoch.round_id)
        if not (epoch.round_id == first and epoch.counter == setup.counter):
            # The epoch Round is not round `first`: drop its endpoints
            # and replay round `first`'s own setup (trustee draws).
            rnd.coordinator.release()
            engine.rng.seek(setup.counter)
            rnd = engine._new_round(first)

        snap = self._checkpoints.get(first)
        marks = self._mix_marks.get(first, [])
        if snap is None and not marks and first == 0:
            # Crash during round 0's initial intake: its draws are not
            # individually journaled, so redo the round wholesale (the
            # fresh setup below supersedes the stale log records).
            rnd.coordinator.release()
            store.replaying = False
            store.mark_resume()
            engine.contexts = None
            engine.rng.seek(epoch.counter)
            rnd = engine._new_round(0)
            stats = RoundStats(0)
            engine._drain_intake(rnd, stats, engine._plan_intake(0))
            return engine, report, rnd, stats, 0

        self._replay_intake(rnd, first)
        engine._honest[first] = list(self._honest.get(first, []))
        stats = RoundStats(first)
        if snap is not None:
            commit = self._apply_checkpoint(rnd, snap)
            engine.rng.seek(commit.counter)
        elif marks:
            engine.rng.seek(marks[-1].counter)
        else:
            # Between rounds: round `first-1` settled only after round
            # `first`'s intake drained, so the settle-time rng mark is
            # the resume point.
            engine.rng.seek(done[first - 1][1])
        store.replaying = False
        store.mark_resume()
        return engine, report, rnd, stats, first
