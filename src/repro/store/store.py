"""The store interface the protocol journals through.

:class:`Store` is the injection point: :class:`~repro.net.nodes.ServerNode`,
the :class:`~repro.net.coordinator.Coordinator`, and the
:class:`~repro.core.pipeline.StreamEngine` call its hooks at every
durability-relevant event.  The base class is a complete no-op — the
default for every deployment without a ``state_dir``, so the existing
in-memory paths pay nothing (the one hot-path hook, ``layer_commit``,
is additionally gated on ``store.enabled`` so the no-op case does not
even build its snapshot argument).

:class:`DurableStore` appends the events to a segmented
:class:`~repro.store.segments.LogDir` under the deployment's state
directory (``wal-*.seg`` + manifest; a legacy single-file ``atom.wal``
migrates in place on reopen).  ``replaying`` suppresses journaling
while :class:`~repro.store.recovery.RecoveryManager` re-executes
logged events, so recovery never duplicates records (and a crash
*during* recovery leaves the log byte-identical — recovery is
idempotent).

Disk stays bounded: segments rotate at the configured size/record
thresholds, and once the sealed-segment count exceeds
``retain_segments`` the store compacts at the next round boundary
(round settle / round end — the durable points whose records make
earlier history dead; see :mod:`repro.store.compact`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.crypto.groups import GroupBackend as Group
from repro.store import checkpoint as ck
from repro.store.segments import DEFAULT_SEGMENT_BYTES, LogDir
from repro.store.wal import RecordType


class Store:
    """No-op store: the in-memory default."""

    #: hot-path guard: callers may skip building snapshot arguments
    enabled = False
    #: True while RecoveryManager replays the log through this store
    replaying = False

    # -- journaling hooks (all no-ops here) ---------------------------

    def envelope_accepted(self, env, group: Group) -> None:
        """A node accepted an intake envelope (SUBMIT_OK reply)."""

    def round_setup(self, round_id: int, rng, fresh: bool) -> None:
        """``AtomDeployment.start_round`` is about to draw from ``rng``."""

    def mixing_begin(self, round_id: int, rng) -> None:
        """The round's first mixing layer is about to draw sub-seeds."""

    def layer_commit(self, round_id, layer, rng, audits, holdings) -> None:
        """A mixing layer committed on every node."""

    def round_end(self, round_id: int, ok: bool) -> None:
        """The round ran its exit protocol (or aborted unrecovered)."""

    def stream_begin(self, stream, schedule_spec: str) -> None:
        """A StreamEngine run is starting."""

    def honest_intake(self, round_id: int, gid: int, message: bytes) -> None:
        """One honest stream-intake unit (replayable by message)."""

    def round_settled(self, stats, rng) -> None:
        """A stream round settled (ok or not); next round's intake is
        drained, making this the between-rounds resume point."""

    # -- lifecycle ----------------------------------------------------

    def mark_resume(self) -> None:
        """Recovery finished replaying; the run continues from here."""

    def mark_clean(self) -> None:
        """Clean shutdown: the next start must not replay."""

    def flush(self) -> None:
        """Push pending records to stable storage."""

    def close(self) -> None:
        """Release the underlying file (idempotent)."""


class NullStore(Store):
    """Alias of the no-op base, for explicitness at call sites."""


class DurableStore(Store):
    """Segmented-log-backed store rooted at a state directory."""

    enabled = True

    #: legacy single-file log name (pre-sharding dirs migrate from it)
    WAL_NAME = "atom.wal"

    def __init__(
        self,
        state_dir: Union[str, Path],
        group: Group,
        config=None,
        fsync_every: int = 8,
        checkpoint_every: int = 1,
        fresh: bool = True,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        segment_records: int = 0,
        retain_segments: int = 4,
    ):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.group = group
        self.checkpoint_every = max(1, checkpoint_every)
        self.retain_segments = max(0, retain_segments)
        self.replaying = False
        self._closed = False
        if fresh:
            # Never destroy a resumable log: re-running with a crashed
            # run's --state-dir (the natural retry, instead of
            # `repro resume`) rotates the old layout aside (into
            # wal-bak/) rather than truncating the only copy of the
            # journaled state.
            LogDir.rotate_aside(self.state_dir, self.WAL_NAME)
        self.wal = LogDir(
            self.state_dir,
            fsync_every=fsync_every,
            fresh=fresh,
            segment_bytes=segment_bytes,
            segment_records=segment_records,
            legacy_name=self.WAL_NAME,
        )
        if fresh and config is not None:
            self._append(RecordType.META, ck.encode_meta(config))

    def _append(self, rtype: RecordType, payload: bytes) -> None:
        if not self.replaying and not self._closed:
            self.wal.append(rtype, payload)

    def _maybe_compact(self) -> None:
        """Round boundaries are the safe points: once the sealed
        backlog exceeds the retention bound, rewrite it down to the
        live suffix (never during replay — recovery must leave the log
        byte-identical)."""
        if self.replaying or self._closed or not self.retain_segments:
            return
        if len(self.wal.sealed_names()) > self.retain_segments:
            from repro.store.compact import Compactor  # lazy: import cycle

            Compactor().compact(self.wal)

    # -- journaling hooks ---------------------------------------------

    def envelope_accepted(self, env, group: Group) -> None:
        self._append(RecordType.ENVELOPE, env.to_bytes(group))

    def round_setup(self, round_id: int, rng, fresh: bool) -> None:
        self._append(
            RecordType.ROUND_SETUP, ck.encode_rng_mark(round_id, rng, fresh)
        )

    def mixing_begin(self, round_id: int, rng) -> None:
        self._append(
            RecordType.ROUND_BEGIN, ck.encode_rng_mark(round_id, rng)
        )

    def layer_commit(self, round_id, layer, rng, audits, holdings) -> None:
        self._append(
            RecordType.LAYER_COMMIT,
            ck.encode_layer_commit(self.group, round_id, layer, rng, audits),
        )
        if layer % self.checkpoint_every == 0:
            self._append(
                RecordType.CHECKPOINT,
                ck.encode_checkpoint(self.group, round_id, layer, holdings),
            )
        if not self.replaying:
            # A commit is a durability point: fsync regardless of the
            # batching knob, so "committed" always means "on disk".
            self.wal.sync()

    def round_end(self, round_id: int, ok: bool) -> None:
        self._append(RecordType.ROUND_END, ck.encode_round_end(round_id, ok))
        self._maybe_compact()

    def stream_begin(self, stream, schedule_spec: str) -> None:
        self._append(
            RecordType.STREAM_BEGIN,
            ck.encode_stream_begin(stream, schedule_spec),
        )

    def honest_intake(self, round_id: int, gid: int, message: bytes) -> None:
        self._append(RecordType.HONEST, ck.encode_honest(round_id, gid, message))

    def round_settled(self, stats, rng) -> None:
        self._append(RecordType.ROUND_DONE, ck.encode_round_stats(stats, rng))
        if not self.replaying:
            self.wal.sync()
        self._maybe_compact()

    # -- lifecycle ----------------------------------------------------

    def mark_resume(self) -> None:
        self._append(RecordType.RESUME, b"")
        if not self.replaying:
            self.wal.sync()

    def mark_clean(self) -> None:
        self._append(RecordType.CLEAN, b"")
        if not self.replaying:
            self.wal.sync()

    def flush(self) -> None:
        if not self._closed:
            self.wal.sync()

    def close(self) -> None:
        if not self._closed:
            self.wal.close()
            self._closed = True
