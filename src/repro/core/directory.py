"""Directory authority: server registry and group formation (§4.1, §4.7).

The directory knows the set of participating servers and their keys
(the paper assumes a fault-tolerant cluster of directory authorities,
as in Tor).  Each round it:

1. derives the required group size ``k`` from the adversarial fraction
   ``f``, the group count ``G``, the fault parameter ``h``, and the
   2^-64 security target (:mod:`repro.analysis.groups_math`);
2. samples ``G`` groups of ``k`` servers from the public randomness
   beacon;
3. *staggers* member positions across groups (§4.7): server ``s``
   appearing in several groups occupies a different position in each,
   so that pipelined groups keep every server busy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.groups_math import minimum_group_size
from repro.core.group import GroupContext
from repro.core.server import AtomServer
from repro.crypto.beacon import RandomnessBeacon
from repro.crypto.groups import DeterministicRng, Group


@dataclass
class DirectoryConfig:
    """Group-formation parameters."""

    adversarial_fraction: float = 0.2
    security_exponent: int = 64
    h: int = 1  # required honest servers per group (h=1: anytrust)
    mode: str = "anytrust"
    #: override the computed group size (tests use tiny groups)
    group_size: Optional[int] = None
    nizk_rounds: int = 8


class Directory:
    """Registry of servers plus per-round group formation."""

    def __init__(
        self,
        servers: Sequence[AtomServer],
        group: Group,
        beacon: Optional[RandomnessBeacon] = None,
        config: Optional[DirectoryConfig] = None,
    ):
        if not servers:
            raise ValueError("directory needs at least one server")
        self.servers = list(servers)
        self.group = group
        self.beacon = beacon or RandomnessBeacon()
        self.config = config or DirectoryConfig()

    def required_group_size(self, num_groups: int) -> int:
        """Group size meeting the security target (or the override)."""
        if self.config.group_size is not None:
            return self.config.group_size
        return minimum_group_size(
            self.config.adversarial_fraction,
            num_groups,
            self.config.h,
            self.config.security_exponent,
        )

    def form_groups(
        self,
        round_id: int,
        num_groups: int,
        rng: Optional[DeterministicRng] = None,
    ) -> List[GroupContext]:
        """Sample and instantiate the round's groups (§4.1).

        Positions are staggered: group ``g``'s member list is rotated by
        ``g`` so a server serving in many groups holds a different rank
        in each (§4.7 "Ensuring maximal server utilization").
        """
        k = self.required_group_size(num_groups)
        memberships = self.beacon.sample_groups(
            round_id, len(self.servers), num_groups, k
        )
        contexts = []
        for gid, member_ids in enumerate(memberships):
            rotation = gid % k
            ordered = member_ids[rotation:] + member_ids[:rotation]
            members = [self.servers[i] for i in ordered]
            contexts.append(
                GroupContext(
                    gid=gid,
                    servers=members,
                    group=self.group,
                    mode=self.config.mode,
                    h=self.config.h if self.config.mode == "manytrust" else 1,
                    rng=rng,
                    nizk_rounds=self.config.nizk_rounds,
                )
            )
        return contexts

    def utilization_positions(self, contexts: Sequence[GroupContext]) -> List[List[int]]:
        """For analysis: position of each server in each group it joins."""
        positions: List[List[int]] = [[] for _ in self.servers]
        for ctx in contexts:
            for pos, server in enumerate(ctx.servers):
                positions[server.server_id].append(pos)
        return positions


def make_fleet(
    num_servers: int,
    group: Group,
    cores_distribution: Optional[Sequence[tuple]] = None,
) -> List[AtomServer]:
    """Build the paper's heterogeneous fleet (§6.2).

    Default mix: 80% 4-core, 10% 8-core, 5% 16-core, 5% 32-core, with
    the Tor-derived bandwidth mix (80% <100 Mbps, 10% 100–200, 5%
    200–300, 5% >300).
    """
    if cores_distribution is None:
        cores_distribution = [
            (0.80, 4, 100.0),
            (0.10, 8, 150.0),
            (0.05, 16, 250.0),
            (0.05, 32, 350.0),
        ]
    servers: List[AtomServer] = []
    boundaries = []
    acc = 0.0
    for fraction, cores, bw in cores_distribution:
        acc += fraction
        boundaries.append((acc, cores, bw))
    for sid in range(num_servers):
        u = (sid + 0.5) / num_servers
        for bound, cores, bw in boundaries:
            if u <= bound + 1e-9:
                servers.append(
                    AtomServer(server_id=sid, group=group, cores=cores, bandwidth_mbps=bw)
                )
                break
        else:
            last = cores_distribution[-1]
            servers.append(
                AtomServer(server_id=sid, group=group, cores=last[1], bandwidth_mbps=last[2])
            )
    return servers
