"""The Atom group protocols: Algorithm 1 and Algorithm 2.

A :class:`GroupContext` is one anytrust (or many-trust) group for one
protocol round.  It owns the group's per-round mixing key:

- **anytrust** mode: every member generates a fresh keypair; the group
  public key is the product of member keys, and *all* members must
  participate (one honest member suffices for security, one failed
  member stalls the group — §4.5's motivation).
- **manytrust** mode: the key comes from DVSS with threshold
  ``t = k - (h - 1)``; any ``t`` live members can mix, because each
  uses its Lagrange-weighted share as its effective secret.

``mix`` implements one mixing iteration (Algorithm 1):
shuffle (every participant in order) → divide into ``beta`` batches →
decrypt-and-reencrypt each batch toward its successor group (every
participant in order), the last participant dropping ``Y`` before the
batches leave the group.

``mix`` with ``verify=True`` implements Algorithm 2: every shuffle
carries a vector ShufProof and every ReEnc step a per-part ReEncProof;
all are checked by the other group members, and any failure raises
:class:`ProtocolAbort` naming the culprit.

Active-adversary hooks: participants with a non-honest
:class:`~repro.core.server.Behavior` tamper with the outgoing batches
(replace / duplicate / drop a ciphertext).  Under Algorithm 2 this is
caught immediately; under the trap variant it is caught by the trap
checks with probability 1/2 per tampering (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.server import AtomServer, Behavior
from repro.crypto.elgamal import AtomElGamal, ElGamalKeyPair
from repro.crypto.groups import DeterministicRng, Group, GroupElement
from repro.crypto.nizk import prove_reencryption, verify_reencryption
from repro.crypto.secret_sharing import DvssProtocol
from repro.crypto.threshold import ThresholdElGamal
from repro.crypto.vector import (
    CiphertextVector,
    VectorShuffleProof,
    prove_vector_shuffle,
    reencrypt_vector,
    rerandomize_vector,
    shuffle_vectors,
    verify_vector_shuffle,
)
from repro.topology.base import route_batches


class ProtocolAbort(RuntimeError):
    """Algorithm 2 detected a deviating server; the round aborts."""

    def __init__(self, gid: int, culprit: int, stage: str):
        self.gid = gid
        self.culprit = culprit
        self.stage = stage
        super().__init__(
            f"group {gid}: server {culprit} failed verification during {stage}"
        )

    def __reduce__(self):
        # Keep the exception picklable across ProcessPoolExecutor
        # workers (the default RuntimeError reduction replays args).
        return (ProtocolAbort, (self.gid, self.culprit, self.stage))


class GroupStalled(RuntimeError):
    """An anytrust group lost a member (or a many-trust group lost more
    than h-1) and cannot make progress without recovery (§4.5)."""

    def __init__(self, gid: int, alive: int, needed: int):
        self.gid = gid
        self.alive = alive
        self.needed = needed
        super().__init__(f"group {gid}: {alive} members alive, {needed} needed")

    def __reduce__(self):
        return (GroupStalled, (self.gid, self.alive, self.needed))


@dataclass
class MixAudit:
    """What happened during one mixing iteration (for tests/metrics)."""

    gid: int
    shuffles_proved: int = 0
    shuffles_verified: int = 0
    reencs_proved: int = 0
    reencs_verified: int = 0
    tamperings: List[Tuple[int, str]] = field(default_factory=list)
    bytes_sent: int = 0
    #: the last participant's shuffle-proof NIZK (verified variants
    #: only) — the evidence a group attaches to its mix-layer hand-off
    #: envelope so neighbours/auditors can re-check (Algorithm 2, 3b)
    final_shuffle_proof: Optional["VectorShuffleProof"] = None


class GroupContext:
    """One (any|many)-trust group for one protocol round."""

    def __init__(
        self,
        gid: int,
        servers: Sequence[AtomServer],
        group: Group,
        mode: str = "anytrust",
        h: int = 1,
        rng: Optional[DeterministicRng] = None,
        nizk_rounds: int = 8,
    ):
        if mode not in ("anytrust", "manytrust"):
            raise ValueError(f"unknown group mode {mode!r}")
        if mode == "manytrust" and h < 1:
            raise ValueError("h must be >= 1")
        if mode == "anytrust" and h != 1:
            raise ValueError("anytrust groups have h = 1")
        self.gid = gid
        self.servers = list(servers)
        self.group = group
        self.scheme = AtomElGamal(group)
        self.mode = mode
        self.h = h
        self.nizk_rounds = nizk_rounds
        self.k = len(self.servers)
        #: optional builder of valid attacker payloads (set by the
        #: deployment in trap-variant rounds; see ``_forge_vector``)
        self.forge_payload_fn = None

        if mode == "anytrust":
            self.threshold = self.k
            self.member_keys = [ElGamalKeyPair.generate(group, rng) for _ in self.servers]
            self.public_key = self.scheme.combine_public_keys(
                [kp.public for kp in self.member_keys]
            )
            self._threshold_scheme = None
        else:
            self.threshold = self.k - (h - 1)
            dvss = DvssProtocol(group, self.k, self.threshold).run(rng)
            self._threshold_scheme = ThresholdElGamal(group, dvss)
            self.public_key = self._threshold_scheme.public_key
            self.member_keys = None

    # -- membership -----------------------------------------------------

    def alive_positions(self) -> List[int]:
        return [i for i, s in enumerate(self.servers) if not s.failed]

    def participants(self) -> List[int]:
        """Positions that take part in this iteration.

        Anytrust: all members (any failure stalls).  Many-trust: the
        first ``threshold`` live members.
        """
        alive = self.alive_positions()
        if len(alive) < self.threshold:
            raise GroupStalled(self.gid, len(alive), self.threshold)
        if self.mode == "anytrust":
            return alive  # == all positions
        return alive[: self.threshold]

    def effective_secret(self, position: int, participants: Sequence[int]) -> int:
        """The secret this member uses in ReEnc: its raw per-round key
        (anytrust) or its Lagrange-weighted DVSS share (many-trust)."""
        if self.mode == "anytrust":
            return self.member_keys[position].secret
        return self._threshold_scheme.weighted_secret(position, list(participants))

    def member_public(self, position: int) -> GroupElement:
        """Public image of the member's *mixing* key (anytrust only)."""
        if self.mode != "anytrust":
            raise ValueError("per-member mixing publics exist only in anytrust mode")
        return self.member_keys[position].public

    def reveal_secrets(self) -> List[int]:
        """Blame protocol (§4.6): entry groups reveal their private keys."""
        if self.mode == "anytrust":
            return [kp.secret for kp in self.member_keys]
        return [s.value for s in self._threshold_scheme.dvss.shares]

    # -- the mixing iteration --------------------------------------------

    def mix(
        self,
        vectors: Sequence[CiphertextVector],
        next_keys: Sequence[Optional[GroupElement]],
        verify: bool = False,
        rng: Optional[DeterministicRng] = None,
    ) -> Tuple[List[List[CiphertextVector]], MixAudit]:
        """One iteration of Algorithm 1 (``verify=False``) / 2 (``True``).

        ``next_keys[i]`` is the public key of the i-th successor group
        (``None`` for the final iteration: plain decryption).  Returns
        ``beta = len(next_keys)`` outgoing batches plus an audit record.
        """
        audit = MixAudit(gid=self.gid)
        participants = self.participants()
        beta = len(next_keys)
        if not beta:
            raise ValueError("need at least one successor key")
        if len(vectors) % beta:
            raise ValueError(
                f"group {self.gid}: {len(vectors)} ciphertexts do not divide "
                f"into {beta} batches"
            )

        current = list(vectors)

        # Step 1 — Shuffle, each participant in order (Algorithm 1/2, step 1).
        for position in participants:
            server = self.servers[position]
            shuffled, perm, rands = shuffle_vectors(
                self.scheme, self.public_key, current, rng
            )
            if verify:
                proof = prove_vector_shuffle(
                    self.scheme, self.public_key, current, shuffled, perm, rands,
                    rounds=self.nizk_rounds, rng=rng,
                )
                audit.shuffles_proved += 1
                audit.bytes_sent += proof.size_bytes
            tampered = self._maybe_tamper_shuffle(server, shuffled, audit)
            if verify:
                # Every other member verifies the (possibly tampered) output.
                ok = verify_vector_shuffle(
                    self.scheme, self.public_key, current, tampered, proof,
                    rounds=self.nizk_rounds,
                )
                audit.shuffles_verified += len(participants) - 1
                if not ok:
                    raise ProtocolAbort(self.gid, server.server_id, "shuffle")
                audit.final_shuffle_proof = proof
            current = tampered

        # Step 2 — Divide (Algorithm 1/2, step 2).
        batches = route_batches(current, beta)

        # Step 3 — Decrypt and Reencrypt, each participant in order.
        for index, position in enumerate(participants):
            server = self.servers[position]
            secret = self.effective_secret(position, participants)
            last = index == len(participants) - 1
            new_batches = []
            for batch, next_key in zip(batches, next_keys):
                out = [
                    reencrypt_vector(self.scheme, secret, next_key, vec, rng)
                    for vec in batch
                ]
                new_batches.append(out)
            batches = new_batches
            if last and next_keys[0] is not None:
                # Appendix A: the last server sets Y' = ⊥ before forwarding.
                batches = [[vec.with_y_bot() for vec in batch] for batch in batches]

        # Adversarial tampering on the *outgoing* batches (the attack the
        # trap variant is designed to catch).
        self._maybe_tamper_outgoing(batches, next_keys, audit)

        for batch in batches:
            audit.bytes_sent += sum(v.size_bytes for v in batch)
        return batches, audit

    def streaming_safe(self) -> bool:
        """Whether this group may mix on the streaming (batch-buffer)
        data plane: every member must be honest — the adversarial
        tampering hooks operate on vector object lists (and must keep
        doing so: the trap variant's catch probabilities are asserted
        against that path), so instrumented groups mix via :meth:`mix`.
        """
        return all(s.streaming_safe for s in self.servers)

    def mix_batch(
        self,
        batch,
        next_keys: Sequence[Optional[GroupElement]],
        rng: Optional[DeterministicRng] = None,
    ):
        """One honest iteration of Algorithm 1 over a contiguous
        :class:`~repro.core.batch.CiphertextBatch` buffer.

        Byte-identical to ``mix(list(batch), next_keys, verify=False,
        rng)`` for an honest group: every rng draw happens in exactly
        the same order —

        1. per participant: the shuffle permutation, then one scalar
           per ciphertext part in permuted-vector order (what
           ``shuffle_vectors`` draws);
        2. per participant: re-encryption randomness in batch-major
           vector order — and because "Divide" is a *contiguous* split
           (``route_batches``), batch-major order over the split equals
           index order over the whole buffer, so ReEnc streams without
           materializing per-successor lists.

        Records are decoded one at a time and re-encoded into a fresh
        output buffer, so peak memory is two serialized buffers (plus
        one vector), never an object graph of the whole round.  Gated
        by :meth:`streaming_safe` — callers route instrumented groups
        and the NIZK variant through the object path.
        """
        from repro.core.batch import CiphertextBatch

        audit = MixAudit(gid=self.gid)
        participants = self.participants()
        beta = len(next_keys)
        if not beta:
            raise ValueError("need at least one successor key")
        current = (
            batch
            if isinstance(batch, CiphertextBatch)
            else CiphertextBatch.from_vectors(self.group, batch)
        )
        n = len(current)
        if n % beta:
            raise ValueError(
                f"group {self.gid}: {n} ciphertexts do not divide "
                f"into {beta} batches"
            )

        # Step 1 — Shuffle, each participant in order.
        for _position in participants:
            perm = list(range(n))
            if rng is not None:
                rng.shuffle(perm)
            else:
                import secrets as _secrets

                for i in range(n - 1, 0, -1):
                    j = _secrets.randbelow(i + 1)
                    perm[i], perm[j] = perm[j], perm[i]
            rands = [
                [
                    self.group.random_scalar(rng)
                    for _ in range(current.parts_count(perm[i]))
                ]
                for i in range(n)
            ]
            out = CiphertextBatch(self.group)
            for i in range(n):
                out.append(
                    rerandomize_vector(
                        self.scheme,
                        self.public_key,
                        current.vector(perm[i]),
                        rands[i],
                    )
                )
            current = out

        # Steps 2+3 — Divide + Decrypt-and-Reencrypt, streamed in index
        # order (vector i belongs to successor batch i // per).
        per = n // beta
        for index, position in enumerate(participants):
            secret = self.effective_secret(position, participants)
            last = index == len(participants) - 1
            # Appendix A: the last server sets Y' = ⊥ before forwarding
            # (fused per vector — with_y_bot draws no randomness)
            strip_y = last and next_keys[0] is not None
            out = CiphertextBatch(self.group)
            for i in range(n):
                vec = reencrypt_vector(
                    self.scheme, secret, next_keys[i // per],
                    current.vector(i), rng,
                )
                if strip_y:
                    vec = vec.with_y_bot()
                out.append(vec)
            current = out

        parts = current.split(beta)
        for part in parts:
            audit.bytes_sent += part.size_bytes_total()
        return parts, audit

    def mix_with_reenc_proofs(
        self,
        vectors: Sequence[CiphertextVector],
        next_keys: Sequence[Optional[GroupElement]],
        rng: Optional[DeterministicRng] = None,
    ) -> Tuple[List[List[CiphertextVector]], MixAudit]:
        """Algorithm 2 with explicit per-step ReEnc proofs.

        A slower, fully verified path used by the NIZK variant: each
        participant's ReEnc of each ciphertext part is proved with a
        Chaum-Pedersen NIZK and verified by the other members.  Shuffle
        proofs are as in :meth:`mix`.
        """
        audit = MixAudit(gid=self.gid)
        participants = self.participants()
        beta = len(next_keys)
        if len(vectors) % beta:
            raise ValueError("ciphertexts do not divide into batches")

        current = list(vectors)

        # Step 1 — verified shuffles.
        for position in participants:
            server = self.servers[position]
            shuffled, perm, rands = shuffle_vectors(
                self.scheme, self.public_key, current, rng
            )
            proof = prove_vector_shuffle(
                self.scheme, self.public_key, current, shuffled, perm, rands,
                rounds=self.nizk_rounds, rng=rng,
            )
            audit.shuffles_proved += 1
            audit.bytes_sent += proof.size_bytes
            tampered = self._maybe_tamper_shuffle(server, shuffled, audit)
            ok = verify_vector_shuffle(
                self.scheme, self.public_key, current, tampered, proof,
                rounds=self.nizk_rounds,
            )
            audit.shuffles_verified += len(participants) - 1
            if not ok:
                raise ProtocolAbort(self.gid, server.server_id, "shuffle")
            audit.final_shuffle_proof = proof
            current = tampered

        # Step 2 — divide.
        batches = route_batches(current, beta)

        # Step 3 — proved ReEnc.
        for index, position in enumerate(participants):
            server = self.servers[position]
            secret = self.effective_secret(position, participants)
            server_public = self.group.g ** secret
            last = index == len(participants) - 1
            new_batches = []
            for batch, next_key in zip(batches, next_keys):
                out_batch = []
                for vec in batch:
                    out_parts = []
                    for part in vec.parts:
                        r = (
                            None
                            if next_key is None
                            else self.group.random_scalar(rng)
                        )
                        after = self.scheme.reencrypt(secret, next_key, part, randomness=r)
                        proof = prove_reencryption(
                            self.group, secret, r, next_key, part, after
                        )
                        audit.reencs_proved += 1
                        audit.bytes_sent += proof.size_bytes
                        if not verify_reencryption(
                            self.group, server_public, next_key, part, after, proof
                        ):
                            raise ProtocolAbort(self.gid, server.server_id, "reenc")
                        audit.reencs_verified += len(participants) - 1
                        out_parts.append(after)
                    out_batch.append(CiphertextVector(tuple(out_parts)))
                new_batches.append(out_batch)
            batches = new_batches
            if last and next_keys[0] is not None:
                batches = [[vec.with_y_bot() for vec in batch] for batch in batches]

        # A tampering server cannot forge the ReEnc proof, so under this
        # path tampering surfaces as an abort above; outgoing tampering
        # would be caught by the neighbours re-verifying (Algorithm 2
        # step 3b sends proofs to neighbouring groups too).
        tampered_audit = MixAudit(gid=self.gid)
        self._maybe_tamper_outgoing(batches, next_keys, tampered_audit)
        if tampered_audit.tamperings:
            culprit = tampered_audit.tamperings[0][0]
            raise ProtocolAbort(self.gid, culprit, "outgoing-batch verification")

        for batch in batches:
            audit.bytes_sent += sum(v.size_bytes for v in batch)
        return batches, audit

    # -- adversarial hooks -------------------------------------------------

    def _maybe_tamper_shuffle(
        self,
        server: AtomServer,
        shuffled: List[CiphertextVector],
        audit: MixAudit,
    ) -> List[CiphertextVector]:
        """BAD_SHUFFLE: emit something other than the proven shuffle."""
        if server.behavior is not Behavior.BAD_SHUFFLE or server.tamper_budget <= 0:
            return shuffled
        if len(shuffled) < 2:
            return shuffled
        server.tamper_budget -= 1
        audit.tamperings.append((server.server_id, "bad_shuffle"))
        tampered = list(shuffled)
        tampered[0], tampered[1] = tampered[1], tampered[0]
        return tampered

    def _maybe_tamper_outgoing(
        self,
        batches: List[List[CiphertextVector]],
        next_keys: Sequence[Optional[GroupElement]],
        audit: MixAudit,
    ) -> None:
        """DROP / REPLACE / DUPLICATE one outgoing ciphertext in place.

        Modeled at the last-server forwarding stage, where a malicious
        member can construct well-formed substitutes: after ``Y`` is
        dropped, outgoing ciphertexts are fresh ElGamal ciphertexts
        under the (public) successor-group key.
        """
        for position in self.participants():
            server = self.servers[position]
            if not server.is_malicious or server.tamper_budget <= 0:
                continue
            if server.behavior is Behavior.BAD_SHUFFLE:
                continue
            for b_idx, (batch, next_key) in enumerate(zip(batches, next_keys)):
                if not batch:
                    continue
                server.tamper_budget -= 1
                if server.behavior is Behavior.REPLACE_ONE:
                    batch[0] = self._forge_vector(batch[0], next_key)
                    audit.tamperings.append((server.server_id, "replace"))
                elif server.behavior is Behavior.DUPLICATE_ONE and len(batch) >= 2:
                    batch[0] = batch[1]
                    audit.tamperings.append((server.server_id, "duplicate"))
                elif server.behavior is Behavior.DROP_ONE:
                    # Dropping shrinks the batch; to keep wire-format
                    # plausible the adversary substitutes garbage instead
                    # of leaving a hole (a literal hole is caught by
                    # counting; see §4.4 security analysis).
                    batch[0] = self._forge_vector(batch[0], next_key)
                    audit.tamperings.append((server.server_id, "drop"))
                break
            break

    def _forge_vector(
        self, template: CiphertextVector, next_key: Optional[GroupElement]
    ) -> CiphertextVector:
        """A fresh, well-formed vector substituted by the adversary.

        The strongest attacker (paper §4.4 analysis) replaces a victim
        ciphertext with a *valid* message of his own — e.g. a fresh
        inner ciphertext encrypted to the trustees — so that the
        substitution is undetectable unless the victim was a trap.  The
        deployment installs ``forge_payload_fn`` to build such payloads;
        without it the forgery carries garbage (a weaker attacker, whose
        substitution is also caught by format checks).
        """
        import secrets as _secrets

        if self.forge_payload_fn is not None:
            payload = self.forge_payload_fn()
            chunks = self.group.encode_chunks(payload)
        else:
            chunks = [
                self.group.encode(_secrets.token_bytes(self.group.params.message_bytes))
                for _ in template.parts
            ]
        if len(chunks) != len(template.parts):
            raise ValueError("forged payload does not match vector arity")
        if next_key is None:
            # Final layer: exit reads the plaintext out of `c`.
            from repro.crypto.elgamal import AtomCiphertext

            return CiphertextVector(
                tuple(
                    AtomCiphertext(R=self.group.identity, c=chunk, Y=self.group.g)
                    for chunk in chunks
                )
            )
        forged_parts = []
        for chunk in chunks:
            ct, _ = self.scheme.encrypt(next_key, chunk)
            forged_parts.append(ct)
        return CiphertextVector(tuple(forged_parts))

    # -- parallel dispatch ---------------------------------------------------

    def parallel_safe(self) -> bool:
        """Whether this group's mixing may run in a worker process.

        Mixing in a child is invisible to in-process adversarial state:
        a malicious member's tamper budget mutated there would be lost,
        so groups with malicious members (test instrumentation only)
        mix serially while honest groups — the entire fleet in a real
        deployment, any variant — parallelize.  A ``forge_payload_fn``
        is tolerated when it pickles (the trap deployment's
        :class:`~repro.core.protocol.InnerPayloadForger`); unpicklable
        hooks — closures, bound methods of local objects — force the
        serial path since they cannot cross the process boundary.
        """
        if self.forge_payload_fn is not None:
            import pickle

            try:
                pickle.dumps(self.forge_payload_fn)
            except Exception:
                return False
        return not any(s.is_malicious for s in self.servers)


# ---------------------------------------------------------------------------
# Parallel group mixing (paper Fig. 7: one layer's groups are independent,
# so their shuffle + proof work scales across cores).  Dispatch lives in
# repro.net.nodes.ServerNode (the MIX_PENDING / MIX_COLLECT flow); only
# the picklable worker entry point is defined here.
# ---------------------------------------------------------------------------


def _parallel_mix_worker(payload):
    """Run one group's mixing iteration inside a worker process.

    ``payload`` is fully picklable: the context (honest groups only —
    see :meth:`GroupContext.parallel_safe`), its input vectors, the
    successor keys, which algorithm to run, and an optional seed for a
    worker-local :class:`DeterministicRng`.
    """
    ctx, vectors, next_keys, use_reenc_proofs, seed = payload
    rng = DeterministicRng(seed) if seed is not None else None
    if use_reenc_proofs:
        batches, audit = ctx.mix_with_reenc_proofs(vectors, next_keys, rng)
    else:
        batches, audit = ctx.mix(vectors, next_keys, verify=False, rng=rng)
    return ctx.gid, batches, audit


